"""The Section-9 conjecture, visualized: sorting's write/read frontier.

The paper conjectures no sort can get o(n·log_M n) writes *and*
O(n·log_M n) reads.  We sweep problem sizes with both endpoint algorithms
and print the frontier: merge sort (balanced reads/writes, both near the
Aggarwal–Vitter bound) vs the write-avoiding selection sort (writes = n
exactly, reads blowing up as n²/M).

Run:  python examples/sorting_frontier.py
"""

import numpy as np

from repro.core import external_merge_sort, selection_sort_wa, sorting_traffic_lb
from repro.machine import TwoLevel
from repro.util import format_table

M = 64
rows = []
for n in (256, 1024, 4096):
    x = np.random.default_rng(n).standard_normal(n)
    hm, hs = TwoLevel(M), TwoLevel(M)
    assert (external_merge_sort(x, M=M, hier=hm) == np.sort(x)).all()
    assert (selection_sort_wa(x, M=M, hier=hs) == np.sort(x)).all()
    rows.append([
        n,
        round(sorting_traffic_lb(n, M), 0),
        hm.reads_from_slow, hm.writes_to_slow,
        hs.reads_from_slow, hs.writes_to_slow,
    ])

print(format_table(
    ["n", "AV bound", "merge reads", "merge writes",
     "WA-sel reads", "WA-sel writes"],
    rows,
    title=f"Sorting with fast memory M={M} words",
))

print("\nMerge sort: writes ≈ reads ≈ Θ(n·log_M n) — optimal total traffic,"
      "\nno write savings.  Selection sort: writes = n (the floor), reads ="
      "\nΘ(n²/M).  Nobody knows an algorithm strictly inside this frontier —"
      "\nthe paper conjectures none exists.")
