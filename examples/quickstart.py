"""Quickstart: what "write-avoiding" means, in 60 lines.

Runs the paper's Algorithm 1 (blocked matmul) in its write-avoiding loop
order and a non-WA order on an instrumented two-level memory, then replays
the same computation's address trace through a simulated LRU cache — the
two execution models the paper uses (explicit control, Section 4; hardware
control, Section 6).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TwoLevel, blocked_matmul, wa_block_size
from repro.core import matmul_trace
from repro.machine import CacheSim

# ------------------------------------------------------------------ #
# 1. Explicit data movement (paper Section 4)
# ------------------------------------------------------------------ #
n = 64
M = 3 * 16 * 16          # fast memory: three 16x16 blocks
b = wa_block_size(M)     # the paper's b = sqrt(M/3)

rng = np.random.default_rng(0)
A = rng.standard_normal((n, n))
B = rng.standard_normal((n, n))

print(f"C = A @ B with n={n}, fast memory M={M} words, block b={b}\n")

for order, label in [("ijk", "k innermost  (write-avoiding)"),
                     ("kij", "k outermost  (communication-avoiding only)")]:
    hier = TwoLevel(M)
    C = blocked_matmul(A, B, b=b, hier=hier, loop_order=order)
    assert np.allclose(C, A @ B)
    print(f"loop order {order} — {label}")
    print(f"  loads from slow memory : {hier.loads:>8}")
    print(f"  writes to slow memory  : {hier.writes_to_slow:>8}"
          f"   (output size = {n * n})")
    print(f"  writes to fast memory  : {hier.writes_to_fast:>8}"
          f"   (Theorem 1 floor = {hier.loads_plus_stores // 2})\n")

# ------------------------------------------------------------------ #
# 2. Hardware-controlled caches (paper Section 6)
# ------------------------------------------------------------------ #
print("Same computation through a simulated LRU cache "
      "(write-back, write-allocate):\n")
line = 4
for scheme, label in [("wa2", "two-level WA blocking"),
                      ("co", "cache-oblivious recursion")]:
    trace = matmul_trace(n, n, n, scheme=scheme, b3=16, b2=8, base=4,
                         line_size=line)
    # Proposition 6.1: five blocks resident keep the WA property under LRU.
    cache = CacheSim(5 * 16 * 16 + line, line_size=line, policy="lru")
    lines, writes = trace.finalize()
    cache.run_lines(lines, writes)
    cache.flush()
    floor = n * n // line
    print(f"{label:28s}: LLC_VICTIMS.M = {cache.stats.writebacks:>6}"
          f"   (write floor = {floor} lines)")

print("\nThe WA order writes back exactly the output; the CO order's "
      "write-backs grow with the problem — Theorem 3 in action.")
