"""A small gravitational N-body simulation on a write-limited memory.

The intro-motivating workload for Algorithm 4: a long-running particle
simulation whose force phase re-runs every step.  We integrate a leapfrog
scheme where forces come from the blocked write-avoiding kernel and track
cumulative slow-memory writes vs the force-symmetry variant — half the
arithmetic, but Θ(N/b)-fold more writes per step.

Run:  python examples/nbody_simulation.py
"""

import numpy as np

from repro.core import gravity_phi2, nbody2
from repro.machine import TwoLevel

N, B, STEPS, DT = 64, 8, 10, 1e-3
rng = np.random.default_rng(3)
pos = rng.standard_normal((N, 3))
vel = np.zeros((N, 3))

h_wa = TwoLevel(3 * B)
h_sym = TwoLevel(4 * B)

pos_wa = pos.copy()
vel_wa = vel.copy()
pos_sym = pos.copy()
vel_sym = vel.copy()

energy_drift = []
for step in range(STEPS):
    F = nbody2(pos_wa, b=B, hier=h_wa, phi2=gravity_phi2)
    vel_wa += DT * F
    pos_wa += DT * vel_wa

    F2 = nbody2(pos_sym, b=B, hier=h_sym, phi2=gravity_phi2,
                use_symmetry=True)
    vel_sym += DT * F2
    pos_sym += DT * vel_sym

assert np.allclose(pos_wa, pos_sym), "the two schedules agree numerically"

print(f"{STEPS} leapfrog steps of an N={N} body simulation (block b={B}):\n")
print("                         blocked WA     force-symmetry")
print(f"writes to slow memory  {h_wa.writes_to_slow:12,}   "
      f"{h_sym.writes_to_slow:14,}")
print(f"reads from slow memory {h_wa.reads_from_slow:12,}   "
      f"{h_sym.reads_from_slow:14,}")
print(f"\nwrite floor per step = N = {N}; the WA kernel hits it "
      f"({h_wa.writes_to_slow // STEPS}/step),")
print(f"the symmetric kernel writes "
      f"{h_sym.writes_to_slow // STEPS}/step — "
      "Newton's third law halves flops\nbut forfeits write-avoidance "
      "(Section 4.4).  On NVM, flops are free and writes are not.")
