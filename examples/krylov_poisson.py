"""Solving a 2-D Poisson-like system with write-avoiding Krylov methods.

The workload the paper's Section 8 targets: an iterative solve whose
vector traffic dominates, running out of a memory whose writes are
expensive (NVM).  We solve the same SPD stencil system three ways and
compare accuracy and slow-memory write traffic:

* conventional CG,
* CA-CG (s-step; communication-avoiding reads, same writes),
* streaming CA-CG (write-avoiding: Θ(s) fewer writes, ≤2x flops).

Run:  python examples/krylov_poisson.py
"""

import numpy as np

from repro.krylov import cacg, cg, spd_stencil_system

MESH, D = 48, 2           # 48x48 mesh, 9-point stencil
A, rhs = spd_stencil_system(MESH, d=D, b=1, seed=7)
n = A.shape[0]
print(f"2-D stencil system: n = {n} unknowns, nnz = {A.nnz}\n")

ref = cg(A, rhs, tol=1e-9)
print(f"CG              : {ref.iterations:3d} iterations, "
      f"writes/step = {ref.writes_per_iteration:9.1f}, "
      f"residual = {ref.residuals[-1]:.2e}")

for s in (2, 4, 8):
    plain = cacg(A, rhs, s=s, tol=1e-9, block=n // 8)
    stream = cacg(A, rhs, s=s, tol=1e-9, streaming=True, block=n // 8)
    err = np.linalg.norm(stream.x - ref.x) / np.linalg.norm(ref.x)
    print(f"CA-CG      s={s:2d}: {plain.inner_steps:3d} steps,      "
          f"writes/step = {plain.writes_per_step:9.1f}")
    print(f"CA-CG WA   s={s:2d}: {stream.inner_steps:3d} steps,      "
          f"writes/step = {stream.writes_per_step:9.1f}, "
          f"flops = {stream.traffic.flops / plain.traffic.flops:.2f}x plain, "
          f"|x-x_cg|/|x_cg| = {err:.1e}")

print("\nWrites per CG-equivalent step fall ~Θ(1/s) only for the streaming"
      "\nvariant — the Section-8 result.  On NVM whose writes cost 10-20x"
      "\nreads, that is the difference that pays for the 2x recompute.")
