"""Driving the repro.lab sweep engine from python.

Sweeps four matmul instruction orders across three NVM-style machines
(write energy 2x / 8x / 30x the symmetric baseline) in parallel, with the
persistent result cache in a throwaway directory, then aggregates the flat
records to answer the provisioning question directly: how much slow-memory
energy does each instruction order cost as writes get more expensive?

Run:  python examples/lab_sweep.py
"""

import tempfile

from repro.lab import ResultCache, ResultSet, execute, get_scenario

scenario = get_scenario("nvm-matmul", quick=True)
points = scenario.points()
print(f"scenario {scenario.name!r}: {len(points)} points "
      f"({scenario.description})\n")

with tempfile.TemporaryDirectory() as tmp:
    cache = ResultCache(tmp)
    report = execute(points, jobs=2, cache=cache)
    print(scenario.render(report.results))
    print()
    print(report.cache_line(cache))

    # A second sweep over the same grid is pure cache traffic.
    again = execute(points, jobs=2, cache=cache)
    print(again.cache_line(cache))

    # The results layer: flat records -> aggregate energy per scheme.
    rs = ResultSet.from_report(report)
    agg = rs.aggregate(["scheme"], "energy", how="sum")
    print()
    print(agg.format(title="total slow-boundary energy per instruction "
                           "order (summed over machines)"))

best = min(ResultSet.from_report(report).aggregate(
    ["scheme"], "energy", how="sum"),
    key=lambda row: row["sum_energy"])
print(f"\ncheapest order overall: {best['scheme']} "
      "(write-avoiding blocking wins once writes are expensive)")
