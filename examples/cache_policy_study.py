"""How much cache does write-avoidance need under real replacement policies?

Recreates the Section-6 investigation as a provisioning study: for each
matmul instruction order, sweep the simulated LLC capacity (in units of
L3 blocks) and replacement policy, and find the smallest cache at which
write-backs reach the output floor.

The punchlines (Propositions 6.1/6.2 + the Fig. 5 observation):

* the two-level WA order (MKL-style kernel inside) reaches the floor with
  just under **3** blocks;
* the fully multi-level WA order needs **5** blocks under LRU;
* the cache-oblivious order never reaches the floor at any capacity.

Run:  python examples/cache_policy_study.py
"""

from repro.core import matmul_trace
from repro.machine import CacheSim
from repro.util import format_table

N, MID = 64, 128
B3, B2, BASE, LINE = 16, 8, 4, 4
FLOOR = N * N // LINE

rows = []
for scheme in ("wa2", "wa-multilevel", "co"):
    trace = matmul_trace(N, MID, N, scheme=scheme, b3=B3, b2=B2,
                         base=BASE, line_size=LINE)
    lines, writes = trace.finalize()
    for policy in ("lru", "clock", "belady"):
        row = [scheme, policy]
        reached = None
        for blocks in (3, 4, 5, 6):
            sim = CacheSim(blocks * B3 * B3 + LINE, line_size=LINE,
                           policy=policy)
            sim.run_lines(lines, writes)
            sim.flush()
            wb = sim.stats.writebacks
            row.append(f"{wb / FLOOR:.2f}x")
            if reached is None and wb <= 1.05 * FLOOR:
                reached = blocks
        row.append(reached if reached is not None else "never")
        rows.append(row)

print(format_table(
    ["scheme", "policy", "3 blk", "4 blk", "5 blk", "6 blk",
     "floor reached at"],
    rows,
    title=(f"Write-backs / output floor ({FLOOR} lines) vs cache size, "
           f"n={N}, middle={MID}"),
))

print("\nReading the table: provision ≥5 blocks of LLC per WA matmul if "
      "you insist on the\nfully multi-level order, or restructure to the "
      "slab order and get away with 3 —\nthe cache-oblivious code never "
      "gets there, per Theorem 3.")
