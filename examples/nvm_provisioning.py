"""Capacity-planning study: is node-local NVM worth using?

The paper's Section 7 scenario: a cluster whose nodes have DRAM (L2) and a
large NVM tier (L3) with asymmetric read/write bandwidth.  This example
answers two provisioning questions with the paper's cost models:

1. **Model 2.1** (data fits in DRAM): does replicating extra matrix copies
   in NVM (2.5DMML3) beat DRAM-only replication (2.5DMML2)?  The paper's
   closed-form ratio says yes iff c3/c2 > ((βNW + 1.5·β23 + β32)/βNW)².

2. **Model 2.2** (data only fits in NVM): which of 2.5DMML3ooL2 (optimal
   network) and SUMMAL3ooL2 (optimal NVM writes) is faster on *your*
   hardware — Theorem 4 says no algorithm gets both.

Run:  python examples/nvm_provisioning.py
"""

from repro.distributed import (
    HwParams,
    dom_beta_cost_model21,
    dom_beta_cost_model22,
)
from repro.distributed.costmodel import replication_break_even

N, P = 1 << 15, 1 << 12

HARDWARE = {
    # name: (beta_nw, beta_23 [NVM write], beta_32 [NVM read])
    "2015 PCM prototype (writes 20x network)": HwParams(
        beta_nw=1.0, beta_23=20.0, beta_32=4.0, M2=2**22),
    "fast NVM (writes 2x network)": HwParams(
        beta_nw=1.0, beta_23=2.0, beta_32=1.0, M2=2**22),
    "battery-backed DRAM tier (writes ~ network)": HwParams(
        beta_nw=1.0, beta_23=1.0, beta_32=1.0, M2=2**22),
    "slow fabric, decent NVM": HwParams(
        beta_nw=8.0, beta_23=4.0, beta_32=2.0, M2=2**22),
}

print(f"== Model 2.1: n={N}, P={P}; c2=4 copies fit in DRAM ==\n")
for name, hw in HARDWARE.items():
    be = replication_break_even(hw, c2=4)
    c3 = min(int(round(P ** (1 / 3))), max(5, 4 * int(be) + 4))
    verdict = dom_beta_cost_model21(N, P, c2=4, c3=c3, hw=hw)
    print(f"{name}")
    print(f"  break-even replication ratio c3/c2 : {be:8.1f}")
    print(f"  with c3={c3}: predicted winner      : {verdict['winner']}"
          f"  (speedup ratio {max(verdict['ratio'], 1/verdict['ratio']):.2f}x)\n")

print(f"== Model 2.2: data only fits in NVM (n={N}, P={P}, c3=4) ==\n")
for name, hw in HARDWARE.items():
    verdict = dom_beta_cost_model22(N, P, c3=4, hw=hw)
    print(f"{name}")
    print(f"  domβcost 2.5DMML3ooL2 = {verdict['dom_2.5DMML3ooL2']:.3g}, "
          f"SUMMAL3ooL2 = {verdict['dom_SUMMAL3ooL2']:.3g}"
          f"  →  run {verdict['winner']}\n")

print("Rule of thumb from the models: the more expensive NVM *writes* are\n"
      "relative to the network, the more you should favour the\n"
      "write-avoiding SUMMA variant (Model 2.2) and the less extra NVM\n"
      "replication pays off (Model 2.1).")
