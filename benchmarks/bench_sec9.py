"""Regenerates the Section-9 conjecture studies (extensions).

Two open problems the paper states, made measurable:

* the sorting write/read frontier (merge sort vs WA selection sort);
* the LU/QR conjecture ("similar conclusions hold for LU, QR").
"""

import numpy as np

from repro.core import (
    blocked_lu,
    blocked_qr,
    external_merge_sort,
    selection_sort_wa,
    sorting_traffic_lb,
)
from repro.machine import TwoLevel
from repro.util import format_table


def _sorting_rows(M=64):
    rows = []
    for n in (256, 1024):
        x = np.random.default_rng(n).standard_normal(n)
        hm, hs = TwoLevel(M), TwoLevel(M)
        external_merge_sort(x, M=M, hier=hm)
        selection_sort_wa(x, M=M, hier=hs)
        rows.append({
            "n": n, "av_bound": sorting_traffic_lb(n, M),
            "merge_reads": hm.reads_from_slow,
            "merge_writes": hm.writes_to_slow,
            "sel_reads": hs.reads_from_slow,
            "sel_writes": hs.writes_to_slow,
        })
    return rows


def _factor_rows():
    rows = []
    n, b = 32, 4
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, n))
    A += np.diag(np.abs(A).sum(axis=1) + 1.0)
    for variant in ("left-looking", "right-looking"):
        h = TwoLevel(3 * b * b)
        blocked_lu(A.copy(), b=b, hier=h, variant=variant)
        rows.append({"kernel": "LU", "variant": variant,
                     "writes": h.writes_to_slow, "output": n * n})
    m = 32
    B = rng.standard_normal((m, n // 2))
    for variant in ("left-looking", "right-looking"):
        h = TwoLevel(m * b + 2 * b * b)
        blocked_qr(B.copy(), b=b, hier=h, variant=variant)
        rows.append({"kernel": "QR", "variant": variant,
                     "writes": h.writes_to_slow, "output": m * n // 2})
    return rows


def _run():
    return {"sorting": _sorting_rows(), "factor": _factor_rows()}


def test_sec9(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)

    srt = result["sorting"]
    print("\n" + format_table(
        ["n", "AV bound", "merge reads", "merge writes",
         "WA-sel reads", "WA-sel writes"],
        [[r["n"], round(r["av_bound"]), r["merge_reads"],
          r["merge_writes"], r["sel_reads"], r["sel_writes"]]
         for r in srt],
        title="Section 9 — sorting write/read frontier (M = 64 words)",
    ))
    print("\n" + format_table(
        ["kernel", "variant", "writes to slow", "output"],
        [[r["kernel"], r["variant"], r["writes"], r["output"]]
         for r in result["factor"]],
        title="Section 4.3 conjecture — LU and QR looking-direction "
              "asymmetry",
    ))

    # Sorting frontier: selection sort writes = n; merge writes ~ reads.
    for r in srt:
        assert r["sel_writes"] == r["n"]
        assert r["merge_writes"] == r["merge_reads"]
        assert r["sel_reads"] > 2 * r["merge_reads"] or r["n"] < 512
    # LU/QR: left-looking writes = output exactly; right-looking > 2x.
    f = {(r["kernel"], r["variant"]): r for r in result["factor"]}
    for k in ("LU", "QR"):
        assert f[(k, "left-looking")]["writes"] == f[
            (k, "left-looking")]["output"]
        assert (f[(k, "right-looking")]["writes"]
                > 2 * f[(k, "left-looking")]["writes"])
