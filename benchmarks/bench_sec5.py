"""Regenerates the Section-5 result: CO matmul cannot be write-avoiding."""

from repro.experiments import format_sec5, run_sec5


def test_sec5(benchmark):
    rows = benchmark.pedantic(run_sec5, kwargs=dict(n=32),
                              rounds=1, iterations=1)
    print("\n" + format_sec5(rows))

    # CO stores shrink with M but stay well above the output at small M;
    # the WA comparator sits at the output size for every M.
    assert rows[0]["co_stores"] > rows[-1]["co_stores"]
    assert rows[0]["co_over_output"] > 4
    for r in rows:
        assert r["wa_stores"] == r["output"]
        assert r["co_stores"] > r["wa_stores"]
