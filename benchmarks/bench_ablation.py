"""Ablation bench: which design ingredients buy the write-avoidance?

Four matmul schedules, identical arithmetic, per-level writes measured on
a three-level explicit hierarchy — isolating (a) blocking at all vs (b)
the reduction-innermost order vs (c) applying it at every level:

1. k-outermost blocked (CA only)          — writes Θ(n³/b) at the bottom;
2. k-innermost, top level only (two-level WA / Fig. 4b);
3. k-innermost at every level (Fig. 4a)   — WA at every boundary;
4. naive unblocked                        — write-minimal but read-heavy.
"""

import numpy as np

from repro.core import (
    ab_matmul_multilevel,
    blocked_matmul,
    naive_matmul,
    wa_matmul_multilevel,
)
from repro.machine import MemoryHierarchy, TwoLevel
from repro.util import format_table


def _run(n=32, bs=(16, 4)):
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    sizes = [3 * b * b for b in reversed(bs)]
    rows = []

    h = MemoryHierarchy(sizes)
    wa_matmul_multilevel(A, B, block_sizes=list(bs), hier=h)
    rows.append(("multilevel WA (Fig. 4a)",
                 h.writes_at(1), h.writes_at(2), h.writes_at(3)))

    h = MemoryHierarchy(sizes)
    ab_matmul_multilevel(A, B, block_sizes=list(bs), hier=h)
    rows.append(("slab below top (Fig. 4b)",
                 h.writes_at(1), h.writes_at(2), h.writes_at(3)))

    h2 = TwoLevel(3 * bs[1] ** 2)
    blocked_matmul(A, B, b=bs[1], hier=h2, loop_order="kij")
    rows.append(("blocked, k outermost", h2.writes_at(1),
                 None, h2.writes_at(2)))

    h2 = TwoLevel(3 * bs[1] ** 2)
    naive_matmul(A, B, hier=h2)
    rows.append(("naive (dot products)", h2.writes_at(1),
                 None, h2.writes_at(2)))
    return n, rows


def test_ablation(benchmark):
    n, rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    print("\n" + format_table(
        ["schedule", "writes→L1", "writes→L2", "writes→slowest"],
        [[r[0], r[1], r[2] if r[2] is not None else "-", r[3]]
         for r in rows],
        title=f"Ablation — n={n}: what each ingredient buys",
    ))
    by = {r[0]: r for r in rows}
    out = n * n
    # Both multi-level orders write only the output to the slowest level.
    assert by["multilevel WA (Fig. 4a)"][3] == out
    assert by["slab below top (Fig. 4b)"][3] == out
    # ... but the slab order pays more at the middle level.
    assert by["slab below top (Fig. 4b)"][2] > by[
        "multilevel WA (Fig. 4a)"][2]
    # k-outermost blows the bottom-level writes up by ~n/b.
    assert by["blocked, k outermost"][3] > 4 * out
    # Naive is write-minimal at the bottom yet reads n per output word —
    # its L1 write volume dwarfs every blocked schedule's.
    assert by["naive (dot products)"][3] == out
    assert by["naive (dot products)"][1] > by[
        "multilevel WA (Fig. 4a)"][1]
