"""Regenerates the Section-3 negative results (Theorem 2, Corollaries 2/3)."""

from repro.experiments import format_sec3, run_sec3


def test_sec3(benchmark):
    rows = benchmark.pedantic(run_sec3, rounds=1, iterations=1)
    print("\n" + format_sec3(rows))

    fft = [r for r in rows if r["algorithm"].startswith("Cooley")]
    strassen = [r for r in rows if r["algorithm"] == "Strassen"]
    matmul = [r for r in rows if "matmul" in r["algorithm"]]

    # FFT/Strassen: stores are a constant fraction of traffic and respect
    # the Theorem-2 bound; stores far exceed the output size.
    for r in fft + strassen:
        assert r["stores"] >= r["theorem2_lb"]
        assert r["store_fraction"] > 0.2
    big_fft = fft[-1]
    assert big_fft["stores"] > 3 * big_fft["output_size"]

    # FFT stores grow superlinearly in n (Ω(n log n / log M)).
    assert fft[-1]["stores"] / fft[0]["stores"] > (
        fft[-1]["n"] / fft[0]["n"])

    # Classical matmul with the WA schedule: stores == output exactly.
    for r in matmul:
        assert r["stores"] == r["output_size"]
