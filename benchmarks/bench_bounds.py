"""Theorem-1 sweep: writes-to-fast ≥ half of traffic for every kernel.

Also times the core instrumented kernels themselves (the library's hot
paths) so regressions in the block-slot machinery show up.
"""

import numpy as np

from repro.bounds import theorem1_holds
from repro.core import blocked_cholesky, blocked_matmul, blocked_trsm, nbody2
from repro.machine import TwoLevel


def _run_all(n=32, b=4, seed=0):
    rng = np.random.default_rng(seed)
    results = []
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    for order in ("ijk", "kij"):
        h = TwoLevel(3 * b * b)
        blocked_matmul(A, B, b=b, hier=h, loop_order=order)
        results.append(("matmul-" + order, h))
    T = np.triu(rng.standard_normal((n, n))) + n * np.eye(n)
    h = TwoLevel(3 * b * b)
    blocked_trsm(T, rng.standard_normal((n, n)), b=b, hier=h)
    results.append(("trsm", h))
    G = rng.standard_normal((n, n))
    h = TwoLevel(3 * b * b)
    blocked_cholesky(G @ G.T + n * np.eye(n), b=b, hier=h)
    results.append(("cholesky", h))
    h = TwoLevel(3 * b)
    nbody2(rng.standard_normal((n, 3)), b=b, hier=h)
    results.append(("nbody", h))
    return results


def test_theorem1_sweep(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for name, h in results:
        assert theorem1_holds(h), name
        # And the quantitative form: the bound is tight only when all
        # residencies are R1/D1 — never violated, often slack.
        assert 2 * h.writes_to_fast >= h.loads_plus_stores, name
