"""Shared benchmark configuration.

Benchmarks double as the regeneration harness for every table and figure
of the paper: run with ``pytest benchmarks/ --benchmark-only -s`` to see
the paper-style tables printed alongside the timings.  Each benchmark runs
its harness once per round (``pedantic``) because the harnesses are
deterministic and non-trivial in cost.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time *fn* with a single warm-up-free round and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
