"""Benchmarks for the fastsim engine: per-capacity replay vs single-pass.

Levels of comparison, mirroring how the stack is wired:

* **end-to-end** — a sec6-shaped capacity sweep through the lab executor,
  per-capacity replay (the pre-fastsim engine: one trace generation and
  one per-access loop per point) against the multi-capacity batch path
  (one trace generation, one sweep pass per policy).  This is the
  paper's actual workload shape and the acceptance number for the
  subsystem — measured for the LRU-only sweep, for the full
  LRU+Belady sweep (the sec6 table's batchable columns riding *one*
  trace replay), and for a non-matmul trace kernel (TRSM), so a
  batching bypass in any of the three regresses the build loudly.
* **kernel-only** — the per-access dict loop replayed K times against
  one :func:`simulate_lru_sweep` call on a pre-built trace, and the
  Belady heap loop replayed K times against one
  :func:`simulate_opt_sweep` pass.
* **single capacity** — the honest footnote: one stack-distance pass
  costs more than one tuned dict replay, which is why ``CacheSim`` keeps
  the per-access loop for K=1 and the batched kernel pays from K>=2.

Full-size runs refresh ``BENCH_fastsim.json`` at the repo root (the
committed perf snapshot).  ``REPRO_BENCH_QUICK=1`` shrinks the geometry
for CI and leaves the snapshot untouched.
"""

import json
import os
import time
from pathlib import Path

from repro.core.traces import matmul_trace
from repro.lab.executor import execute
from repro.lab.registry import MachineSpec
from repro.lab.scenarios import ScenarioPoint
from repro.lab.tracestore import set_active_store
from repro.machine.cache import CacheSim
from repro.machine.fastsim import (
    simulate_lru,
    simulate_lru_sweep,
    simulate_opt_sweep,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N, MIDDLE = (32, 64) if QUICK else (64, 128)
B3, B2, BASE, LINE = 16, 8, 4, 4
BLOCKS = list(range(2, 10))  # 8 capacities, straddling the 5-block cliff
SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_fastsim.json"


def _params(blocks):
    return {"n": N, "middle": MIDDLE, "scheme": "wa2", "b3": B3, "b2": B2,
            "base": BASE, "cache_blocks": blocks}


def sweep_points(policies=("lru",)):
    machine = MachineSpec(name="bench-l3", line_size=LINE, policy="lru")
    return [ScenarioPoint("matmul-cache", machine.override(policy=policy),
                          _params(b))
            for b in BLOCKS
            for policy in policies]


def built_trace():
    buf = matmul_trace(N, MIDDLE, N, scheme="wa2", b3=B3, b2=B2, base=BASE,
                       line_size=LINE)
    return buf.finalize()


def capacities_lines():
    return [(blocks * B3 * B3 + LINE) // LINE for blocks in BLOCKS]


def record_snapshot(**numbers):
    if QUICK:
        return  # never clobber the committed full-size numbers
    doc = {}
    if SNAPSHOT.exists():
        try:
            doc = json.loads(SNAPSHOT.read_text())
        except ValueError:
            doc = {}
    doc.setdefault("config", {}).update({
        "n": N, "middle": MIDDLE, "b3": B3, "b2": B2, "base": BASE,
        "line_size": LINE, "scheme": "wa2", "cache_blocks": BLOCKS,
        "capacities_lines": capacities_lines(), "quick": QUICK,
    })
    doc.update(numbers)
    SNAPSHOT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def test_multi_capacity_sweep_end_to_end(benchmark):
    """The acceptance number: K-capacity sweep, replay-per-point vs one
    batched pass, both cold (no result cache, no trace store)."""
    set_active_store(None)
    points = sweep_points()
    per_capacity = execute(points, cache=None, multi_capacity=False)
    multi = benchmark.pedantic(
        lambda: execute(points, cache=None, multi_capacity=True),
        rounds=1, iterations=1)
    assert multi.records() == per_capacity.records()  # bit-identical
    speedup = per_capacity.elapsed / multi.elapsed
    print(f"\n[bench_fastsim] {len(BLOCKS)}-capacity sweep "
          f"(n={N}, middle={MIDDLE}): per-capacity replay "
          f"{per_capacity.elapsed:.3f}s, multi-capacity "
          f"{multi.elapsed:.3f}s -> {speedup:.1f}x")
    record_snapshot(end_to_end={
        "points": len(points),
        "per_capacity_replay_s": round(per_capacity.elapsed, 4),
        "multi_capacity_s": round(multi.elapsed, 4),
        "speedup": round(speedup, 2),
    })
    # Regression tripwire (the committed snapshot records the full-size
    # number, >= 5x; keep slack here for noisy CI runners).
    assert speedup >= 3.0


def test_sec6_belady_sweep_end_to_end(benchmark):
    """The sec6 table's batchable columns: LRU *and* Belady points of one
    trace collapse into a single batch (one trace generation, one
    fastsim sweep per policy) — per-capacity replay regenerates the
    trace and replays it once per point."""
    set_active_store(None)
    points = sweep_points(policies=("lru", "belady"))
    per_capacity = execute(points, cache=None, multi_capacity=False)
    multi = benchmark.pedantic(
        lambda: execute(points, cache=None, multi_capacity=True),
        rounds=1, iterations=1)
    assert multi.records() == per_capacity.records()  # bit-identical
    assert multi.batches == 1  # both policies ride one replay
    speedup = per_capacity.elapsed / multi.elapsed
    print(f"\n[bench_fastsim] {len(points)}-point LRU+Belady sweep "
          f"({len(BLOCKS)} capacities, n={N}, middle={MIDDLE}): "
          f"per-capacity replay {per_capacity.elapsed:.3f}s, "
          f"multi-capacity {multi.elapsed:.3f}s -> {speedup:.1f}x")
    record_snapshot(sec6_belady_end_to_end={
        "points": len(points),
        "per_capacity_replay_s": round(per_capacity.elapsed, 4),
        "multi_capacity_s": round(multi.elapsed, 4),
        "speedup": round(speedup, 2),
    })
    # Acceptance: >= 4x full-size (committed snapshot); CI slack here.
    assert speedup >= 3.0


def test_trsm_sweep_end_to_end(benchmark):
    """A non-matmul trace kernel through the generic capacity batcher —
    regresses loudly if protocol-driven grouping silently degrades to
    per-point replay."""
    set_active_store(None)
    n, m, b = (32, 16, 8) if QUICK else (64, 32, 8)
    machine = MachineSpec(name="bench-l3", line_size=LINE, policy="lru")
    points = [ScenarioPoint("trsm-cache", machine,
                            {"n": n, "m": m, "b": b, "cache_blocks": blk})
              for blk in BLOCKS]
    per_capacity = execute(points, cache=None, multi_capacity=False)
    multi = benchmark.pedantic(
        lambda: execute(points, cache=None, multi_capacity=True),
        rounds=1, iterations=1)
    assert multi.records() == per_capacity.records()  # bit-identical
    assert multi.batches == 1
    speedup = per_capacity.elapsed / multi.elapsed
    print(f"\n[bench_fastsim] trsm-cache {len(BLOCKS)}-capacity sweep "
          f"(n={n}, m={m}, b={b}): per-capacity replay "
          f"{per_capacity.elapsed:.3f}s, multi-capacity "
          f"{multi.elapsed:.3f}s -> {speedup:.1f}x")
    record_snapshot(trsm_end_to_end={
        "points": len(points),
        "per_capacity_replay_s": round(per_capacity.elapsed, 4),
        "multi_capacity_s": round(multi.elapsed, 4),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 2.0


def test_kernel_only_opt_sweep(benchmark):
    """Belady heap loop x K capacities vs one simulate_opt_sweep pass,
    trace generation excluded on both sides."""
    lines, writes = built_trace()
    caps = capacities_lines()

    t0 = time.perf_counter()
    loop_stats = []
    for cap in caps:
        sim = CacheSim(cap, line_size=1, policy="belady")
        sim.run_lines(lines, writes)
        sim.flush()
        loop_stats.append(sim.stats)
    heap_loop_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sweep = benchmark.pedantic(
        lambda: simulate_opt_sweep(lines, writes, caps),
        rounds=1, iterations=1)
    sweep_s = time.perf_counter() - t0
    for cap, st in zip(caps, loop_stats):
        assert sweep.stats(cap) == st
    speedup = heap_loop_s / sweep_s
    print(f"\n[bench_fastsim] kernel-only OPT ({len(lines)} events, "
          f"{len(caps)} capacities): heap loop {heap_loop_s:.3f}s, "
          f"opt sweep {sweep_s:.3f}s -> {speedup:.1f}x")
    record_snapshot(kernel_only_opt={
        "trace_events": int(len(lines)),
        "heap_loop_s": round(heap_loop_s, 4),
        "opt_sweep_s": round(sweep_s, 4),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 1.2


def test_kernel_only_sweep(benchmark):
    """Dict loop x K capacities vs one stack-distance pass, trace
    generation excluded on both sides."""
    lines, writes = built_trace()
    caps = capacities_lines()

    t0 = time.perf_counter()
    loop_stats = []
    for cap in caps:
        sim = CacheSim(cap, line_size=1, policy="lru")
        sim.run_lines(lines, writes)
        sim.flush()
        loop_stats.append(sim.stats)
    dict_loop_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sweep = benchmark.pedantic(
        lambda: simulate_lru_sweep(lines, writes, caps),
        rounds=1, iterations=1)
    sweep_s = time.perf_counter() - t0
    for cap, st in zip(caps, loop_stats):
        assert sweep.stats(cap) == st
    speedup = dict_loop_s / sweep_s
    print(f"\n[bench_fastsim] kernel-only ({len(lines)} events, "
          f"{len(caps)} capacities): dict loop {dict_loop_s:.3f}s, "
          f"fastsim sweep {sweep_s:.3f}s -> {speedup:.1f}x")
    record_snapshot(kernel_only={
        "trace_events": int(len(lines)),
        "dict_loop_s": round(dict_loop_s, 4),
        "fastsim_sweep_s": round(sweep_s, 4),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 1.5


def test_single_capacity_footnote(benchmark):
    """K=1: the tuned per-access loop vs the batched kernel (documents
    why CacheSim defaults to the loop for a single capacity)."""
    lines, writes = built_trace()
    cap = capacities_lines()[1]  # 3 blocks

    t0 = time.perf_counter()
    sim = CacheSim(cap, line_size=1, policy="lru")
    sim.run_lines(lines, writes)
    sim.flush()
    dict_loop_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    res = benchmark.pedantic(lambda: simulate_lru(lines, writes, cap),
                             rounds=1, iterations=1)
    single_s = time.perf_counter() - t0
    assert res.stats(cap) == sim.stats
    print(f"\n[bench_fastsim] single capacity: dict loop "
          f"{dict_loop_s:.3f}s, fastsim {single_s:.3f}s "
          f"(ratio {single_s / dict_loop_s:.2f} - the loop wins at K=1)")
    record_snapshot(single_capacity={
        "trace_events": int(len(lines)),
        "dict_loop_s": round(dict_loop_s, 4),
        "fastsim_single_s": round(single_s, 4),
        "fastsim_over_loop_ratio": round(single_s / dict_loop_s, 2),
    })
