"""Benchmarks for the fastsim engine: per-capacity replay vs single-pass.

Levels of comparison, mirroring how the stack is wired:

* **end-to-end** — a sec6-shaped capacity sweep through the lab executor,
  per-capacity replay (the pre-fastsim engine: one trace generation and
  one per-access loop per point) against the multi-capacity batch path
  (one trace generation, one sweep pass per policy).  This is the
  paper's actual workload shape and the acceptance number for the
  subsystem — measured for the LRU-only sweep, for the full
  LRU+Belady sweep (the sec6 table's batchable columns riding *one*
  trace replay), and for a non-matmul trace kernel (TRSM), so a
  batching bypass in any of the three regresses the build loudly.
* **kernel-only** — the per-access dict loop replayed K times against
  one :func:`simulate_lru_sweep` call on a pre-built trace, and the
  Belady heap loop replayed K times against one
  :func:`simulate_opt_sweep` pass.
* **single capacity** — the honest footnote: one stack-distance pass
  costs more than one tuned dict replay, which is why ``CacheSim`` keeps
  the per-access loop for K=1 and the batched kernel pays from K>=2.

Full-size runs refresh ``BENCH_fastsim.json`` at the repo root (the
committed perf snapshot).  ``REPRO_BENCH_QUICK=1`` shrinks the geometry
for CI and leaves the snapshot untouched.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.traces import matmul_trace
from repro.lab.executor import execute
from repro.lab.registry import MachineSpec
from repro.lab.scenarios import ScenarioPoint
from repro.lab.tracestore import set_active_store
from repro.machine.cache import CacheSim
from repro.machine.fastsim import (
    fold_lru_symbols,
    simulate_lru,
    simulate_lru_sweep,
    simulate_opt_sweep,
    symbolize,
)

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
N, MIDDLE = (32, 64) if QUICK else (64, 128)
B3, B2, BASE, LINE = 16, 8, 4, 4
BLOCKS = list(range(2, 10))  # 8 capacities, straddling the 5-block cliff
SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_fastsim.json"


def _params(blocks):
    return {"n": N, "middle": MIDDLE, "scheme": "wa2", "b3": B3, "b2": B2,
            "base": BASE, "cache_blocks": blocks}


def sweep_points(policies=("lru",)):
    machine = MachineSpec(name="bench-l3", line_size=LINE, policy="lru")
    return [ScenarioPoint("matmul-cache", machine.override(policy=policy),
                          _params(b))
            for b in BLOCKS
            for policy in policies]


def built_trace():
    buf = matmul_trace(N, MIDDLE, N, scheme="wa2", b3=B3, b2=B2, base=BASE,
                       line_size=LINE)
    return buf.finalize()


def built_trace_tiled():
    buf = matmul_trace(N, MIDDLE, N, scheme="wa2", b3=B3, b2=B2, base=BASE,
                       line_size=LINE)
    return buf.finalize_trace()


def capacities_lines():
    return [(blocks * B3 * B3 + LINE) // LINE for blocks in BLOCKS]


def record_snapshot(**numbers):
    if QUICK:
        return  # never clobber the committed full-size numbers
    doc = {}
    if SNAPSHOT.exists():
        try:
            doc = json.loads(SNAPSHOT.read_text())
        except ValueError:
            doc = {}
    doc.setdefault("config", {}).update({
        "n": N, "middle": MIDDLE, "b3": B3, "b2": B2, "base": BASE,
        "line_size": LINE, "scheme": "wa2", "cache_blocks": BLOCKS,
        "capacities_lines": capacities_lines(), "quick": QUICK,
    })
    doc.update(numbers)
    SNAPSHOT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def test_multi_capacity_sweep_end_to_end(benchmark):
    """The acceptance number: K-capacity sweep, replay-per-point vs one
    batched pass, both cold (no result cache, no trace store)."""
    set_active_store(None)
    points = sweep_points()
    per_capacity = execute(points, cache=None, multi_capacity=False)
    multi = benchmark.pedantic(
        lambda: execute(points, cache=None, multi_capacity=True),
        rounds=1, iterations=1)
    assert multi.records() == per_capacity.records()  # bit-identical
    speedup = per_capacity.elapsed / multi.elapsed
    print(f"\n[bench_fastsim] {len(BLOCKS)}-capacity sweep "
          f"(n={N}, middle={MIDDLE}): per-capacity replay "
          f"{per_capacity.elapsed:.3f}s, multi-capacity "
          f"{multi.elapsed:.3f}s -> {speedup:.1f}x")
    record_snapshot(end_to_end={
        "points": len(points),
        "per_capacity_replay_s": round(per_capacity.elapsed, 4),
        "multi_capacity_s": round(multi.elapsed, 4),
        "speedup": round(speedup, 2),
    })
    # Regression tripwire (the committed snapshot records the full-size
    # number, >= 5x; keep slack here for noisy CI runners).
    assert speedup >= 3.0


def test_sec6_belady_sweep_end_to_end(benchmark):
    """The sec6 table's batchable columns: LRU *and* Belady points of one
    trace collapse into a single batch (one trace generation, one
    fastsim sweep per policy) — per-capacity replay regenerates the
    trace and replays it once per point."""
    set_active_store(None)
    points = sweep_points(policies=("lru", "belady"))
    per_capacity = execute(points, cache=None, multi_capacity=False)
    multi = benchmark.pedantic(
        lambda: execute(points, cache=None, multi_capacity=True),
        rounds=1, iterations=1)
    assert multi.records() == per_capacity.records()  # bit-identical
    assert multi.batches == 1  # both policies ride one replay
    speedup = per_capacity.elapsed / multi.elapsed
    print(f"\n[bench_fastsim] {len(points)}-point LRU+Belady sweep "
          f"({len(BLOCKS)} capacities, n={N}, middle={MIDDLE}): "
          f"per-capacity replay {per_capacity.elapsed:.3f}s, "
          f"multi-capacity {multi.elapsed:.3f}s -> {speedup:.1f}x")
    record_snapshot(sec6_belady_end_to_end={
        "points": len(points),
        "per_capacity_replay_s": round(per_capacity.elapsed, 4),
        "multi_capacity_s": round(multi.elapsed, 4),
        "speedup": round(speedup, 2),
    })
    # Acceptance: >= 4x full-size (committed snapshot); CI slack here.
    assert speedup >= 3.0


def test_trsm_sweep_end_to_end(benchmark):
    """A non-matmul trace kernel through the generic capacity batcher —
    regresses loudly if protocol-driven grouping silently degrades to
    per-point replay."""
    set_active_store(None)
    n, m, b = (32, 16, 8) if QUICK else (64, 32, 8)
    machine = MachineSpec(name="bench-l3", line_size=LINE, policy="lru")
    points = [ScenarioPoint("trsm-cache", machine,
                            {"n": n, "m": m, "b": b, "cache_blocks": blk})
              for blk in BLOCKS]
    per_capacity = execute(points, cache=None, multi_capacity=False)
    multi = benchmark.pedantic(
        lambda: execute(points, cache=None, multi_capacity=True),
        rounds=1, iterations=1)
    assert multi.records() == per_capacity.records()  # bit-identical
    assert multi.batches == 1
    speedup = per_capacity.elapsed / multi.elapsed
    print(f"\n[bench_fastsim] trsm-cache {len(BLOCKS)}-capacity sweep "
          f"(n={n}, m={m}, b={b}): per-capacity replay "
          f"{per_capacity.elapsed:.3f}s, multi-capacity "
          f"{multi.elapsed:.3f}s -> {speedup:.1f}x")
    record_snapshot(trsm_end_to_end={
        "points": len(points),
        "per_capacity_replay_s": round(per_capacity.elapsed, 4),
        "multi_capacity_s": round(multi.elapsed, 4),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 2.0


def test_kernel_only_opt_sweep(benchmark):
    """Belady heap loop x K capacities vs one simulate_opt_sweep pass,
    trace generation excluded on both sides."""
    lines, writes = built_trace()
    caps = capacities_lines()

    t0 = time.perf_counter()
    loop_stats = []
    for cap in caps:
        sim = CacheSim(cap, line_size=1, policy="belady")
        sim.run_lines(lines, writes)
        sim.flush()
        loop_stats.append(sim.stats)
    heap_loop_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sweep = benchmark.pedantic(
        lambda: simulate_opt_sweep(lines, writes, caps),
        rounds=1, iterations=1)
    sweep_s = time.perf_counter() - t0
    for cap, st in zip(caps, loop_stats):
        assert sweep.stats(cap) == st
    speedup = heap_loop_s / sweep_s
    print(f"\n[bench_fastsim] kernel-only OPT ({len(lines)} events, "
          f"{len(caps)} capacities): heap loop {heap_loop_s:.3f}s, "
          f"opt sweep {sweep_s:.3f}s -> {speedup:.1f}x")
    record_snapshot(kernel_only_opt={
        "trace_events": int(len(lines)),
        "heap_loop_s": round(heap_loop_s, 4),
        "opt_sweep_s": round(sweep_s, 4),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 1.2


def test_kernel_only_sweep(benchmark):
    """Dict loop x K capacities vs one stack-distance pass, trace
    generation excluded on both sides."""
    lines, writes = built_trace()
    caps = capacities_lines()

    t0 = time.perf_counter()
    loop_stats = []
    for cap in caps:
        sim = CacheSim(cap, line_size=1, policy="lru")
        sim.run_lines(lines, writes)
        sim.flush()
        loop_stats.append(sim.stats)
    dict_loop_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sweep = benchmark.pedantic(
        lambda: simulate_lru_sweep(lines, writes, caps),
        rounds=1, iterations=1)
    sweep_s = time.perf_counter() - t0
    for cap, st in zip(caps, loop_stats):
        assert sweep.stats(cap) == st
    speedup = dict_loop_s / sweep_s
    print(f"\n[bench_fastsim] kernel-only ({len(lines)} events, "
          f"{len(caps)} capacities): dict loop {dict_loop_s:.3f}s, "
          f"fastsim sweep {sweep_s:.3f}s -> {speedup:.1f}x")
    record_snapshot(kernel_only={
        "trace_events": int(len(lines)),
        "dict_loop_s": round(dict_loop_s, 4),
        "fastsim_sweep_s": round(sweep_s, 4),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 1.5


# kernel_only.fastsim_sweep_s as committed before the super-symbol PR:
# the acceptance floor is >= 3x over this fixed number, not over the
# same-run event sweep (which the same PR's distance-pass rework also
# sped up, from 70ms to ~25ms on this geometry).
PRE_SUPERSYMBOL_SWEEP_S = 0.0702


def _best_of(fn, rounds=3):
    best = float("inf")
    out = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return out, best


def test_supersymbol_kernel_only(benchmark):
    """The tile super-symbol pipeline (symbolize + visit-granular LRU
    fold) against the event-granular stack pass on the same sec6-shaped
    trace and capacity grid — counters bit-identical, and the acceptance
    floor: >= 3x over the pre-PR committed ``fastsim_sweep_s``."""
    trace = built_trace_tiled()
    caps = capacities_lines()

    ref, event_s = _best_of(
        lambda: simulate_lru_sweep(trace.lines, trace.writes, caps))

    def run():
        st = symbolize(trace.lines, trace.writes, trace.chunk_lens)
        return st, fold_lru_symbols(st, caps)

    (st, res), sym_s = _best_of(run)
    benchmark.pedantic(run, rounds=1, iterations=1)
    assert st is not None
    for name in ("accesses", "hits", "misses", "fills", "victims_m",
                 "victims_e", "flush_writebacks", "flush_victims_e",
                 "stack_lines", "stack_has_write", "stack_m"):
        assert np.array_equal(np.asarray(getattr(res, name)),
                              np.asarray(getattr(ref, name))), name
    speedup = event_s / sym_s
    speedup_vs_baseline = PRE_SUPERSYMBOL_SWEEP_S / sym_s
    print(f"\n[bench_fastsim] super-symbol ({trace.n_events} events -> "
          f"{st.n_visits} visits, {st.n_symbols} symbols, "
          f"{len(caps)} capacities): event sweep {event_s:.4f}s, "
          f"symbolize+fold {sym_s:.4f}s -> {speedup:.1f}x same-run, "
          f"{speedup_vs_baseline:.1f}x vs pre-PR "
          f"{PRE_SUPERSYMBOL_SWEEP_S:.4f}s")
    record_snapshot(supersymbol={
        "trace_events": int(trace.n_events),
        "visits": int(st.n_visits),
        "symbols": int(st.n_symbols),
        "compression_events_per_visit": round(st.compression, 2),
        "event_sweep_s": round(event_s, 4),
        "supersymbol_sweep_s": round(sym_s, 4),
        "speedup_vs_event_sweep": round(speedup, 2),
        "baseline_event_sweep_s": PRE_SUPERSYMBOL_SWEEP_S,
        "speedup": round(speedup_vs_baseline, 2),
    })
    # The fold must beat the (also-newly-optimized) event sweep on any
    # geometry; the 3x acceptance floor is against the committed pre-PR
    # baseline and only meaningful on the full-size shape.
    assert sym_s < event_s
    if not QUICK:
        assert speedup_vs_baseline >= 3.0


def test_single_capacity_footnote(benchmark):
    """K=1: the tuned per-access loop vs the event-granular kernel vs
    the super-symbol path.  The event pass still loses at K=1 (why
    ``run_lines`` keeps the loop); the super-symbol fold wins even
    there, which is why ``fastsim_min_events='auto'`` routes large
    tiled traces through ``run_trace``'s fold."""
    trace = built_trace_tiled()
    lines, writes = trace.pair()
    cap = capacities_lines()[1]  # 3 blocks

    t0 = time.perf_counter()
    sim = CacheSim(cap, line_size=1, policy="lru",
                   fastsim_min_events=None)
    sim.run_lines(lines, writes)
    sim.flush()
    dict_loop_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    res = simulate_lru(lines, writes, cap)
    event_single_s = time.perf_counter() - t0
    assert res.stats(cap) == sim.stats

    def run():
        fold = CacheSim(cap, line_size=1, policy="lru",
                        fastsim_min_events=0)
        fold.run_trace(trace)
        fold.flush()
        return fold

    t0 = time.perf_counter()
    fold = benchmark.pedantic(run, rounds=1, iterations=1)
    sym_s = time.perf_counter() - t0
    assert fold.stats == sim.stats
    print(f"\n[bench_fastsim] single capacity: dict loop "
          f"{dict_loop_s:.3f}s, event fastsim {event_single_s:.3f}s "
          f"(ratio {event_single_s / dict_loop_s:.2f}), super-symbol "
          f"{sym_s:.3f}s (ratio {sym_s / dict_loop_s:.2f})")
    record_snapshot(single_capacity={
        "trace_events": int(len(lines)),
        "dict_loop_s": round(dict_loop_s, 4),
        "event_single_s": round(event_single_s, 4),
        "event_over_loop_ratio": round(event_single_s / dict_loop_s, 2),
        "fastsim_single_s": round(sym_s, 4),
        "fastsim_over_loop_ratio": round(sym_s / dict_loop_s, 2),
    })
    # Acceptance: the super-symbol path beats the dict loop at K=1 on
    # the full-size geometry (no floor on quick CI runners).
    if not QUICK:
        assert sym_s / dict_loop_s < 1.0
