"""Regenerates Figure 5 (scaled): multi-level WA vs slab order under LRU.

The paper's two columns: the fully-WA instruction order needs ~5 blocks
resident and melts down at the largest blocking (left column, top plot);
the slab/AB order stays at the write floor across all blockings (right
column).
"""

from repro.experiments import Fig2Config, format_fig5, run_fig5


def cfg():
    return Fig2Config(
        n_outer=96,
        middles=(8, 32, 128, 256),
        line_size=4,
        b2=8,
        base=4,
        policy="lru",
    )


def test_fig5(benchmark):
    c = cfg()
    results = benchmark.pedantic(run_fig5, args=(c,), rounds=1, iterations=1)
    print("\n" + format_fig5(results))

    floor = c.n_outer**2 // c.line_size
    wa_runs = results["multilevel-wa"]
    ab_runs = results["two-level-ab"]
    # Largest blocking (just under 3 blocks in cache): the multi-level
    # order exceeds the floor badly, the slab order stays close.
    wa_big = wa_runs[-1]["VICTIMS.M"][-1]
    ab_big = ab_runs[-1]["VICTIMS.M"][-1]
    assert wa_big > 2 * floor
    assert ab_big < 1.5 * floor
    # Smallest blocking: both near the floor (paper's bottom row).
    assert wa_runs[0]["VICTIMS.M"][-1] < 2 * floor
    assert ab_runs[0]["VICTIMS.M"][-1] < 1.5 * floor
    # The slab order's advantage shows in write-backs, and the smaller
    # blockings pay with more exclusive-state fills.
    assert ab_runs[-1]["FILLS.E"][-1] <= wa_runs[0]["FILLS.E"][-1] * 1.2
