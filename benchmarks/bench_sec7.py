"""Regenerates the Section-7 Model-1 study: CA between ranks + WA locally."""

from repro.experiments import format_sec7_model1, run_sec7_model1


def test_sec7_model1(benchmark):
    result = benchmark.pedantic(run_sec7_model1,
                                kwargs=dict(n=32, P=16, M1=3 * 16),
                                rounds=1, iterations=1)
    print("\n" + format_sec7_model1(result))

    assert result["correct"]
    b = result["bounds"]
    plain, hoard = result["plain"], result["hoard"]
    # Plain SUMMA's local L1→L2 writes track the network volume (Θ(W2)),
    # exceeding the W1 floor by ~√P.
    assert plain["l1_to_l2_writes"] > 2 * b["W1"]
    assert plain["l1_to_l2_writes"] <= 2 * b["W2"]
    # Hoarding attains the W1 floor exactly (one local multiply).
    assert hoard["l1_to_l2_writes"] == b["W1"]
    # Network volume identical for both.
    assert plain["nw_recv"] == hoard["nw_recv"]
    # Reads (W3-bound quantity) are the dominant local traffic either way.
    assert plain["l2_to_l1_reads"] > plain["l1_to_l2_writes"]
