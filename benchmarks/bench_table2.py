"""Regenerates Table 2: Model-2.2 rows plus the measured Theorem-4 tension."""

from repro.distributed import HwParams
from repro.distributed.costmodel import dom_beta_cost_model22
from repro.experiments import format_table2, run_table2


def test_table2(benchmark):
    result = benchmark.pedantic(
        run_table2,
        kwargs=dict(n=1 << 15, P=512, c3=4,
                    hw=HwParams(M1=2**8, M2=2**14)),
        rounds=1, iterations=1,
    )
    print("\n" + format_table2(result))

    rows = result["rows"]
    n, P, c3 = result["n"], result["P"], result["c3"]
    b23 = [r for r in rows if r["param"] == "β23"][0]
    bnw = [r for r in rows if r["param"] == "βNW"][0]
    w1 = n * n / P
    # SUMMA attains the NVM-write floor; 2.5D attains the network bound;
    # neither attains both (Theorem 4).
    assert b23["SUMMAL3ooL2"] <= 1.01 * w1
    assert b23["2.5DMML3ooL2"] > 3 * w1
    assert bnw["2.5DMML3ooL2"] < bnw["SUMMAL3ooL2"]

    # Measured on the simulator: the same tension, with the SUMMA NVM
    # writes *exactly* at the floor.
    v = result["validation"]
    assert v["summa_correct"] and v["mm25d_correct"]
    assert v["summa_nvm_writes_per_rank"] == v["w1_floor"]
    assert v["mm25d_nvm_writes_per_rank"] > 2 * v["w1_floor"]
    assert v["mm25d_nw_recv"] < v["summa_nw_recv"]

    # Hardware crossover: expensive NVM writes favour SUMMA, expensive
    # network favours 2.5D.
    d1 = dom_beta_cost_model22(1 << 15, 512, 4,
                               HwParams(M1=2**8, M2=2**14, beta_23=1e4))
    d2 = dom_beta_cost_model22(1 << 15, 512, 4,
                               HwParams(M1=2**8, M2=2**14, beta_nw=1e4,
                                        beta_23=1.0))
    assert d1["winner"] == "SUMMAL3ooL2"
    assert d2["winner"] == "2.5DMML3ooL2"
