"""Regenerates the Section-6 policy study (Propositions 6.1 / 6.2).

Runs as a ``repro.lab`` scheme x capacity x policy grid (cache disabled so
the timing is honest); the engine's records are reassembled into the same
rows the serial ``run_sec6`` harness returns.
"""

from repro.experiments import format_sec6
from repro.lab.executor import execute
from repro.lab.scenarios import sec6_rows, sec6_scenario


def run_via_lab():
    scenario = sec6_scenario()  # full-size defaults: n=64, middle=128
    report = execute(scenario.points(), jobs=1, cache=None)
    return sec6_rows(scenario, report.results)


def test_sec6(benchmark):
    rows = benchmark.pedantic(run_via_lab, rounds=1, iterations=1)
    print("\n" + format_sec6(rows))

    def pick(scheme, blocks, policy):
        return [r for r in rows
                if r["scheme"] == scheme
                and r["capacity_blocks"] == blocks
                and r["policy"] == policy][0]

    # Proposition 6.1: two-level WA + LRU + 5 blocks → floor exactly.
    assert pick("wa2", 5, "lru")["writebacks"] == pick(
        "wa2", 5, "lru")["floor"]
    # Slab order stays near the floor with just 3 blocks.
    assert pick("ab-multilevel", 3, "lru")["ratio"] < 1.2
    # Multi-level WA order with 3 blocks blows past the floor.
    assert pick("wa-multilevel", 3, "lru")["ratio"] > 1.5
    # Belady (ideal cache) is never worse than LRU on write-backs + fills.
    for scheme in ("wa2", "ab-multilevel"):
        for blocks in (3, 5):
            opt = pick(scheme, blocks, "belady")
            lru = pick(scheme, blocks, "lru")
            assert opt["fills"] <= lru["fills"]
    # The clock approximation tracks LRU within a small factor at 5 blocks.
    assert (pick("wa2", 5, "clock")["writebacks"]
            <= 3 * pick("wa2", 5, "lru")["writebacks"])
