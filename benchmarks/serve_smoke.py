"""CI smoke for `repro-lab serve`: boot the real CLI daemon, drive a
quick preset over HTTP, and assert clean SIGINT shutdown.

What the gate checks, end to end through the actual process boundary
(the in-process paths are covered by tests/test_lab_serve.py):

1. the daemon boots and answers `/healthz`;
2. `POST /sweep` of a quick preset runs to `done` and `/results`
   returns one row per point;
3. an identical second request is served entirely from cache
   (`source == "cached"`, `serve.cache_hit` counter proves it);
4. `/metrics` is non-empty, schema-v1, and carries the serve counters;
5. SIGINT exits 0 (graceful drain), not 130 (the abort path).

Usage::

    python benchmarks/serve_smoke.py [--scenario sec6] [--timeout 120]
"""

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request


def _request(url, payload=None):
    req = urllib.request.Request(
        url, data=(json.dumps(payload).encode() if payload is not None
                   else None),
        headers={"Content-Type": "application/json"},
        method="POST" if payload is not None else "GET")
    with urllib.request.urlopen(req, timeout=30) as r:
        return json.loads(r.read())


def _wait_for_boot(base, deadline):
    while time.monotonic() < deadline:
        try:
            if _request(f"{base}/healthz").get("ok"):
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.2)
    raise SystemExit("serve daemon never answered /healthz")


def main(argv=None):
    ap = argparse.ArgumentParser()
    ap.add_argument("--scenario", default="sec6")
    ap.add_argument("--port", type=int, default=8737)
    ap.add_argument("--timeout", type=float, default=120.0)
    args = ap.parse_args(argv)
    deadline = time.monotonic() + args.timeout
    base = f"http://127.0.0.1:{args.port}"

    cache_dir = tempfile.mkdtemp(prefix="serve-smoke-cache-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.lab", "serve",
         "--port", str(args.port), "--jobs", "2",
         "--cache-dir", cache_dir])
    try:
        _wait_for_boot(base, deadline)

        body = {"scenario": args.scenario, "quick": True}
        first = _request(f"{base}/sweep", body)
        print(f"[smoke] submitted: {first['job']} "
              f"(source={first['source']}, {first['points']} points)")
        assert first["source"] == "queued", first

        while time.monotonic() < deadline:
            st = _request(f"{base}/jobs/{first['job']}")
            if st["status"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.3)
        assert st["status"] == "done", f"job did not finish: {st}"

        rows = _request(f"{base}/results/{first['job']}")
        assert len(rows) == first["points"], (len(rows), first)
        print(f"[smoke] results: {len(rows)} rows")

        second = _request(f"{base}/sweep", body)
        assert second["source"] == "cached", second
        assert second["status"] == "done", second
        print(f"[smoke] warm re-request served from cache: "
              f"{second['job']}")

        metrics = _request(f"{base}/metrics")
        counters = metrics["metrics"]["counters"]
        assert metrics["schema_version"] == 1, metrics
        assert counters.get("serve.request") == 2, counters
        assert counters.get("serve.cache_hit") == 1, counters
        assert counters.get("cache.write"), counters
        assert metrics["executions"] == 1, metrics
        print(f"[smoke] /metrics: {len(counters)} counters, "
              f"{len(metrics['metrics']['histograms'])} histograms")
    except BaseException:
        proc.send_signal(signal.SIGINT)
        proc.wait(30)
        raise
    proc.send_signal(signal.SIGINT)
    code = proc.wait(60)
    assert code == 0, f"SIGINT shutdown exited {code}, want 0"
    print("[smoke] clean SIGINT shutdown (exit 0) — OK")


if __name__ == "__main__":
    main()
