"""Regenerates Figure 2 (scaled): cache counters of matmul orders.

Runs through the ``repro.lab`` sweep engine (one scenario point per
variant x middle-dimension, cache disabled so the timing is honest) and
reassembles the engine's records into the serial harness's row structure.
Shape assertions encode the paper's panel-by-panel story:
2a (CO) and 2b (MKL) victims.M grow with the middle dimension; 2c–2f
(two-level WA) stay near the write floor, degrading gracefully as the
blocking approaches the 3-blocks-exactly limit.
"""

from repro.experiments import Fig2Config, format_fig2
from repro.lab.executor import execute
from repro.lab.scenarios import fig2_rows, fig2_scenario


def small_cfg():
    return Fig2Config(
        n_outer=96,
        middles=(8, 32, 128, 256),
        line_size=4,
        b2=8,
        base=4,
    )


def run_via_lab(cfg):
    scenario = fig2_scenario(cfg=cfg)
    report = execute(scenario.points(), jobs=1, cache=None)
    return fig2_rows(scenario, report.results)


def test_fig2(benchmark):
    cfg = small_cfg()
    results = benchmark.pedantic(run_via_lab, args=(cfg,),
                                 rounds=1, iterations=1)
    print("\n" + format_fig2(results))

    floor = cfg.n_outer**2 // cfg.line_size
    co, mkl = results[0], results[1]
    was = results[2:]
    # 2a: CO write-backs grow ~linearly with the middle dimension.
    assert co["VICTIMS.M"][-1] > 4 * co["VICTIMS.M"][0]
    assert co["VICTIMS.M"][-1] > 4 * floor
    # 2b: MKL-like is at least as bad as CO at large middle dims.
    assert mkl["VICTIMS.M"][-1] >= co["VICTIMS.M"][-1]
    # 2c–2f: every WA blocking beats CO by a wide margin at the largest
    # middle dimension; smaller blockings hug the floor tighter.
    for rows in was:
        assert rows["VICTIMS.M"][-1] < co["VICTIMS.M"][-1] / 2
    assert was[0]["VICTIMS.M"][-1] <= was[-1]["VICTIMS.M"][-1]
    # The smallest blocking pays for it with more E-state fills (the
    # Section-6.2 trade-off).
    assert was[0]["FILLS.E"][-1] >= was[-1]["FILLS.E"][-1]
