"""Benchmarks for the vectorized cost-grid batches: pointwise vs batched.

The Section-7 cost models are pure closed-form arithmetic, so a
10^4-point provisioning grid evaluated point by point pays mostly
per-point plumbing (machine resolution, HwParams validation, Term
construction, record assembly) — and, with worker processes, payload
pickling on top.  The batch-kernel protocol evaluates the whole grid
as one numpy pass per family instead.  Cases:

* **end-to-end** — the acceptance number: a 10^4-point
  ``cost-25d-mm-l3-ool2`` grid through the lab executor, pointwise
  in-process replay (``batch=False``, the cheapest pointwise path)
  against one vectorized batch, both cold (no result cache).  Records
  are asserted bit-identical.
* **mixed feasibility** — the same grid deliberately run past the
  ``c3 <= P^(1/3)`` edges (~1/3 infeasible): infeasible points fall
  back to the scalar kernel for exact ``reason`` strings, so this
  documents what masking costs.
* **table family** — ``cost-table1`` cells, where the batch evaluator
  memoizes the scalar row list per unique size tuple instead of
  vectorizing the 15-row table formulas.
* **fan-out footnote** — the pointwise grid at ``jobs=4``: per-point
  multiprocessing fan-out is *slower* than in-process evaluation for
  ~50µs kernels, which is exactly the overhead batching removes.

Full-size runs refresh ``BENCH_costgrid.json`` at the repo root (the
committed perf snapshot).  ``REPRO_BENCH_QUICK=1`` shrinks the geometry
for CI and leaves the snapshot untouched.
"""

import json
import os
from pathlib import Path

from repro.lab.executor import execute
from repro.lab.registry import MACHINES
from repro.lab.scenarios import Scenario

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
SNAPSHOT = Path(__file__).resolve().parent.parent / "BENCH_costgrid.json"

if QUICK:
    N_AXIS = sorted(set(512 * k for k in range(1, 11)))     # 10
    P_AXIS = [1024 * k for k in range(1, 11)]               # 10
    C3_AXIS = list(range(1, 11))                            # 10 -> 1000
else:
    N_AXIS = sorted(set(256 * k for k in range(1, 26)))     # 25
    P_AXIS = [1024 * k for k in range(1, 41)]               # 40
    C3_AXIS = list(range(1, 11))                            # 10 -> 10000


def grid_points(c3_axis=None):
    return Scenario(
        name="bench-costgrid",
        kernel="cost-25d-mm-l3-ool2",
        machine=MACHINES["hw-2015"],
        grid={"n": N_AXIS, "P": P_AXIS,
              "c3": list(c3_axis or C3_AXIS)},
    ).points()


def table_points():
    n_axis = N_AXIS[:10] if QUICK else N_AXIS[:20]
    return Scenario(
        name="bench-costtable",
        kernel="cost-table1",
        machine=MACHINES["hw-2015"],
        fixed={"P": 1 << 20, "c2": 4},
        grid={"n": n_axis, "c3": [16, 32, 64],
              "row": list(range(15)),
              "algorithm": ["2DMML2", "2.5DMML2", "2.5DMML3"]},
    ).points()


def record_snapshot(**numbers):
    if QUICK:
        return  # never clobber the committed full-size numbers
    doc = {}
    if SNAPSHOT.exists():
        try:
            doc = json.loads(SNAPSHOT.read_text())
        except ValueError:
            doc = {}
    doc.setdefault("config", {}).update({
        "kernel": "cost-25d-mm-l3-ool2",
        "n_axis": N_AXIS, "P_axis": P_AXIS, "c3_axis": C3_AXIS,
        "points": len(N_AXIS) * len(P_AXIS) * len(C3_AXIS),
        "quick": QUICK,
    })
    doc.update(numbers)
    SNAPSHOT.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _best_elapsed(points, rounds=3, **kw):
    """Cold-execute *points* a few times, keep the fastest wall time
    (first calls pay numpy warm-up, which is not what a long-lived
    sweep service sees)."""
    report = None
    best = None
    for _ in range(rounds):
        report = execute(points, cache=None, **kw)
        best = report.elapsed if best is None else min(best,
                                                       report.elapsed)
    return best, report


def test_cost_grid_end_to_end(benchmark):
    """The acceptance number: a 10^4-point all-feasible cost grid,
    pointwise in-process vs one vectorized batch."""
    points = grid_points()
    pointwise_s, pointwise = _best_elapsed(points, batch=False)
    batched_s, batched = _best_elapsed(points, batch=True)
    benchmark.pedantic(
        lambda: execute(points, cache=None, batch=True),
        rounds=1, iterations=1)
    assert batched.batches == 1
    assert batched.records() == pointwise.records()  # bit-identical
    speedup = pointwise_s / batched_s
    print(f"\n[bench_costgrid] {len(points)}-point cost grid: pointwise "
          f"{pointwise_s:.3f}s, batched {batched_s:.3f}s "
          f"-> {speedup:.1f}x")
    record_snapshot(end_to_end={
        "points": len(points),
        "pointwise_s": round(pointwise_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(speedup, 2),
    })
    # Regression tripwire (the committed snapshot records the full-size
    # number, >= 10x; keep slack here for noisy CI runners).
    assert speedup >= 4.0


def test_cost_grid_mixed_feasibility(benchmark):
    """The same grid walked past the c3 <= P^(1/3) feasibility edge:
    infeasible points take the per-point scalar fallback inside the
    batch, trimming but not erasing the win."""
    points = grid_points(c3_axis=list(range(1, 11))
                         + [64, 128, 256, 512, 1024])
    pointwise_s, pointwise = _best_elapsed(points, batch=False)
    batched_s, batched = _best_elapsed(points, batch=True)
    benchmark.pedantic(
        lambda: execute(points, cache=None, batch=True),
        rounds=1, iterations=1)
    assert batched.batches == 1
    assert batched.records() == pointwise.records()
    infeasible = sum(1 for r in batched.records() if not r["feasible"])
    speedup = pointwise_s / batched_s
    print(f"\n[bench_costgrid] {len(points)}-point mixed grid "
          f"({infeasible} infeasible): pointwise {pointwise_s:.3f}s, "
          f"batched {batched_s:.3f}s -> {speedup:.1f}x")
    record_snapshot(mixed_feasibility={
        "points": len(points),
        "infeasible_points": infeasible,
        "pointwise_s": round(pointwise_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 2.0


def test_cost_table_end_to_end(benchmark):
    """The memoized table family: cost-table1 cells share one scalar
    row evaluation per unique (n, P, c2, c3) tuple."""
    points = table_points()
    pointwise_s, pointwise = _best_elapsed(points, batch=False)
    batched_s, batched = _best_elapsed(points, batch=True)
    benchmark.pedantic(
        lambda: execute(points, cache=None, batch=True),
        rounds=1, iterations=1)
    assert batched.batches == 1
    assert batched.records() == pointwise.records()
    speedup = pointwise_s / batched_s
    print(f"\n[bench_costgrid] {len(points)}-cell table grid: pointwise "
          f"{pointwise_s:.3f}s, batched {batched_s:.3f}s "
          f"-> {speedup:.1f}x")
    record_snapshot(table_cells={
        "points": len(points),
        "pointwise_s": round(pointwise_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 1.5


def test_fanout_footnote(benchmark):
    """Pointwise with worker processes — the pre-batching way to
    'speed up' a big grid — is slower than in-process evaluation for
    ~50µs analytic kernels: payload pickling dominates.  Documents the
    overhead the ROADMAP's follow-on called out."""
    points = grid_points()
    fanout_s, fanout = _best_elapsed(points, rounds=1, batch=False,
                                     jobs=4)
    batched_s, batched = _best_elapsed(points, batch=True)
    benchmark.pedantic(
        lambda: execute(points, cache=None, batch=True),
        rounds=1, iterations=1)
    assert batched.records() == fanout.records()
    speedup = fanout_s / batched_s
    print(f"\n[bench_costgrid] {len(points)}-point grid, pointwise "
          f"jobs=4 {fanout_s:.3f}s vs batched {batched_s:.3f}s "
          f"-> {speedup:.1f}x")
    record_snapshot(fanout_footnote={
        "points": len(points),
        "pointwise_jobs4_s": round(fanout_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(speedup, 2),
    })
    assert speedup >= 4.0
