"""Regenerates the Section-7.2 LU trade-off (LL-LUNP vs RL-LUNP)."""

from repro.experiments import format_lu, run_lu


def test_lu(benchmark):
    result = benchmark.pedantic(run_lu, kwargs=dict(n=32, b=4, P=4),
                                rounds=1, iterations=1)
    print("\n" + format_lu(result))

    assert result["ll_correct"] and result["rl_correct"]
    meas = result["measured"]
    # Measured: LL writes less NVM; RL communicates less.
    assert (meas["LL-LUNP"]["nvm_writes"] < meas["RL-LUNP"]["nvm_writes"])
    assert (meas["RL-LUNP"]["network"] < meas["LL-LUNP"]["network"])
    # Model (formulas 23–26): same ordering at scale.
    mod = result["model"]
    assert (mod["LL-LUNP"]["beta_23_words"]
            < mod["RL-LUNP"]["beta_23_words"])
    assert (mod["RL-LUNP"]["beta_nw_words"]
            < mod["LL-LUNP"]["beta_nw_words"])
