"""Regenerates the Section-4 kernel traffic table (Algorithms 1–4)."""

from repro.experiments import format_sec4, run_sec4


def test_sec4(benchmark):
    rows = benchmark.pedantic(run_sec4, kwargs=dict(n=32, b=4),
                              rounds=1, iterations=1)
    print("\n" + format_sec4(rows))

    by_variant = {(r["kernel"], r["variant"]): r for r in rows}

    # k-innermost matmul orders are WA (writes == output); others are not.
    for order in ("ijk", "jik"):
        r = by_variant[("matmul (Alg.1)", f"loop order {order} [k inner]")]
        assert r["writes_to_slow"] == r["output_size"]
    for order in ("ikj", "kij", "jki", "kji"):
        r = by_variant[("matmul (Alg.1)", f"loop order {order}")]
        assert r["writes_to_slow"] > 2 * r["output_size"]

    # Left-looking TRSM/Cholesky WA; right-looking not.
    assert by_variant[("TRSM (Alg.2)", "left-looking")]["wa"]
    assert not by_variant[("TRSM (Alg.2)", "right-looking")]["wa"]
    assert by_variant[("Cholesky (Alg.3)", "left-looking")]["wa"]
    assert not by_variant[("Cholesky (Alg.3)", "right-looking")]["wa"]

    # N-body: blocked WA; force-symmetry not; (N,3)-body WA.
    assert by_variant[("(N,2)-body (Alg.4)", "blocked")]["wa"]
    assert not by_variant[("(N,2)-body (Alg.4)", "force symmetry")]["wa"]
    assert by_variant[("(N,3)-body", "blocked")]["wa"]

    # Theorem 1 holds for every single row.
    assert all(r["theorem1"] for r in rows)
