"""Regenerates Table 1: Model-2.1 parallel matmul cost rows.

Asserts the paper's reading of the table: L2→L1 costs identical across
algorithms; interprocessor β words improve with replication; the dominant
β-cost ratio decides 2.5DMML2 vs 2.5DMML3 as a function of the NVM write
penalty.
"""

from repro.distributed import HwParams
from repro.distributed.costmodel import dom_beta_cost_model21
from repro.experiments import format_table1, run_table1


def test_table1(benchmark):
    result = benchmark.pedantic(
        run_table1,
        kwargs=dict(n=1 << 14, P=1 << 20, c2=4, c3=16),
        rounds=1, iterations=1,
    )
    print("\n" + format_table1(result))

    rows = result["rows"]
    # L2->L1 rows identical across all three algorithms.
    for r in rows[:2]:
        assert r["2DMML2"] == r["2.5DMML2"] == r["2.5DMML3"]
    # Interprocessor words: monotone improvement with replication.
    bnw = [r for r in rows if r["param"] == "βNW"][0]
    assert bnw["2DMML2"] > bnw["2.5DMML2"] > bnw["2.5DMML3"]
    # NA pattern: 2DMML2 and 2.5DMML2 never touch NVM.
    for r in rows:
        if r["movement"] in ("L3->L2", "L2->L3"):
            assert r["2DMML2"] is None and r["2.5DMML2"] is None
    # The simulated run agrees with the model's leading network term.
    v = result["validation"]
    assert v["numerically_correct"]
    assert 0.5 < v["within_factor"] < 4.0

    # Crossover behaviour: expensive NVM writes flip the winner.
    cheap = dom_beta_cost_model21(1 << 14, 1 << 20, 4, 16,
                                  HwParams(beta_23=0.1, beta_32=0.1))
    dear = dom_beta_cost_model21(1 << 14, 1 << 20, 4, 16,
                                 HwParams(beta_23=100.0))
    assert cheap["winner"] == "2.5DMML3"
    assert dear["winner"] == "2.5DMML2"
