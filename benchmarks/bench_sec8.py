"""Regenerates the Section-8 KSM study: streaming CA-CG writes ~ Θ(1/s)."""

from repro.experiments import format_sec8, run_sec8


def test_sec8(benchmark):
    result = benchmark.pedantic(
        run_sec8, kwargs=dict(mesh=256, s_values=(2, 4, 8), block=64),
        rounds=1, iterations=1,
    )
    print("\n" + format_sec8(result))

    rows = result["rows"]
    cg_row = rows[0]
    stream = {r["s"]: r for r in rows if r["method"] == "CA-CG streaming"}
    plain = {r["s"]: r for r in rows if r["method"] == "CA-CG"}

    # All converge.
    assert all(r["converged"] for r in rows)
    # Streaming write rate decreases with s and beats CG by ≥2x at s=8.
    assert (stream[2]["writes_per_step"] > stream[4]["writes_per_step"]
            > stream[8]["writes_per_step"])
    assert stream[8]["writes_per_step"] < cg_row["writes_per_step"] / 2
    # Plain CA-CG does NOT get the Θ(s) write reduction.
    assert plain[8]["writes_per_step"] > 2 * stream[8]["writes_per_step"]
    # The cost side: streaming pays ≤ ~2x flops over plain CA-CG.
    for s in (2, 4, 8):
        assert stream[s]["flops"] <= 2.1 * plain[s]["flops"]
