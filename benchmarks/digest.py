"""Render run traces into a markdown regression digest.

Usage::

    python benchmarks/digest.py RUN.jsonl [RUN2.jsonl ...] \
        [--out DIGEST.md] [--min-batch-coverage 1.0]

Each input is a ``--trace`` JSONL file from ``repro-lab run/sweep``;
the digest is one markdown section per trace — points by execution
path, batch efficiency, cache hit rate with miss reasons, fastsim
phase timings, queue-vs-compute — the committed report CI attaches to
its nightly-style bench job, and the thing to diff across commits when
a perf claim changes.

``--min-batch-coverage`` turns the digest into a regression gate: if
the share of *batchable* points (points whose kernel had a registered
batch path at plan time) that actually executed through a batched task
drops below the threshold in any trace, the exit code is 1.  The CI
presets are constructed so coverage is exactly 1.0 — any dip means the
planner stopped collapsing a group it used to collapse.

``--min-completed`` is the chaos job's recovery gate: the share of
points that produced a real record (``failed``-path points are the
only non-completions).  A seeded fault plan whose ``times`` is within
the retry budget must recover every point, so CI runs the chaos
presets with ``--min-completed 1.0``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Sequence

if __package__ in (None, ""):  # script usage without an installed repro
    _src = Path(__file__).resolve().parent.parent / "src"
    if _src.is_dir() and str(_src) not in sys.path:
        sys.path.insert(0, str(_src))

from repro.lab.telemetry import RunTrace, summarize  # noqa: E402


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]
              ) -> List[str]:
    out = ["| " + " | ".join(str(h) for h in headers) + " |",
           "| " + " | ".join("---" for _ in headers) + " |"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return out


def _pct(x: float) -> str:
    return f"{x:.1%}"


def _completed_share(s: Dict[str, Any]) -> float:
    """Fraction of a trace's points that produced a real record (the
    chaos job's recovery floor — ``failed`` path points are the only
    non-completions; retried-then-recovered points count as complete)."""
    if not s["points"]:
        return 1.0
    return 1.0 - s["paths"].get("failed", 0) / s["points"]


def digest_section(path: Path, s: Dict[str, Any]) -> List[str]:
    """One trace's markdown section, from its :func:`summarize` dict."""
    label = s["meta"].get("scenario") or s["meta"].get("kernel") or path.stem
    lines = [f"## {label} (`{path.name}`)", ""]
    jobs = f", jobs={s['jobs']}" if s["jobs"] is not None else ""
    lines.append(f"{s['points']} point(s) in {s['elapsed']:.2f}s{jobs}; "
                 f"queue {s['queue_s']:.3f}s / compute "
                 f"{s['compute_s']:.3f}s.")
    lines.append("")
    lines += _md_table(
        ["path", "points", "share"],
        [[p, n, _pct(n / s["points"]) if s["points"] else "-"]
         for p, n in sorted(s["paths"].items(), key=lambda kv: -kv[1])])
    lines.append("")
    if s["batchable_points"]:
        eff = (s["batched_points"] / s["batches"]) if s["batches"] else 0.0
        lines.append(f"Batching: {s['batched_points']} point(s) in "
                     f"{s['batches']} batch(es) ({eff:.1f} points/batch); "
                     f"**batch-path coverage "
                     f"{_pct(s['batch_coverage'])}** of "
                     f"{s['batchable_points']} batchable point(s).")
        lines.append("")
    c = s["cache"]
    if c["hits"] or c["misses"]:
        rate = _pct(c["hit_rate"]) if c["hit_rate"] is not None else "-"
        reasons = ", ".join(f"{k}: {int(v)}"
                            for k, v in sorted(c["miss_reasons"].items()))
        lines.append(f"Result cache: {int(c['hits'])} hit(s) / "
                     f"{int(c['misses'])} miss(es) ({rate} hit rate), "
                     f"{int(c['writes'])} write(s)"
                     + (f"; miss reasons — {reasons}." if reasons else "."))
        lines.append("")
    ts = s["tracestore"]
    if ts["reuses"] or ts["misses"]:
        lines.append(f"Trace store: {int(ts['reuses'])} mmap reuse(s), "
                     f"{int(ts['misses'])} build(s).")
        lines.append("")
    f = s["faults"]
    if f["retries"] or f["timeouts"] or f["respawns"] or f["failed_points"]:
        reasons = ", ".join(f"{k}: {int(v)}" for k, v in
                            sorted(f["retry_reasons"].items()))
        lines.append(f"Fault tolerance: {int(f['retries'])} task "
                     f"retr{'y' if f['retries'] == 1 else 'ies'}"
                     + (f" ({reasons})" if reasons else "")
                     + f", {int(f['timeouts'])} timeout kill(s), "
                     f"{int(f['respawns'])} worker respawn(s), "
                     f"**{int(f['failed_points'])} failed point(s)** of "
                     f"{s['points']} ({_pct(_completed_share(s))} "
                     f"completed).")
        lines.append("")
    if s["phases"]:
        lines += _md_table(
            ["phase", "calls", "seconds"],
            [[name, int(p["calls"]), f"{p['seconds']:.4f}"]
             for name, p in sorted(s["phases"].items(),
                                   key=lambda kv: -kv[1]["seconds"])])
        lines.append("")
    return lines


def main(argv: Sequence[str] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+", metavar="TRACE.jsonl",
                    help="run-trace JSONL files (repro-lab ... --trace)")
    ap.add_argument("--out", default=None, metavar="FILE",
                    help="write the markdown digest here "
                         "(default: stdout)")
    ap.add_argument("--min-batch-coverage", type=float, default=None,
                    metavar="FRACTION",
                    help="fail (exit 1) if any trace's batch-path "
                         "coverage of batchable points is below this")
    ap.add_argument("--min-completed", type=float, default=None,
                    metavar="FRACTION",
                    help="fail (exit 1) if any trace completed fewer "
                         "than this share of its points (failed-path "
                         "points count against it) — the chaos job's "
                         "recovery floor")
    args = ap.parse_args(argv)

    lines: List[str] = ["# Sweep telemetry digest", ""]
    failures: List[str] = []
    for raw in args.traces:
        path = Path(raw)
        s = summarize(RunTrace.load(path))
        lines += digest_section(path, s)
        if (args.min_batch_coverage is not None and s["batchable_points"]
                and s["batch_coverage"] < args.min_batch_coverage):
            failures.append(
                f"{path.name}: batch-path coverage "
                f"{_pct(s['batch_coverage'])} < required "
                f"{_pct(args.min_batch_coverage)}")
        if (args.min_completed is not None
                and _completed_share(s) < args.min_completed):
            failures.append(
                f"{path.name}: completed-point share "
                f"{_pct(_completed_share(s))} < required "
                f"{_pct(args.min_completed)} "
                f"({s['paths'].get('failed', 0)} failed point(s))")
    if failures:
        lines.append("## Regression gate: FAILED")
        lines.append("")
        lines += [f"- {f}" for f in failures]
        lines.append("")
    text = "\n".join(lines)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"[digest] wrote {args.out}")
    else:
        print(text)
    for failure in failures:
        print(f"[digest] FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) hung up; exit quietly and
        # detach stdout so the shutdown flush doesn't raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
