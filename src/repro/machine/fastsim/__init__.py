"""Vectorized trace-simulation kernels (single-pass, multi-capacity).

The per-access loops in :mod:`repro.machine.cache` replay a trace once
per cache capacity; every figure and table in the paper, however, is a
*grid* over capacities and policies.  This package computes exact
fully-associative LRU counters for **all capacities in one pass** from
the trace's Mattson stack-distance profile — including the write-aware
bookkeeping (`LLC_VICTIMS.M`, flush write-backs) the paper's Section-6
measurements revolve around — plus the vectorized next-use preprocessor
for the offline Belady simulation.

Entry points:

* :func:`simulate_lru_sweep` — counters for a whole capacity grid from
  one replay (the engine behind the lab's multi-capacity sweep axis);
* :func:`simulate_lru` — the same kernel for a single capacity;
* :func:`simulate_opt_sweep` / :func:`simulate_opt` — the offline
  Belady/MIN analogue: one replay, exact counters for every capacity
  (OPT is a stack algorithm too — see :mod:`repro.machine.fastsim.opt`);
* :func:`symbolize` / :func:`fold_lru_symbols` / :func:`fold_opt_symbols`
  and the trace-level dispatchers :func:`simulate_lru_sweep_trace` /
  :func:`simulate_opt_sweep_trace` — the super-symbol pipeline: tile
  visits compress to one symbol each and both stack passes run at visit
  granularity (:mod:`repro.machine.fastsim.symbols`);
* :func:`stream_lru_sweep` / :func:`stream_lru_sweep_trace` — the
  windowed LRU pass for traces too large to materialize
  (:mod:`repro.machine.fastsim.streaming`);
* :func:`stack_distances` / :func:`count_earlier_greater` — the exact
  reuse-distance machinery, reusable for other policies built on it;
* :func:`belady_next_use` — vectorized Belady preprocessing;
* :func:`set_phase_hook` / :func:`phase` — the profiling-hook protocol
  (:mod:`repro.machine.fastsim.profile`): the lab's run tracer installs
  a hook to capture per-phase timings (``trace_build`` /
  ``supersymbol_fold`` / ``distance_pass`` / ``radix_partition`` /
  ``capacity_fold`` / ``stream_window`` / ``next_use`` /
  ``opt_replay``); without one every phase site is a shared no-op.

Everything here is exact: parity with :class:`CacheSim` is enforced
bit-for-bit by the test suite (``tests/test_fastsim.py``).
"""

from repro.machine.fastsim.belady import belady_next_use
from repro.machine.fastsim.distances import (
    count_earlier_greater,
    next_occurrences,
    prev_occurrences,
    stack_distances,
)
from repro.machine.fastsim.lru import (
    LRUSweepResult,
    simulate_lru,
    simulate_lru_sweep,
)
from repro.machine.fastsim.opt import (
    OPTSweepResult,
    simulate_opt,
    simulate_opt_sweep,
)
from repro.machine.fastsim.profile import phase, phase_hook, set_phase_hook
from repro.machine.fastsim.streaming import (
    stream_lru_sweep,
    stream_lru_sweep_trace,
)
from repro.machine.fastsim.symbols import (
    SymbolTrace,
    fold_lru_symbols,
    fold_opt_symbols,
    simulate_lru_sweep_trace,
    simulate_opt_sweep_trace,
    symbolize,
)

__all__ = [
    "belady_next_use",
    "count_earlier_greater",
    "next_occurrences",
    "prev_occurrences",
    "stack_distances",
    "LRUSweepResult",
    "simulate_lru",
    "simulate_lru_sweep",
    "OPTSweepResult",
    "simulate_opt",
    "simulate_opt_sweep",
    "SymbolTrace",
    "symbolize",
    "fold_lru_symbols",
    "fold_opt_symbols",
    "simulate_lru_sweep_trace",
    "simulate_opt_sweep_trace",
    "stream_lru_sweep",
    "stream_lru_sweep_trace",
    "phase",
    "phase_hook",
    "set_phase_hook",
]
