"""Lightweight profiling hooks for the fastsim hot paths.

fastsim sits below the lab engine and must not import it, so phase
timings flow through a tiny module-global hook: the executor installs a
callable ``hook(name, seconds)`` while a run trace is active, and each
instrumented section wraps itself in :func:`phase`.  When no hook is
installed :func:`phase` returns a shared no-op context manager — the
cost of instrumentation is one ``is None`` check, which is what lets
the simulators stay bit-identical and effectively free when untraced.

Phases emitted by the simulators:

``trace_build``
    materializing a kernel's line trace (registry / TraceStore builds)
``radix_partition``
    the MSB radix partition passes inside ``count_earlier_greater``
``distance_pass``
    the full reuse-distance profile (``reuse_profile``)
``capacity_fold``
    folding stack distances into per-capacity hit/miss counts
``next_use``
    Belady next-occurrence preprocessing (``next_occurrences``)
``opt_replay``
    the OPT stack-inclusion replay loop
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["set_phase_hook", "phase_hook", "phase"]

PhaseHook = Callable[[str, float], None]

_hook: Optional[PhaseHook] = None


def set_phase_hook(hook: Optional[PhaseHook]) -> Optional[PhaseHook]:
    """Install *hook* (or ``None`` to disable); returns the previous
    hook so callers can restore it."""
    global _hook
    previous = _hook
    _hook = hook
    return previous


def phase_hook() -> Optional[PhaseHook]:
    return _hook


class _NullPhase:
    """Shared do-nothing context manager for the untraced fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> None:
        return None


class _TimedPhase:
    __slots__ = ("name", "hook", "t0")

    def __init__(self, name: str, hook: PhaseHook):
        self.name = name
        self.hook = hook

    def __enter__(self) -> "_TimedPhase":
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.hook(self.name, time.perf_counter() - self.t0)
        return None


_NULL = _NullPhase()


def phase(name: str):
    """``with phase("radix_partition"):`` around a hot section.  Free
    (a shared no-op) unless a hook is installed."""
    hook = _hook
    if hook is None:
        return _NULL
    return _TimedPhase(name, hook)
