"""Streaming multi-capacity LRU: bounded windows over huge traces.

:func:`stream_lru_sweep` replays the capacity fold of
:func:`repro.machine.fastsim.lru.simulate_lru_sweep` over a sequence of
bounded event windows, so a 10^8+-event trace (e.g. an mmap'd
:class:`~repro.machine.trace.Trace` spilled by ``TraceBuffer.finalize``
or served by the content-addressed ``TraceStore``) is swept with peak
memory proportional to the window size plus the distinct-line count —
the flat event arrays are only ever *read* window by window and never
materialize as in-RAM temporaries.

Why windows suffice for an exact Mattson pass:

* an access whose previous occurrence falls **inside** the window has
  all of its stack-distance inversions inside the window too (any
  intervening repeat's previous occurrence is even later), so
  window-local reuse profiles are exact for in-window warm accesses;
* an access ``t`` of a line last seen **before** the window (a
  *boundary* access) has distance ``depth0(x) + u(t) - c(t)``:
  ``depth0(x)`` is the line's LRU stack depth at the window start
  (lines above it then), ``u(t)`` counts first-in-window events before
  ``t`` (each introduces one candidate distinct line), and
  ``c(t)`` removes the double-counted boundary lines that were already
  above ``x`` — with distinct per-line depths that is
  ``(index of t in the boundary subsequence) - #{earlier boundary
  events with greater depth}``, another
  :func:`~repro.machine.fastsim.distances.count_earlier_greater`;
* the per-line dirty state threads through a small **carry**: for every
  line its last access position, has-write flag and dirty threshold
  ``M``.  The ``M`` recurrence (``0`` at a write, else
  ``max(M_prev, D)``) continues across windows by injecting
  ``max(M_carry, D)`` as the first window access's segment value.

The counters, the end-of-trace stack arrays and the resulting
:class:`~repro.machine.fastsim.lru.LRUSweepResult` are bit-identical to
the in-memory sweep for *every* window split — including windows that
split a tile chunk — which the hypothesis suite asserts.
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, Sequence, Tuple, Union

import numpy as np

from repro.machine.fastsim.distances import (count_earlier_greater,
                                             reuse_profile)
from repro.machine.fastsim.lru import LRUSweepResult
from repro.machine.fastsim.profile import phase
from repro.machine.trace import Trace

__all__ = [
    "WINDOW_ENV",
    "default_window_events",
    "iter_windows",
    "stream_lru_sweep",
    "stream_lru_sweep_trace",
]

#: env knob: events per streaming window (memory/speed trade-off).
WINDOW_ENV = "REPRO_STREAM_WINDOW_EVENTS"
_DEFAULT_WINDOW_EVENTS = 1 << 22


def default_window_events() -> int:
    """Streaming window size in events (``$REPRO_STREAM_WINDOW_EVENTS``)."""
    try:
        w = int(os.environ.get(WINDOW_ENV, _DEFAULT_WINDOW_EVENTS))
    except ValueError:
        return _DEFAULT_WINDOW_EVENTS
    return max(w, 1)


def iter_windows(trace: Trace, window_events: int
                 ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Views of a trace's event arrays, ``window_events`` at a time."""
    n = trace.n_events
    for a in range(0, n, window_events):
        b = min(a + window_events, n)
        yield trace.lines[a:b], trace.writes[a:b]


def stream_lru_sweep(
    windows: Iterable[Tuple[np.ndarray, np.ndarray]],
    capacities: Union[Sequence[int], np.ndarray],
) -> LRUSweepResult:
    """Exact multi-capacity LRU counters from an event-window stream.

    ``windows`` yields ``(lines, writes)`` array pairs in trace order
    (any split, including mid-chunk).  Returns the same
    :class:`LRUSweepResult` as ``simulate_lru_sweep`` over the
    concatenated trace, while only ever holding one window plus the
    per-line carry in memory.
    """
    caps = np.unique(np.asarray(capacities, dtype=np.int64))
    if len(caps) == 0:
        raise ValueError("need at least one capacity")
    if caps[0] < 1:
        raise ValueError(f"capacities must be >= 1 line, got {caps[0]}")
    K = len(caps)
    # Anything above the largest capacity folds to index K, so this is
    # ub-equivalent to the in-memory pass's max(cap, n) + 1 sentinel
    # while keeping window-local values small for the radix pass.
    big = np.int64(int(caps[-1]) + 1)

    def ub(x):  # number of capacities <= x: index bound for "C <= x"
        return np.searchsorted(caps, x, side="right").astype(np.int64)

    acc = {name: np.zeros(K + 1, dtype=np.int64)
           for name in ("victims_m", "victims_e",
                        "flush_writebacks", "flush_victims_e")}

    def add_ranges(name, lo, hi):
        acc[name] += (np.bincount(lo, minlength=K + 1)
                      - np.bincount(hi, minlength=K + 1))[:K + 1]

    mdiff = np.zeros(K + 1, dtype=np.int64)
    n_total = 0
    # Per-line carry, parallel arrays sorted by line id.
    known = np.empty(0, dtype=np.int64)
    k_last = np.empty(0, dtype=np.int64)
    k_hw = np.empty(0, dtype=bool)
    k_m = np.empty(0, dtype=np.int64)

    for lines_w, writes_w in windows:
        W = len(lines_w)
        if W == 0:
            continue
        lines_w = np.ascontiguousarray(lines_w, dtype=np.int64)
        writes_w = np.ascontiguousarray(writes_w, dtype=bool)
        # Window-local reuse profile: exact for in-window warm events.
        order, sorted_lines, first, prev, dist = reuse_profile(lines_w)

        with phase("stream_window"):
            # ---- boundary accesses: lines carried from past windows --- #
            fw_slots = np.flatnonzero(first)     # grouped first-in-window
            fw_times = order[fw_slots]
            fw_lines = sorted_lines[fw_slots]
            if len(known):
                pos_c = np.minimum(np.searchsorted(known, fw_lines),
                                   len(known) - 1)
                is_known = known[pos_c] == fw_lines
                kpos = pos_c[is_known]
            else:
                is_known = np.zeros(len(fw_lines), dtype=bool)
                kpos = np.empty(0, dtype=np.int64)
            b_slots = fw_slots[is_known]

            dist_raw = dist
            if len(b_slots):
                # Stack depth of each carried line at the window start.
                rank = np.empty(len(known), dtype=np.int64)
                rank[np.argsort(-k_last)] = np.arange(len(known),
                                                      dtype=np.int64)
                bt = order[b_slots]
                ord_b = np.argsort(bt)
                bt_s = bt[ord_b]
                d0 = rank[kpos][ord_b]
                ft = np.zeros(W, dtype=np.int64)
                ft[fw_times] = 1
                u = np.cumsum(ft)
                idx = np.arange(len(bt_s), dtype=np.int64)
                d_b = (u[bt_s] - 1 + d0 - idx
                       + count_earlier_greater(d0))
                dist_raw = dist.copy()
                dist_raw[bt_s] = d_b

            dist_c = np.where(prev >= 0, dist_raw, big)
            if len(b_slots):
                dist_c[bt_s] = np.minimum(dist_raw[bt_s], big)

            mdiff -= np.bincount(ub(dist_c), minlength=K + 1)
            n_total += W

            # ---- grouped write state with carry injection ------------- #
            dist_g = dist_c[order]
            w_g = writes_w[order]
            w_int = w_g.astype(np.int64)
            g_starts = fw_slots
            gid = np.cumsum(first) - 1
            cum_w_excl = np.cumsum(w_int) - w_int
            win_writes = (np.cumsum(w_int) - cum_w_excl[g_starts][gid]) > 0
            g_hw0 = np.zeros(len(g_starts), dtype=bool)
            g_hw0[gid[b_slots]] = k_hw[kpos]
            has_write = win_writes | g_hw0[gid]

            seg_val = np.where(w_g | first, 0, dist_raw[order])
            if len(b_slots):
                inject = ~w_g[b_slots]
                bs = b_slots[inject]
                seg_val[bs] = np.maximum(k_m[kpos][inject],
                                         dist_raw[order[bs]])
            seg_id = np.cumsum((w_g | first).astype(np.int64))
            seg_big = np.int64(int(seg_val.max()) + 3 if W else 3)
            m_state = (np.maximum.accumulate(seg_val + seg_id * seg_big)
                       - seg_id * seg_big)

            # ---- in-trace evictions --------------------------------- #
            # In-window reuse gaps read the previous slot's state; the
            # boundary gaps read the carry.
            gaps = np.flatnonzero(~first)
            if len(gaps):
                ub_d = ub(dist_g[gaps])
                hw_p = has_write[gaps - 1]
                m_p = m_state[gaps - 1]
                dirty_lo = np.where(hw_p, np.minimum(ub(m_p), ub_d), ub_d)
                add_ranges("victims_m", dirty_lo, ub_d)
                clean_hi = np.where(hw_p,
                                    ub(np.minimum(m_p, dist_g[gaps])), ub_d)
                add_ranges("victims_e",
                           np.zeros(len(gaps), dtype=np.int64), clean_hi)
            if len(b_slots):
                d = dist_g[b_slots]
                ub_d = ub(d)
                hw_p = k_hw[kpos]
                m_p = k_m[kpos]
                dirty_lo = np.where(hw_p, np.minimum(ub(m_p), ub_d), ub_d)
                add_ranges("victims_m", dirty_lo, ub_d)
                clean_hi = np.where(hw_p, ub(np.minimum(m_p, d)), ub_d)
                add_ranges("victims_e",
                           np.zeros(len(b_slots), dtype=np.int64),
                           clean_hi)

            # ---- merge window tails into the carry -------------------- #
            ends = np.flatnonzero(np.append(first[1:], True))
            e_lines = sorted_lines[ends]
            e_last = (n_total - W) + order[ends]
            e_hw = has_write[ends]
            e_m = m_state[ends]
            if len(known):
                pos_ec = np.minimum(np.searchsorted(known, e_lines),
                                    len(known) - 1)
                exist = known[pos_ec] == e_lines
                k_last[pos_ec[exist]] = e_last[exist]
                k_hw[pos_ec[exist]] = e_hw[exist]
                k_m[pos_ec[exist]] = e_m[exist]
            else:
                exist = np.zeros(len(e_lines), dtype=bool)
            if (~exist).any():
                known = np.concatenate([known, e_lines[~exist]])
                k_last = np.concatenate([k_last, e_last[~exist]])
                k_hw = np.concatenate([k_hw, e_hw[~exist]])
                k_m = np.concatenate([k_m, e_m[~exist]])
                o = np.argsort(known, kind="stable")
                known, k_last, k_hw, k_m = (known[o], k_last[o],
                                            k_hw[o], k_m[o])

    n = n_total
    zeros = lambda: np.zeros(K, dtype=np.int64)  # noqa: E731
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return LRUSweepResult(0, caps, zeros(), zeros(), zeros(), zeros(),
                              zeros(), zeros(), zeros(), empty,
                              np.empty(0, dtype=bool), empty)

    with phase("capacity_fold"):
        mdiff[0] += n
        misses = np.cumsum(mdiff)[:K]
        hits = n - misses
        fills = misses.copy()

        # ---- end of trace: per-line last access (from the carry) ------ #
        L = len(known)
        depth = np.empty(L, dtype=np.int64)
        depth[np.argsort(-k_last)] = np.arange(L, dtype=np.int64)
        ub_e = ub(depth)
        dirty_lo = np.where(k_hw, np.minimum(ub(k_m), ub_e), ub_e)
        add_ranges("victims_m", dirty_lo, ub_e)
        clean_hi = np.where(k_hw, ub(np.minimum(k_m, depth)), ub_e)
        add_ranges("victims_e", np.zeros(L, dtype=np.int64), clean_hi)
        top = np.full(L, K, dtype=np.int64)
        flush_lo = np.where(k_hw, ub(np.maximum(k_m, depth)), top)
        add_ranges("flush_writebacks", flush_lo, top)
        clean_flush_hi = np.where(k_hw, np.maximum(ub(k_m), ub_e), top)
        add_ranges("flush_victims_e", ub_e, clean_flush_hi)

        by_recency = np.argsort(k_last)
    return LRUSweepResult(
        accesses=n,
        capacities=caps,
        hits=hits,
        misses=misses,
        fills=fills,
        victims_m=np.cumsum(acc["victims_m"])[:K],
        victims_e=np.cumsum(acc["victims_e"])[:K],
        flush_writebacks=np.cumsum(acc["flush_writebacks"])[:K],
        flush_victims_e=np.cumsum(acc["flush_victims_e"])[:K],
        stack_lines=known[by_recency],
        stack_has_write=k_hw[by_recency],
        stack_m=k_m[by_recency],
    )


def stream_lru_sweep_trace(
    trace: Trace,
    capacities: Union[Sequence[int], np.ndarray],
    window_events: int = 0,
) -> LRUSweepResult:
    """Streaming sweep of a (possibly mmap'd) trace; ``window_events``
    defaults to :func:`default_window_events`."""
    w = window_events if window_events > 0 else default_window_events()
    return stream_lru_sweep(iter_windows(trace, w), capacities)
