"""Single-pass, write-aware, multi-capacity LRU cache simulation.

One trace replay produces the *exact* Section-6 counters — hits, misses,
``LLC_S_FILLS.E``, ``LLC_VICTIMS.M``, ``LLC_VICTIMS.E`` and flush
write-backs — for an arbitrary grid of fully-associative LRU capacities
simultaneously, bit-identical to replaying the trace through
:class:`repro.machine.cache.CacheSim` once per capacity and flushing.

How each counter family falls out of the stack-distance profile
(:func:`repro.machine.fastsim.distances.stack_distances`):

* **hits/misses/fills** — Mattson: an access with stack distance ``D``
  hits every capacity ``C > D`` and misses (and fills) every ``C <= D``.
* **evictions** — by LRU stack inclusion, the line re-accessed at ``t``
  was evicted from capacity ``C`` during the gap exactly when
  ``D(t) >= C``; after its final access a line is evicted when more than
  ``C - 1`` distinct lines follow, i.e. when its end-of-trace stack depth
  reaches ``C``.
* **dirty vs clean** — a victim is dirty iff the line was written since
  it was last *filled* at that capacity.  The fill before the eviction
  moves earlier as ``C`` grows, so with ``M`` = the largest stack
  distance the line saw at its own accesses since (strictly after) its
  last write, the victim is dirty exactly for ``C > M``: every one of
  those accesses was a hit, so no fill separates the write from the
  eviction.  Each eviction therefore contributes a *capacity interval*
  ``(M, D]`` of dirty victims and ``[1, min(M, D)]`` of clean ones —
  histogram ranges over the capacity grid, accumulated with two
  ``bincount`` calls per family.
* **flush** — lines with end depth ``E < C`` are still resident and
  flushed; dirty (same ``C > M`` test) flushes are write-backs, clean
  ones count as ``VICTIMS.E`` exactly like :meth:`CacheSim.flush`.

Everything is numpy array passes; there is no per-access Python loop and
no approximation anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.machine.cache import CacheStats
from repro.machine.fastsim.distances import reuse_profile
from repro.machine.fastsim.profile import phase

__all__ = ["LRUSweepResult", "simulate_lru_sweep", "simulate_lru"]


@dataclass
class LRUSweepResult:
    """Per-capacity counters of one trace replay (all arrays indexed by
    the position of the capacity in ``capacities``, which is sorted
    ascending and in units of cache lines)."""

    accesses: int
    capacities: np.ndarray
    hits: np.ndarray
    misses: np.ndarray
    fills: np.ndarray
    victims_m: np.ndarray
    victims_e: np.ndarray
    flush_writebacks: np.ndarray
    flush_victims_e: np.ndarray
    #: end-of-trace LRU stack, least- to most-recently used: line ids,
    #: whether the line was ever written, and its max post-write fill
    #: distance (the dirty threshold M above).
    stack_lines: np.ndarray
    stack_has_write: np.ndarray
    stack_m: np.ndarray

    @property
    def writebacks(self) -> np.ndarray:
        """Dirty lines written below, evictions + flush (paper metric)."""
        return self.victims_m + self.flush_writebacks

    def index_of(self, capacity_lines: int) -> int:
        i = int(np.searchsorted(self.capacities, capacity_lines))
        if i >= len(self.capacities) or self.capacities[i] != capacity_lines:
            raise KeyError(f"capacity {capacity_lines} not in sweep "
                           f"{self.capacities.tolist()}")
        return i

    def stats(self, capacity_lines: int,
              include_flush: bool = True) -> CacheStats:
        """Counters at one capacity, as a :class:`CacheStats`.

        With ``include_flush`` the numbers equal ``run_lines`` *plus*
        ``flush()`` (clean flushes folded into ``victims_e``, exactly as
        :meth:`CacheSim.flush` counts them); without it they equal
        ``run_lines`` alone.
        """
        k = self.index_of(capacity_lines)
        victims_e = int(self.victims_e[k])
        flush_wb = 0
        if include_flush:
            victims_e += int(self.flush_victims_e[k])
            flush_wb = int(self.flush_writebacks[k])
        return CacheStats(
            accesses=self.accesses,
            hits=int(self.hits[k]),
            misses=int(self.misses[k]),
            fills=int(self.fills[k]),
            victims_m=int(self.victims_m[k]),
            victims_e=victims_e,
            flush_writebacks=flush_wb,
        )

    def end_state(self, capacity_lines: int
                  ) -> Tuple[np.ndarray, np.ndarray]:
        """Resident lines in LRU→MRU order and their dirty bits, as the
        cache of this capacity would hold them after the trace (used by
        :class:`CacheSim` to stay a resumable online simulator after a
        batched replay)."""
        c = int(capacity_lines)
        self.index_of(c)  # validate membership
        resident = self.stack_lines[-c:] if c else self.stack_lines[:0]
        hw = self.stack_has_write[len(self.stack_lines) - len(resident):]
        m = self.stack_m[len(self.stack_lines) - len(resident):]
        return resident, hw & (m < c)


def _as_trace(lines: np.ndarray, writes: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray]:
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    writes = np.ascontiguousarray(writes, dtype=bool)
    if lines.shape != writes.shape or lines.ndim != 1:
        raise ValueError("lines and writes must be matching 1-d arrays")
    return lines, writes


def simulate_lru_sweep(
    lines: np.ndarray,
    writes: np.ndarray,
    capacities: Union[Sequence[int], np.ndarray],
) -> LRUSweepResult:
    """Exact fully-associative LRU counters for every capacity at once."""
    lines, writes = _as_trace(lines, writes)
    caps = np.unique(np.asarray(capacities, dtype=np.int64))
    if len(caps) == 0:
        raise ValueError("need at least one capacity")
    if caps[0] < 1:
        raise ValueError(f"capacities must be >= 1 line, got {caps[0]}")
    K = len(caps)
    n = len(lines)
    zeros = lambda: np.zeros(K, dtype=np.int64)  # noqa: E731
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return LRUSweepResult(0, caps, zeros(), zeros(), zeros(), zeros(),
                              zeros(), zeros(), zeros(), empty,
                              np.empty(0, dtype=bool), empty)

    # ---------------- reuse profile (grouped by line) ----------------- #
    order, sorted_lines, first, prev, dist = reuse_profile(lines)
    with phase("capacity_fold"):
        repeat = ~first
        # Cold accesses must miss at every capacity, however large.
        warm = prev >= 0
        big = np.int64(max(int(caps[-1]), n) + 1)
        dist_c = np.where(warm, dist, big)

        def ub(x):  # number of capacities <= x: index bound for "C <= x"
            return np.searchsorted(caps, x, side="right").astype(np.int64)

        # ---------------- hits / misses / fills ----------------------- #
        # An access of distance d misses capacities C <= d: [0, ub(d)).
        diff = -np.bincount(ub(dist_c), minlength=K + 1)
        diff[0] += n
        misses = np.cumsum(diff)[:K]
        hits = n - misses
        fills = misses.copy()

        # ---------------- per-line write state ------------------------ #
        dist_g = dist_c[order]
        w_g = writes[order]
        w_int = w_g.astype(np.int64)
        starts = np.flatnonzero(first)
        gid = np.cumsum(first) - 1
        cum_w_excl = np.cumsum(w_int) - w_int
        has_write = (np.cumsum(w_int) - cum_w_excl[starts][gid]) > 0
        # M: max stack distance at the line's own accesses since its last
        # write (0 at the write itself), via offset-segmented cummax.
        # The raw (unclamped) distances keep values < BIG; cold entries
        # can only appear in segments where has_write is False (a line's
        # first access cannot follow a write to it), where M is never
        # consulted.
        seg_val = np.where(w_g | first, 0, dist[order])
        seg_id = np.cumsum((w_g | first).astype(np.int64))
        seg_big = np.int64(n + 3)
        m_state = (np.maximum.accumulate(seg_val + seg_id * seg_big)
                   - seg_id * seg_big)

        acc = {name: np.zeros(K + 1, dtype=np.int64)
               for name in ("victims_m", "victims_e",
                            "flush_writebacks", "flush_victims_e")}

        def add_ranges(name, lo, hi):
            """+1 on capacity indices [lo, hi) for each event."""
            acc[name] += (np.bincount(lo, minlength=K + 1)
                          - np.bincount(hi, minlength=K + 1))[:K + 1]

        # ---------------- in-trace evictions (reuse gaps) ------------- #
        # The line re-accessed at grouped slot k was evicted from every
        # C <= d (d = its distance); dirty exactly where C > M at its
        # previous access.
        gaps = np.flatnonzero(repeat)
        if len(gaps):
            ub_d = ub(dist_g[gaps])
            hw_p = has_write[gaps - 1]
            m_p = m_state[gaps - 1]
            dirty_lo = np.where(hw_p, np.minimum(ub(m_p), ub_d), ub_d)
            add_ranges("victims_m", dirty_lo, ub_d)
            clean_hi = np.where(hw_p, ub(np.minimum(m_p, dist_g[gaps])),
                                ub_d)
            add_ranges("victims_e", np.zeros(len(gaps), dtype=np.int64),
                       clean_hi)

        # ---------------- end of trace: per-line last access ---------- #
        ends = np.flatnonzero(np.append(first[1:], True))
        t_last = order[ends]
        n_lines = len(ends)
        depth = np.empty(n_lines, dtype=np.int64)  # final stack depth
        depth[np.argsort(-t_last)] = np.arange(n_lines, dtype=np.int64)
        hw_l = has_write[ends]
        m_l = m_state[ends]
        ub_e = ub(depth)
        # Evicted before the end of the trace (C <= depth):
        dirty_lo = np.where(hw_l, np.minimum(ub(m_l), ub_e), ub_e)
        add_ranges("victims_m", dirty_lo, ub_e)
        clean_hi = np.where(hw_l, ub(np.minimum(m_l, depth)), ub_e)
        add_ranges("victims_e", np.zeros(n_lines, dtype=np.int64),
                   clean_hi)
        # Still resident at flush (C > depth):
        top = np.full(n_lines, K, dtype=np.int64)
        flush_lo = np.where(hw_l, ub(np.maximum(m_l, depth)), top)
        add_ranges("flush_writebacks", flush_lo, top)
        clean_flush_hi = np.where(hw_l, np.maximum(ub(m_l), ub_e), top)
        add_ranges("flush_victims_e", ub_e, clean_flush_hi)

        by_recency = np.argsort(t_last)  # LRU -> MRU
    return LRUSweepResult(
        accesses=n,
        capacities=caps,
        hits=hits,
        misses=misses,
        fills=fills,
        victims_m=np.cumsum(acc["victims_m"])[:K],
        victims_e=np.cumsum(acc["victims_e"])[:K],
        flush_writebacks=np.cumsum(acc["flush_writebacks"])[:K],
        flush_victims_e=np.cumsum(acc["flush_victims_e"])[:K],
        stack_lines=sorted_lines[ends][by_recency],
        stack_has_write=hw_l[by_recency],
        stack_m=m_l[by_recency],
    )


def simulate_lru(lines: np.ndarray, writes: np.ndarray,
                 capacity_lines: int) -> LRUSweepResult:
    """The batched kernel for a single capacity (a one-column sweep)."""
    return simulate_lru_sweep(lines, writes, [capacity_lines])
