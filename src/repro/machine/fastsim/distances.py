"""Vectorized reuse/stack-distance machinery (the heart of fastsim).

The multi-capacity LRU kernel rests on Mattson's inclusion property: a
fully-associative LRU cache of capacity ``C`` holds exactly the top ``C``
entries of the LRU stack, so one stack-distance profile answers hit/miss
questions for *every* capacity at once.  The classic online algorithm
(Bennett–Kruskal: a Fenwick tree over last-access marks) is a per-access
Python loop — exactly the cost this package exists to remove — so we use
an offline identity instead:

Let ``prev[t]`` be the previous access to ``lines[t]`` (``-1`` on a cold
access).  The distinct lines touched in the reuse window ``(prev[t], t)``
are the window's length minus the accesses that are *repeats within the
window* — and an access ``s`` is a repeat inside the window exactly when
its own previous access also falls inside, i.e. ``prev[s] > prev[t]``
(``prev[s] < s < t`` always holds).  Hence the exact stack distance is

    D(t) = (t - prev[t] - 1) - #{ s < t : prev[s] > prev[t] }

which reduces the whole profile to *per-element inversion counting* on
the ``prev`` array.  That we compute with a most-significant-bit radix
partition: ``bit_length(n)`` rounds of cumulative sums and one packed
scatter each — O(n log n) total work, all inside numpy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.machine.fastsim.profile import phase

__all__ = [
    "prev_occurrences",
    "next_occurrences",
    "count_earlier_greater",
    "stack_distances",
    "reuse_profile",
]


def _grouped_by_line(lines: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Stable permutation grouping equal line ids in time order."""
    order = np.argsort(lines, kind="stable")
    return order, lines[order]


def prev_occurrences(lines: np.ndarray) -> np.ndarray:
    """``prev[t]`` = index of the previous access to ``lines[t]``, else -1."""
    lines = np.ascontiguousarray(lines)
    n = len(lines)
    prev = np.full(n, -1, dtype=np.int64)
    if n > 1:
        order, sorted_lines = _grouped_by_line(lines)
        same = sorted_lines[1:] == sorted_lines[:-1]
        prev[order[1:][same]] = order[:-1][same]
    return prev


def next_occurrences(lines: np.ndarray) -> np.ndarray:
    """``nxt[t]`` = index of the next access to ``lines[t]``, else ``n + 1``.

    The ``n + 1`` sentinel matches the value the Belady scan has always
    used for "never used again", so swapping this in for the Python
    reverse scan leaves the heap tie-breaking bit-identical.
    """
    lines = np.ascontiguousarray(lines)
    n = len(lines)
    nxt = np.full(n, n + 1, dtype=np.int64)
    if n > 1:
        order, sorted_lines = _grouped_by_line(lines)
        same = sorted_lines[1:] == sorted_lines[:-1]
        nxt[order[:-1][same]] = order[1:][same]
    return nxt


def count_earlier_greater(values: np.ndarray) -> np.ndarray:
    """For each i: ``#{ j < i : values[j] > values[i] }`` (vectorized).

    Iterative MSB radix partition.  Elements are kept stably partitioned
    by the value bits above the current level, so each element's "earlier
    and greater" predecessors that first differ at the current bit are
    exactly the earlier same-group elements carrying a 1 where it carries
    a 0 — a segmented cumulative sum.  Value and original index are packed
    into one int64 so each round performs a single scatter.

    ``values`` must be non-negative and < 2**31 (trace positions always
    are); returns int64 counts.
    """
    values = np.asarray(values)
    n = len(values)
    counts = np.zeros(n, dtype=np.int64)
    if n <= 1:
        return counts
    if values.min() < 0 or int(values.max()) >= (1 << 31):
        raise ValueError("count_earlier_greater needs 0 <= values < 2**31")
    with phase("radix_partition"):
        return _radix_inversions(values, counts)


def _radix_inversions(values: np.ndarray, counts: np.ndarray) -> np.ndarray:
    n = len(values)
    nbits = max(1, int(values.max()).bit_length())
    packed = (values.astype(np.int64) << 31) | np.arange(n, dtype=np.int64)
    slot_counts = np.zeros(n, dtype=np.int64)  # rides the permutation
    idx = np.arange(n, dtype=np.int64)
    for b in range(nbits - 1, -1, -1):
        vals = packed >> 31
        bit = (vals >> b) & np.int64(1)
        # Segment boundaries: where the already-partitioned prefix changes.
        prefix = vals >> (b + 1)
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        np.not_equal(prefix[1:], prefix[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        if len(starts) == n:
            break  # every group is a singleton; lower bits cannot invert
        gid = np.cumsum(boundary) - 1
        gstart = starts[gid]
        ones_excl = np.cumsum(bit) - bit           # ones strictly before
        ones_before = ones_excl - ones_excl[gstart]
        zeros = bit ^ np.int64(1)
        group_zeros = np.add.reduceat(zeros, starts)[gid]
        is_zero = bit == 0
        np.add(slot_counts, ones_before, out=slot_counts, where=is_zero)
        zeros_before = (idx - gstart) - ones_before
        new_pos = np.where(is_zero, gstart + zeros_before,
                           gstart + group_zeros + ones_before)
        next_packed = np.empty_like(packed)
        next_counts = np.empty_like(slot_counts)
        next_packed[new_pos] = packed
        next_counts[new_pos] = slot_counts
        packed, slot_counts = next_packed, next_counts
    counts[packed & np.int64((1 << 31) - 1)] = slot_counts
    return counts


def reuse_profile(
    lines: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The full reuse profile of a trace from one stable sort.

    Returns ``(order, sorted_lines, first, prev, distances)``:

    * ``order``/``sorted_lines`` — the stable line-grouping permutation
      and the lines in grouped (line, time) order;
    * ``first`` — True at each line's first access, in grouped order;
    * ``prev`` — previous-occurrence index per access (-1 when cold);
    * ``distances`` — exact LRU stack distance per access (the number of
      distinct *other* lines touched since the previous access, so a hit
      at capacity ``C`` is ``distances[t] < C``); cold accesses carry
      the sentinel ``n + 1`` and must be treated as misses at every
      capacity, however large — clamp against your capacity grid before
      comparing.
    """
    with phase("distance_pass"):
        lines = np.ascontiguousarray(lines)
        n = len(lines)
        order = np.argsort(lines, kind="stable")
        sorted_lines = lines[order]
        first = np.empty(n, dtype=bool)
        prev = np.full(n, -1, dtype=np.int64)
        if n:
            first[0] = True
            np.not_equal(sorted_lines[1:], sorted_lines[:-1], out=first[1:])
            repeat = ~first[1:]
            prev[order[1:][repeat]] = order[:-1][repeat]
        distances = np.full(n, n + 1, dtype=np.int64)
        warm = prev >= 0
        if warm.any():
            # Cold entries can never satisfy prev[s] > prev[t] >= 0, so
            # they are dropped from the inversion count entirely.
            warm_prev = prev[warm]
            repeats = count_earlier_greater(warm_prev)
            t = np.flatnonzero(warm)
            distances[warm] = t - warm_prev - 1 - repeats
        return order, sorted_lines, first, prev, distances


def stack_distances(lines: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Exact LRU stack distance of every access, in one vectorized pass
    (see :func:`reuse_profile` for the distance/sentinel conventions).
    Returns ``(distances, prev)``."""
    _, _, _, prev, distances = reuse_profile(lines)
    return distances, prev
