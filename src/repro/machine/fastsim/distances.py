"""Vectorized reuse/stack-distance machinery (the heart of fastsim).

The multi-capacity LRU kernel rests on Mattson's inclusion property: a
fully-associative LRU cache of capacity ``C`` holds exactly the top ``C``
entries of the LRU stack, so one stack-distance profile answers hit/miss
questions for *every* capacity at once.  The classic online algorithm
(Bennett–Kruskal: a Fenwick tree over last-access marks) is a per-access
Python loop — exactly the cost this package exists to remove — so we use
an offline identity instead:

Let ``prev[t]`` be the previous access to ``lines[t]`` (``-1`` on a cold
access).  The distinct lines touched in the reuse window ``(prev[t], t)``
are the window's length minus the accesses that are *repeats within the
window* — and an access ``s`` is a repeat inside the window exactly when
its own previous access also falls inside, i.e. ``prev[s] > prev[t]``
(``prev[s] < s < t`` always holds).  Hence the exact stack distance is

    D(t) = (t - prev[t] - 1) - #{ s < t : prev[s] > prev[t] }

which reduces the whole profile to *per-element inversion counting* on
the ``prev`` array.  That we compute with a most-significant-bit radix
partition: ``bit_length(n)`` rounds of cumulative sums and one packed
scatter each — O(n log n) total work, all inside numpy.

Two structural accelerations sit on top of the identity:

* **super-symbol run compression** — tile-granular traces revisit whole
  blocks of lines in a fixed order, so the ``prev`` array is made of
  maximal *consecutive runs* (``prev[t] == prev[t-1] + 1`` for adjacent
  warm accesses).  Every access of such a run has the *same* stack
  distance, and — because the prev values of distinct warm accesses are
  distinct, so the runs' prev ranges are disjoint intervals — the
  inversion count of a run's first access decomposes over earlier runs
  whole: it is the **weighted** inversion count over run start values
  with run lengths as weights.  The distance pass therefore collapses
  the trace to one element per run (4x fewer on the paper's Section-6
  tile shapes) before the radix partition, then broadcasts each run's
  distance back — exact for *any* trace, with no structural
  precondition: an incompressible trace simply yields length-1 runs.
* **chunk-parallel radix partition** — each round's element-wise work
  (bit extraction, segment cumulative sums, the packed scatter) splits
  across array chunks; cumulative sums are fixed up with per-chunk
  offsets and the scatter targets form a permutation, so chunks never
  collide.  numpy releases the GIL on large array ops, so plain threads
  scale it.  Gated behind ``$REPRO_FASTSIM_THREADS`` and a size floor:
  small partitions stay on the sequential path.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from repro.machine.fastsim.profile import phase

__all__ = [
    "prev_occurrences",
    "next_occurrences",
    "count_earlier_greater",
    "stack_distances",
    "reuse_profile",
]

#: env knob: worker threads for the radix partition (0/1/unset = off).
THREADS_ENV = "REPRO_FASTSIM_THREADS"
#: below this many packed elements the sequential path always wins.
_PARALLEL_MIN_N = 1 << 20


def _grouped_by_line(lines: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Stable permutation grouping equal line ids in time order."""
    order = np.argsort(lines, kind="stable")
    return order, lines[order]


def prev_occurrences(lines: np.ndarray) -> np.ndarray:
    """``prev[t]`` = index of the previous access to ``lines[t]``, else -1."""
    lines = np.ascontiguousarray(lines)
    n = len(lines)
    prev = np.full(n, -1, dtype=np.int64)
    if n > 1:
        order, sorted_lines = _grouped_by_line(lines)
        same = sorted_lines[1:] == sorted_lines[:-1]
        prev[order[1:][same]] = order[:-1][same]
    return prev


def next_occurrences(lines: np.ndarray) -> np.ndarray:
    """``nxt[t]`` = index of the next access to ``lines[t]``, else ``n + 1``.

    The ``n + 1`` sentinel matches the value the Belady scan has always
    used for "never used again", so swapping this in for the Python
    reverse scan leaves the heap tie-breaking bit-identical.
    """
    lines = np.ascontiguousarray(lines)
    n = len(lines)
    nxt = np.full(n, n + 1, dtype=np.int64)
    if n > 1:
        order, sorted_lines = _grouped_by_line(lines)
        same = sorted_lines[1:] == sorted_lines[:-1]
        nxt[order[:-1][same]] = order[1:][same]
    return nxt


def radix_threads() -> int:
    """Worker threads the radix partition may use (1 = sequential)."""
    try:
        return max(1, int(os.environ.get(THREADS_ENV, "1")))
    except ValueError:
        return 1


def count_earlier_greater(values: np.ndarray,
                          weights: Optional[np.ndarray] = None
                          ) -> np.ndarray:
    """For each i: ``#{ j < i : values[j] > values[i] }`` (vectorized).

    With *weights* (int64, same length), each earlier-and-greater
    element ``j`` contributes ``weights[j]`` instead of 1 — the
    run-compressed form of the inversion count, where one element
    stands for a block of consecutive trace positions.

    Iterative MSB radix partition.  Elements are kept stably partitioned
    by the value bits above the current level, so each element's "earlier
    and greater" predecessors that first differ at the current bit are
    exactly the earlier same-group elements carrying a 1 where it carries
    a 0 — a segmented cumulative sum.  Value and original index are packed
    into one int64 so each round performs a single scatter.

    ``values`` must be non-negative and < 2**31 (trace positions always
    are); returns int64 counts.
    """
    values = np.asarray(values)
    n = len(values)
    counts = np.zeros(n, dtype=np.int64)
    if n <= 1:
        return counts
    if values.min() < 0 or int(values.max()) >= (1 << 31):
        raise ValueError("count_earlier_greater needs 0 <= values < 2**31")
    if weights is not None:
        weights = np.ascontiguousarray(weights, dtype=np.int64)
        if weights.shape != values.shape:
            raise ValueError("weights must match values in shape")
    with phase("radix_partition"):
        return _radix_inversions(values, counts, weights)


def _chunk_bounds(n: int, threads: int) -> List[Tuple[int, int]]:
    step = -(-n // threads)
    return [(s, min(s + step, n)) for s in range(0, n, step)]


def _parallel_cumsum_excl(pool: ThreadPoolExecutor,
                          bounds: List[Tuple[int, int]],
                          src: np.ndarray, out: np.ndarray) -> None:
    """``out = exclusive cumsum(src)``, chunked: per-chunk local sums in
    parallel, then a tiny sequential offset pass, then parallel fixup."""
    def local(span: Tuple[int, int]) -> np.int64:
        s, e = span
        np.cumsum(src[s:e], out=out[s:e])
        return out[e - 1]
    totals = list(pool.map(local, bounds))
    offsets = np.concatenate(([0], np.cumsum(totals)[:-1])).astype(np.int64)

    def fixup(args: Tuple[Tuple[int, int], np.int64]) -> None:
        (s, e), off = args
        # inclusive -> exclusive, with the preceding chunks' total added.
        out[s:e] -= src[s:e]
        if off:
            out[s:e] += off
    list(pool.map(fixup, zip(bounds, offsets)))


def _radix_round_parallel(
    pool: ThreadPoolExecutor, bounds: List[Tuple[int, int]],
    packed: np.ndarray, slot_counts: np.ndarray,
    slot_weights: Optional[np.ndarray], b: int, idx: np.ndarray,
) -> Optional[Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]]:
    """One partition round split across chunks (see the sequential body
    for the algebra).  Returns the permuted arrays, or ``None`` when
    every group is already a singleton."""
    n = len(packed)
    bit = np.empty(n, dtype=np.int64)
    boundary = np.empty(n, dtype=bool)
    wsrc = slot_weights if slot_weights is not None else None

    def pass_a(span: Tuple[int, int]) -> None:
        s, e = span
        np.bitwise_and(packed[s:e] >> np.int64(31 + b), np.int64(1),
                       out=bit[s:e])
        prefix = packed[s:e] >> np.int64(31 + b + 1)
        if s == 0:
            boundary[0] = True
            np.not_equal(prefix[1:], prefix[:-1], out=boundary[s + 1:e])
        else:
            left = packed[s - 1] >> np.int64(31 + b + 1)
            boundary[s] = prefix[0] != left
            np.not_equal(prefix[1:], prefix[:-1], out=boundary[s + 1:e])
    list(pool.map(pass_a, bounds))

    starts = np.flatnonzero(boundary)
    if len(starts) == n:
        return None
    gid = np.empty(n, dtype=np.int64)
    ones_excl = np.empty(n, dtype=np.int64)
    _parallel_cumsum_excl(pool, bounds, boundary.astype(np.int64), gid)
    # _parallel_cumsum_excl leaves the *exclusive* sum; group ids are the
    # inclusive cumsum minus one, which equals the exclusive sum here
    # because every group start carries a 1.
    np.add(gid, boundary, out=gid)
    gid -= 1
    _parallel_cumsum_excl(pool, bounds, bit, ones_excl)
    wones_excl = None
    if wsrc is not None:
        wbit = bit * wsrc
        wones_excl = np.empty(n, dtype=np.int64)
        _parallel_cumsum_excl(pool, bounds, wbit, wones_excl)
    group_sizes = np.diff(np.append(starts, n))
    group_ones = np.add.reduceat(bit, starts)
    group_zeros = group_sizes - group_ones

    next_packed = np.empty_like(packed)
    next_counts = np.empty_like(slot_counts)
    next_weights = (np.empty_like(slot_weights)
                    if slot_weights is not None else None)

    def pass_b(span: Tuple[int, int]) -> None:
        s, e = span
        g = gid[s:e]
        gstart = starts[g]
        ones_before = ones_excl[s:e] - ones_excl[gstart]
        is_zero = bit[s:e] == 0
        if wones_excl is not None:
            gain = wones_excl[s:e] - wones_excl[gstart]
        else:
            gain = ones_before
        np.add(slot_counts[s:e], gain, out=slot_counts[s:e],
               where=is_zero)
        zeros_before = (idx[s:e] - gstart) - ones_before
        new_pos = np.where(is_zero, gstart + zeros_before,
                           gstart + group_zeros[g] + ones_before)
        next_packed[new_pos] = packed[s:e]
        next_counts[new_pos] = slot_counts[s:e]
        if next_weights is not None:
            next_weights[new_pos] = slot_weights[s:e]  # type: ignore[index]
    list(pool.map(pass_b, bounds))
    return next_packed, next_counts, next_weights


def _radix_inversions_packed(values: np.ndarray, counts: np.ndarray,
                             bits_v: int) -> np.ndarray:
    """Unweighted partition with value, running count and original index
    packed into *one* int64 (``value | count | index``, low to high field
    order reversed: value highest so prefix compares still work).

    One scatter per round instead of three, no mask selects — the count
    field sits between value and index, and since counts only grow and
    stay ``< n`` they never carry into the value bits.  Only entered when
    ``bits_v + 2*bit_length(n) <= 62`` (callers with trace positions
    always fit).
    """
    n = len(values)
    bits_n = max(1, n.bit_length())
    sc = bits_n                      # count field shift
    sv = 2 * bits_n                  # value field shift
    mask_n = np.int64((1 << bits_n) - 1)
    one = np.int64(1)
    idx = np.arange(n, dtype=np.int64)
    packed = (values.astype(np.int64) << sv) | idx
    boundary = np.empty(n, dtype=bool)
    for b in range(bits_v - 1, -1, -1):
        vb = packed >> np.int64(sv + b)
        bit = vb & one
        # Group boundaries: where the already-partitioned prefix changes.
        prefix = vb >> one
        boundary[0] = True
        np.not_equal(prefix[1:], prefix[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        if len(starts) == n:
            break  # every group is a singleton; lower bits cannot invert
        gsizes = np.diff(np.append(starts, n))
        ones_excl = np.cumsum(bit)
        ones_excl -= bit                         # ones strictly before i
        oas = ones_excl[starts]
        ones_before = ones_excl - np.repeat(oas, gsizes)
        # Zeros gain the weight of the earlier in-group ones; ones gain
        # nothing this round (mask by multiplication, not np.where).
        gain = ones_before * (bit ^ one)
        packed += gain << np.int64(sc)
        # Destinations: zeros keep their in-group order ahead of the
        # ones.  zeros_before = (i - gstart) - ones_before collapses to
        # idx - ones_before + gstart, and the ones' extra offset
        # (group_zeros + 2*ones_before + gstart - idx) folds the three
        # per-group constants into one np.repeat.
        tot_ones = np.append(oas[1:], ones_excl[-1] + bit[-1]) - oas
        gconst = np.repeat(starts + (gsizes - tot_ones), gsizes)
        gconst += ones_before
        gconst += ones_before
        gconst -= idx
        gconst *= bit
        new_pos = idx - ones_before
        new_pos += gconst
        nxt = np.empty_like(packed)
        nxt[new_pos] = packed
        packed = nxt
    counts[packed & mask_n] = (packed >> np.int64(sc)) & mask_n
    return counts


def _radix_inversions(values: np.ndarray, counts: np.ndarray,
                      weights: Optional[np.ndarray] = None) -> np.ndarray:
    n = len(values)
    nbits = max(1, int(values.max()).bit_length())
    # Uniform weights factor out of the count entirely, unlocking the
    # single-array packed path (tile traces hit this: every run carries
    # the tile size).
    uniform: Optional[int] = 1
    if weights is not None:
        w0 = int(weights[0])
        uniform = w0 if bool((weights == w0).all()) else None
    if uniform is not None and nbits + 2 * max(1, n.bit_length()) <= 62:
        _radix_inversions_packed(values, counts, nbits)
        if uniform != 1:
            counts *= uniform
        return counts
    packed = (values.astype(np.int64) << 31) | np.arange(n, dtype=np.int64)
    slot_counts = np.zeros(n, dtype=np.int64)  # rides the permutation
    slot_weights = (np.ascontiguousarray(weights, dtype=np.int64).copy()
                    if weights is not None else None)
    idx = np.arange(n, dtype=np.int64)
    threads = radix_threads()
    if threads > 1 and n >= _PARALLEL_MIN_N:
        bounds = _chunk_bounds(n, threads)
        with ThreadPoolExecutor(max_workers=len(bounds)) as pool:
            for b in range(nbits - 1, -1, -1):
                nxt = _radix_round_parallel(pool, bounds, packed,
                                            slot_counts, slot_weights, b,
                                            idx)
                if nxt is None:
                    break  # every group is a singleton already
                packed, slot_counts, slot_weights = nxt
        counts[packed & np.int64((1 << 31) - 1)] = slot_counts
        return counts
    one = np.int64(1)
    boundary = np.empty(n, dtype=bool)
    for b in range(nbits - 1, -1, -1):
        vb = packed >> np.int64(31 + b)
        bit = vb & one
        # Segment boundaries: where the already-partitioned prefix changes.
        prefix = vb >> one
        boundary[0] = True
        np.not_equal(prefix[1:], prefix[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        if len(starts) == n:
            break  # every group is a singleton; lower bits cannot invert
        gsizes = np.diff(np.append(starts, n))
        ones_excl = np.cumsum(bit)
        ones_excl -= bit                         # ones strictly before i
        oas = ones_excl[starts]
        ones_before = ones_excl - np.repeat(oas, gsizes)
        if slot_weights is not None:
            wbit = bit * slot_weights
            wexcl = np.cumsum(wbit)
            wexcl -= wbit
            gain = wexcl - np.repeat(wexcl[starts], gsizes)
        else:
            gain = ones_before.copy()
        gain *= bit ^ one                        # ones gain nothing
        slot_counts += gain
        # Same fused-destination algebra as the packed path.
        tot_ones = np.append(oas[1:], ones_excl[-1] + bit[-1]) - oas
        gconst = np.repeat(starts + (gsizes - tot_ones), gsizes)
        gconst += ones_before
        gconst += ones_before
        gconst -= idx
        gconst *= bit
        new_pos = idx - ones_before
        new_pos += gconst
        next_packed = np.empty_like(packed)
        next_counts = np.empty_like(slot_counts)
        next_packed[new_pos] = packed
        next_counts[new_pos] = slot_counts
        packed, slot_counts = next_packed, next_counts
        if slot_weights is not None:
            next_weights = np.empty_like(slot_weights)
            next_weights[new_pos] = slot_weights
            slot_weights = next_weights
    counts[packed & np.int64((1 << 31) - 1)] = slot_counts
    return counts


def warm_distances(t: np.ndarray, prev: np.ndarray,
                   sizes: Optional[np.ndarray] = None) -> np.ndarray:
    """Stack distances of the warm accesses at positions ``t`` (sorted
    ascending) with previous occurrences ``prev`` (``prev[k] < t[k]``).

    This is the run-compressed core shared by :func:`reuse_profile`, the
    super-symbol fold and the streaming window pass: maximal blocks of
    *adjacent* accesses with *consecutive* prev values share one stack
    distance (the intra-run proof is in the module docstring), and the
    prev ranges of distinct runs are disjoint intervals, so the per-run
    inversion count is the weighted count over run start values with run
    lengths as weights.  Exact for arbitrary inputs, with no structural
    precondition: incompressible stretches degenerate to length-1 runs.

    With *sizes*, element ``k`` itself stands for a block of
    ``sizes[k]`` consecutive events starting at ``t[k]`` whose prevs are
    consecutive from ``prev[k]`` (a super-symbol visit); adjacency then
    means ``t[k+1] == t[k] + sizes[k]`` and run weights are event
    counts.  The returned distance is per *element*, shared by all of
    its events.
    """
    m = len(t)
    if m == 0:
        return np.empty(0, dtype=np.int64)
    step = sizes[:-1] if sizes is not None else 1
    new_run = np.empty(m, dtype=bool)
    new_run[0] = True
    np.logical_or(t[1:] != t[:-1] + step, prev[1:] != prev[:-1] + step,
                  out=new_run[1:])
    rstart = np.flatnonzero(new_run)
    rlen = np.diff(np.append(rstart, m))
    if sizes is None:
        weights = rlen
    else:
        weights = np.add.reduceat(sizes, rstart)
    rprev = prev[rstart]
    repeats = count_earlier_greater(rprev, weights=weights)
    run_dist = t[rstart] - rprev - 1 - repeats
    return np.repeat(run_dist, rlen)


def reuse_profile(
    lines: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The full reuse profile of a trace from one stable sort.

    Returns ``(order, sorted_lines, first, prev, distances)``:

    * ``order``/``sorted_lines`` — the stable line-grouping permutation
      and the lines in grouped (line, time) order;
    * ``first`` — True at each line's first access, in grouped order;
    * ``prev`` — previous-occurrence index per access (-1 when cold);
    * ``distances`` — exact LRU stack distance per access (the number of
      distinct *other* lines touched since the previous access, so a hit
      at capacity ``C`` is ``distances[t] < C``); cold accesses carry
      the sentinel ``n + 1`` and must be treated as misses at every
      capacity, however large — clamp against your capacity grid before
      comparing.
    """
    with phase("distance_pass"):
        lines = np.ascontiguousarray(lines)
        n = len(lines)
        order = np.argsort(lines, kind="stable")
        sorted_lines = lines[order]
        first = np.empty(n, dtype=bool)
        prev = np.full(n, -1, dtype=np.int64)
        if n:
            first[0] = True
            np.not_equal(sorted_lines[1:], sorted_lines[:-1], out=first[1:])
            repeat = ~first[1:]
            prev[order[1:][repeat]] = order[:-1][repeat]
        distances = np.full(n, n + 1, dtype=np.int64)
        warm = prev >= 0
        if warm.any():
            # Cold entries can never satisfy prev[s] > prev[t] >= 0, so
            # they are dropped from the inversion count entirely.
            t = np.flatnonzero(warm)
            distances[warm] = warm_distances(t, prev[warm])
        return order, sorted_lines, first, prev, distances


def stack_distances(lines: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Exact LRU stack distance of every access, in one vectorized pass
    (see :func:`reuse_profile` for the distance/sentinel conventions).
    Returns ``(distances, prev)``."""
    _, _, _, prev, distances = reuse_profile(lines)
    return distances, prev
