"""Single-pass, write-aware, multi-capacity Belady (OPT/MIN) simulation.

One trace replay produces the exact offline-optimal counters — hits,
misses, fills, ``LLC_VICTIMS.M``, ``LLC_VICTIMS.E`` and flush
write-backs — for an arbitrary grid of fully-associative capacities
simultaneously, bit-identical to replaying the trace through
:meth:`repro.machine.cache.CacheSim._run_belady` once per capacity
(whose end-of-trace flush is folded into the run, exactly as there).

Why one pass suffices: MIN with a *fixed total-order* tie-break is a
stack algorithm (Mattson et al. 1970).  ``_run_belady`` evicts the
resident line with the farthest next use, ties broken toward the
smallest line id — a strict total order on ``(next_use, -line)`` — so
the resident sets of two capacities ``C < C'`` stay nested at every
step: on a shared miss the victim of ``C'`` is the unique worst line of
a *superset*, hence either outside ``C``'s residents or equal to ``C``'s
own victim.  Residency across the whole capacity grid is therefore a
single *inclusion level* per line: the index of the smallest swept
capacity that still holds it.

The sweep maintains exactly that:

* ``level[x]`` — smallest capacity index whose cache holds ``x``; an
  access with level ``j`` hits capacities ``j..K-1`` and misses (and
  fills) ``0..j-1``, so the level histogram *is* the OPT stack-distance
  profile quantized to the capacity grid;
* one lazy max-heap per level, keyed ``(-next_use, line)`` with the
  sentinel ``n + 1`` from :func:`repro.machine.fastsim.distances.
  next_occurrences` — the victim at capacity ``i`` is the best entry
  across heaps ``0..i`` (residents of ``C_i`` = levels ``<= i``), and
  is pushed down to level ``i + 1`` (it stays in every larger cache);
* dirty tracking via the same monotone threshold as the LRU sweep: a
  line is dirty at capacity ``i`` iff it was ever written and every one
  of its accesses since the last write hit at level ``<= i`` (a miss
  refills it clean), so each eviction/flush splits the capacity axis at
  ``max(level, M)`` with ``M`` = the max level since the last write.

The replay is one Python loop like ``_run_belady``'s — the per-access
heap work is inherently sequential — but hits cost O(1), and the whole
capacity grid shares the single pass, the vectorized next-use
preprocessing and the trace itself.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.machine.cache import CacheStats
from repro.machine.fastsim.distances import next_occurrences
from repro.machine.fastsim.profile import phase

__all__ = ["OPTSweepResult", "simulate_opt_sweep", "simulate_opt"]


@dataclass
class OPTSweepResult:
    """Per-capacity Belady counters of one trace replay (arrays indexed
    by the position of the capacity in ``capacities``, sorted ascending,
    in units of cache lines)."""

    accesses: int
    capacities: np.ndarray
    hits: np.ndarray
    misses: np.ndarray
    fills: np.ndarray
    victims_m: np.ndarray
    victims_e: np.ndarray
    flush_writebacks: np.ndarray
    flush_victims_e: np.ndarray

    @property
    def writebacks(self) -> np.ndarray:
        """Dirty lines written below, evictions + flush (paper metric)."""
        return self.victims_m + self.flush_writebacks

    def index_of(self, capacity_lines: int) -> int:
        i = int(np.searchsorted(self.capacities, capacity_lines))
        if i >= len(self.capacities) or self.capacities[i] != capacity_lines:
            raise KeyError(f"capacity {capacity_lines} not in sweep "
                           f"{self.capacities.tolist()}")
        return i

    def stats(self, capacity_lines: int,
              include_flush: bool = True) -> CacheStats:
        """Counters at one capacity, as a :class:`CacheStats`.

        With ``include_flush`` (the default — ``_run_belady`` always
        flushes internally at the end of a run) clean flushes fold into
        ``victims_e`` and dirty ones report as ``flush_writebacks``,
        exactly as ``CacheSim`` counts an offline run; without it the
        numbers cover the evictions alone.
        """
        k = self.index_of(capacity_lines)
        victims_e = int(self.victims_e[k])
        flush_wb = 0
        if include_flush:
            victims_e += int(self.flush_victims_e[k])
            flush_wb = int(self.flush_writebacks[k])
        return CacheStats(
            accesses=self.accesses,
            hits=int(self.hits[k]),
            misses=int(self.misses[k]),
            fills=int(self.fills[k]),
            victims_m=int(self.victims_m[k]),
            victims_e=victims_e,
            flush_writebacks=flush_wb,
        )


def _as_trace(lines: np.ndarray, writes: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray]:
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    writes = np.ascontiguousarray(writes, dtype=bool)
    if lines.shape != writes.shape or lines.ndim != 1:
        raise ValueError("lines and writes must be matching 1-d arrays")
    return lines, writes


def simulate_opt_sweep(
    lines: np.ndarray,
    writes: np.ndarray,
    capacities: Union[Sequence[int], np.ndarray],
) -> OPTSweepResult:
    """Exact fully-associative Belady counters for every capacity at once."""
    lines, writes = _as_trace(lines, writes)
    caps = np.unique(np.asarray(capacities, dtype=np.int64))
    if len(caps) == 0:
        raise ValueError("need at least one capacity")
    if caps[0] < 1:
        raise ValueError(f"capacities must be >= 1 line, got {caps[0]}")
    K = len(caps)
    n = len(lines)
    zeros = lambda: np.zeros(K, dtype=np.int64)  # noqa: E731
    if n == 0:
        return OPTSweepResult(0, caps, zeros(), zeros(), zeros(), zeros(),
                              zeros(), zeros(), zeros())

    caps_l: List[int] = caps.tolist()
    lines_l = lines.tolist()
    w_l = writes.tolist()
    with phase("next_use"):
        nxt_l = next_occurrences(lines).tolist()

    level: dict = {}        # line -> smallest capacity index holding it
    nu_cur: dict = {}       # line -> current next use (lazy-heap validity)
    hw: dict = {}           # line -> written since it went cold
    mlev: dict = {}         # line -> max hit level since the last write
    heaps: List[list] = [[] for _ in range(K)]  # (-next_use, line) per level
    cnt = [0] * K           # lines per level
    hist = [0] * (K + 1)    # accesses per hit level (K = missed everywhere)
    victims_m = [0] * K
    victims_e = [0] * K
    heappush, heappop = heapq.heappush, heapq.heappop
    level_get = level.get
    hw_get = hw.get

    # The replay loop is wrapped manually rather than re-indented under a
    # ``with`` block; the hook only records time, so there is no cleanup
    # to protect.
    replay = phase("opt_replay")
    replay.__enter__()
    for t in range(n):
        x = lines_l[t]
        w = w_l[t]
        j = level_get(x, K)
        hist[j] += 1
        if j:
            # Misses at capacities 0..j-1.  Snapshot resident counts
            # first: an eviction moves its victim to a deeper level,
            # which must not disturb the fullness tests of the larger
            # capacities (their residents are unchanged by it).
            sizes = []
            s = 0
            for i in range(j):
                s += cnt[i]
                sizes.append(s)
            for i in range(j):
                if sizes[i] < caps_l[i]:
                    continue  # cache not full yet: fill without eviction
                # Victim = worst (farthest next use, then smallest line)
                # valid entry across levels 0..i, i.e. over exactly the
                # residents of capacity i.
                best = None
                best_lv = -1
                for lv in range(i + 1):
                    h = heaps[lv]
                    while h:
                        negnu, cand = h[0]
                        if (level_get(cand, -1) == lv
                                and nu_cur.get(cand) == -negnu):
                            break
                        heappop(h)
                    if h and (best is None or h[0] < best):
                        best = h[0]
                        best_lv = lv
                negnu, v = heappop(heaps[best_lv])
                cnt[best_lv] -= 1
                if hw_get(v, False) and mlev[v] <= i:
                    victims_m[i] += 1
                else:
                    victims_e[i] += 1
                if i + 1 < K:
                    # Still resident in every larger cache.
                    level[v] = i + 1
                    cnt[i + 1] += 1
                    heappush(heaps[i + 1], (negnu, v))
                else:
                    del level[v]
                    del nu_cur[v]
        if j < K:
            cnt[j] -= 1
        cnt[0] += 1
        level[x] = 0
        nu = nxt_l[t]
        nu_cur[x] = nu
        heappush(heaps[0], (-nu, x))
        if w:
            hw[x] = True
            mlev[x] = 0      # a write(-allocate) dirties every capacity
        elif j == K:
            hw[x] = False    # cold fill: clean everywhere
            mlev[x] = 0
        elif hw_get(x, False) and j > mlev[x]:
            mlev[x] = j      # refilled clean at capacities < j
    replay.__exit__(None, None, None)

    # ----- end-of-trace flush (folded into the run, as _run_belady) ----- #
    wb_diff = [0] * (K + 1)
    ve_diff = [0] * (K + 1)
    for x, lv in level.items():
        if hw_get(x, False):
            dirty_lo = mlev[x]
            if dirty_lo < lv:
                dirty_lo = lv
            wb_diff[dirty_lo] += 1
            ve_diff[lv] += 1
            ve_diff[dirty_lo] -= 1
        else:
            ve_diff[lv] += 1

    # hits[i] = accesses whose level <= i; the histogram tail (level K)
    # missed every capacity.
    hits = np.cumsum(np.asarray(hist[:K], dtype=np.int64))
    misses = n - hits
    return OPTSweepResult(
        accesses=n,
        capacities=caps,
        hits=hits,
        misses=misses,
        fills=misses.copy(),
        victims_m=np.asarray(victims_m, dtype=np.int64),
        victims_e=np.asarray(victims_e, dtype=np.int64),
        flush_writebacks=np.cumsum(
            np.asarray(wb_diff[:K], dtype=np.int64)),
        flush_victims_e=np.cumsum(
            np.asarray(ve_diff[:K], dtype=np.int64)),
    )


def simulate_opt(lines: np.ndarray, writes: np.ndarray,
                 capacity_lines: int) -> OPTSweepResult:
    """The batched Belady kernel for a single capacity (a one-column
    sweep)."""
    return simulate_opt_sweep(lines, writes, [capacity_lines])
