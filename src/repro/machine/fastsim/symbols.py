"""Tile super-symbols: fold repeated tile visits before the stack passes.

Tile-granular trace builders emit one :class:`~repro.machine.trace.
TraceBuffer` chunk per base-tile visit, so a trace is really a short
sequence of *visits* drawn from a small alphabet of distinct chunks.
:func:`symbolize` compresses that structure explicitly: each distinct
chunk line-sequence becomes one **super-symbol** with a per-symbol line
footprint, and the trace becomes a stream of ``(symbol, write)`` visits
— for the Section-6 matmul shape that is a 4x shorter stream (the base
tile size).

The payoff is that both stack passes then run at *visit* granularity
and expand back to exact per-capacity event counters:

* **LRU** (:func:`fold_lru_symbols`) — when symbol footprints are
  disjoint line sets with distinct lines (checked by ``symbolize``; it
  refuses otherwise), the events of a warm visit are consecutive
  accesses whose previous occurrences are consecutive positions inside
  the previous visit of the same symbol, so by the run-uniformity
  theorem (:mod:`repro.machine.fastsim.distances`) they all share one
  stack distance.  Per-visit distances come from the weighted
  run-compressed inversion count over visit start positions (each
  earlier visit contributes its full event count iff its start is
  later than the current visit's previous start — visit event ranges
  are chunks, which never straddle a chunk boundary), and the
  capacity fold of :func:`~repro.machine.fastsim.lru.
  simulate_lru_sweep` is replayed verbatim with visit weights: the
  write flag is uniform per chunk, so the per-line has-write / dirty
  threshold recurrences are per-symbol recurrences, identical for
  every line of the footprint.
* **OPT** (:func:`fold_opt_symbols`) — next uses are visit-granular
  too (position ``p`` of a visit is next used at position ``p`` of the
  symbol's next visit), and within a visit they are strictly
  increasing, so a fully-resident visit needs only *one* lazy-heap
  entry covering the whole footprint run: the run's worst (last)
  position shields the rest, and an eviction peels it off and re-pushes
  the remainder.  Hit visits with the whole footprint at level 0 cost
  O(1) heap work instead of O(tile).

Both folds are bit-identical to their event-granular counterparts (and
hence to :class:`repro.machine.cache.CacheSim` + flush) — parity- and
hypothesis-tested, never approximated.  Traces whose chunks violate the
footprint preconditions (overlapping tiles, duplicate lines inside a
chunk, mixed read/write chunks) make :func:`symbolize` return ``None``
and callers fall back to the event-granular path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.machine.fastsim.distances import warm_distances
from repro.machine.fastsim.lru import LRUSweepResult, simulate_lru_sweep
from repro.machine.fastsim.opt import OPTSweepResult, simulate_opt_sweep
from repro.machine.fastsim.profile import phase
from repro.machine.trace import Trace

__all__ = [
    "SymbolTrace",
    "symbolize",
    "fold_lru_symbols",
    "fold_opt_symbols",
    "simulate_lru_sweep_trace",
    "simulate_opt_sweep_trace",
]


@dataclass(frozen=True)
class SymbolTrace:
    """A tile-granular trace compressed to a super-symbol visit stream.

    Symbols are the distinct chunk line-sequences (the write flag is
    *not* part of the identity — it lives on the visit).  Footprints
    are concatenated in ``sym_lines`` and are guaranteed pairwise
    disjoint with internally distinct lines, which is exactly the
    precondition under which the visit-granular folds are exact.
    """

    #: symbol id per visit, in trace order.
    visits: np.ndarray
    #: per-visit write flag (uniform across the chunk by construction).
    visit_writes: np.ndarray
    #: event index of each visit's first event.
    visit_starts: np.ndarray
    #: events (= distinct lines) per symbol.
    sym_sizes: np.ndarray
    #: offset of each symbol's footprint in ``sym_lines``.
    sym_offsets: np.ndarray
    #: concatenated symbol footprints (globally distinct line ids).
    sym_lines: np.ndarray
    #: total event count of the underlying trace.
    n_events: int

    @property
    def n_visits(self) -> int:
        return int(len(self.visits))

    @property
    def n_symbols(self) -> int:
        return int(len(self.sym_sizes))

    @property
    def compression(self) -> float:
        """Event→symbol compression ratio (events per visit)."""
        return self.n_events / max(self.n_visits, 1)

    def expand(self) -> Tuple[np.ndarray, np.ndarray]:
        """Reconstruct the flat ``(lines, writes)`` event arrays."""
        z = self.sym_sizes[self.visits]
        idx = (np.repeat(self.sym_offsets[self.visits], z)
               + np.arange(self.n_events, dtype=np.int64)
               - np.repeat(self.visit_starts, z))
        return self.sym_lines[idx], np.repeat(self.visit_writes, z)


def symbolize(lines: np.ndarray, writes: np.ndarray,
              chunk_lens: np.ndarray) -> Optional[SymbolTrace]:
    """Compress a chunked trace into a :class:`SymbolTrace`.

    Returns ``None`` when the chunk structure does not support an exact
    visit-granular fold: empty traces, chunks mixing reads and writes,
    or footprints that overlap across symbols / repeat a line within a
    chunk.  Callers treat ``None`` as "use the event-granular path".

    Raises ``ValueError`` if ``chunk_lens`` does not partition the
    event arrays — that is a malformed trace, not a fallback case.
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    writes = np.ascontiguousarray(writes, dtype=bool)
    chunk_lens = np.asarray(chunk_lens, dtype=np.int64)
    n = len(lines)
    V = len(chunk_lens)
    if V == 0:
        if n == 0:
            return None
        raise ValueError("chunk_lens is empty but the trace is not")
    if (chunk_lens <= 0).any():
        raise ValueError("chunk lengths must be positive")
    if int(chunk_lens.sum()) != n:
        raise ValueError(f"chunk_lens sums to {int(chunk_lens.sum())}, "
                         f"trace has {n} events")

    with phase("supersymbol_fold"):
        starts = np.cumsum(chunk_lens) - chunk_lens
        # Visit write flags must be chunk-uniform for the per-symbol
        # dirty recurrences to stand in for the per-line ones.
        visit_writes = writes[starts]
        if not np.array_equal(writes, np.repeat(visit_writes, chunk_lens)):
            return None

        # Under the disjoint-footprint precondition a chunk's *first
        # line* already identifies its symbol (a line belongs to exactly
        # one symbol position), so dedup on that scalar key and then
        # verify: chunks sharing a key must be identical sequences —
        # if they are not, the footprints overlap on the key line and
        # the trace is not symbolizable anyway.
        keys = lines[starts]
        _, rep_visit, sym_of_visit = np.unique(
            keys, return_index=True, return_inverse=True)
        sym_of_visit = sym_of_visit.reshape(-1).astype(np.int64)
        sym_sizes = chunk_lens[rep_visit]
        if not np.array_equal(chunk_lens, sym_sizes[sym_of_visit]):
            return None
        # Every chunk must equal its symbol's representative chunk.
        intra = np.arange(n, dtype=np.int64) - np.repeat(starts, chunk_lens)
        rep_start_v = starts[rep_visit][sym_of_visit]
        if not np.array_equal(lines,
                              lines[np.repeat(rep_start_v, chunk_lens)
                                    + intra]):
            return None
        sym_offsets = np.cumsum(sym_sizes) - sym_sizes
        L = int(sym_sizes.sum())
        rep_starts = starts[rep_visit]
        sym_lines = lines[np.repeat(rep_starts, sym_sizes)
                          + np.arange(L, dtype=np.int64)
                          - np.repeat(sym_offsets, sym_sizes)]
        # Exactness precondition: every line belongs to exactly one
        # symbol position (disjoint footprints, distinct within).
        if len(np.unique(sym_lines)) != L:
            return None

    return SymbolTrace(
        visits=sym_of_visit,
        visit_writes=visit_writes,
        visit_starts=starts,
        sym_sizes=sym_sizes,
        sym_offsets=sym_offsets,
        sym_lines=sym_lines,
        n_events=n,
    )


def _check_caps(capacities: Union[Sequence[int], np.ndarray]) -> np.ndarray:
    caps = np.unique(np.asarray(capacities, dtype=np.int64))
    if len(caps) == 0:
        raise ValueError("need at least one capacity")
    if caps[0] < 1:
        raise ValueError(f"capacities must be >= 1 line, got {caps[0]}")
    return caps


def _visit_reuse(st: SymbolTrace
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Grouped visit order, first-visit mask (grouped) and previous
    visit per visit (time order, ``-1`` for a symbol's first visit)."""
    order_v = np.argsort(st.visits, kind="stable")
    sv = st.visits[order_v]
    first_g = np.empty(len(sv), dtype=bool)
    first_g[:1] = True
    first_g[1:] = sv[1:] != sv[:-1]
    prev_v = np.full(len(sv), -1, dtype=np.int64)
    same = ~first_g[1:]
    prev_v[order_v[1:][same]] = order_v[:-1][same]
    return order_v, first_g, prev_v


def fold_lru_symbols(
    st: SymbolTrace,
    capacities: Union[Sequence[int], np.ndarray],
) -> LRUSweepResult:
    """Exact multi-capacity LRU counters from the super-symbol stream.

    This is :func:`repro.machine.fastsim.lru.simulate_lru_sweep`'s fold
    executed at visit granularity: every event-level quantity is uniform
    across a visit's events (distance by run-uniformity, write state by
    chunk-uniform flags), so event bincounts become visit bincounts
    weighted by the symbol size, and only the end-of-trace stack is
    expanded back to per-line granularity (one entry per distinct line,
    not per event).  Bit-identical to the event-granular sweep.
    """
    caps = _check_caps(capacities)
    K = len(caps)
    n = st.n_events
    V = st.n_visits
    starts_v = st.visit_starts
    z_v = st.sym_sizes[st.visits]

    order_v, first_g, prev_v = _visit_reuse(st)
    with phase("distance_pass"):
        warm_v = prev_v >= 0
        dist = np.full(V, -1, dtype=np.int64)
        wi = np.flatnonzero(warm_v)
        if len(wi):
            dist[wi] = warm_distances(starts_v[wi], starts_v[prev_v[wi]],
                                      sizes=z_v[wi])

    with phase("capacity_fold"):
        big = np.int64(max(int(caps[-1]), n) + 1)
        dist_c = np.where(warm_v, dist, big)

        def ub(x):  # number of capacities <= x: index bound for "C <= x"
            return np.searchsorted(caps, x, side="right").astype(np.int64)

        # ---------------- hits / misses / fills ----------------------- #
        # Every event of a visit shares its distance: weight by size.
        zf = z_v.astype(np.float64)
        diff = -np.bincount(ub(dist_c), weights=zf, minlength=K + 1)
        diff[0] += n
        misses = np.cumsum(diff)[:K].astype(np.int64)
        hits = n - misses
        fills = misses.copy()

        # ---------------- per-symbol write state ---------------------- #
        # The grouped recurrences of the event fold, one step per visit;
        # chunk-uniform write flags make them per-line exact.
        dist_g = dist_c[order_v]
        w_g = st.visit_writes[order_v]
        z_g = z_v[order_v]
        w_int = w_g.astype(np.int64)
        g_starts = np.flatnonzero(first_g)
        gid = np.cumsum(first_g) - 1
        cum_w_excl = np.cumsum(w_int) - w_int
        has_write = (np.cumsum(w_int) - cum_w_excl[g_starts][gid]) > 0
        seg_val = np.where(w_g | first_g, 0, dist[order_v])
        seg_id = np.cumsum((w_g | first_g).astype(np.int64))
        seg_big = np.int64(n + 3)
        m_state = (np.maximum.accumulate(seg_val + seg_id * seg_big)
                   - seg_id * seg_big)

        acc = {name: np.zeros(K + 1, dtype=np.float64)
               for name in ("victims_m", "victims_e",
                            "flush_writebacks", "flush_victims_e")}

        def add_ranges(name, lo, hi, weights=None):
            """+weight on capacity indices [lo, hi) for each element."""
            acc[name] += (np.bincount(lo, weights=weights, minlength=K + 1)
                          - np.bincount(hi, weights=weights,
                                        minlength=K + 1))[:K + 1]

        # ---------------- in-trace evictions (reuse gaps) ------------- #
        gaps = np.flatnonzero(~first_g)
        if len(gaps):
            zg = z_g[gaps].astype(np.float64)
            ub_d = ub(dist_g[gaps])
            hw_p = has_write[gaps - 1]
            m_p = m_state[gaps - 1]
            dirty_lo = np.where(hw_p, np.minimum(ub(m_p), ub_d), ub_d)
            add_ranges("victims_m", dirty_lo, ub_d, zg)
            clean_hi = np.where(hw_p, ub(np.minimum(m_p, dist_g[gaps])),
                                ub_d)
            add_ranges("victims_e", np.zeros(len(gaps), dtype=np.int64),
                       clean_hi, zg)

        # ---------------- end of trace: per-line expansion ------------ #
        # Final stack depths per line: symbols ordered by last-visit
        # start descending, positions within a footprint by index
        # descending (later positions are more recent).
        ends_g = np.flatnonzero(np.append(first_g[1:], True))
        last_start = starts_v[order_v[ends_g]]   # by symbol id
        hw_s = has_write[ends_g]
        m_s = m_state[ends_g]
        L = int(len(st.sym_lines))
        ord_desc = np.argsort(-last_start)
        zr = st.sym_sizes[ord_desc]
        blk = np.repeat(np.cumsum(zr) - zr, zr)
        i_local = np.arange(L, dtype=np.int64) - blk
        depth = blk + np.repeat(zr, zr) - 1 - i_local
        hw_l = np.repeat(hw_s[ord_desc], zr)
        m_l = np.repeat(m_s[ord_desc], zr)
        ub_e = ub(depth)
        # Evicted before the end of the trace (C <= depth):
        dirty_lo = np.where(hw_l, np.minimum(ub(m_l), ub_e), ub_e)
        add_ranges("victims_m", dirty_lo, ub_e)
        clean_hi = np.where(hw_l, ub(np.minimum(m_l, depth)), ub_e)
        add_ranges("victims_e", np.zeros(L, dtype=np.int64), clean_hi)
        # Still resident at flush (C > depth):
        top = np.full(L, K, dtype=np.int64)
        flush_lo = np.where(hw_l, ub(np.maximum(m_l, depth)), top)
        add_ranges("flush_writebacks", flush_lo, top)
        clean_flush_hi = np.where(hw_l, np.maximum(ub(m_l), ub_e), top)
        add_ranges("flush_victims_e", ub_e, clean_flush_hi)

        # LRU -> MRU stack: ascending last-visit start, positions
        # ascending within a footprint.
        ord_asc = ord_desc[::-1]
        za = st.sym_sizes[ord_asc]
        blk_a = np.repeat(np.cumsum(za) - za, za)
        idx = (np.repeat(st.sym_offsets[ord_asc], za)
               + np.arange(L, dtype=np.int64) - blk_a)
    return LRUSweepResult(
        accesses=n,
        capacities=caps,
        hits=hits,
        misses=misses,
        fills=fills,
        victims_m=np.cumsum(acc["victims_m"])[:K].astype(np.int64),
        victims_e=np.cumsum(acc["victims_e"])[:K].astype(np.int64),
        flush_writebacks=np.cumsum(
            acc["flush_writebacks"])[:K].astype(np.int64),
        flush_victims_e=np.cumsum(
            acc["flush_victims_e"])[:K].astype(np.int64),
        stack_lines=st.sym_lines[idx],
        stack_has_write=np.repeat(hw_s[ord_asc], za),
        stack_m=np.repeat(m_s[ord_asc], za),
    )


def fold_opt_symbols(
    st: SymbolTrace,
    capacities: Union[Sequence[int], np.ndarray],
) -> OPTSweepResult:
    """Exact multi-capacity Belady counters from the super-symbol stream.

    The replay of :func:`repro.machine.fastsim.opt.simulate_opt_sweep`
    at visit granularity.  Next uses are visit-granular (position ``p``
    is next used at ``start(next visit) + p``; disjoint footprints make
    that exact) and strictly increasing within a visit, so one heap
    entry ``(-(nu_base + hi - 1), line, symbol, lo, hi, seq, nu_base)``
    stands for the whole run of positions ``[lo, hi)`` of a visit: only
    the last position can be the global Belady victim, and evicting it
    peels the run down to ``[lo, hi - 1)``.  Validity is a per-position
    sequence number (any access / eviction / level move bumps it), so
    stale entries lazily shrink or vanish exactly like the event-level
    lazy heap.  A visit whose footprint is fully resident at level 0
    (the common case on tiled traces) costs O(1): one histogram bump,
    one sequence bump, one heap push.  Bit-identical to the
    event-granular sweep.
    """
    caps = _check_caps(capacities)
    K = len(caps)
    n = st.n_events
    V = st.n_visits
    S = st.n_symbols

    order_v, first_g, prev_v = _visit_reuse(st)
    with phase("next_use"):
        # Next visit of each visit; sentinel visits (a symbol's last)
        # give every position next use n + 1, as next_occurrences does.
        nxt_v = np.full(V, -1, dtype=np.int64)
        same = ~first_g[1:]
        nxt_v[order_v[:-1][same]] = order_v[1:][same]
        nu_base = np.where(nxt_v >= 0, st.visit_starts[nxt_v], -1)

    visits_l = st.visits.tolist()
    w_l = st.visit_writes.tolist()
    nb_l = nu_base.tolist()
    sizes_l = st.sym_sizes.tolist()
    offs_l = st.sym_offsets.tolist()
    lines_flat = st.sym_lines.tolist()
    sym_lines_l: List[List[int]] = [
        lines_flat[offs_l[s]:offs_l[s] + sizes_l[s]] for s in range(S)]

    caps_l: List[int] = caps.tolist()
    # Per-symbol per-position state (footprints are disjoint, so a
    # (symbol, position) pair is a line).
    lev = [[K] * z for z in sizes_l]
    mlev = [[0] * z for z in sizes_l]
    hws = [[False] * z for z in sizes_l]
    pseq = [[0] * z for z in sizes_l]
    uniform0 = [False] * S   # whole footprint resident at level 0
    heaps: List[list] = [[] for _ in range(K)]
    cnt = [0] * K
    hist = [0] * (K + 1)
    victims_m = [0] * K
    victims_e = [0] * K
    seq = 0
    sentinel = n + 1
    heappush, heappop = heapq.heappush, heapq.heappop

    replay = phase("opt_replay")
    replay.__enter__()
    for v in range(V):
        loc = visits_l[v]
        w = w_l[v]
        nb = nb_l[v]
        z = sizes_l[loc]
        s_lines = sym_lines_l[loc]
        s_pseq = pseq[loc]
        if uniform0[loc]:
            # Whole footprint hits at level 0; no eviction anywhere.
            hist[0] += z
            seq += 1
            for p in range(z):
                s_pseq[p] = seq
            if nb >= 0:
                heappush(heaps[0],
                         (-(nb + z - 1), s_lines[z - 1], loc, 0, z, seq,
                          nb))
            else:
                for p in range(z):
                    heappush(heaps[0],
                             (-sentinel, s_lines[p], loc, p, p + 1, seq,
                              sentinel - p))
            if w:
                hws[loc] = [True] * z
                mlev[loc] = [0] * z
            continue

        s_lev = lev[loc]
        s_mlev = mlev[loc]
        s_hw = hws[loc]
        for p in range(z):
            j = s_lev[p]
            hist[j] += 1
            if j:
                sizes = []
                s = 0
                for i in range(j):
                    s += cnt[i]
                    sizes.append(s)
                for i in range(j):
                    if sizes[i] < caps_l[i]:
                        continue
                    # Victim = worst valid entry across levels 0..i.
                    best = None
                    best_lv = -1
                    for lv in range(i + 1):
                        h = heaps[lv]
                        while h:
                            e = h[0]
                            est = pseq[e[2]]
                            if est[e[4] - 1] == e[5]:
                                break
                            heappop(h)
                            # Shrink: the deepest position still owned
                            # by this push heads the remainder run.
                            pp = e[4] - 2
                            lo = e[3]
                            while pp >= lo and est[pp] != e[5]:
                                pp -= 1
                            if pp >= lo:
                                heappush(h, (-(e[6] + pp),
                                             sym_lines_l[e[2]][pp],
                                             e[2], lo, pp + 1, e[5],
                                             e[6]))
                        if h and (best is None or h[0] < best):
                            best = h[0]
                            best_lv = lv
                    e = heappop(heaps[best_lv])
                    vloc = e[2]
                    vp = e[4] - 1
                    if vp > e[3]:
                        heappush(heaps[best_lv],
                                 (-(e[6] + vp - 1),
                                  sym_lines_l[vloc][vp - 1],
                                  vloc, e[3], vp, e[5], e[6]))
                    cnt[best_lv] -= 1
                    if hws[vloc][vp] and mlev[vloc][vp] <= i:
                        victims_m[i] += 1
                    else:
                        victims_e[i] += 1
                    seq += 1
                    pseq[vloc][vp] = seq
                    uniform0[vloc] = False
                    if i + 1 < K:
                        lev[vloc][vp] = i + 1
                        cnt[i + 1] += 1
                        heappush(heaps[i + 1],
                                 (e[0], e[1], vloc, vp, vp + 1, seq,
                                  e[6]))
                    else:
                        lev[vloc][vp] = K
            if j < K:
                cnt[j] -= 1
            cnt[0] += 1
            s_lev[p] = 0
            seq += 1
            s_pseq[p] = seq
            if nb >= 0:
                heappush(heaps[0],
                         (-(nb + p), s_lines[p], loc, p, p + 1, seq, nb))
            else:
                heappush(heaps[0],
                         (-sentinel, s_lines[p], loc, p, p + 1, seq,
                          sentinel - p))
            if w:
                s_hw[p] = True
                s_mlev[p] = 0
            elif j == K:
                s_hw[p] = False
                s_mlev[p] = 0
            elif s_hw[p] and j > s_mlev[p]:
                s_mlev[p] = j
        uniform0[loc] = not any(s_lev)
    replay.__exit__(None, None, None)

    # ----- end-of-trace flush (folded into the run, as the event path) - #
    wb_diff = [0] * (K + 1)
    ve_diff = [0] * (K + 1)
    for sidx in range(S):
        s_lev = lev[sidx]
        s_hw = hws[sidx]
        s_mlev = mlev[sidx]
        for p in range(sizes_l[sidx]):
            lvp = s_lev[p]
            if lvp >= K:
                continue
            if s_hw[p]:
                dirty_lo = s_mlev[p]
                if dirty_lo < lvp:
                    dirty_lo = lvp
                wb_diff[dirty_lo] += 1
                ve_diff[lvp] += 1
                ve_diff[dirty_lo] -= 1
            else:
                ve_diff[lvp] += 1

    hits = np.cumsum(np.asarray(hist[:K], dtype=np.int64))
    misses = n - hits
    return OPTSweepResult(
        accesses=n,
        capacities=caps,
        hits=hits,
        misses=misses,
        fills=misses.copy(),
        victims_m=np.asarray(victims_m, dtype=np.int64),
        victims_e=np.asarray(victims_e, dtype=np.int64),
        flush_writebacks=np.cumsum(
            np.asarray(wb_diff[:K], dtype=np.int64)),
        flush_victims_e=np.cumsum(
            np.asarray(ve_diff[:K], dtype=np.int64)),
    )


def simulate_lru_sweep_trace(
    trace: Trace,
    capacities: Union[Sequence[int], np.ndarray],
) -> LRUSweepResult:
    """LRU sweep of a :class:`~repro.machine.trace.Trace`, using the
    super-symbol fold when the chunk structure supports it and falling
    back to the event-granular pass otherwise.  Identical results
    either way."""
    st = None
    if trace.chunk_lens is not None:
        st = symbolize(trace.lines, trace.writes, trace.chunk_lens)
    if st is None:
        return simulate_lru_sweep(trace.lines, trace.writes, capacities)
    return fold_lru_symbols(st, capacities)


def simulate_opt_sweep_trace(
    trace: Trace,
    capacities: Union[Sequence[int], np.ndarray],
) -> OPTSweepResult:
    """Belady sweep of a :class:`~repro.machine.trace.Trace` — symbol
    path when possible, event path otherwise, identical results."""
    st = None
    if trace.chunk_lens is not None:
        st = symbolize(trace.lines, trace.writes, trace.chunk_lens)
    if st is None:
        return simulate_opt_sweep(trace.lines, trace.writes, capacities)
    return fold_opt_symbols(st, capacities)
