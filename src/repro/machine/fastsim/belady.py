"""Vectorized preprocessing for the offline Belady/MIN simulation.

:meth:`repro.machine.cache.CacheSim._run_belady` needs, for every access,
the index of the *next* use of the same line — historically computed with
a Python reverse scan over the whole trace.  The scan is a pure function
of the line array, so it vectorizes into one stable argsort plus a
shifted comparison; the eviction loop itself (a lazy max-heap over
current next-use indices) stays as-is, but its setup cost drops from
per-access Python work to a handful of numpy passes.

The ``n + 1`` "never used again" sentinel is preserved exactly, so heap
ordering — and therefore every counter — is bit-identical to the scan.
"""

from __future__ import annotations

import numpy as np

from repro.machine.fastsim.distances import next_occurrences

__all__ = ["belady_next_use"]


def belady_next_use(lines: np.ndarray) -> np.ndarray:
    """``next_use[i]`` = next index accessing ``lines[i]``, else ``n + 1``."""
    return next_occurrences(np.asarray(lines, dtype=np.int64))
