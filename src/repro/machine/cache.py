"""Write-back, write-allocate cache simulator (paper Section 6).

This is the software stand-in for the paper's hardware-counter measurements
on the Xeon 7560 ("Nehalem-EX"): we replay address traces through a cache of
configurable capacity, line size, associativity and replacement policy, and
report counters under the same names the paper uses:

* ``LLC_S_FILLS.E``   — lines filled into the cache on misses;
* ``LLC_VICTIMS.M``   — *modified* (dirty) lines evicted, i.e. obligatory
  write-backs to the level below — the paper's measure of writes to slow
  memory;
* ``LLC_VICTIMS.E``   — clean ("exclusive") lines evicted and forgotten.

Coherence is trivially modelled for the single-threaded experiments: lines
are E (clean) or M (dirty), matching the MESIF subset the paper says is
relevant (Section 6.1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.machine.policies import (
    BeladyPolicy,
    LRUPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.machine.trace import Trace
from repro.util import check_positive_int

__all__ = ["CacheSim", "CacheStats", "AUTO_TILED_MIN_EVENTS"]

#: events past which ``fastsim_min_events="auto"`` routes a tile-chunked
#: trace through the super-symbol fold (below it the tuned per-access
#: loops win on constant factors).
AUTO_TILED_MIN_EVENTS = 1 << 15


@dataclass
class CacheStats:
    """Event counters, in cache lines."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    fills: int = 0
    victims_m: int = 0
    victims_e: int = 0
    flush_writebacks: int = 0

    @property
    def writebacks(self) -> int:
        """Total dirty lines written to the level below (evictions + flush)."""
        return self.victims_m + self.flush_writebacks

    @property
    def victims(self) -> int:
        return self.victims_m + self.victims_e

    def as_dict(self) -> dict:
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "LLC_S_FILLS.E": self.fills,
            "LLC_VICTIMS.M": self.victims_m,
            "LLC_VICTIMS.E": self.victims_e,
            "writebacks": self.writebacks,
        }


class CacheSim:
    """A single cache level fed by word-address traces.

    Parameters
    ----------
    capacity_words:
        Cache capacity in words.  Must be a multiple of ``line_size``.
    line_size:
        Words per cache line (default 8 ≈ 64-byte lines of float64).
    policy:
        Replacement policy name (see :data:`repro.machine.policies.POLICIES`)
        or a policy *class*.  ``"belady"`` selects the offline ideal-cache
        simulation.
    associativity:
        Lines per set; ``None`` (default) means fully associative.
    rng:
        Only used by the random policy; overrides ``seed``.
    seed:
        Seed for the random policy's generator, so randomized sweeps are
        reproducible point-by-point.  ``None`` keeps the historical
        behaviour (every set gets its own generator seeded 0).
    fastsim_min_events:
        Controls when replays route through the batched
        :mod:`repro.machine.fastsim` kernels (bit-identical counters and
        end state, no change to the per-access semantics).  The default
        ``"auto"`` keeps the tuned per-access loops for flat
        ``run_lines`` traces but sends :meth:`run_trace` calls with
        tile-chunk structure and at least :data:`AUTO_TILED_MIN_EVENTS`
        events through the super-symbol fold
        (:mod:`repro.machine.fastsim.symbols`), which beats the dict
        loop even at a single capacity.  An integer is an explicit
        event threshold for both entry points (including event-granular
        ``run_lines`` batching); ``None`` opts out of batching
        entirely.

    Notes
    -----
    Addresses are **word** addresses; the simulator maps them to lines.
    ``run(addrs, writes)`` replays a whole trace; ``access(addr, write)``
    is the single-step form.  Traces may also be supplied pre-translated to
    line ids via ``run_lines``.
    """

    def __init__(
        self,
        capacity_words: int,
        *,
        line_size: int = 8,
        policy: str = "lru",
        associativity: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        fastsim_min_events: Union[int, None, str] = "auto",
    ):
        check_positive_int(capacity_words, "capacity_words")
        check_positive_int(line_size, "line_size")
        if capacity_words % line_size != 0:
            raise ValueError(
                f"capacity_words={capacity_words} must be a multiple of "
                f"line_size={line_size}"
            )
        self.capacity_lines = capacity_words // line_size
        self.line_size = line_size
        self.policy_name = policy
        if associativity is None:
            associativity = self.capacity_lines
        check_positive_int(associativity, "associativity")
        if self.capacity_lines % associativity != 0:
            raise ValueError(
                f"capacity ({self.capacity_lines} lines) must be a multiple "
                f"of associativity ({associativity})"
            )
        self.associativity = associativity
        self.num_sets = self.capacity_lines // associativity
        self.seed = seed
        if rng is None and seed is not None:
            rng = np.random.default_rng(seed)
        kwargs = {"rng": rng} if policy == "random" else {}
        self._sets: list[ReplacementPolicy] = [
            make_policy(policy, associativity, **kwargs)
            for _ in range(self.num_sets)
        ]
        self._dirty: dict[int, bool] = {}
        self.fastsim_min_events = fastsim_min_events
        self.stats = CacheStats()
        self._offline = isinstance(self._sets[0], BeladyPolicy)
        #: line id evicted by the most recent access (None if no eviction);
        #: used by CacheHierarchySim to propagate write-backs downward.
        self._last_victim: Optional[int] = None
        self._last_victim_dirty: bool = False

    # ------------------------------------------------------------------ #
    # online path
    # ------------------------------------------------------------------ #
    def _set_of(self, line: int) -> ReplacementPolicy:
        return self._sets[line % self.num_sets]

    def access(self, addr: int, write: bool = False) -> None:
        """Access one word address (online policies only)."""
        if self._offline:
            raise RuntimeError(
                "Belady policy is offline; collect a trace and call run()"
            )
        self._access_line(addr // self.line_size, write)

    def _access_line(self, line: int, write: bool) -> None:
        st = self.stats
        st.accesses += 1
        dirty = self._dirty
        self._last_victim = None
        self._last_victim_dirty = False
        if line in dirty:
            st.hits += 1
            if write:
                dirty[line] = True
            self._set_of(line).touch(line, write)
            return
        st.misses += 1
        st.fills += 1
        pol = self._set_of(line)
        if pol.full:
            victim = pol.choose_victim()
            pol.remove(victim)
            self._last_victim = victim
            if dirty.pop(victim):
                st.victims_m += 1
                self._last_victim_dirty = True
            else:
                st.victims_e += 1
        pol.add(line, write)
        dirty[line] = write

    def run_lines(self, lines: np.ndarray, writes: np.ndarray) -> CacheStats:
        """Replay a trace of line ids.  Returns the (cumulative) stats."""
        lines = np.asarray(lines)
        writes = np.asarray(writes, dtype=bool)
        if lines.shape != writes.shape:
            raise ValueError("lines and writes must have matching shapes")
        thr = self.fastsim_min_events
        batch = isinstance(thr, int) and len(lines) >= thr
        if self._offline:
            if batch:
                self._run_belady_batched(lines, writes)
            else:
                self._run_belady(lines, writes)
        elif isinstance(self._sets[0], LRUPolicy) and self.num_sets == 1:
            if batch and not self._dirty:
                self._run_lru_batched(lines, writes)
            else:
                self._run_lru_fast(lines, writes)
        else:
            acc = self._access_line
            for line, w in zip(lines.tolist(), writes.tolist()):
                acc(line, w)
        return self.stats

    def run(self, addrs: np.ndarray, writes: np.ndarray) -> CacheStats:
        """Replay a trace of word addresses."""
        addrs = np.asarray(addrs)
        return self.run_lines(addrs // self.line_size, writes)

    def run_trace(self, trace: Trace) -> CacheStats:
        """Replay a finalized :class:`~repro.machine.trace.Trace`.

        Identical counters to ``run_lines(trace.lines, trace.writes)``;
        the difference is speed: when the trace carries tile-chunk
        structure and ``fastsim_min_events`` allows it (see the
        constructor), an empty fully-associative LRU cache — or any
        offline Belady run — folds the trace at super-symbol granularity
        instead of looping per event, then reconstructs the same end
        state.  Traces whose chunks don't symbolize (overlapping
        footprints, mixed read/write chunks) silently take the event
        path.
        """
        thr = self.fastsim_min_events
        if thr == "auto":
            min_events: Optional[int] = AUTO_TILED_MIN_EVENTS
        elif isinstance(thr, int):
            min_events = thr
        else:
            min_events = None
        eligible = (min_events is not None
                    and trace.chunk_lens is not None
                    and trace.n_events >= min_events)
        if eligible:
            if self._offline:
                from repro.machine.fastsim.symbols import (fold_opt_symbols,
                                                           symbolize)

                st = symbolize(trace.lines, trace.writes, trace.chunk_lens)
                if st is not None:
                    self._fold_belady_result(
                        fold_opt_symbols(st, [self.capacity_lines]))
                    return self.stats
            elif (isinstance(self._sets[0], LRUPolicy)
                    and self.num_sets == 1 and not self._dirty):
                from repro.machine.fastsim.symbols import (fold_lru_symbols,
                                                           symbolize)

                st = symbolize(trace.lines, trace.writes, trace.chunk_lens)
                if st is not None:
                    self._fold_lru_result(
                        fold_lru_symbols(st, [self.capacity_lines]))
                    return self.stats
        return self.run_lines(trace.lines, trace.writes)

    def flush(self) -> CacheStats:
        """Evict everything; dirty lines count as flush write-backs.

        The paper's experiments end with the output array written back to
        DRAM, so harnesses flush before reading ``LLC_VICTIMS`` totals —
        flush write-backs are reported separately but included in
        ``writebacks``.
        """
        if self._offline:
            # Offline runs flush internally at the end of run().
            return self.stats
        for pol in self._sets:
            for tag in list(pol.tags):
                pol.remove(tag)
                if self._dirty.pop(tag):
                    self.stats.flush_writebacks += 1
                else:
                    self.stats.victims_e += 1
        return self.stats

    @property
    def resident_lines(self) -> int:
        return len(self._dirty)

    # ------------------------------------------------------------------ #
    # fast path: fully-associative LRU (the default for big sweeps)
    # ------------------------------------------------------------------ #
    def _run_lru_fast(self, lines: np.ndarray, writes: np.ndarray) -> None:
        """Hand-inlined fully-associative LRU loop.

        Identical semantics to the generic path; exists because Figure-2/5
        sweeps replay millions of line events and the per-access overhead of
        the policy-object indirection dominates otherwise.
        """
        cap = self.capacity_lines
        dirty = self._dirty
        pol = self._sets[0]
        order = pol._order  # type: ignore[attr-defined]
        hits = misses = fills = vm = ve = 0
        for line, w in zip(lines.tolist(), writes.tolist()):
            if line in dirty:
                hits += 1
                if w:
                    dirty[line] = True
                del order[line]
                order[line] = None
            else:
                misses += 1
                fills += 1
                if len(order) >= cap:
                    victim = next(iter(order))
                    del order[victim]
                    if dirty.pop(victim):
                        vm += 1
                    else:
                        ve += 1
                order[line] = None
                dirty[line] = w
        st = self.stats
        st.accesses += len(lines)
        st.hits += hits
        st.misses += misses
        st.fills += fills
        st.victims_m += vm
        st.victims_e += ve

    # ------------------------------------------------------------------ #
    # batched path: fastsim stack-distance kernel (opt-in, exact)
    # ------------------------------------------------------------------ #
    def _run_lru_batched(self, lines: np.ndarray, writes: np.ndarray) -> None:
        """Replay via :func:`repro.machine.fastsim.simulate_lru`.

        Counters come from the vectorized stack-distance kernel; the LRU
        order and dirty bits are then reconstructed so this simulator
        stays resumable (``flush()`` and further accesses behave exactly
        as if the per-access loop had run).
        """
        from repro.machine.fastsim import simulate_lru

        self._fold_lru_result(simulate_lru(lines, writes,
                                           self.capacity_lines))

    def _fold_lru_result(self, res) -> None:
        """Fold an ``LRUSweepResult`` into the stats and rebuild the
        resumable LRU order / dirty bits from its end-of-trace stack."""
        st = res.stats(self.capacity_lines, include_flush=False)
        mine = self.stats
        mine.accesses += st.accesses
        mine.hits += st.hits
        mine.misses += st.misses
        mine.fills += st.fills
        mine.victims_m += st.victims_m
        mine.victims_e += st.victims_e
        resident, dirty = res.end_state(self.capacity_lines)
        order = self._sets[0]._order  # type: ignore[attr-defined]
        for line in resident.tolist():
            order[line] = None
        self._dirty = dict(zip(resident.tolist(), dirty.tolist()))

    def _run_belady_batched(self, lines: np.ndarray,
                            writes: np.ndarray) -> None:
        """Replay via :func:`repro.machine.fastsim.simulate_opt`.

        Counters come from the single-pass multi-capacity Belady kernel
        with its end-of-trace flush folded in, exactly as
        :meth:`_run_belady` folds its own — offline runs hold no
        resumable state, so the fold is the whole contract.
        """
        from repro.machine.fastsim import simulate_opt

        self._fold_belady_result(simulate_opt(lines, writes,
                                              self.capacity_lines))

    def _fold_belady_result(self, res) -> None:
        """Fold an ``OPTSweepResult`` (flush included) into the stats."""
        st = res.stats(self.capacity_lines, include_flush=True)
        mine = self.stats
        mine.accesses += st.accesses
        mine.hits += st.hits
        mine.misses += st.misses
        mine.fills += st.fills
        mine.victims_m += st.victims_m
        mine.victims_e += st.victims_e
        mine.flush_writebacks += st.flush_writebacks

    # ------------------------------------------------------------------ #
    # offline path: Belady / ideal cache
    # ------------------------------------------------------------------ #
    def _run_belady(self, lines: np.ndarray, writes: np.ndarray) -> None:
        """Farthest-next-use (MIN) replacement with dirty-bit tracking.

        Two-pass algorithm: next-use indices come from the vectorized
        fastsim preprocessor (one stable argsort instead of a Python
        reverse scan), then a lazy max-heap keyed by next use simulates
        the evictions.  Set associativity is ignored (the ideal-cache
        model of [24] is fully associative), matching how the paper uses
        it as a bound.
        """
        from repro.machine.fastsim import belady_next_use

        n = len(lines)
        next_use = belady_next_use(lines)
        lines_list = lines.tolist()
        cap = self.capacity_lines
        resident: dict[int, bool] = {}  # line -> dirty
        cur_next: dict[int, int] = {}
        heap: list[Tuple[int, int]] = []  # (-next_use, line), lazy entries
        st = self.stats
        nu_list = next_use.tolist()
        w_list = np.asarray(writes, dtype=bool).tolist()
        hits = misses = fills = vm = ve = 0
        for i in range(n):
            ln = lines_list[i]
            nu = nu_list[i]
            w = w_list[i]
            if ln in resident:
                hits += 1
                if w:
                    resident[ln] = True
            else:
                misses += 1
                fills += 1
                if len(resident) >= cap:
                    # Evict the line with the farthest *current* next use.
                    while True:
                        negnu, cand = heapq.heappop(heap)
                        if cand in resident and cur_next.get(cand) == -negnu:
                            break
                    if resident.pop(cand):
                        vm += 1
                    else:
                        ve += 1
                    del cur_next[cand]
                resident[ln] = w
            cur_next[ln] = nu
            heapq.heappush(heap, (-nu, ln))
        # End-of-trace flush.
        for ln, d in resident.items():
            if d:
                st.flush_writebacks += 1
            else:
                ve += 1
        st.accesses += n
        st.hits += hits
        st.misses += misses
        st.fills += fills
        st.victims_m += vm
        st.victims_e += ve
