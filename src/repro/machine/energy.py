"""Per-word energy accounting (the paper's motivating metric).

The introduction motivates write-avoidance by *energy* as much as time:
NVM writes cost far more energy than reads, and (Section 2.2) a write
buffer can hide latency but "does not avoid the per-word energy cost of
writing data".  :class:`EnergyModel` turns any measured counter set —
:class:`~repro.machine.hierarchy.TwoLevel`,
:class:`~repro.machine.hierarchy.MemoryHierarchy` or
:class:`~repro.machine.cache.CacheStats` — into joules, so algorithms can
be compared on the metric the paper actually cares about.

Default coefficients sketch a 2015-era PCM-backed node (per 64-bit word):
DRAM-class read/write vs PCM read ≈ 2× and PCM write ≈ 30× DRAM energy
(consistent with the paper's [18] citation of very slow PCM writes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cache import CacheStats
from repro.machine.hierarchy import MemoryHierarchy, TwoLevel
from repro.util import require

__all__ = ["EnergyModel"]


@dataclass
class EnergyModel:
    """Energy per word moved, in arbitrary units (default: pJ/word).

    ``read_fast``/``write_fast`` apply to the fast side of a boundary,
    ``read_slow``/``write_slow`` to the slow side (e.g. NVM).
    """

    read_fast: float = 1.0
    write_fast: float = 1.0
    read_slow: float = 2.0
    write_slow: float = 30.0

    def validate(self) -> None:
        for name in ("read_fast", "write_fast", "read_slow", "write_slow"):
            require(getattr(self, name) >= 0, f"{name} must be nonnegative")

    # ------------------------------------------------------------------ #
    def two_level(self, hier: TwoLevel) -> float:
        """Total energy of a measured two-level execution."""
        self.validate()
        return (
            hier.reads_from_fast * self.read_fast
            + hier.writes_to_fast * self.write_fast
            + hier.reads_from_slow * self.read_slow
            + hier.writes_to_slow * self.write_slow
        )

    def boundary(self, hier: MemoryHierarchy, s: int) -> float:
        """Energy of the traffic across channel *s* (levels s ↔ s+1):
        loads read slow + write fast; stores read fast + write slow."""
        self.validate()
        loads = hier.loads_on_channel(s)
        stores = hier.stores_on_channel(s)
        return (
            loads * (self.read_slow + self.write_fast)
            + stores * (self.read_fast + self.write_slow)
        )

    def cache_boundary(self, stats: CacheStats, line_words: int = 8) -> float:
        """Energy at a simulated cache's lower boundary: fills read the
        level below, write-backs write it."""
        self.validate()
        require(line_words >= 1, "line_words must be >= 1")
        return line_words * (
            stats.fills * self.read_slow
            + stats.writebacks * self.write_slow
        )

    def write_share(self, hier: TwoLevel) -> float:
        """Fraction of energy spent on slow-memory writes — the quantity
        write-avoiding algorithms drive toward output-size/total."""
        total = self.two_level(hier)
        if total == 0:
            return 0.0
        return hier.writes_to_slow * self.write_slow / total
