"""Explicitly controlled multi-level memory hierarchy (paper Section 2).

Levels are numbered ``1 .. r`` from fastest/smallest (L1) to slowest/largest
(Lr); an implicit backing store sits behind Lr (conceptually "level r+1")
and is assumed to hold all data.  Kernels move data with
:meth:`MemoryHierarchy.load` and :meth:`MemoryHierarchy.store`; the paper's
refined accounting is applied automatically:

* a **load** into level *s* reads from level *s+1* and writes to level *s*;
* a **store** from level *s* reads from level *s* and writes to level *s+1*.

Capacity is enforced: kernels declare block residency with
:meth:`MemoryHierarchy.resident` (a context manager) or explicit
``alloc``/``free``, and exceeding a level's size raises
:class:`CapacityError`.  This is how tests verify that the paper's block-size
choices (e.g. ``b = sqrt(M/3)`` so that three blocks fit) are honest.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.machine.counters import ChannelCounters, LevelCounters
from repro.util import check_positive_int

__all__ = ["MemoryHierarchy", "TwoLevel", "CapacityError", "WriteBuffer"]


class CapacityError(RuntimeError):
    """A kernel tried to keep more data resident in a level than it holds."""


class MemoryHierarchy:
    """An r-level hierarchy with per-level read/write counters.

    Parameters
    ----------
    sizes:
        ``[M1, M2, ..., Mr]`` capacities in words, strictly increasing.
        ``math.inf`` is allowed for the last level.
    track_occupancy:
        If True (default), ``alloc``/``free``/``resident`` enforce capacity.

    Notes
    -----
    Channel *s* (``1 ≤ s ≤ r``) connects level *s* with level *s+1*; channel
    *r* connects Lr with the backing store.  ``load(s, w)`` therefore uses
    channel *s*.
    """

    def __init__(self, sizes: Sequence[float], *, track_occupancy: bool = True):
        if len(sizes) == 0:
            raise ValueError("need at least one level")
        prev = 0.0
        for i, m in enumerate(sizes):
            if not (m > prev):
                raise ValueError(
                    f"level sizes must be strictly increasing and positive; "
                    f"got {list(sizes)!r}"
                )
            prev = m
        self.sizes = list(sizes)
        self.r = len(sizes)
        self.track_occupancy = track_occupancy
        # Index 0 unused so that levels[s] is level s; levels[r+1] = backing.
        self.levels = [LevelCounters() for _ in range(self.r + 2)]
        self.channels = [ChannelCounters() for _ in range(self.r + 1)]
        self.occupancy = [0 for _ in range(self.r + 1)]

    # ------------------------------------------------------------------ #
    # data movement
    # ------------------------------------------------------------------ #
    def _check_level(self, level: int) -> None:
        if not (1 <= level <= self.r):
            raise ValueError(f"level must be in 1..{self.r}, got {level}")

    def load(self, level: int, words: int, *, msgs: int = 1) -> None:
        """Move *words* from level ``level+1`` into level ``level``.

        Counts a read at the slower level and a write at the faster level,
        and *msgs* messages on the connecting channel.
        """
        self._check_level(level)
        check_positive_int(words, "words")
        self.levels[level + 1].reads += words
        self.levels[level].writes += words
        self.channels[level].record_down(words, msgs)

    def store(self, level: int, words: int, *, msgs: int = 1) -> None:
        """Move *words* from level ``level`` out to level ``level+1``."""
        self._check_level(level)
        check_positive_int(words, "words")
        self.levels[level].reads += words
        self.levels[level + 1].writes += words
        self.channels[level].record_up(words, msgs)

    def create(self, level: int, words: int) -> None:
        """Create *words* directly in level ``level`` (an R2 residency
        beginning, e.g. zero-initializing an accumulator): one write per
        word at that level, no channel traffic."""
        self._check_level(level)
        check_positive_int(words, "words")
        self.levels[level].writes += words

    def touch_compute(self, level: int, reads: int = 0, writes: int = 0) -> None:
        """Account reads/writes caused by arithmetic entirely inside *level*.

        The paper's model says arithmetic only causes traffic in fast memory;
        most kernels do not need to call this (it never affects slow-memory
        write counts), but it is available for fine-grained audits.
        """
        self._check_level(level)
        self.levels[level].reads += reads
        self.levels[level].writes += writes

    # ------------------------------------------------------------------ #
    # occupancy
    # ------------------------------------------------------------------ #
    def alloc(self, level: int, words: int) -> None:
        self._check_level(level)
        check_positive_int(words, "words")
        if not self.track_occupancy:
            return
        if self.occupancy[level] + words > self.sizes[level - 1]:
            raise CapacityError(
                f"level L{level} (size {self.sizes[level - 1]}) cannot hold "
                f"{self.occupancy[level]} + {words} words"
            )
        self.occupancy[level] += words

    def free(self, level: int, words: int) -> None:
        self._check_level(level)
        if not self.track_occupancy:
            return
        if words > self.occupancy[level]:
            raise CapacityError(
                f"freeing {words} words from L{level} with only "
                f"{self.occupancy[level]} resident"
            )
        self.occupancy[level] -= words

    @contextmanager
    def resident(self, level: int, words: int) -> Iterator[None]:
        """Context manager marking *words* resident in *level*."""
        self.alloc(level, words)
        try:
            yield
        finally:
            self.free(level, words)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def reads_at(self, level: int) -> int:
        """Total word-reads observed at *level* (1..r+1; r+1 = backing)."""
        return self.levels[level].reads

    def writes_at(self, level: int) -> int:
        """Total word-writes observed at *level* (1..r+1; r+1 = backing)."""
        return self.levels[level].writes

    def loads_on_channel(self, s: int) -> int:
        return self.channels[s].words_down

    def stores_on_channel(self, s: int) -> int:
        return self.channels[s].words_up

    def traffic_on_channel(self, s: int) -> int:
        return self.channels[s].words

    def messages_on_channel(self, s: int) -> int:
        return self.channels[s].msgs

    def summary(self) -> dict:
        """Structured counter dump used by experiment harnesses."""
        return {
            "levels": {
                f"L{s}": {"reads": self.levels[s].reads, "writes": self.levels[s].writes}
                for s in range(1, self.r + 2)
            },
            "channels": {
                f"L{s + 1}<->L{s}": {
                    "loads": self.channels[s].words_down,
                    "stores": self.channels[s].words_up,
                    "msgs": self.channels[s].msgs,
                }
                for s in range(1, self.r + 1)
            },
        }

    def reset(self) -> None:
        for lc in self.levels:
            lc.reads = lc.writes = 0
        for ch in self.channels:
            ch.words_down = ch.msgs_down = ch.words_up = ch.msgs_up = 0
        self.occupancy = [0 for _ in self.occupancy]


class TwoLevel(MemoryHierarchy):
    """Two-level fast/slow convenience wrapper (the model of Theorem 1).

    ``fast`` is L1 (size *M*), ``slow`` is the backing store.  Exposes the
    quantities the paper's statements are phrased in: ``loads``, ``stores``,
    ``writes_to_fast``, ``writes_to_slow``, ``reads_from_slow``.
    """

    def __init__(self, M: float, *, track_occupancy: bool = True):
        if not (M > 0):
            raise ValueError(f"fast memory size must be positive, got {M}")
        super().__init__([M], track_occupancy=track_occupancy)

    # Movement shortcuts ------------------------------------------------ #
    def load_fast(self, words: int, *, msgs: int = 1) -> None:
        """Load *words* from slow memory into fast memory."""
        self.load(1, words, msgs=msgs)

    def store_slow(self, words: int, *, msgs: int = 1) -> None:
        """Store *words* from fast memory back to slow memory."""
        self.store(1, words, msgs=msgs)

    def create_fast(self, words: int) -> None:
        """Begin an R2 residency (create data directly in fast memory)."""
        self.create(1, words)

    # Paper-vocabulary properties --------------------------------------- #
    @property
    def M(self) -> float:
        return self.sizes[0]

    @property
    def loads(self) -> int:
        return self.channels[1].words_down

    @property
    def stores(self) -> int:
        return self.channels[1].words_up

    @property
    def loads_plus_stores(self) -> int:
        return self.loads + self.stores

    @property
    def writes_to_fast(self) -> int:
        return self.levels[1].writes

    @property
    def reads_from_fast(self) -> int:
        return self.levels[1].reads

    @property
    def writes_to_slow(self) -> int:
        return self.levels[2].writes

    @property
    def reads_from_slow(self) -> int:
        return self.levels[2].reads


class WriteBuffer:
    """Simple write-buffer model (paper Section 2.2).

    Stores destined for slow memory are staged in a buffer of *capacity*
    words; a full buffer drains completely.  As the paper notes, this can
    overlap write latency but does **not** reduce the number of slow-memory
    word-writes (or their energy), so ``words_written`` equals the total
    pushed regardless of capacity — the buffer only changes *when* they
    drain, which :attr:`drain_events` exposes.
    """

    def __init__(self, capacity: int):
        check_positive_int(capacity, "capacity")
        self.capacity = capacity
        self.pending = 0
        self.words_written = 0
        self.drain_events = 0

    def push(self, words: int) -> None:
        check_positive_int(words, "words")
        self.pending += words
        self.words_written += words
        while self.pending >= self.capacity:
            self.pending -= self.capacity
            self.drain_events += 1

    def flush(self) -> None:
        if self.pending > 0:
            self.pending = 0
            self.drain_events += 1

    @property
    def min_drain_time(self) -> float:
        """Lower bound on drain time in 'word-times': perfect overlap can at
        best halve total (read+write) time, never the write word count."""
        return float(self.words_written)
