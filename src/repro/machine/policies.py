"""Cache replacement policies (paper Section 6).

Each policy manages the ordering/metadata for **one associative set**;
:class:`repro.machine.cache.CacheSim` instantiates one policy object per set.
The contract is:

* ``touch(tag, write)`` — called on a hit;
* ``add(tag, write)`` — called after a miss brings *tag* in (capacity has
  already been made available);
* ``choose_victim() -> tag`` — pick a resident line to evict;
* ``remove(tag)`` — line was evicted or flushed;
* ``tags`` — iterable of resident tags.

Policies implemented:

* :class:`LRUPolicy` — least recently used; the policy Propositions 6.1/6.2
  are proved for.
* :class:`ClockPolicy` — the 3-bit "clock algorithm" LRU approximation the
  paper cites as Nehalem's actual L3 policy [17]; reproduces the small gap
  from true LRU observed in Figure 2.
* :class:`FIFOPolicy`, :class:`RandomPolicy` — baselines.
* :class:`SegmentedLRUPolicy` — the read-half/write-half reservation LRU of
  Blelloch et al. [12, Lemma 2.1], included for comparison in the Section 6
  experiments.
* :class:`BeladyPolicy` — marker class; the offline optimal (ideal-cache)
  simulation lives in :meth:`repro.machine.cache.CacheSim.run` which detects
  it and runs the farthest-next-use algorithm.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.util import check_positive_int

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "ClockPolicy",
    "SegmentedLRUPolicy",
    "BeladyPolicy",
    "POLICIES",
    "make_policy",
]


class ReplacementPolicy:
    """Abstract replacement policy for one associative set."""

    name = "abstract"

    def __init__(self, capacity: int):
        check_positive_int(capacity, "capacity")
        self.capacity = capacity

    def touch(self, tag: int, write: bool) -> None:
        raise NotImplementedError

    def add(self, tag: int, write: bool) -> None:
        raise NotImplementedError

    def choose_victim(self) -> int:
        raise NotImplementedError

    def remove(self, tag: int) -> None:
        raise NotImplementedError

    @property
    def tags(self) -> Iterable[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def full(self) -> bool:
        return len(self) >= self.capacity


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used, via insertion-ordered dict."""

    name = "lru"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._order: dict[int, None] = {}

    def touch(self, tag: int, write: bool) -> None:
        # Move to MRU position.
        del self._order[tag]
        self._order[tag] = None

    def add(self, tag: int, write: bool) -> None:
        self._order[tag] = None

    def choose_victim(self) -> int:
        return next(iter(self._order))

    def remove(self, tag: int) -> None:
        del self._order[tag]

    @property
    def tags(self) -> Iterable[int]:
        return self._order.keys()

    def __len__(self) -> int:
        return len(self._order)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: hits do not refresh recency."""

    name = "fifo"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._order: dict[int, None] = {}

    def touch(self, tag: int, write: bool) -> None:
        pass  # FIFO ignores hits

    def add(self, tag: int, write: bool) -> None:
        self._order[tag] = None

    def choose_victim(self) -> int:
        return next(iter(self._order))

    def remove(self, tag: int) -> None:
        del self._order[tag]

    @property
    def tags(self) -> Iterable[int]:
        return self._order.keys()

    def __len__(self) -> int:
        return len(self._order)


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (seeded for determinism)."""

    name = "random"

    def __init__(self, capacity: int, rng: Optional[np.random.Generator] = None):
        super().__init__(capacity)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._tags: list[int] = []
        self._pos: dict[int, int] = {}

    def touch(self, tag: int, write: bool) -> None:
        pass

    def add(self, tag: int, write: bool) -> None:
        self._pos[tag] = len(self._tags)
        self._tags.append(tag)

    def choose_victim(self) -> int:
        i = int(self._rng.integers(len(self._tags)))
        return self._tags[i]

    def remove(self, tag: int) -> None:
        # Swap-remove to keep O(1).
        i = self._pos.pop(tag)
        last = self._tags.pop()
        if last != tag:
            self._tags[i] = last
            self._pos[last] = i

    @property
    def tags(self) -> Iterable[int]:
        return list(self._tags)

    def __len__(self) -> int:
        return len(self._tags)


class ClockPolicy(ReplacementPolicy):
    """3-bit clock algorithm (Corbató), the paper's Nehalem L3 model.

    Each resident line carries a 3-bit marker.  A hit increments the marker
    (saturating at 7).  To evict, a hand sweeps the set clockwise looking for
    a line with marker 0; if a full sweep finds none, *all* markers are
    decremented and the sweep repeats — exactly the behaviour described in
    Section 6.1.
    """

    name = "clock"

    def __init__(self, capacity: int, bits: int = 3):
        super().__init__(capacity)
        check_positive_int(bits, "bits")
        self._max = (1 << bits) - 1
        self._slots: list[Optional[int]] = [None] * capacity
        self._marks: list[int] = [0] * capacity
        self._where: dict[int, int] = {}
        self._hand = 0

    def touch(self, tag: int, write: bool) -> None:
        i = self._where[tag]
        if self._marks[i] < self._max:
            self._marks[i] += 1

    def add(self, tag: int, write: bool) -> None:
        for off in range(self.capacity):
            i = (self._hand + off) % self.capacity
            if self._slots[i] is None:
                self._slots[i] = tag
                self._marks[i] = 1
                self._where[tag] = i
                return
        raise RuntimeError("add() called on a full set")  # pragma: no cover

    def choose_victim(self) -> int:
        while True:
            for off in range(self.capacity):
                i = (self._hand + off) % self.capacity
                if self._slots[i] is not None and self._marks[i] == 0:
                    self._hand = (i + 1) % self.capacity
                    return self._slots[i]  # type: ignore[return-value]
            for i in range(self.capacity):
                if self._marks[i] > 0:
                    self._marks[i] -= 1

    def remove(self, tag: int) -> None:
        i = self._where.pop(tag)
        self._slots[i] = None
        self._marks[i] = 0

    @property
    def tags(self) -> Iterable[int]:
        return list(self._where.keys())

    def __len__(self) -> int:
        return len(self._where)


class SegmentedLRUPolicy(ReplacementPolicy):
    """Half-read/half-write reservation LRU (Blelloch et al. [12]).

    The set is split into a read half and a write half, each run as LRU.  A
    line accessed with a write lives in the write half; read-only lines live
    in the read half.  The paper notes this is provably competitive for the
    asymmetric ideal-cache model but conservative in cache usage; the
    Section 6 experiments use it as a comparison point.
    """

    name = "segmented-lru"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._read_cap = max(1, capacity // 2)
        self._write_cap = max(1, capacity - self._read_cap)
        self._read: dict[int, None] = {}
        self._write: dict[int, None] = {}

    def _half(self, tag: int) -> dict[int, None]:
        return self._write if tag in self._write else self._read

    def touch(self, tag: int, write: bool) -> None:
        if write and tag in self._read:
            # Promote to the write half.
            del self._read[tag]
            self._write[tag] = None
            return
        half = self._half(tag)
        del half[tag]
        half[tag] = None

    def add(self, tag: int, write: bool) -> None:
        (self._write if write else self._read)[tag] = None

    def choose_victim(self) -> int:
        # Evict from whichever half is over its reservation; prefer the
        # read half on ties (writes are the expensive residents to lose).
        if len(self._read) > self._read_cap or not self._write:
            if self._read:
                return next(iter(self._read))
        if len(self._write) > self._write_cap or not self._read:
            if self._write:
                return next(iter(self._write))
        if self._read:
            return next(iter(self._read))
        return next(iter(self._write))

    def remove(self, tag: int) -> None:
        if tag in self._read:
            del self._read[tag]
        else:
            del self._write[tag]

    @property
    def tags(self) -> Iterable[int]:
        return list(self._read.keys()) + list(self._write.keys())

    def __len__(self) -> int:
        return len(self._read) + len(self._write)


class BeladyPolicy(ReplacementPolicy):
    """Marker for the offline optimal (ideal-cache) policy.

    :class:`~repro.machine.cache.CacheSim` detects this policy and runs the
    farthest-next-use (Belady/MIN) simulation over the whole trace instead
    of the online per-access loop.  The online methods below are therefore
    never exercised during a normal run.
    """

    name = "belady"

    def __init__(self, capacity: int):
        super().__init__(capacity)

    def touch(self, tag: int, write: bool) -> None:  # pragma: no cover
        raise RuntimeError("Belady is an offline policy; use CacheSim.run")

    def add(self, tag: int, write: bool) -> None:  # pragma: no cover
        raise RuntimeError("Belady is an offline policy; use CacheSim.run")

    def choose_victim(self) -> int:  # pragma: no cover
        raise RuntimeError("Belady is an offline policy; use CacheSim.run")

    def remove(self, tag: int) -> None:  # pragma: no cover
        raise RuntimeError("Belady is an offline policy; use CacheSim.run")

    @property
    def tags(self) -> Iterable[int]:  # pragma: no cover
        return ()

    def __len__(self) -> int:  # pragma: no cover
        return 0


POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "clock": ClockPolicy,
    "segmented-lru": SegmentedLRUPolicy,
    "belady": BeladyPolicy,
}


def make_policy(name: str, capacity: int, **kwargs) -> ReplacementPolicy:
    """Instantiate a policy by name (see :data:`POLICIES`)."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        ) from None
    return cls(capacity, **kwargs)
