"""Address-trace collection.

Kernels running in "trace mode" append word-address ranges (or explicit
line-id arrays) to a :class:`TraceBuffer`; the buffer concatenates them
lazily into the ``(lines, writes)`` pair that
:meth:`repro.machine.cache.CacheSim.run_lines` consumes.

Traces are stored at **line** granularity because every Section-6 quantity
is measured in cache lines.  Chunks are numpy arrays so that multi-million
event traces stay compact and concatenation is vectorized (per the
hpc-parallel guidance: no per-element Python appends in hot paths).

Chunk boundaries are meaningful, not incidental: trace builders emit one
chunk per base-tile visit, and :class:`Trace` keeps the per-chunk lengths
alongside the flat arrays so the fastsim super-symbol pass
(:mod:`repro.machine.fastsim.symbols`) can fold repeated tile visits
without rediscovering them.

Very large traces never need to live in RAM: past
``$REPRO_TRACE_SPILL_EVENTS`` events (default ``2**26``),
:meth:`TraceBuffer.finalize` spills the concatenated arrays to anonymous
``.npy`` files and returns read-only memory maps, which downstream
consumers (the streaming distance pass, the content-addressed trace
store) treat exactly like in-memory arrays.
"""

from __future__ import annotations

import os
import tempfile
from typing import Iterator, NamedTuple, Optional, Tuple

import numpy as np

__all__ = ["Trace", "TraceBuffer", "SPILL_ENV", "spill_threshold"]

#: env knob: event count past which finalize() spills to mmap'd files.
SPILL_ENV = "REPRO_TRACE_SPILL_EVENTS"
_DEFAULT_SPILL_EVENTS = 1 << 26


def spill_threshold() -> int:
    """Events past which :meth:`TraceBuffer.finalize` spills to disk."""
    try:
        return int(os.environ.get(SPILL_ENV, _DEFAULT_SPILL_EVENTS))
    except ValueError:
        return _DEFAULT_SPILL_EVENTS


class Trace(NamedTuple):
    """A finalized trace: flat event arrays plus tile-chunk structure.

    ``chunk_lens`` partitions ``lines``/``writes`` into the builder's
    append chunks (one per base-tile visit for tile-granular kernels);
    ``None`` when the structure is unknown (e.g. a store round-trip from
    before chunk sidecars existed).  Within a chunk the write flag is
    uniform by construction.
    """

    lines: np.ndarray
    writes: np.ndarray
    chunk_lens: Optional[np.ndarray]

    @property
    def n_events(self) -> int:
        return int(len(self.lines))

    def pair(self) -> Tuple[np.ndarray, np.ndarray]:
        """The legacy ``(lines, writes)`` view."""
        return self.lines, self.writes


def _spill_memmap(n: int, dtype: np.dtype) -> Tuple[np.ndarray, str]:
    """A writable ``.npy``-backed memmap of *n* elements in a temp file.

    The caller fills it chunk by chunk (so the full array never exists
    in RAM) and hands it to :func:`_reopen_readonly`.
    """
    fd, path = tempfile.mkstemp(suffix=".npy", prefix="repro-trace-")
    os.close(fd)
    out = np.lib.format.open_memmap(path, mode="w+", dtype=dtype,
                                    shape=(n,))
    return out, path


def _reopen_readonly(mm: np.ndarray, path: str) -> np.ndarray:
    """Flush a writable spill memmap and reopen it read-only, unlinking
    the backing file.  POSIX keeps the mapping alive after the unlink,
    so the file needs no lifecycle management and its space is reclaimed
    with the last array reference."""
    mm.flush()  # type: ignore[attr-defined]
    del mm
    out = np.load(path, mmap_mode="r")
    try:
        os.unlink(path)
    except OSError:
        pass
    return out


class TraceBuffer:
    """An append-only sequence of (line id, is-write) events."""

    def __init__(self, line_size: int = 8):
        if line_size <= 0:
            raise ValueError(f"line_size must be positive, got {line_size}")
        self.line_size = line_size
        self._chunks: list[Tuple[np.ndarray, bool]] = []
        self._n = 0
        self._finalized: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    def touch_lines(self, lines: np.ndarray, write: bool = False) -> None:
        """Append an array of line ids, all reads or all writes."""
        lines = np.asarray(lines, dtype=np.int64)
        if lines.ndim != 1:
            lines = lines.ravel()
        if len(lines) == 0:
            return
        self._chunks.append((lines, bool(write)))
        self._n += len(lines)
        self._finalized = None

    def touch_words(self, start: int, nwords: int, write: bool = False) -> None:
        """Append the lines covering words ``[start, start+nwords)``."""
        if nwords <= 0:
            return
        first = start // self.line_size
        last = (start + nwords - 1) // self.line_size
        self.touch_lines(np.arange(first, last + 1, dtype=np.int64), write)

    def extend(self, other: "TraceBuffer") -> None:
        if other.line_size != self.line_size:
            raise ValueError("cannot mix traces with different line sizes")
        self._chunks.extend(other._chunks)
        self._n += other._n
        self._finalized = None

    # ------------------------------------------------------------------ #
    # consuming
    # ------------------------------------------------------------------ #
    def finalize(self) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenate into read-only ``(lines, writes)`` arrays.

        Both outputs are preallocated once and filled chunk by chunk (no
        per-chunk temporaries), then frozen with ``setflags(write=False)``.
        The concatenation is memoized — harnesses finalize the same
        buffer once per capacity/policy point — and the memo is dropped
        whenever new events arrive (``touch_*``/``extend``).

        Past :func:`spill_threshold` events the arrays are spilled to
        anonymous ``.npy`` files and come back as read-only memory maps,
        so finalizing a 10^8-event trace costs address space, not RAM.
        """
        if self._finalized is not None:
            return self._finalized
        if not self._chunks:
            empty = np.empty(0, dtype=np.int64)
            empty_w = np.empty(0, dtype=bool)
            empty.setflags(write=False)
            empty_w.setflags(write=False)
            return empty, empty_w
        spill = self._n >= spill_threshold()
        if spill:
            lines, lpath = _spill_memmap(self._n, np.dtype(np.int64))
            writes, wpath = _spill_memmap(self._n, np.dtype(bool))
        else:
            lines = np.empty(self._n, dtype=np.int64)
            writes = np.empty(self._n, dtype=bool)
        pos = 0
        for chunk, w in self._chunks:
            end = pos + len(chunk)
            lines[pos:end] = chunk
            writes[pos:end] = w
            pos = end
        if spill:
            lines = _reopen_readonly(lines, lpath)
            writes = _reopen_readonly(writes, wpath)
        else:
            lines.setflags(write=False)
            writes.setflags(write=False)
        self._finalized = (lines, writes)
        return self._finalized

    def chunk_lengths(self) -> np.ndarray:
        """Per-chunk event counts, in append order (read-only int64)."""
        out = np.fromiter((len(c) for c, _ in self._chunks),
                          dtype=np.int64, count=len(self._chunks))
        out.setflags(write=False)
        return out

    def finalize_trace(self) -> Trace:
        """Finalize, keeping the tile-chunk structure alongside."""
        lines, writes = self.finalize()
        return Trace(lines, writes, self.chunk_lengths())

    def iter_chunks(self) -> Iterator[Tuple[np.ndarray, bool]]:
        return iter(self._chunks)

    @property
    def n_unique_lines(self) -> int:
        """Distinct lines touched (the trace's working-set size in lines)."""
        lines, _ = self.finalize()
        return int(len(np.unique(lines)))

    @property
    def n_write_events(self) -> int:
        return sum(len(c) for c, w in self._chunks if w)

    @property
    def n_read_events(self) -> int:
        return sum(len(c) for c, w in self._chunks if not w)
