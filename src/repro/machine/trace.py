"""Address-trace collection.

Kernels running in "trace mode" append word-address ranges (or explicit
line-id arrays) to a :class:`TraceBuffer`; the buffer concatenates them
lazily into the ``(lines, writes)`` pair that
:meth:`repro.machine.cache.CacheSim.run_lines` consumes.

Traces are stored at **line** granularity because every Section-6 quantity
is measured in cache lines.  Chunks are numpy arrays so that multi-million
event traces stay compact and concatenation is vectorized (per the
hpc-parallel guidance: no per-element Python appends in hot paths).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = ["TraceBuffer"]


class TraceBuffer:
    """An append-only sequence of (line id, is-write) events."""

    def __init__(self, line_size: int = 8):
        if line_size <= 0:
            raise ValueError(f"line_size must be positive, got {line_size}")
        self.line_size = line_size
        self._chunks: list[Tuple[np.ndarray, bool]] = []
        self._n = 0
        self._finalized: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    def touch_lines(self, lines: np.ndarray, write: bool = False) -> None:
        """Append an array of line ids, all reads or all writes."""
        lines = np.asarray(lines, dtype=np.int64)
        if lines.ndim != 1:
            lines = lines.ravel()
        if len(lines) == 0:
            return
        self._chunks.append((lines, bool(write)))
        self._n += len(lines)
        self._finalized = None

    def touch_words(self, start: int, nwords: int, write: bool = False) -> None:
        """Append the lines covering words ``[start, start+nwords)``."""
        if nwords <= 0:
            return
        first = start // self.line_size
        last = (start + nwords - 1) // self.line_size
        self.touch_lines(np.arange(first, last + 1, dtype=np.int64), write)

    def extend(self, other: "TraceBuffer") -> None:
        if other.line_size != self.line_size:
            raise ValueError("cannot mix traces with different line sizes")
        self._chunks.extend(other._chunks)
        self._n += other._n
        self._finalized = None

    # ------------------------------------------------------------------ #
    # consuming
    # ------------------------------------------------------------------ #
    def finalize(self) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenate into ``(lines, writes)`` arrays.

        The concatenation is memoized — harnesses finalize the same
        buffer once per capacity/policy point — and the memo is dropped
        whenever new events arrive (``touch_*``/``extend``).  Callers
        must treat the returned arrays as read-only.
        """
        if self._finalized is not None:
            return self._finalized
        if not self._chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=bool)
        lines = np.concatenate([c for c, _ in self._chunks])
        writes = np.concatenate(
            [np.full(len(c), w, dtype=bool) for c, w in self._chunks]
        )
        self._finalized = (lines, writes)
        return self._finalized

    def iter_chunks(self) -> Iterator[Tuple[np.ndarray, bool]]:
        return iter(self._chunks)

    @property
    def n_unique_lines(self) -> int:
        """Distinct lines touched (the trace's working-set size in lines)."""
        lines, _ = self.finalize()
        return int(len(np.unique(lines)))

    @property
    def n_write_events(self) -> int:
        return sum(len(c) for c, w in self._chunks if w)

    @property
    def n_read_events(self) -> int:
        return sum(len(c) for c, w in self._chunks if not w)
