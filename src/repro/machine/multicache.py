"""Multi-level cache hierarchy simulation (inclusive, write-back).

The Section-6 experiments measure only the L3↔DRAM boundary; the Figure-5
discussion, however, is about instruction orders that are (or are not) WA
at *several* levels simultaneously.  :class:`CacheHierarchySim` chains
:class:`~repro.machine.cache.CacheSim` levels so one trace produces
counters at every boundary:

* an access goes to L1; a miss at level i becomes an access at level i+1
  (fill path);
* a dirty eviction at level i becomes a *write* access at level i+1
  (write-back path); the final level's dirty evictions are the writes to
  backing memory.

The model is inclusive-enough for counting purposes: each level is an
independent filter; no back-invalidation is modelled (the paper's
experiments are single-threaded and the quantities are per-boundary line
counts).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.machine.cache import CacheSim, CacheStats
from repro.util import require

__all__ = ["CacheHierarchySim"]


class CacheHierarchySim:
    """A chain of write-back caches fed by one line trace.

    Parameters
    ----------
    capacities:
        Words per level, strictly increasing (e.g. ``[L1, L2, L3]``).
    line_size:
        Shared line size in words.
    policies:
        One policy name per level (default ``"lru"`` everywhere).
        Offline ("belady") policies are not supported here — miss streams
        are produced level by level, online.
    seed:
        Master seed for randomized policies; each level draws an
        independent generator from one :class:`numpy.random.SeedSequence`
        so whole-hierarchy runs are reproducible.
    """

    def __init__(
        self,
        capacities: Sequence[int],
        *,
        line_size: int = 8,
        policies: Optional[Sequence[str]] = None,
        seed: Optional[int] = None,
    ):
        require(len(capacities) >= 1, "need at least one level")
        prev = 0
        for c in capacities:
            require(c > prev, "capacities must be strictly increasing")
            prev = c
        if policies is None:
            policies = ["lru"] * len(capacities)
        require(len(policies) == len(capacities),
                "one policy per level required")
        require(all(p != "belady" for p in policies),
                "offline policies are not supported in the hierarchy")
        self.seed = seed
        if seed is None:
            rngs: List[Optional[np.random.Generator]] = [None] * len(capacities)
        else:
            rngs = [np.random.default_rng(child) for child in
                    np.random.SeedSequence(seed).spawn(len(capacities))]
        self.levels: List[CacheSim] = [
            CacheSim(c, line_size=line_size, policy=p, rng=r)
            for c, p, r in zip(capacities, policies, rngs)
        ]
        self.line_size = line_size
        #: dirty lines written out of the last level (to backing memory).
        self.backing_writes = 0
        self.backing_reads = 0

    def _access(self, depth: int, line: int, write: bool) -> None:
        lvl = self.levels[depth]
        if line in lvl._dirty:  # hit: no propagation
            lvl._access_line(line, write)
            return
        # Miss: the fill comes from below (a read), and a dirty victim
        # (if any) goes below (a write).
        lvl._access_line(line, write)
        victim = lvl._last_victim
        victim_dirty = lvl._last_victim_dirty
        if depth + 1 < len(self.levels):
            self._access(depth + 1, line, False)
            if victim_dirty and victim is not None:
                self._access(depth + 1, victim, True)
        else:
            self.backing_reads += 1
            if victim_dirty:
                self.backing_writes += 1

    def run_lines(self, lines: np.ndarray, writes: np.ndarray) -> None:
        lines = np.asarray(lines)
        writes = np.asarray(writes, dtype=bool)
        require(lines.shape == writes.shape, "trace shape mismatch")
        for line, w in zip(lines.tolist(), writes.tolist()):
            self._access(0, line, w)

    def flush(self) -> None:
        """Flush every level, propagating dirty lines downward."""
        for depth, lvl in enumerate(self.levels):
            for pol in lvl._sets:
                for tag in list(pol.tags):
                    pol.remove(tag)
                    if lvl._dirty.pop(tag):
                        lvl.stats.flush_writebacks += 1
                        if depth + 1 < len(self.levels):
                            self._access(depth + 1, tag, True)
                        else:
                            self.backing_writes += 1
                    else:
                        lvl.stats.victims_e += 1
        # Deeper levels may have received new dirty lines from the flush
        # cascade above; the loop order (top down) already handles it.

    def stats(self, level: int) -> CacheStats:
        """Counters of one level (0 = fastest)."""
        require(0 <= level < len(self.levels), "level out of range")
        return self.levels[level].stats
