"""Read/write counters for memory levels and transfer channels.

The paper's refined model (Section 2) splits each *load* into a read at the
slow level plus a write at the fast level, and each *store* into a read at
the fast level plus a write at the slow level.  :class:`LevelCounters` holds
the per-level read/write totals that this bookkeeping produces;
:class:`ChannelCounters` additionally tracks words and messages moved across
one channel (between two adjacent levels, or over the network), which is what
the paper's α–β cost model charges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["LevelCounters", "ChannelCounters", "ResidencyClass"]


class ResidencyClass(enum.Enum):
    """Residency classification from Section 2.

    A variable's residency in fast memory begins with R1 (loaded from slow)
    or R2 (created in fast memory), and ends with D1 (stored to slow) or D2
    (discarded).  Theorem 1 rests on the fact that every residency of any
    class performs at least one write to fast memory.
    """

    R1D1 = "R1/D1"
    R1D2 = "R1/D2"
    R2D1 = "R2/D1"
    R2D2 = "R2/D2"

    @property
    def begins_with_load(self) -> bool:
        return self in (ResidencyClass.R1D1, ResidencyClass.R1D2)

    @property
    def ends_with_store(self) -> bool:
        return self in (ResidencyClass.R1D1, ResidencyClass.R2D1)


@dataclass
class LevelCounters:
    """Reads and writes observed at one memory level, in words."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def add(self, other: "LevelCounters") -> None:
        self.reads += other.reads
        self.writes += other.writes

    def copy(self) -> "LevelCounters":
        return LevelCounters(self.reads, self.writes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LevelCounters(reads={self.reads}, writes={self.writes})"


@dataclass
class ChannelCounters:
    """Traffic across one channel (e.g. L2↔L1, L3↔L2, or the network).

    ``words_down``/``msgs_down`` flow toward the *faster* (or receiving) side
    — i.e. loads; ``words_up``/``msgs_up`` flow toward the slower side —
    i.e. stores.  The α–β time for this channel under a
    :class:`~repro.distributed.costmodel.HwParams` is
    ``alpha * msgs + beta * words`` per direction.
    """

    words_down: int = 0
    msgs_down: int = 0
    words_up: int = 0
    msgs_up: int = 0

    @property
    def words(self) -> int:
        return self.words_down + self.words_up

    @property
    def msgs(self) -> int:
        return self.msgs_down + self.msgs_up

    def record_down(self, words: int, msgs: int = 1) -> None:
        self.words_down += words
        self.msgs_down += msgs

    def record_up(self, words: int, msgs: int = 1) -> None:
        self.words_up += words
        self.msgs_up += msgs

    def add(self, other: "ChannelCounters") -> None:
        self.words_down += other.words_down
        self.msgs_down += other.msgs_down
        self.words_up += other.words_up
        self.msgs_up += other.msgs_up

    def copy(self) -> "ChannelCounters":
        return ChannelCounters(
            self.words_down, self.msgs_down, self.words_up, self.msgs_up
        )


@dataclass
class ResidencyLog:
    """Optional audit log of residency begin/end events (Section 2).

    Kernels that want to *prove* their write counts can log residencies; the
    Theorem-1 checker then cross-validates writes-to-fast against the count
    of residencies.
    """

    counts: dict = field(
        default_factory=lambda: {cls: 0 for cls in ResidencyClass}
    )

    def record(self, cls: ResidencyClass, n: int = 1) -> None:
        self.counts[cls] += n

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def loads_implied(self) -> int:
        return sum(
            n for cls, n in self.counts.items() if cls.begins_with_load
        )

    @property
    def stores_implied(self) -> int:
        return sum(
            n for cls, n in self.counts.items() if cls.ends_with_store
        )
