"""Address-space layout for traced arrays.

The Section-6 experiments need word addresses for matrix tiles so that the
cache simulator sees the same line-sharing effects a real row-major layout
produces (e.g. adjacent tile rows falling in one line).  An
:class:`AddressSpace` hands out line-aligned base addresses;
:class:`TracedMatrix` and :class:`TracedVector` translate tile/segment
touches into line-id arrays for a :class:`~repro.machine.trace.TraceBuffer`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.util import check_positive_int, round_up

__all__ = ["AddressSpace", "TracedMatrix", "TracedVector"]


class AddressSpace:
    """Allocates disjoint, line-aligned word-address ranges."""

    def __init__(self, line_size: int = 8):
        check_positive_int(line_size, "line_size")
        self.line_size = line_size
        self._next = 0
        self.allocations: dict[str, Tuple[int, int]] = {}

    def alloc(self, name: str, nwords: int) -> int:
        """Reserve *nwords* for *name*; returns the base word address."""
        check_positive_int(nwords, "nwords")
        if name in self.allocations:
            raise ValueError(f"array name {name!r} already allocated")
        base = self._next
        self.allocations[name] = (base, nwords)
        self._next = round_up(base + nwords, self.line_size)
        return base

    @property
    def total_words(self) -> int:
        return self._next


class TracedMatrix:
    """Row-major matrix with address translation for tile touches.

    Does not hold numeric data — tracing and computation are decoupled (the
    numeric kernels in :mod:`repro.core` are validated separately); this
    class only produces the *addresses* a kernel's tile accesses cover.
    """

    def __init__(
        self,
        space: AddressSpace,
        name: str,
        nrows: int,
        ncols: int,
    ):
        check_positive_int(nrows, "nrows")
        check_positive_int(ncols, "ncols")
        self.space = space
        self.name = name
        self.nrows = nrows
        self.ncols = ncols
        self.base = space.alloc(name, nrows * ncols)
        self.line_size = space.line_size

    def addr(self, i: int, j: int) -> int:
        """Word address of element (i, j)."""
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise IndexError(f"({i},{j}) out of bounds for {self.name}")
        return self.base + i * self.ncols + j

    def tile_lines(self, i0: int, i1: int, j0: int, j1: int) -> np.ndarray:
        """Line ids covering the tile ``[i0:i1, j0:j1]``, row by row.

        Rows are emitted in order; within a row the covering lines are
        emitted in ascending order.  Duplicates across rows are preserved —
        they are genuine repeated touches of a shared line.
        """
        if not (0 <= i0 <= i1 <= self.nrows and 0 <= j0 <= j1 <= self.ncols):
            raise IndexError(
                f"tile [{i0}:{i1},{j0}:{j1}] out of bounds for "
                f"{self.name} ({self.nrows}x{self.ncols})"
            )
        if i0 == i1 or j0 == j1:
            return np.empty(0, dtype=np.int64)
        L = self.line_size
        nc = self.ncols
        row_starts = self.base + np.arange(i0, i1, dtype=np.int64) * nc
        firsts = (row_starts + j0) // L
        lasts = (row_starts + j1 - 1) // L
        counts = lasts - firsts + 1
        total = int(counts.sum())
        out = np.empty(total, dtype=np.int64)
        pos = 0
        # Per-row arange; the row count of a tile is small (≤ block size)
        # so this loop is not a hot path compared to the cache replay.
        for f, c in zip(firsts.tolist(), counts.tolist()):
            out[pos : pos + c] = np.arange(f, f + c, dtype=np.int64)
            pos += c
        return out

    def whole_lines(self) -> np.ndarray:
        return self.tile_lines(0, self.nrows, 0, self.ncols)

    @property
    def n_lines(self) -> int:
        """Number of distinct lines the matrix occupies."""
        first = self.base // self.line_size
        last = (self.base + self.nrows * self.ncols - 1) // self.line_size
        return last - first + 1


class TracedVector:
    """Contiguous vector with segment-touch address translation."""

    def __init__(self, space: AddressSpace, name: str, n: int):
        check_positive_int(n, "n")
        self.space = space
        self.name = name
        self.n = n
        self.base = space.alloc(name, n)
        self.line_size = space.line_size

    def segment_lines(self, lo: int, hi: int) -> np.ndarray:
        """Line ids covering elements ``[lo, hi)``."""
        if not (0 <= lo <= hi <= self.n):
            raise IndexError(f"segment [{lo}:{hi}) out of bounds for {self.name}")
        if lo == hi:
            return np.empty(0, dtype=np.int64)
        L = self.line_size
        first = (self.base + lo) // L
        last = (self.base + hi - 1) // L
        return np.arange(first, last + 1, dtype=np.int64)

    def whole_lines(self) -> np.ndarray:
        return self.segment_lines(0, self.n)

    @property
    def n_lines(self) -> int:
        first = self.base // self.line_size
        last = (self.base + self.n - 1) // self.line_size
        return last - first + 1


def matrix_trio(
    space: Optional[AddressSpace],
    m: int,
    n: int,
    l: int,
    line_size: int = 8,
) -> Tuple[TracedMatrix, TracedMatrix, TracedMatrix, AddressSpace]:
    """Allocate C (m×l), A (m×n), B (n×l) in one address space.

    Convenience used by the matmul trace generators; layout order matches
    the experiments (C first so its base is stable across middle-dimension
    sweeps).
    """
    if space is None:
        space = AddressSpace(line_size)
    C = TracedMatrix(space, "C", m, l)
    A = TracedMatrix(space, "A", m, n)
    B = TracedMatrix(space, "B", n, l)
    return C, A, B, space
