"""Memory-hierarchy and cache substrate.

Two complementary execution models, mirroring the paper's Section 2 vs
Section 6 viewpoints:

* :mod:`repro.machine.hierarchy` — *explicitly controlled* data movement
  between r levels (the model of Sections 2 and 4).  Kernels call
  :meth:`MemoryHierarchy.load` / :meth:`~MemoryHierarchy.store`; every word
  moved is counted as a read at the source level and a write at the
  destination level.

* :mod:`repro.machine.cache` — *hardware-controlled* movement (Section 6).
  Kernels emit address traces (:mod:`repro.machine.trace`), and a write-back
  write-allocate cache with a pluggable replacement policy
  (:mod:`repro.machine.policies`) produces Nehalem-style counters
  (``LLC_VICTIMS.M``, ``LLC_VICTIMS.E``, ``LLC_S_FILLS.E``).
"""

from repro.machine.counters import ChannelCounters, LevelCounters, ResidencyClass
from repro.machine.hierarchy import MemoryHierarchy, TwoLevel
from repro.machine.cache import CacheSim, CacheStats
from repro.machine.multicache import CacheHierarchySim
from repro.machine.energy import EnergyModel
from repro.machine.policies import (
    POLICIES,
    BeladyPolicy,
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    SegmentedLRUPolicy,
    make_policy,
)
from repro.machine.trace import TraceBuffer
from repro.machine.arrays import TracedMatrix, TracedVector, AddressSpace

__all__ = [
    "ChannelCounters",
    "LevelCounters",
    "ResidencyClass",
    "MemoryHierarchy",
    "TwoLevel",
    "CacheSim",
    "CacheStats",
    "CacheHierarchySim",
    "EnergyModel",
    "POLICIES",
    "BeladyPolicy",
    "ClockPolicy",
    "FIFOPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "SegmentedLRUPolicy",
    "make_policy",
    "TraceBuffer",
    "TracedMatrix",
    "TracedVector",
    "AddressSpace",
]
