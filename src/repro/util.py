"""Shared helpers: argument validation, integer geometry, table formatting.

These utilities are deliberately dependency-light so every subpackage can use
them without import cycles.
"""

from __future__ import annotations

import math
import numbers
import operator
from typing import Any, Iterable, Sequence

__all__ = [
    "require",
    "check_positive_int",
    "check_multiple",
    "ceil_div",
    "round_up",
    "is_power_of_two",
    "next_power_of_two",
    "block_count",
    "canonical_int",
    "json_number_default",
    "format_table",
    "format_si",
    "pairwise_ratios",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError`` with *message* unless *condition* holds.

    Used at public API boundaries so user errors surface as ``ValueError``
    with a clear explanation rather than as downstream numpy shape errors.
    """
    if not condition:
        raise ValueError(message)


def check_positive_int(value: int, name: str) -> int:
    """Validate that *value* is a positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def canonical_int(value, name: str) -> int:
    """Canonicalize *value* to a plain python int.

    Sweep-grid parameters frequently arrive as ``np.int64``
    (``np.arange``-built scenarios); canonicalizing keeps payloads
    JSON-able, cache keys stable across int flavours, and strict
    simulator validation satisfied.  Bools and non-integral values are
    rejected loudly rather than truncated.
    """
    try:
        if not isinstance(value, bool):  # True is Integral, not a size
            return operator.index(value)
    except TypeError:
        pass
    raise ValueError(
        f"parameter {name!r} must be an integer, got {value!r}")


def json_number_default(value: Any) -> Any:
    """``json.dumps`` fallback canonicalizing numpy scalars to python
    values, so ``np.int64`` grid axes, ``np.float64`` costs and
    ``np.bool_`` flags key identically to their python twins in cache
    keys and batch-group keys (``np.float64`` already serializes
    natively as a ``float`` subclass; this covers the integer flavours,
    any other Real, and — via ``.item()``, numpy-free — scalars outside
    the numbers ABCs like ``np.bool_``)."""
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    item = getattr(value, "item", None)
    if item is not None:
        value = item()
        if isinstance(value, (bool, int, float)):
            return value
    raise TypeError(f"not JSON-serializable: {value!r}")


def check_multiple(n: int, b: int, what: str = "dimension") -> None:
    """Validate that ``n`` is a positive multiple of block size ``b``.

    The paper's algorithms assume dimensions divide evenly by the block size
    ("assume n is a multiple of b"); we enforce rather than silently pad.
    """
    check_positive_int(n, what)
    check_positive_int(b, "block size")
    if n % b != 0:
        raise ValueError(f"{what}={n} must be a multiple of block size {b}")


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for nonnegative ints."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def round_up(n: int, multiple: int) -> int:
    """Round *n* up to the nearest multiple of *multiple*."""
    return ceil_div(n, multiple) * multiple


def is_power_of_two(n: int) -> bool:
    """True iff *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two ≥ *n* (n ≥ 1)."""
    check_positive_int(n, "n")
    return 1 << (n - 1).bit_length()


def block_count(n: int, b: int) -> int:
    """Number of blocks of size *b* covering a dimension of size *n*.

    Equivalent to the paper's ``round_up`` helper in Figure 4.
    """
    return ceil_div(n, b)


def format_si(x: float) -> str:
    """Compact human format: 2.0M, 3.4K, 512, 0.25."""
    if x == 0:
        return "0"
    ax = abs(x)
    for scale, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if ax >= scale:
            return f"{x / scale:.3g}{suffix}"
    if ax >= 1:
        return f"{x:.4g}"
    return f"{x:.3g}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a plain-text table (used by experiment harnesses).

    Floats are formatted with :func:`format_si`; everything else via ``str``.
    """
    def cell(v: object) -> str:
        if isinstance(v, bool):
            return str(v)
        if isinstance(v, float):
            return format_si(v)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, s in enumerate(row):
            widths[i] = max(widths[i], len(s))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(s.ljust(w) for s, w in zip(row, widths)))
    return "\n".join(lines)


def pairwise_ratios(xs: Sequence[float]) -> list[float]:
    """Successive ratios x[i+1]/x[i]; used to check asymptotic growth rates."""
    out = []
    for a, b in zip(xs, xs[1:]):
        if a == 0:
            raise ValueError("cannot take ratio with zero denominator")
        out.append(b / a)
    return out


def isqrt_exact(n: int) -> int:
    """Integer square root that must be exact (√n ∈ ℕ), else ValueError."""
    r = math.isqrt(n)
    if r * r != n:
        raise ValueError(f"{n} is not a perfect square")
    return r
