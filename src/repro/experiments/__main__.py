"""Command-line regeneration of any paper table or figure.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig2 [--quick]
    python -m repro.experiments table1
    python -m repro.experiments all --quick

``--quick`` shrinks the Figure-2/5 geometry so everything finishes in
seconds (the structure is identical; only scale changes).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    Fig2Config,
    format_fig2,
    format_fig5,
    format_lu,
    format_sec3,
    format_sec4,
    format_sec5,
    format_sec6,
    format_sec7_model1,
    format_sec8,
    format_table1,
    format_table2,
    run_fig2,
    run_fig5,
    run_lu,
    run_sec3,
    run_sec4,
    run_sec5,
    run_sec6,
    run_sec7_model1,
    run_sec8,
    run_table1,
    run_table2,
)


def _fig_cfg(quick: bool) -> Fig2Config:
    if quick:
        return Fig2Config(n_outer=48, middles=(4, 16, 64), line_size=4,
                          b2=8, base=4)
    return Fig2Config(n_outer=96, middles=(8, 32, 128, 256), line_size=4,
                      b2=8, base=4)


def main(argv=None) -> int:
    experiments = {
        "fig2": lambda q: format_fig2(run_fig2(_fig_cfg(q))),
        "fig5": lambda q: format_fig5(run_fig5(_fig_cfg(q))),
        "table1": lambda q: format_table1(run_table1()),
        "table2": lambda q: format_table2(run_table2()),
        "sec3": lambda q: format_sec3(run_sec3()),
        "sec4": lambda q: format_sec4(run_sec4()),
        "sec5": lambda q: format_sec5(run_sec5()),
        "sec6": lambda q: format_sec6(
            run_sec6(n=32 if q else 64, middle=32 if q else 128)),
        "sec7": lambda q: format_sec7_model1(run_sec7_model1()),
        "sec8": lambda q: format_sec8(
            run_sec8(mesh=128 if q else 256, block=32 if q else 64)),
        "lu": lambda q: format_lu(run_lu()),
    }
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures of 'Write-Avoiding "
                    "Algorithms' (Carson et al., IPDPS 2016).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(experiments) + ["all", "list"],
        help="which experiment to run ('list' to enumerate)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller geometry, seconds instead of minutes")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(experiments):
            print(name)
        return 0
    names = sorted(experiments) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        print(f"==== {name} " + "=" * max(0, 64 - len(name)))
        print(experiments[name](args.quick))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
