"""Command-line regeneration of any paper table or figure.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig2 [--quick]
    python -m repro.experiments table1
    python -m repro.experiments all --quick --jobs 4

``--quick`` shrinks every harness's geometry (Figure-2/5 blocking, the
table1/table2/sec7/lu simulated validation runs, the sec6/sec8 problem
sizes) so everything finishes in seconds — the structure is identical;
only scale changes.

Since the ``repro.lab`` subsystem landed, this front-end is a thin client
of the sweep engine: experiments fan out over ``--jobs`` worker processes
and completed harnesses are served from the persistent result cache
(disable with ``--no-cache``).  The printed tables are unchanged; the
cache accounting line goes to stderr.
"""

from __future__ import annotations

import argparse
import sys

from repro.lab.cache import ResultCache
from repro.lab.executor import execute
from repro.lab.registry import EXPERIMENTS
from repro.lab.scenarios import experiments_scenario


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate tables/figures of 'Write-Avoiding "
                    "Algorithms' (Carson et al., IPDPS 2016).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which experiment to run ('list' to enumerate)",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller geometry, seconds instead of minutes")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run experiments in N worker processes")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the repro.lab result "
                             "cache")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    scenario = experiments_scenario(quick=args.quick, names=names)
    cache = None if args.no_cache else ResultCache()
    report = execute(scenario.points(), jobs=args.jobs, cache=cache)
    print(scenario.render(report.results))
    print(report.cache_line(cache), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
