"""Section 7.2: LL-LUNP vs RL-LUNP — measured counters and cost formulas.

Engine-backed: the two parallel LU algorithms execute as
``lu-ll-nonpivot`` / ``lu-rl-nonpivot`` points (verified factorizations,
per-rank counters) and the paper's β-cost formulas (23)–(26) evaluate as
``cost-lu-ll`` / ``cost-lu-rl`` points at model scale, all fanned out and
cached per point.  :func:`lu_scenario` exposes the same decomposition as
the ``repro-lab run lu-tradeoff`` preset.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.distributed import HwParams
from repro.util import format_table

__all__ = ["run_lu", "format_lu", "lu_scenario"]

_COST_KERNELS = {"LL-LUNP": "cost-lu-ll", "RL-LUNP": "cost-lu-rl"}
_EXEC_KERNELS = {"LL-LUNP": "lu-ll-nonpivot", "RL-LUNP": "lu-rl-nonpivot"}


def _lu_points(n: int, b: int, P: int, seed: int,
               hw: Optional[HwParams], model_n: int,
               model_P: int) -> List[Any]:
    from repro.lab.registry import MachineSpec, hw_overrides
    from repro.lab.scenarios import ScenarioPoint

    machine = MachineSpec(name="lu-hw", hw=hw_overrides(hw))
    points = [
        ScenarioPoint(kernel, machine,
                      {"n": n, "b": b, "P": P, "seed": seed})
        for kernel in _EXEC_KERNELS.values()
    ]
    points += [
        ScenarioPoint(kernel, machine, {"n": model_n, "P": model_P})
        for kernel in _COST_KERNELS.values()
    ]
    return points


def _assemble_lu(results: Sequence[Any]) -> Dict:
    by_kernel = {res.point.kernel: res for res in results}
    p0 = results[0].point.params
    measured = {}
    correct = {}
    for name, kernel in _EXEC_KERNELS.items():
        rec = by_kernel[kernel].record
        correct[name] = rec["correct"]
        measured[name] = {
            "nvm_writes": rec["l2_to_l3_total"],
            "nvm_reads": rec["l3_to_l2_total"],
            "network": rec["nw_recv_total"],
        }
    model = {}
    for name, kernel in _COST_KERNELS.items():
        rec = dict(by_kernel[kernel].record)
        rec.pop("feasible", None)
        model[name] = {"name": rec.pop("algorithm"), **rec}
    model_params = by_kernel[_COST_KERNELS["LL-LUNP"]].point.params
    return {
        "n": p0["n"], "b": p0["b"], "P": p0["P"],
        "ll_correct": correct["LL-LUNP"],
        "rl_correct": correct["RL-LUNP"],
        "measured": measured,
        "model": model,
        "model_n": model_params["n"], "model_P": model_params["P"],
    }


def run_lu(
    n: Optional[int] = None,
    b: int = 4,
    P: int = 4,
    seed: int = 0,
    hw: Optional[HwParams] = None,
    model_n: int = 1 << 14,
    model_P: int = 256,
    *,
    quick: bool = False,
    jobs: int = 1,
    cache: Any = None,
) -> Dict:
    """Execute both LU algorithms and evaluate formulas (23)–(26)
    through the engine.  ``quick`` shrinks the executed geometry."""
    from repro.lab.executor import execute

    n = n if n is not None else (16 if quick else 32)
    points = _lu_points(n, b, P, seed, hw, model_n, model_P)
    report = execute(points, jobs=jobs, cache=cache)
    return _assemble_lu(report.results)


def lu_scenario(quick: bool = False, *, n: Optional[int] = None,
                b: int = 4, P: int = 4, seed: int = 0,
                model_n: int = 1 << 14, model_P: int = 256) -> Any:
    """Section 7.2 as a ``repro-lab`` preset (``lu-tradeoff``).  The
    keyword parameters are the ``--set``-able knobs."""
    from functools import partial

    from repro.lab.scenarios import Scenario

    n = n if n is not None else (16 if quick else 32)
    points = _lu_points(n, b, P, seed, None, model_n, model_P)
    return Scenario(
        name="lu-tradeoff",
        kernel="lu-ll-nonpivot",
        machine=points[0].machine,
        description="Section 7.2: executed LL vs RL LU (NVM-write / "
                    "network trade-off) next to β-cost formulas (23)–(26)",
        explicit=points,
        report=lambda sc, res: format_lu(_assemble_lu(res)),
        meta={"rebuild": partial(lu_scenario, quick)},
    )


def format_lu(result: Dict) -> str:
    m = result["measured"]
    headers = ["algorithm", "NVM writes", "NVM reads", "network words"]
    body = [
        ["LL-LUNP", m["LL-LUNP"]["nvm_writes"], m["LL-LUNP"]["nvm_reads"],
         m["LL-LUNP"]["network"]],
        ["RL-LUNP", m["RL-LUNP"]["nvm_writes"], m["RL-LUNP"]["nvm_reads"],
         m["RL-LUNP"]["network"]],
    ]
    s = format_table(
        headers, body,
        title=(f"Section 7.2 — measured LU traffic "
               f"(n={result['n']}, b={result['b']}, P={result['P']}; "
               f"LL correct={result['ll_correct']}, "
               f"RL correct={result['rl_correct']})"),
    )
    mod = result["model"]
    headers2 = ["algorithm", "βNW words", "β23 words", "β32 words", "total"]
    body2 = [
        [name, mod[name]["beta_nw_words"], mod[name]["beta_23_words"],
         mod[name]["beta_32_words"], mod[name]["total"]]
        for name in ("LL-LUNP", "RL-LUNP")
    ]
    s += "\n\n" + format_table(
        headers2, body2,
        title=(f"Formulas (23)–(26) at n={result['model_n']}, "
               f"P={result['model_P']}"),
    )
    return s
