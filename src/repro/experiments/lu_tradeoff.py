"""Section 7.2: LL-LUNP vs RL-LUNP — measured counters and cost formulas.

Executes both parallel LU algorithms on the simulated machine, verifies
the factorizations, and tabulates their NVM-write / network trade-off next
to the paper's β-cost formulas (23)–(26).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.distributed import (
    DistMachine,
    HwParams,
    ll_lunp_beta_cost,
    lu_ll_nonpivot,
    lu_rl_nonpivot,
    rl_lunp_beta_cost,
)
from repro.util import format_table

__all__ = ["run_lu", "format_lu"]


def run_lu(
    n: int = 32,
    b: int = 4,
    P: int = 4,
    seed: int = 0,
    hw: Optional[HwParams] = None,
    model_n: int = 1 << 14,
    model_P: int = 256,
) -> Dict:
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    A += np.diag(np.abs(A).sum(axis=1) + 1.0)

    ml, mr = DistMachine(P), DistMachine(P)
    Lll, Ull = lu_ll_nonpivot(A, ml, b=b)
    Lrl, Url = lu_rl_nonpivot(A, mr, b=b)
    hw = hw or HwParams()
    return {
        "n": n, "b": b, "P": P,
        "ll_correct": bool(np.allclose(Lll @ Ull, A, atol=1e-8)),
        "rl_correct": bool(np.allclose(Lrl @ Url, A, atol=1e-8)),
        "measured": {
            "LL-LUNP": {
                "nvm_writes": ml.total_over_ranks("l2_to_l3"),
                "nvm_reads": ml.total_over_ranks("l3_to_l2"),
                "network": ml.total_over_ranks("nw_recv"),
            },
            "RL-LUNP": {
                "nvm_writes": mr.total_over_ranks("l2_to_l3"),
                "nvm_reads": mr.total_over_ranks("l3_to_l2"),
                "network": mr.total_over_ranks("nw_recv"),
            },
        },
        "model": {
            "LL-LUNP": ll_lunp_beta_cost(model_n, model_P, hw),
            "RL-LUNP": rl_lunp_beta_cost(model_n, model_P, hw),
        },
        "model_n": model_n, "model_P": model_P,
    }


def format_lu(result: Dict) -> str:
    m = result["measured"]
    headers = ["algorithm", "NVM writes", "NVM reads", "network words"]
    body = [
        ["LL-LUNP", m["LL-LUNP"]["nvm_writes"], m["LL-LUNP"]["nvm_reads"],
         m["LL-LUNP"]["network"]],
        ["RL-LUNP", m["RL-LUNP"]["nvm_writes"], m["RL-LUNP"]["nvm_reads"],
         m["RL-LUNP"]["network"]],
    ]
    s = format_table(
        headers, body,
        title=(f"Section 7.2 — measured LU traffic "
               f"(n={result['n']}, b={result['b']}, P={result['P']}; "
               f"LL correct={result['ll_correct']}, "
               f"RL correct={result['rl_correct']})"),
    )
    mod = result["model"]
    headers2 = ["algorithm", "βNW words", "β23 words", "β32 words", "total"]
    body2 = [
        [name, mod[name]["beta_nw_words"], mod[name]["beta_23_words"],
         mod[name]["beta_32_words"], mod[name]["total"]]
        for name in ("LL-LUNP", "RL-LUNP")
    ]
    s += "\n\n" + format_table(
        headers2, body2,
        title=(f"Formulas (23)–(26) at n={result['model_n']}, "
               f"P={result['model_P']}"),
    )
    return s
