"""Experiment harnesses: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning structured rows and a
``format_*`` helper that prints them in the paper's layout.  The
benchmarks in ``benchmarks/`` and the examples in ``examples/`` are thin
wrappers over these.

See DESIGN.md §4 for the experiment ↔ module index and EXPERIMENTS.md for
paper-vs-measured numbers.
"""

from repro.experiments.fig2 import Fig2Config, format_fig2, run_fig2
from repro.experiments.fig5 import format_fig5, run_fig5
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.sec3_negative import format_sec3, run_sec3
from repro.experiments.sec4_counts import format_sec4, run_sec4
from repro.experiments.sec5_co import format_sec5, run_sec5
from repro.experiments.sec6_lru import format_sec6, run_sec6
from repro.experiments.sec7_model1 import (
    format_sec7_model1,
    run_sec7_model1,
)
from repro.experiments.sec8_ksm import format_sec8, run_sec8
from repro.experiments.lu_tradeoff import format_lu, run_lu

__all__ = [
    "Fig2Config",
    "run_fig2", "format_fig2",
    "run_fig5", "format_fig5",
    "run_table1", "format_table1",
    "run_table2", "format_table2",
    "run_sec3", "format_sec3",
    "run_sec4", "format_sec4",
    "run_sec5", "format_sec5",
    "run_sec6", "format_sec6",
    "run_sec7_model1", "format_sec7_model1",
    "run_sec8", "format_sec8",
    "run_lu", "format_lu",
]
