"""Section 4: exact traffic counts of the WA kernels vs their non-WA twins.

One table, one row per (kernel, variant): measured writes to slow memory,
the lower bound (output size), measured writes to fast memory, and the
Theorem-1 check — the quantitative content of Algorithms 1–4.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.bounds import theorem1_holds
from repro.core import (
    blocked_cholesky,
    blocked_matmul,
    blocked_trsm,
    nbody2,
    nbody_k,
)
from repro.machine import TwoLevel
from repro.util import format_table

__all__ = ["run_sec4", "format_sec4"]


def _entry(name, variant, hier, output_size) -> Dict:
    return {
        "kernel": name,
        "variant": variant,
        "writes_to_slow": hier.writes_to_slow,
        "output_size": output_size,
        "wa": hier.writes_to_slow <= 2 * output_size,
        "writes_to_fast": hier.writes_to_fast,
        "loads+stores": hier.loads_plus_stores,
        "theorem1": theorem1_holds(hier),
    }


def run_sec4(n: int = 32, b: int = 4, seed: int = 0) -> List[Dict]:
    rng = np.random.default_rng(seed)
    rows: List[Dict] = []

    # -- matmul: all six loop orders -------------------------------------- #
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    for order in ("ijk", "jik", "ikj", "kij", "jki", "kji"):
        h = TwoLevel(3 * b * b)
        blocked_matmul(A, B, b=b, hier=h, loop_order=order)
        rows.append(_entry("matmul (Alg.1)", f"loop order {order}"
                           + (" [k inner]" if order[2] == "k" else ""),
                           h, n * n))

    # -- TRSM -------------------------------------------------------------- #
    T = np.triu(rng.standard_normal((n, n)))
    T[np.diag_indices(n)] = n + rng.random(n)
    rhs = rng.standard_normal((n, n))
    for variant in ("left-looking", "right-looking"):
        h = TwoLevel(3 * b * b)
        blocked_trsm(T, rhs.copy(), b=b, hier=h, variant=variant)
        rows.append(_entry("TRSM (Alg.2)", variant, h, n * n))

    # -- Cholesky ---------------------------------------------------------- #
    G = rng.standard_normal((n, n))
    SPD = G @ G.T + n * np.eye(n)
    for variant in ("left-looking", "right-looking"):
        h = TwoLevel(3 * b * b)
        blocked_cholesky(SPD.copy(), b=b, hier=h, variant=variant)
        rows.append(_entry("Cholesky (Alg.3)", variant, h,
                           n * (n + b) // 2))

    # -- N-body ------------------------------------------------------------ #
    P = rng.standard_normal((n, 3))
    h = TwoLevel(3 * b)
    nbody2(P, b=b, hier=h)
    rows.append(_entry("(N,2)-body (Alg.4)", "blocked", h, n))
    h = TwoLevel(4 * b)
    nbody2(P, b=b, hier=h, use_symmetry=True)
    rows.append(_entry("(N,2)-body (Alg.4)", "force symmetry", h, n))
    h = TwoLevel(4 * b)
    nbody_k(P[: n // 2, :2], b=b, k=3, hier=h)
    rows.append(_entry("(N,3)-body", "blocked", h, n // 2))

    return rows


def format_sec4(rows: List[Dict]) -> str:
    headers = ["kernel", "variant", "writes→slow", "output (LB)", "WA?",
               "writes→fast", "loads+stores", "Thm1"]
    body = [
        [r["kernel"], r["variant"], r["writes_to_slow"], r["output_size"],
         "yes" if r["wa"] else "NO", r["writes_to_fast"],
         r["loads+stores"], "ok" if r["theorem1"] else "VIOLATED"]
        for r in rows
    ]
    return format_table(
        headers, body,
        title="Section 4 — measured traffic of WA kernels and variants",
    )
