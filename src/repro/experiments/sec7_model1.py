"""Section 7, Model 1: CA between ranks + WA locally, measured.

The paper's first parallel scenario: the network attaches to each rank's
lowest level (L2), so interprocessor CA + local WA caps local writes at
the network volume Θ(n²/√P) — not the n²/P lower bound — unless L2 is
over-provisioned by √P (the "hoard" variant).  Engine-backed: both SUMMA
flavours run as ``summa-2d`` points (fanned out over ``jobs`` workers,
cached per point) and the W1/W2/W3 bounds are tabulated against the
measured counters.  :func:`sec7_scenario` is the same decomposition as
the ``repro-lab run sec7-nvm`` preset.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.bounds import parallel_mm_bounds
from repro.util import format_table

__all__ = ["run_sec7_model1", "format_sec7_model1", "sec7_scenario"]


def _sec7_points(n: int, P: int, M1: float) -> List[Any]:
    from repro.lab.registry import MachineSpec
    from repro.lab.scenarios import ScenarioPoint

    machine = MachineSpec(name="sec7-dist")
    return [
        ScenarioPoint("summa-2d", machine,
                      {"n": n, "P": P, "M1": M1, "hoard": hoard, "seed": 0})
        for hoard in (False, True)
    ]


def _assemble_sec7(results: Sequence[Any]) -> Dict:
    p0 = results[0].point.params
    n, P, M1 = p0["n"], p0["P"], p0["M1"]
    bounds = parallel_mm_bounds(n, P, c=1, M1=M1)
    by_hoard = {bool(res.point.params["hoard"]): res.record
                for res in results}
    q = int(math.isqrt(P))

    def counters(rec: Dict) -> Dict:
        return {
            "nw_recv": rec["nw_recv_max"],
            "l1_to_l2_writes": rec["l1_to_l2_max"],
            "l2_to_l1_reads": rec["l2_to_l1_max"],
        }

    return {
        "n": n, "P": P, "M1": M1,
        "correct": bool(by_hoard[False]["correct"]
                        and by_hoard[True]["correct"]),
        "bounds": {"W1": bounds.W1, "W2": bounds.W2, "W3": bounds.W3},
        "plain": counters(by_hoard[False]),
        "hoard": {
            **counters(by_hoard[True]),
            "extra_l2_words": 2 * n * n // q,  # the √P memory premium
        },
    }


def run_sec7_model1(
    n: Optional[int] = None,
    P: Optional[int] = None,
    M1: float = 3 * 16,
    *,
    quick: bool = False,
    jobs: int = 1,
    cache: Any = None,
) -> Dict:
    """Run both SUMMA flavours through the engine and tabulate the
    W1/W2/W3 bounds.  ``quick`` shrinks the default geometry."""
    from repro.lab.executor import execute

    n = n if n is not None else (16 if quick else 32)
    P = P if P is not None else (4 if quick else 16)
    report = execute(_sec7_points(n, P, M1), jobs=jobs, cache=cache)
    return _assemble_sec7(report.results)


def sec7_scenario(quick: bool = False, *, n: Optional[int] = None,
                  P: Optional[int] = None, M1: float = 3 * 16) -> Any:
    """Section 7 Model 1 as a ``repro-lab`` preset (``sec7-nvm``).  The
    keyword parameters are the ``--set``-able knobs."""
    from functools import partial

    from repro.lab.scenarios import Scenario

    n = n if n is not None else (16 if quick else 32)
    P = P if P is not None else (4 if quick else 16)
    points = _sec7_points(n, P, M1)
    return Scenario(
        name="sec7-nvm",
        kernel="summa-2d",
        machine=points[0].machine,
        description="Section 7 Model 1: executed SUMMA vs the hoarding "
                    "variant — local writes track W2, not W1, unless L2 "
                    "is over-provisioned",
        explicit=points,
        report=lambda sc, res: format_sec7_model1(_assemble_sec7(res)),
        meta={"rebuild": partial(sec7_scenario, quick)},
    )


def format_sec7_model1(result: Dict) -> str:
    b = result["bounds"]
    headers = ["variant", "net words (W2 bound)", "L1→L2 writes (W1 bound)",
               "L2→L1 reads (W3 bound)"]
    body = [
        ["SUMMA + local WA",
         f"{result['plain']['nw_recv']} ({b['W2']:.0f})",
         f"{result['plain']['l1_to_l2_writes']} ({b['W1']:.0f})",
         f"{result['plain']['l2_to_l1_reads']} ({b['W3']:.0f})"],
        ["SUMMA hoarding (√P×L2)",
         f"{result['hoard']['nw_recv']} ({b['W2']:.0f})",
         f"{result['hoard']['l1_to_l2_writes']} ({b['W1']:.0f})",
         f"{result['hoard']['l2_to_l1_reads']} ({b['W3']:.0f})"],
    ]
    return format_table(
        headers, body,
        title=(f"Section 7 Model 1 — n={result['n']}, P={result['P']} "
               f"(correct={result['correct']}); plain SUMMA's local writes "
               f"track W2 not W1, hoarding attains W1 at a "
               f"{result['hoard']['extra_l2_words']}-word L2 premium"),
    )
