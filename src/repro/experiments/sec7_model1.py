"""Section 7, Model 1: CA between ranks + WA locally, measured.

The paper's first parallel scenario: the network attaches to each rank's
lowest level (L2), so interprocessor CA + local WA caps local writes at
the network volume Θ(n²/√P) — not the n²/P lower bound — unless L2 is
over-provisioned by √P (the "hoard" variant).  We run both SUMMA flavours
on the simulator and tabulate the three bounds W1/W2/W3 against measured
counters.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.bounds import parallel_mm_bounds
from repro.distributed import DistMachine, summa_2d
from repro.util import format_table

__all__ = ["run_sec7_model1", "format_sec7_model1"]


def run_sec7_model1(n: int = 32, P: int = 16, M1: float = 3 * 16) -> Dict:
    rng = np.random.default_rng(0)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))

    m_plain = DistMachine(P)
    C1 = summa_2d(A, B, m_plain, M1=M1)
    m_hoard = DistMachine(P)
    C2 = summa_2d(A, B, m_hoard, hoard=True, M1=M1)

    bounds = parallel_mm_bounds(n, P, c=1, M1=M1)
    q = int(math.isqrt(P))
    return {
        "n": n, "P": P, "M1": M1,
        "correct": bool(np.allclose(C1, A @ B) and np.allclose(C2, A @ B)),
        "bounds": {"W1": bounds.W1, "W2": bounds.W2, "W3": bounds.W3},
        "plain": {
            "nw_recv": m_plain.max_over_ranks("nw_recv"),
            "l1_to_l2_writes": m_plain.max_over_ranks("l1_to_l2"),
            "l2_to_l1_reads": m_plain.max_over_ranks("l2_to_l1"),
        },
        "hoard": {
            "nw_recv": m_hoard.max_over_ranks("nw_recv"),
            "l1_to_l2_writes": m_hoard.max_over_ranks("l1_to_l2"),
            "l2_to_l1_reads": m_hoard.max_over_ranks("l2_to_l1"),
            "extra_l2_words": 2 * n * n // q,  # the √P memory premium
        },
    }


def format_sec7_model1(result: Dict) -> str:
    b = result["bounds"]
    headers = ["variant", "net words (W2 bound)", "L1→L2 writes (W1 bound)",
               "L2→L1 reads (W3 bound)"]
    body = [
        ["SUMMA + local WA",
         f"{result['plain']['nw_recv']} ({b['W2']:.0f})",
         f"{result['plain']['l1_to_l2_writes']} ({b['W1']:.0f})",
         f"{result['plain']['l2_to_l1_reads']} ({b['W3']:.0f})"],
        ["SUMMA hoarding (√P×L2)",
         f"{result['hoard']['nw_recv']} ({b['W2']:.0f})",
         f"{result['hoard']['l1_to_l2_writes']} ({b['W1']:.0f})",
         f"{result['hoard']['l2_to_l1_reads']} ({b['W3']:.0f})"],
    ]
    return format_table(
        headers, body,
        title=(f"Section 7 Model 1 — n={result['n']}, P={result['P']} "
               f"(correct={result['correct']}); plain SUMMA's local writes "
               f"track W2 not W1, hoarding attains W1 at a "
               f"{result['hoard']['extra_l2_words']}-word L2 premium"),
    )
