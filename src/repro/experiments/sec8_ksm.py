"""Section 8: Krylov methods — streaming CA-CG cuts writes by Θ(s).

One table over s: CG's writes per iteration, plain CA-CG's and streaming
CA-CG's writes per CG-equivalent step, plus the read/flop premium — the
paper's "reduce writes by Θ(s) at the cost of ≤2× reads and arithmetic".
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.krylov import cacg, cg, spd_stencil_system
from repro.util import format_table

__all__ = ["run_sec8", "format_sec8"]


def run_sec8(
    mesh: int = 256,
    d: int = 1,
    b: int = 1,
    s_values: Sequence[int] = (2, 4, 8),
    tol: float = 1e-8,
    block: int = 64,
) -> Dict:
    A, rhs = spd_stencil_system(mesh, d=d, b=b)
    ref = cg(A, rhs, tol=tol)
    rows: List[Dict] = [{
        "method": "CG",
        "s": 1,
        "steps": ref.iterations,
        "writes_per_step": ref.writes_per_iteration,
        "reads": ref.traffic.reads,
        "flops": ref.traffic.flops,
        "converged": ref.converged,
    }]
    for s in s_values:
        for streaming in (False, True):
            res = cacg(A, rhs, s=s, tol=tol, streaming=streaming,
                       block=block)
            rows.append({
                "method": "CA-CG" + (" streaming" if streaming else ""),
                "s": s,
                "steps": res.inner_steps,
                "writes_per_step": res.writes_per_step,
                "reads": res.traffic.reads,
                "flops": res.traffic.flops,
                "converged": res.converged,
            })
    return {"n": A.shape[0], "d": d, "b": b, "cg_ref": ref, "rows": rows}


def format_sec8(result: Dict) -> str:
    headers = ["method", "s", "steps", "writes/step", "reads", "flops",
               "converged"]
    body = [
        [r["method"], r["s"], r["steps"],
         round(r["writes_per_step"], 1), r["reads"], r["flops"],
         r["converged"]]
        for r in result["rows"]
    ]
    return format_table(
        headers, body,
        title=(f"Section 8 — KSM write rates on a {result['d']}-D stencil "
               f"(n={result['n']}): streaming CA-CG reduces W12 by Θ(s)"),
    )
