"""Section 6: replacement policies vs the write floor (Propositions 6.1/6.2).

Replays the two-level-WA matmul trace through caches of capacity 3b², 4b²
and 5b²(+1 line) under LRU, the 3-bit clock, segmented LRU, and the
offline-optimal policy, reporting write-backs against the output floor —
the quantitative form of Proposition 6.1 ("five blocks suffice") and the
Section-6.2 slab-order observation ("just under three suffice for AB").
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.traces import matmul_trace
from repro.machine.cache import CacheSim, CacheStats
from repro.util import format_table

__all__ = ["run_sec6", "format_sec6"]


def run_sec6(
    n: int = 64,
    middle: int = 128,
    b3: int = 16,
    b2: int = 8,
    base: int = 4,
    line: int = 4,
    policies: Sequence[str] = ("lru", "clock", "segmented-lru", "belady"),
    schemes: Sequence[str] = ("wa2", "ab-multilevel", "wa-multilevel"),
) -> List[Dict]:
    floor = n * n // line
    blocks_axis = (3, 4, 5)
    rows: List[Dict] = []
    for scheme in schemes:
        buf = matmul_trace(n, middle, n, scheme=scheme, b3=b3, b2=b2,
                           base=base, line_size=line)
        lines, writes = buf.finalize()
        # The LRU and Belady columns are pure capacity sweeps over one
        # trace — both policies are stack algorithms, so the fastsim
        # multi-capacity kernels compute each column in one pass
        # (bit-identical to the per-capacity CacheSim replays below).
        caps = [blocks * b3 * b3 + line for blocks in blocks_axis]
        lru_sweep = opt_sweep = None
        if all(c % line == 0 for c in caps):
            caps_lines = [c // line for c in caps]
            if "lru" in policies:
                from repro.machine.fastsim import simulate_lru_sweep
                lru_sweep = simulate_lru_sweep(lines, writes, caps_lines)
            if "belady" in policies:
                from repro.machine.fastsim import simulate_opt_sweep
                opt_sweep = simulate_opt_sweep(lines, writes, caps_lines)
        for blocks, cap in zip(blocks_axis, caps):
            for policy in policies:
                st: CacheStats
                if policy == "lru" and lru_sweep is not None:
                    st = lru_sweep.stats(cap // line)
                elif policy == "belady" and opt_sweep is not None:
                    st = opt_sweep.stats(cap // line)
                else:
                    sim = CacheSim(cap, line_size=line, policy=policy)
                    sim.run_lines(lines, writes)
                    sim.flush()
                    st = sim.stats
                rows.append({
                    "scheme": scheme,
                    "capacity_blocks": blocks,
                    "policy": policy,
                    "writebacks": st.writebacks,
                    "floor": floor,
                    "ratio": st.writebacks / floor,
                    "fills": st.fills,
                })
    return rows


def format_sec6(rows: List[Dict]) -> str:
    headers = ["scheme", "cache (blocks)", "policy", "write-backs",
               "floor", "ratio", "fills"]
    body = [
        [r["scheme"], r["capacity_blocks"], r["policy"], r["writebacks"],
         r["floor"], round(r["ratio"], 2), r["fills"]]
        for r in rows
    ]
    return format_table(
        headers, body,
        title=("Section 6 — write-backs vs output floor across policies "
               "and capacities (Prop. 6.1: WA needs 5 blocks under LRU; "
               "slab order needs <3)"),
    )
