"""Table 2: parallel matmul when data does not fit in L2 (Model 2.2).

Engine-backed like :mod:`repro.experiments.table1`: one ``cost-table2``
point per table cell, a Model-2.2 ``cost-dominance`` point, and two
*executed* validation points exhibiting the Theorem-4 trade-off — the
simulated SUMMAL3ooL2 attains the NVM-write floor W1 = n²/P exactly
while paying extra network; the simulated 2.5DMML3ooL2 does the
opposite.  :func:`table2_scenario` exposes the same decomposition as a
``repro-lab run table2`` preset.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.distributed import HwParams
from repro.distributed.costmodel import TABLE2_ROW_COUNT
from repro.util import canonical_int, format_table, require

__all__ = ["run_table2", "format_table2", "table2_scenario"]

_ALGORITHMS = ("2.5DMML3ooL2", "SUMMAL3ooL2")


def _default_hw() -> HwParams:
    """Table 2's regime: small L1/L2 so the data genuinely spills."""
    return HwParams(M1=2**8, M2=2**14)


def _table2_points(n: int, P: int, c3: int, hw: Optional[HwParams],
                   validate_sim: bool, quick: bool) -> List[Any]:
    from repro.lab.registry import MachineSpec, hw_overrides
    from repro.lab.scenarios import ScenarioPoint

    hw = hw or _default_hw()
    machine = MachineSpec(name="table2-hw", hw=hw_overrides(hw))
    # Fail fast on a broken size override: the per-cell kernels would
    # only emit feasible:False records the table assembler cannot
    # pivot, so enforce the table's own rules here, up front.
    fixed = {name: canonical_int(value, name)
             for name, value in (("n", n), ("P", P), ("c3", c3))}
    require(fixed["P"] > 0, "P must be positive")
    require(fixed["c3"] >= 1, "c3 must be >= 1")
    points = [
        ScenarioPoint("cost-table2", machine,
                      {**fixed, "row": row, "algorithm": alg})
        for row in range(TABLE2_ROW_COUNT)
        for alg in _ALGORITHMS
    ]
    points.append(ScenarioPoint("cost-dominance", machine,
                                {**fixed, "model": "2.2"}))
    if validate_sim:
        # Model-2.2 regime at simulation scale: n²/P ≫ M2 so the SUMMA
        # variant's n³/(P√M2) network term genuinely dominates W2.
        nv, Pv, M2v = (16, 4, 3 * 2 * 2) if quick else (32, 16, 3 * 4 * 4)
        points.append(ScenarioPoint(
            "summa-l3-ool2", machine,
            {"n": nv, "P": Pv, "M2": M2v, "seed": 1}))
        points.append(ScenarioPoint(
            "mm-25d", machine,
            {"n": nv, "P": Pv, "c": 1, "storage": "L3-ooL2", "M2": M2v,
             "seed": 1}))
    return points


def _assemble_table2(results: Sequence[Any]) -> Dict:
    from repro.lab.results import ResultSet

    cells = [r.record for r in results if r.point.kernel == "cost-table2"]
    rows = ResultSet(cells).pivot(
        ("movement", "param", "common"), "algorithm", "words").rows
    p0 = results[0].point.params
    out: Dict = {"n": p0["n"], "P": p0["P"], "c3": p0["c3"], "rows": rows}
    summa = mm25d = None
    for res in results:
        if res.point.kernel == "cost-dominance":
            dom = dict(res.record)
            dom.pop("model", None)
            out["dom_comparison"] = dom
        elif res.point.kernel == "summa-l3-ool2":
            summa = res.record
        elif res.point.kernel == "mm-25d":
            mm25d = res.record
    if summa is not None and mm25d is not None:
        out["validation"] = {
            "summa_correct": summa["correct"],
            "mm25d_correct": mm25d["correct"],
            "summa_nvm_writes_per_rank": summa["l2_to_l3_max"],
            "w1_floor": summa["w1_floor"],
            "summa_nw_recv": summa["nw_recv_max"],
            "mm25d_nvm_writes_per_rank": mm25d["l2_to_l3_max"],
            "mm25d_nw_recv": mm25d["nw_recv_max"],
        }
    return out


def run_table2(
    n: int = 1 << 15,
    P: int = 512,
    c3: int = 4,
    hw: Optional[HwParams] = None,
    *,
    validate_sim: bool = True,
    quick: bool = False,
    jobs: int = 1,
    cache: Any = None,
) -> Dict:
    """Evaluate Table 2 through the sweep engine and (optionally)
    measure the Theorem-4 trade-off on the simulator.  ``quick``
    shrinks the validation geometry."""
    from repro.lab.executor import execute

    points = _table2_points(n, P, c3, hw, validate_sim, quick)
    report = execute(points, jobs=jobs, cache=cache)
    return _assemble_table2(report.results)


def table2_scenario(quick: bool = False, *, n: int = 1 << 15,
                    P: int = 512, c3: int = 4) -> Any:
    """Table 2 as a ``repro-lab`` preset.  The keyword parameters are
    the ``--set``-able knobs (the ``rebuild`` hook keeps the coupled
    cell/dominance/validation family consistent)."""
    from functools import partial

    from repro.lab.scenarios import Scenario

    points = _table2_points(n, P, c3, None, True, quick)
    return Scenario(
        name="table2",
        kernel="cost-table2",
        machine=points[0].machine,
        description="Table 2: Model-2.2 matmul cost model + executed "
                    "Theorem-4 trade-off (SUMMA vs 2.5D, NVM writes vs "
                    "network)",
        explicit=points,
        report=lambda sc, res: format_table2(_assemble_table2(res)),
        meta={"rebuild": partial(table2_scenario, quick)},
    )


def format_table2(result: Dict) -> str:
    headers = ["Data movement", "Hw param", "Common factor",
               "2.5DMML3ooL2", "SUMMAL3ooL2"]
    body = []
    for r in result["rows"]:
        body.append([
            r["movement"], r["param"], r["common"],
            "NA" if r["2.5DMML3ooL2"] is None else r["2.5DMML3ooL2"],
            "NA" if r["SUMMAL3ooL2"] is None else r["SUMMAL3ooL2"],
        ])
    title = (f"Table 2 — n={result['n']}, P={result['P']}, "
             f"c3={result['c3']} (word counts)")
    s = format_table(headers, body, title=title)
    d = result["dom_comparison"]
    s += (f"\n\ndomβcost ratio (2.5D/SUMMA) = {d['ratio']:.3f}"
          f"  →  predicted winner: {d['winner']}")
    if "validation" in result:
        v = result["validation"]
        s += ("\nTheorem-4 trade-off, measured on the simulator:"
              f"\n  SUMMAL3ooL2: NVM writes/rank = "
              f"{v['summa_nvm_writes_per_rank']} "
              f"(floor W1 = {v['w1_floor']}), "
              f"network recv = {v['summa_nw_recv']}"
              f"\n  2.5DMML3ooL2: NVM writes/rank = "
              f"{v['mm25d_nvm_writes_per_rank']}, "
              f"network recv = {v['mm25d_nw_recv']}")
    return s
