"""Table 2: parallel matmul when data does not fit in L2 (Model 2.2).

Analytic rows plus the *measured* Theorem-4 trade-off: the simulated
SUMMAL3ooL2 attains the NVM-write floor W1 = n²/P exactly while paying
extra network; the simulated 2.5DMML3ooL2 does the opposite.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.distributed import DistMachine, HwParams, mm_25d, summa_l3_ool2
from repro.distributed.costmodel import dom_beta_cost_model22, table2_rows
from repro.util import format_table

__all__ = ["run_table2", "format_table2"]


def run_table2(
    n: int = 1 << 15,
    P: int = 512,
    c3: int = 4,
    hw: Optional[HwParams] = None,
    *,
    validate_sim: bool = True,
) -> Dict:
    hw = hw or HwParams(M1=2**8, M2=2**14)
    rows = table2_rows(n, P, c3, hw)
    out: Dict = {
        "n": n, "P": P, "c3": c3,
        "rows": rows,
        "dom_comparison": dom_beta_cost_model22(n, P, c3, hw),
    }
    if validate_sim:
        # Model-2.2 regime at simulation scale: n²/P ≫ M2 so the SUMMA
        # variant's n³/(P√M2) network term genuinely dominates W2.
        nv, Pv, M2v = 32, 16, 3 * 4 * 4
        rng = np.random.default_rng(1)
        A = rng.standard_normal((nv, nv))
        B = rng.standard_normal((nv, nv))
        ms = DistMachine(Pv, M2=M2v)
        Cs = summa_l3_ool2(A, B, ms, M2=M2v)
        m25 = DistMachine(Pv, M2=M2v)
        C25 = mm_25d(A, B, m25, c=1, storage="L3-ooL2", M2=M2v)
        out["validation"] = {
            "summa_correct": bool(np.allclose(Cs, A @ B)),
            "mm25d_correct": bool(np.allclose(C25, A @ B)),
            "summa_nvm_writes_per_rank": ms.max_over_ranks("l2_to_l3"),
            "w1_floor": nv * nv // Pv,
            "summa_nw_recv": ms.max_over_ranks("nw_recv"),
            "mm25d_nvm_writes_per_rank": m25.max_over_ranks("l2_to_l3"),
            "mm25d_nw_recv": m25.max_over_ranks("nw_recv"),
        }
    return out


def format_table2(result: Dict) -> str:
    headers = ["Data movement", "Hw param", "Common factor",
               "2.5DMML3ooL2", "SUMMAL3ooL2"]
    body = []
    for r in result["rows"]:
        body.append([
            r["movement"], r["param"], r["common"],
            "NA" if r["2.5DMML3ooL2"] is None else r["2.5DMML3ooL2"],
            "NA" if r["SUMMAL3ooL2"] is None else r["SUMMAL3ooL2"],
        ])
    title = (f"Table 2 — n={result['n']}, P={result['P']}, "
             f"c3={result['c3']} (word counts)")
    s = format_table(headers, body, title=title)
    d = result["dom_comparison"]
    s += (f"\n\ndomβcost ratio (2.5D/SUMMA) = {d['ratio']:.3f}"
          f"  →  predicted winner: {d['winner']}")
    if "validation" in result:
        v = result["validation"]
        s += ("\nTheorem-4 trade-off, measured on the simulator:"
              f"\n  SUMMAL3ooL2: NVM writes/rank = "
              f"{v['summa_nvm_writes_per_rank']} "
              f"(floor W1 = {v['w1_floor']}), "
              f"network recv = {v['summa_nw_recv']}"
              f"\n  2.5DMML3ooL2: NVM writes/rank = "
              f"{v['mm25d_nvm_writes_per_rank']}, "
              f"network recv = {v['mm25d_nw_recv']}")
    return s
