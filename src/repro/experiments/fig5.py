"""Figure 5: multi-level WA vs slab ("AB") instruction orders under LRU.

The paper's left column runs the fully write-avoiding order (reduction
innermost at every recursion level) and shows it *failing* under LRU at
large L3 blockings (needs 5 blocks resident — Proposition 6.1); the right
column blocks for L3 write-backs only (slab order below the top), which
stays at the write floor even when just under 3 blocks fit — the
Section-6.2 trade-off between exclusive-state misses and write-backs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.traces import matmul_trace
from repro.experiments.fig2 import Fig2Config
from repro.machine.cache import CacheSim
from repro.util import format_table

__all__ = ["run_fig5", "format_fig5"]


def _run(cfg: Fig2Config, scheme: str, b3: int) -> Dict:
    rows = {"scheme": scheme, "b3": b3, "middles": list(cfg.middles),
            "VICTIMS.M": [], "VICTIMS.E": [], "FILLS.E": [],
            "write_lb": []}
    n = cfg.n_outer
    for m in cfg.middles:
        buf = matmul_trace(n, m, n, scheme=scheme, b3=b3, b2=cfg.b2,
                           base=cfg.base, line_size=cfg.line_size)
        sim = CacheSim(cfg.cache(), line_size=cfg.line_size,
                       policy=cfg.policy)
        lines, writes = buf.finalize()
        sim.run_lines(lines, writes)
        sim.flush()
        st = sim.stats
        rows["VICTIMS.M"].append(st.writebacks)
        rows["VICTIMS.E"].append(st.victims_e)
        rows["FILLS.E"].append(st.fills)
        rows["write_lb"].append(n * n // cfg.line_size)
    return rows


def run_fig5(cfg: Optional[Fig2Config] = None) -> Dict[str, List[Dict]]:
    """Left column: 'wa-multilevel'; right column: 'ab-multilevel';
    one row pair per L3 blocking size (largest = just-under-3-blocks)."""
    cfg = cfg or Fig2Config()
    out: Dict[str, List[Dict]] = {"multilevel-wa": [], "two-level-ab": []}
    for b3 in cfg.b3_sizes():
        out["multilevel-wa"].append(_run(cfg, "wa-multilevel", b3))
        out["two-level-ab"].append(_run(cfg, "ab-multilevel", b3))
    return out


def format_fig5(results: Dict[str, List[Dict]]) -> str:
    chunks = []
    for col, runs in results.items():
        for rows in runs:
            title = f"Figure 5 ({col}) — L3 block={rows['b3']}"
            headers = ["counter"] + [str(m) for m in rows["middles"]]
            body = [
                ["L3_VICTIMS.M"] + rows["VICTIMS.M"],
                ["L3_VICTIMS.E"] + rows["VICTIMS.E"],
                ["LLC_S_FILLS.E"] + rows["FILLS.E"],
                ["Write L.B."] + rows["write_lb"],
            ]
            chunks.append(format_table(headers, body, title=title))
    return "\n\n".join(chunks)
