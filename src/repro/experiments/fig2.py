"""Figure 2: L3 cache-counter measurements of matmul instruction orders.

The paper fixes the outer dimensions at 4000, sweeps the middle dimension
from 128 to 32K, and reads three Xeon-7560 uncore counters for six
variants (CO, MKL, and two-level WA with four L3 blocking sizes).  We run
the same experiment at a scaled-down geometry through the cache simulator
(DESIGN.md documents why the shape is scale-invariant) and report the same
rows: ``L3_VICTIMS.M``, ``L3_VICTIMS.E``, ``LLC_S_FILLS.E`` and the write
lower bound (output lines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.cache_oblivious import ideal_cache_misses
from repro.core.traces import matmul_trace
from repro.machine.cache import CacheSim
from repro.util import format_table

__all__ = ["Fig2Config", "run_fig2", "format_fig2", "fig2_variants",
           "fig2_ideal_misses"]


@dataclass
class Fig2Config:
    """Scaled-down Figure-2 geometry.

    Defaults mirror the paper's proportions: outer dims n, middle dims
    sweeping from n/32 to 8n; the L3 cache holds ~3 blocks of the largest
    blocking size; smaller blockings are ~0.68/0.78/0.88 of the largest
    (the paper's 700/800/900/1023).
    """

    n_outer: int = 128
    middles: Sequence[int] = (8, 16, 32, 64, 128, 256, 512, 1024)
    line_size: int = 4
    b3_fracs: Sequence[float] = (0.68, 0.78, 0.88, 1.0)
    b2: int = 8
    base: int = 4
    #: "lru" by default (the policy Propositions 6.1/6.2 analyze, and the
    #: simulator's fast path).  Use "clock" for the Nehalem 3-bit
    #: approximation — same shapes, ~100× slower victim search.
    policy: str = "lru"
    cache_words: Optional[int] = None  # default: 3 * b3_max²

    def b3_sizes(self) -> List[int]:
        b3_max = self._b3_max()
        out = []
        for f in self.b3_fracs:
            b = max(self.base, int(round(b3_max * f / self.base)) * self.base)
            out.append(min(b, b3_max))
        return out

    def _b3_max(self) -> int:
        # Largest blocking such that 3 blocks ~ cache (paper's 1023 on a
        # 24 MB L3 ~ sqrt(M/3)).
        cap = self.cache() // 3
        b = int(cap**0.5)
        return max(self.base, (b // self.base) * self.base)

    def cache(self) -> int:
        if self.cache_words is not None:
            return self.cache_words
        # Default cache sized so that three of the largest paper-ratio
        # blocks fit: scale n_outer/4 like 1023 vs 4000.
        b = max(self.base, (self.n_outer // 4 // self.base) * self.base)
        return 3 * b * b + self.line_size


def _variant_rows(cfg: Fig2Config, scheme: str, b3: int) -> Dict:
    rows = {"scheme": scheme, "b3": b3, "middles": list(cfg.middles),
            "VICTIMS.M": [], "VICTIMS.E": [], "FILLS.E": [],
            "write_lb": []}
    n = cfg.n_outer
    for m in cfg.middles:
        buf = matmul_trace(n, m, n, scheme=scheme, b3=b3, b2=cfg.b2,
                           base=cfg.base, line_size=cfg.line_size)
        sim = CacheSim(cfg.cache(), line_size=cfg.line_size,
                       policy=cfg.policy)
        lines, writes = buf.finalize()
        sim.run_lines(lines, writes)
        sim.flush()
        st = sim.stats
        rows["VICTIMS.M"].append(st.writebacks)
        rows["VICTIMS.E"].append(st.victims_e)
        rows["FILLS.E"].append(st.fills)
        rows["write_lb"].append(n * n // cfg.line_size)
    return rows


def fig2_variants(cfg: Fig2Config) -> List[tuple]:
    """The six panels as ``(scheme, b3)`` pairs, in the paper's order:
    CO (2a), MKL-like (2b), then two-level WA per blocking size (2c–2f).
    Shared with the ``repro.lab`` fig2 scenario so the decomposed sweep
    stays in lock-step with this serial harness."""
    b3s = cfg.b3_sizes()
    return [("co", b3s[-1]), ("mkl-like", b3s[-1])] \
        + [("wa2", b3) for b3 in b3s]


def fig2_ideal_misses(cfg: Fig2Config) -> List[float]:
    """The paper's "Misses on Ideal Cache" reference line for panel (a)."""
    wb = 8  # bytes per word in the formula
    return [
        ideal_cache_misses(cfg.n_outer, m, cfg.n_outer,
                           cfg.cache() * wb, cfg.line_size * wb)
        for m in cfg.middles
    ]


def run_fig2(cfg: Optional[Fig2Config] = None) -> List[Dict]:
    """All six Figure-2 panels: CO (2a), MKL-like (2b), and two-level WA
    at the four blocking sizes (2c–2f)."""
    cfg = cfg or Fig2Config()
    out = [_variant_rows(cfg, scheme, b3)
           for scheme, b3 in fig2_variants(cfg)]
    out[0]["ideal_misses"] = fig2_ideal_misses(cfg)
    return out


def format_fig2(results: List[Dict]) -> str:
    chunks = []
    for rows in results:
        title = (f"Figure 2 panel — scheme={rows['scheme']}, "
                 f"L3 block={rows['b3']}")
        headers = ["counter"] + [str(m) for m in rows["middles"]]
        body = [
            ["L3_VICTIMS.M"] + rows["VICTIMS.M"],
            ["L3_VICTIMS.E"] + rows["VICTIMS.E"],
            ["LLC_S_FILLS.E"] + rows["FILLS.E"],
            ["Write L.B."] + rows["write_lb"],
        ]
        if "ideal_misses" in rows:
            body.append(["Ideal misses"]
                        + [round(v, 1) for v in rows["ideal_misses"]])
        chunks.append(format_table(headers, body, title=title))
    return "\n\n".join(chunks)
