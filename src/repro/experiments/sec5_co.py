"""Section 5: cache-oblivious algorithms cannot be write-avoiding.

Runs the CO recursive matmul with explicit ideal-execution accounting at a
cascade of fast-memory sizes and shows stores growing like Θ(n³/√M),
against the WA comparator's flat n² — Theorem 3 / Corollary 4 in numbers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.bounds import co_write_lower_bound
from repro.core import blocked_matmul, co_matmul
from repro.machine import TwoLevel
from repro.util import format_table

__all__ = ["run_sec5", "format_sec5"]


def run_sec5(
    n: int = 32,
    memories: Sequence[int] = (3 * 4, 3 * 16, 3 * 64),
    seed: int = 0,
) -> List[Dict]:
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    B = rng.standard_normal((n, n))
    rows = []
    for M in memories:
        h_co = TwoLevel(M)
        co_matmul(A, B, base=2, hier=h_co)
        b = int((M // 3) ** 0.5)
        while b > 1 and n % b:
            b -= 1
        h_wa = TwoLevel(M)
        blocked_matmul(A, B, b=b, hier=h_wa, loop_order="ijk")
        rows.append({
            "n": n, "M": M,
            "co_stores": h_co.writes_to_slow,
            "wa_stores": h_wa.writes_to_slow,
            "output": n * n,
            "corollary4_lb": co_write_lower_bound(n**3, M, c=1.0),
            "co_over_output": h_co.writes_to_slow / (n * n),
        })
    return rows


def format_sec5(rows: List[Dict]) -> str:
    headers = ["n", "M", "CO stores", "WA stores", "output n²",
               "Cor.4 Ω-ref", "CO/output"]
    body = [
        [r["n"], r["M"], r["co_stores"], r["wa_stores"], r["output"],
         round(r["corollary4_lb"], 1), round(r["co_over_output"], 1)]
        for r in rows
    ]
    return format_table(
        headers, body,
        title=("Section 5 — CO matmul stores Θ(n³/√M) vs WA's n² "
               "(Theorem 3 / Corollary 4)"),
    )
