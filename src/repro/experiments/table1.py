"""Table 1: communication costs of parallel matmul when data fits in L2.

A thin client of the ``repro.lab`` engine: :func:`run_table1` expands
into point-level kernels — one ``cost-table1`` point per (row,
algorithm) cell, one ``cost-dominance`` point, and one *executed*
``mm-25d`` cross-check — executes them through
:func:`repro.lab.executor.execute` (``jobs`` workers, optional result
cache), and reassembles the exact result structure the serial harness
always returned (the table cells pivot back into rows via
:meth:`repro.lab.results.ResultSet.pivot`).  :func:`table1_scenario` is
the same decomposition as a ``repro-lab run table1`` preset.

The lab imports happen lazily inside the functions: ``repro.lab``
imports this module (for :func:`format_table1`), so top-level imports
the other way would cycle.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

from repro.distributed import HwParams
from repro.distributed.costmodel import TABLE1_ROW_COUNT
from repro.util import canonical_int, format_table, require

__all__ = ["run_table1", "format_table1", "table1_scenario"]

_ALGORITHMS = ("2DMML2", "2.5DMML2", "2.5DMML3")


def _table1_points(n: int, P: int, c2: int, c3: int,
                   hw: Optional[HwParams], validate_sim: bool,
                   quick: bool) -> List[Any]:
    from repro.lab.registry import MachineSpec, hw_overrides
    from repro.lab.scenarios import ScenarioPoint

    machine = MachineSpec(name="table1-hw", hw=hw_overrides(hw))
    # Fail fast on a broken size override: the per-cell kernels would
    # only emit feasible:False records the table assembler cannot
    # pivot, so enforce the table's own rules here, up front.
    fixed = {name: canonical_int(value, name)
             for name, value in (("n", n), ("P", P), ("c2", c2),
                                 ("c3", c3))}
    require(fixed["c3"] > fixed["c2"] >= 1, "need c3 > c2 >= 1")
    require(fixed["P"] > 0, "P must be positive")
    points = [
        ScenarioPoint("cost-table1", machine,
                      {**fixed, "row": row, "algorithm": alg})
        for row in range(TABLE1_ROW_COUNT)
        for alg in _ALGORITHMS
    ]
    points.append(ScenarioPoint("cost-dominance", machine,
                                {**fixed, "model": "2.1"}))
    if validate_sim:
        # Small executable configuration (the analytic n, P are far
        # beyond simulation scale): P=8, c=2 (q=2).
        nv = 8 if quick else 16
        points.append(ScenarioPoint("mm-25d", machine,
                                    {"n": nv, "P": 8, "c": 2, "seed": 0}))
    return points


def _assemble_table1(results: Sequence[Any]) -> Dict:
    """Point records (in point order) -> the legacy harness result."""
    from repro.lab.results import ResultSet

    cells = [r.record for r in results if r.point.kernel == "cost-table1"]
    rows = ResultSet(cells).pivot(
        ("movement", "param", "common"), "algorithm", "words").rows
    p0 = results[0].point.params
    out: Dict = {
        "n": p0["n"], "P": p0["P"], "c2": p0["c2"], "c3": p0["c3"],
        "rows": rows,
    }
    for res in results:
        if res.point.kernel == "cost-dominance":
            dom = dict(res.record)
            dom.pop("model", None)
            out["dom_comparison"] = dom
        elif res.point.kernel == "mm-25d":
            pv = res.point.params
            # Leading measured network words per rank: replication
            # (2·nb²) + SUMMA panels (2·(q/c)·nb²) + reduction (nb²) —
            # compare order against the model's leading term.
            measured = res.record["nw_recv_max"]
            model_leading = 2 * pv["n"]**2 / math.sqrt(pv["P"] * pv["c"])
            out["validation"] = {
                "numerically_correct": res.record["correct"],
                "measured_max_nw_recv": measured,
                "model_leading_words": model_leading,
                "within_factor": measured / model_leading,
            }
    return out


def run_table1(
    n: int = 1 << 14,
    P: int = 1 << 20,
    c2: int = 4,
    c3: int = 16,
    hw: Optional[HwParams] = None,
    *,
    validate_sim: bool = True,
    quick: bool = False,
    jobs: int = 1,
    cache: Any = None,
) -> Dict:
    """Evaluate Table 1 and optionally cross-check against a simulated run.

    Runs through the ``repro.lab`` engine: ``jobs`` fans the points out
    over worker processes and *cache* (a
    :class:`~repro.lab.cache.ResultCache`) serves repeats from disk.
    ``quick`` shrinks the validation run's geometry.
    """
    from repro.lab.executor import execute

    points = _table1_points(n, P, c2, c3, hw, validate_sim, quick)
    report = execute(points, jobs=jobs, cache=cache)
    return _assemble_table1(report.results)


def table1_scenario(quick: bool = False, *, n: int = 1 << 14,
                    P: int = 1 << 20, c2: int = 4, c3: int = 16) -> Any:
    """Table 1 as a ``repro-lab`` preset: one point per table cell, plus
    the dominance comparison and the executed 2.5D cross-check.

    The keyword parameters are the preset's ``--set``-able knobs: the
    ``rebuild`` hook regenerates the whole coupled point family from
    them, leaving the fixed validation geometry alone.
    """
    from functools import partial

    from repro.lab.scenarios import Scenario

    points = _table1_points(n, P, c2, c3, None, True, quick)
    return Scenario(
        name="table1",
        kernel="cost-table1",
        machine=points[0].machine,
        description="Table 1: Model-2.1 matmul cost model, one point per "
                    "cell + dominance + executed 2.5D cross-check",
        explicit=points,
        report=lambda sc, res: format_table1(_assemble_table1(res)),
        meta={"rebuild": partial(table1_scenario, quick)},
    )


def format_table1(result: Dict) -> str:
    headers = ["Data movement", "Hw param", "Common factor",
               "2DMML2", "2.5DMML2", "2.5DMML3"]
    body = []
    for r in result["rows"]:
        body.append([
            r["movement"], r["param"], r["common"],
            "NA" if r["2DMML2"] is None else r["2DMML2"],
            "NA" if r["2.5DMML2"] is None else r["2.5DMML2"],
            "NA" if r["2.5DMML3"] is None else r["2.5DMML3"],
        ])
    title = (f"Table 1 — n={result['n']}, P={result['P']}, "
             f"c2={result['c2']}, c3={result['c3']} (word counts)")
    s = format_table(headers, body, title=title)
    d = result["dom_comparison"]
    s += (f"\n\ndomβcost(2.5DMML2)/domβcost(2.5DMML3) = {d['ratio']:.3f}"
          f"  →  predicted winner: {d['winner']}")
    if "validation" in result:
        v = result["validation"]
        s += (f"\nsimulation check: correct={v['numerically_correct']}, "
              f"measured/model network words = {v['within_factor']:.2f}x")
    return s
