"""Table 1: communication costs of parallel matmul when data fits in L2.

Two parts: (1) the paper's analytic rows, numerically evaluated
(:func:`repro.distributed.costmodel.table1_rows`); (2) a *measured*
cross-check — the simulated 2.5D algorithm's per-rank network words against
the table's βNW row — so the model and the executed algorithm agree.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.distributed import DistMachine, HwParams, mm_25d
from repro.distributed.costmodel import dom_beta_cost_model21, table1_rows
from repro.util import format_table

__all__ = ["run_table1", "format_table1"]


def run_table1(
    n: int = 1 << 14,
    P: int = 1 << 20,
    c2: int = 4,
    c3: int = 16,
    hw: Optional[HwParams] = None,
    *,
    validate_sim: bool = True,
) -> Dict:
    """Evaluate Table 1 and optionally cross-check against a simulated run.

    The validation run uses a small feasible configuration (the analytic
    n, P are far beyond simulation scale) and compares measured per-rank
    network words to the model's leading term.
    """
    hw = hw or HwParams()
    rows = table1_rows(n, P, c2, c3, hw)
    out: Dict = {
        "n": n, "P": P, "c2": c2, "c3": c3,
        "rows": rows,
        "dom_comparison": dom_beta_cost_model21(n, P, c2, c3, hw),
    }
    if validate_sim:
        # Small executable configuration: P=8, c=2 (q=2), n=16.
        nv, Pv, cv = 16, 8, 2
        rng = np.random.default_rng(0)
        A = rng.standard_normal((nv, nv))
        B = rng.standard_normal((nv, nv))
        m = DistMachine(Pv)
        C = mm_25d(A, B, m, c=cv)
        ok = bool(np.allclose(C, A @ B))
        q = int(math.isqrt(Pv // cv))
        nb = nv // q
        # Leading measured network words per rank: replication (2·nb²)
        # + SUMMA panels (2·(q/c)·nb²) + reduction (nb²) — compare order.
        measured = m.max_over_ranks("nw_recv")
        model_leading = 2 * nv**2 / math.sqrt(Pv * cv)
        out["validation"] = {
            "numerically_correct": ok,
            "measured_max_nw_recv": measured,
            "model_leading_words": model_leading,
            "within_factor": measured / model_leading,
        }
    return out


def format_table1(result: Dict) -> str:
    headers = ["Data movement", "Hw param", "Common factor",
               "2DMML2", "2.5DMML2", "2.5DMML3"]
    body = []
    for r in result["rows"]:
        body.append([
            r["movement"], r["param"], r["common"],
            "NA" if r["2DMML2"] is None else r["2DMML2"],
            "NA" if r["2.5DMML2"] is None else r["2.5DMML2"],
            "NA" if r["2.5DMML3"] is None else r["2.5DMML3"],
        ])
    title = (f"Table 1 — n={result['n']}, P={result['P']}, "
             f"c2={result['c2']}, c3={result['c3']} (word counts)")
    s = format_table(headers, body, title=title)
    d = result["dom_comparison"]
    s += (f"\n\ndomβcost(2.5DMML2)/domβcost(2.5DMML3) = {d['ratio']:.3f}"
          f"  →  predicted winner: {d['winner']}")
    if "validation" in result:
        v = result["validation"]
        s += (f"\nsimulation check: correct={v['numerically_correct']}, "
              f"measured/model network words = {v['within_factor']:.2f}x")
    return s
