"""Section 3: bounded reuse precludes write-avoiding (Theorem 2).

Pebbles the FFT and Strassen CDAGs with an offline-optimal replacement and
reports measured stores against Theorem 2's lower bound — plus classical
matmul as the contrast case (out-degree-1 multiply vertices ⇒ no
obstruction, stores = output exactly).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cdag import (
    fft_cdag,
    matmul_cdag,
    pebble,
    strassen_cdag,
    theorem2_write_lower_bound,
)
from repro.util import format_table

__all__ = ["run_sec3", "format_sec3"]


def _matmul_schedule(n: int) -> list:
    sched = []
    for i in range(n):
        for j in range(n):
            for k in range(n):
                sched.append(("m", i, j, k))
                if k >= 1:
                    sched.append(("c", i, j, k))
    return sched


def run_sec3(
    fft_sizes: Sequence[int] = (64, 256, 1024),
    strassen_sizes: Sequence[int] = (4, 8),
    matmul_sizes: Sequence[int] = (4, 6, 8),
    M: int = 16,
) -> List[Dict]:
    rows: List[Dict] = []
    for n in fft_sizes:
        dag = fft_cdag(n)
        st = pebble(dag, M=M)
        lb = theorem2_write_lower_bound(st.loads, n, d=2)
        rows.append({
            "algorithm": "Cooley-Tukey FFT", "n": n, "d": 2, "M": M,
            "loads": st.loads, "stores": st.stores,
            "theorem2_lb": lb,
            "store_fraction": st.store_fraction,
            "output_size": n,
        })
    for n in strassen_sizes:
        dag = strassen_cdag(n)
        st = pebble(dag, M=max(M, 12))
        prods = [v for v in dag.g.nodes
                 if isinstance(v, tuple) and v[0] == "p"]
        dec_c = dag.induced_subgraph(dag.descendants_of(prods))
        d = dec_c.max_out_degree(exclude_inputs=False)
        rows.append({
            "algorithm": "Strassen", "n": n, "d": d, "M": max(M, 12),
            "loads": st.loads, "stores": st.stores,
            "theorem2_lb": theorem2_write_lower_bound(st.loads, 0, d=max(d, 1)),
            "store_fraction": st.store_fraction,
            "output_size": n * n,
        })
    for n in matmul_sizes:
        dag = matmul_cdag(n)
        st = pebble(dag, M=3 * n, schedule=_matmul_schedule(n))
        rows.append({
            "algorithm": "classical matmul (WA schedule)", "n": n,
            "d": "1 (DecC)", "M": 3 * n,
            "loads": st.loads, "stores": st.stores,
            "theorem2_lb": 0,
            "store_fraction": st.store_fraction,
            "output_size": n * n,
        })
    return rows


def format_sec3(rows: List[Dict]) -> str:
    headers = ["algorithm", "n", "d", "M", "loads", "stores",
               "Thm2 LB", "stores/traffic", "output"]
    body = [
        [r["algorithm"], r["n"], r["d"], r["M"], r["loads"], r["stores"],
         r["theorem2_lb"], round(r["store_fraction"], 3), r["output_size"]]
        for r in rows
    ]
    return format_table(
        headers, body,
        title=("Section 3 — pebbled store counts vs Theorem-2 bounds "
               "(FFT/Strassen: stores ~ traffic; matmul: stores = output)"),
    )
