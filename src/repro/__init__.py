"""repro — a reproduction of *Write-Avoiding Algorithms* (Carson, Demmel,
Grigori, Knight, Koanantakool, Schwartz, Simhadri; IPDPS 2016 /
UCB/EECS-2015-163).

Subpackages
-----------
``repro.machine``
    Explicit memory hierarchies with read/write counters, and a
    cache simulator (LRU / 3-bit clock / Belady / …) standing in for the
    paper's hardware counters.
``repro.core``
    The paper's sequential WA kernels (blocked matmul, TRSM, Cholesky,
    N-body) and the non-WA comparators (cache-oblivious matmul, Strassen,
    Cooley–Tukey FFT), all numerically executable and traffic-instrumented.
``repro.cdag``
    Computation DAGs, Theorem-2 bounds, and a red-blue pebbler.
``repro.bounds``
    The lower-bound catalogue (Theorems 1, 3, 4; Corollaries 1, 4).
``repro.distributed``
    A simulated distributed machine with per-channel counters, SUMMA /
    Cannon / 2.5D matmul, parallel LU, and the Table-1/Table-2 cost models.
``repro.krylov``
    CG, s-step CA-CG, and the blocked/streaming matrix-powers kernels with
    write counting.
``repro.experiments``
    One harness per table/figure of the paper.
``repro.lab``
    The scenario-sweep engine: string-keyed registries of kernels, machine
    models (including NVM-style asymmetric read/write costs) and policies;
    declarative parameter grids with named presets per paper figure; a
    ``multiprocessing`` executor; and a content-addressed on-disk result
    cache keyed by scenario point + code fingerprint, so repeated sweeps
    skip already-simulated points.  CLI: ``python -m repro.lab``.
"""

from repro.machine import CacheSim, MemoryHierarchy, TwoLevel
from repro.core import (
    blocked_cholesky,
    blocked_matmul,
    blocked_trsm,
    co_matmul,
    fft,
    nbody2,
    nbody_k,
    strassen_matmul,
    wa_block_size,
    wa_matmul_multilevel,
)
from repro.bounds import parallel_mm_bounds, theorem1_holds
from repro.distributed import DistMachine, HwParams, mm_25d, summa_2d
from repro.krylov import cacg, cg, spd_stencil_system

__version__ = "1.0.0"

__all__ = [
    "CacheSim",
    "MemoryHierarchy",
    "TwoLevel",
    "blocked_cholesky",
    "blocked_matmul",
    "blocked_trsm",
    "co_matmul",
    "fft",
    "nbody2",
    "nbody_k",
    "strassen_matmul",
    "wa_block_size",
    "wa_matmul_multilevel",
    "parallel_mm_bounds",
    "theorem1_holds",
    "DistMachine",
    "HwParams",
    "mm_25d",
    "summa_2d",
    "cacg",
    "cg",
    "spd_stencil_system",
    "__version__",
]
