"""Communication-avoiding CG (paper Algorithm 7), with the streaming
write-avoiding option.

CA-CG runs the conventional CG recurrences in the *coordinates* of a
(2s+1)-column Krylov basis ``V = [P, R]`` (P from the search direction p,
R from the residual r), refreshed every s inner steps.  In exact
arithmetic it produces the same iterates as CG.

Two execution modes:

* ``streaming=False`` (plain CA-CG): the basis is built with the blocked
  matrix-powers kernel and *stored*; the Gram matrix ``G = VᵀV`` and the
  final recovery ``[p, r, x] = V·[p̂, r̂, x̂]`` read it back.  Writes to
  slow memory: Θ(s·n) per outer iteration — the same W12 = O(N·n) as CG.

* ``streaming=True`` (WA CA-CG, [14 §6.3]): the basis is *streamed* twice —
  once into the Gram-matrix accumulation, once into the recovery — and
  discarded blockwise.  Writes drop to Θ(n) per outer iteration,
  a Θ(s) reduction, at the documented cost of ≤ 2× reads and flops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.krylov.basis import MonomialBasis, PolynomialBasis
from repro.krylov.cg import KSMTraffic
from repro.krylov.matrix_powers import (
    matrix_powers_blocked,
    matrix_powers_streaming,
)
from repro.util import check_positive_int, require

__all__ = ["cacg", "CACGResult"]


@dataclass
class CACGResult:
    x: np.ndarray
    outer_iterations: int
    inner_steps: int
    residuals: List[float]
    traffic: KSMTraffic
    converged: bool
    s: int

    @property
    def writes_per_step(self) -> float:
        """Slow-memory writes per *CG-equivalent* step — the paper's W12
        rate; Θ(n) for plain CA-CG / CG, Θ(n/s) for streaming CA-CG."""
        return self.traffic.writes / max(1, self.inner_steps)


def _recurrence_matrix(basis: PolynomialBasis, s: int) -> np.ndarray:
    """The (2s+1)×(2s+1) coordinate multiplication matrix B.

    Columns 0..s−1 carry A·P_j in P-coordinates (from the basis
    Hessenberg); columns s+1..2s−1 carry A·R_j likewise; columns s and 2s
    (the highest basis vectors) are zero — the inner loop never multiplies
    them, by construction of the s-step recurrence.
    """
    m = 2 * s + 1
    B = np.zeros((m, m))
    Hp = basis.hessenberg(s)             # (s+1) x s
    B[: s + 1, :s] = Hp
    if s >= 2:
        Hr = basis.hessenberg(s - 1)     # s x (s-1)
        B[s + 1 : 2 * s + 1, s + 1 : 2 * s] = Hr
    return B


def cacg(
    A,
    b: np.ndarray,
    *,
    s: int,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_outer: int = 200,
    basis: Optional[PolynomialBasis] = None,
    block: Optional[int] = None,
    streaming: bool = False,
) -> CACGResult:
    """s-step CA-CG for SPD A (paper Algorithm 7).

    Parameters
    ----------
    s:
        Steps per basis refresh (s=1 degenerates to CG with extra work).
    basis:
        Polynomial basis; default monomial (adequate for small s).
    block:
        Row-block size for the matrix-powers kernels; default n/8 rounded
        up (must exceed the s·bandwidth halo to be meaningful).
    streaming:
        Use the write-avoiding streaming matrix-powers execution.
    """
    check_positive_int(s, "s")
    b = np.asarray(b, dtype=float)
    n = len(b)
    require(A.shape == (n, n), f"A must be ({n},{n}), got {A.shape}")
    require(sp.issparse(A), "cacg expects a sparse matrix")
    A = A.tocsr()
    if basis is None:
        basis = MonomialBasis()
    if block is None:
        block = max(1, -(-n // 8))
    check_positive_int(block, "block")

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
    r = b - A @ x
    p = r.copy()
    delta = float(r @ r)
    bnorm = float(np.sqrt(b @ b)) or 1.0
    traffic = KSMTraffic(reads=n + A.nnz, writes=3 * n)
    residuals = [float(np.sqrt(delta))]
    converged = residuals[-1] <= tol * bnorm

    m = 2 * s + 1
    B = _recurrence_matrix(basis, s)
    outer = 0
    inner_total = 0

    while not converged and outer < max_outer:
        # ---- basis computation -------------------------------------- #
        if not streaming:
            P, tp = matrix_powers_blocked(A, p, s, block=block, basis=basis)
            if s >= 2:
                R, tr = matrix_powers_blocked(A, r, s - 1, block=block,
                                              basis=basis)
            else:
                R, tr = r[:, None].copy(), KSMTraffic()
            V = np.hstack([P, R])
            traffic.add(tp)
            traffic.add(tr)
            G = V.T @ V
            # Reading the stored basis back for the Gram matrix.
            traffic.reads += m * n
            traffic.flops += 2 * m * m * n
        else:
            # Streaming pass 1: accumulate G blockwise; never store V.
            G, t1 = _stream_gram(A, p, r, s, block, basis)
            traffic.add(t1)

        # ---- coordinate inner loop ---------------------------------- #
        # Coordinates: P block occupies 0..s, R block s+1..2s; the current
        # p is P₀ (coordinate 0) and the current r is R₀ (coordinate s+1).
        p_hat = np.zeros(m)
        p_hat[0] = 1.0
        r_hat = np.zeros(m)
        r_hat[s + 1] = 1.0
        x_hat = np.zeros(m)
        d = delta
        broke_down = False
        for _ in range(s):
            w_hat = B @ p_hat
            denom = float(p_hat @ (G @ w_hat))
            if denom <= 0 or not np.isfinite(denom):
                broke_down = True
                break
            alpha = d / denom
            x_hat += alpha * p_hat
            r_hat = r_hat - alpha * w_hat
            d_new = float(r_hat @ (G @ r_hat))
            if d_new < 0 or not np.isfinite(d_new):
                broke_down = True
                break
            beta = d_new / d
            p_hat = r_hat + beta * p_hat
            d = d_new
            inner_total += 1

        # ---- recovery ------------------------------------------------ #
        if not streaming:
            p_new = V @ p_hat
            r_new = V @ r_hat
            x_new = V @ x_hat + x
            traffic.reads += m * n + n
            traffic.writes += 3 * n
            traffic.flops += 6 * m * n
        else:
            p_new, r_new, dx, t2 = _stream_recover(
                A, p, r, s, block, basis, p_hat, r_hat, x_hat)
            x_new = x + dx
            traffic.add(t2)
            traffic.reads += n
            traffic.writes += n  # x update
        p, r, x = p_new, r_new, x_new
        delta = float(r @ r)
        outer += 1
        residuals.append(float(np.sqrt(delta)))
        converged = residuals[-1] <= tol * bnorm
        if broke_down:
            break

    return CACGResult(
        x=x, outer_iterations=outer, inner_steps=inner_total,
        residuals=residuals, traffic=traffic, converged=converged, s=s,
    )


def _stream_gram(A, p, r, s, block, basis):
    """Streaming pass 1: G = VᵀV accumulated blockwise (V never stored).

    Computes the P-basis (s+1 levels from p) and R-basis (s levels from r)
    on each extended block and accumulates the (2s+1)² Gram matrix; the
    only writes are the Gram matrix itself (negligible, counted)."""
    m = 2 * s + 1
    G = np.zeros((m, m))
    state = {}

    def consumer(r0, r1, Pblk):
        state[(r0, r1)] = Pblk
        return 0

    # One pass computing both bases per block: reuse the streaming kernel
    # for P, and compute R on the same blocks inline.
    tP = matrix_powers_streaming(A, p, s, consumer, block=block, basis=basis)
    tR = KSMTraffic()
    if s >= 2:
        def consumer_r(r0, r1, Rblk):
            Vblk = np.hstack([state.pop((r0, r1)), Rblk])
            G[...] += Vblk.T @ Vblk
            return 0

        tR = matrix_powers_streaming(A, r, s - 1, consumer_r, block=block,
                                     basis=basis)
    else:
        for (r0, r1), Pblk in sorted(state.items()):
            Vblk = np.hstack([Pblk, r[r0:r1, None]])
            G[...] += Vblk.T @ Vblk
        state.clear()
    t = KSMTraffic()
    t.add(tP)
    t.add(tR)
    t.writes += m * m  # the Gram matrix itself
    t.flops += 2 * m * m * A.shape[0]
    return G, t


def _stream_recover(A, p, r, s, block, basis, p_hat, r_hat, x_hat):
    """Streaming pass 2: [p, r, Δx] = V·[p̂, r̂, x̂], blockwise.

    Recomputes the basis per block (the ≤2× flop cost the paper states)
    and writes only the three output vectors."""
    n = A.shape[0]
    p_new = np.empty(n)
    r_new = np.empty(n)
    dx = np.empty(n)
    state = {}

    def consumer_p(r0, r1, Pblk):
        state[(r0, r1)] = Pblk
        return 0

    tP = matrix_powers_streaming(A, p, s, consumer_p, block=block,
                                 basis=basis)
    tR = KSMTraffic()

    def finish_block(r0, r1, Vblk):
        p_new[r0:r1] = Vblk @ p_hat
        r_new[r0:r1] = Vblk @ r_hat
        dx[r0:r1] = Vblk @ x_hat
        return 3 * (r1 - r0)

    if s >= 2:
        def consumer_r(r0, r1, Rblk):
            Vblk = np.hstack([state.pop((r0, r1)), Rblk])
            return finish_block(r0, r1, Vblk)

        tR = matrix_powers_streaming(A, r, s - 1, consumer_r, block=block,
                                     basis=basis)
    else:
        w = 0
        for (r0, r1), Pblk in sorted(state.items()):
            Vblk = np.hstack([Pblk, r[r0:r1, None]])
            w += finish_block(r0, r1, Vblk)
        state.clear()
        tR.writes += w
    t = KSMTraffic()
    t.add(tP)
    t.add(tR)
    return p_new, r_new, dx, t
