"""Krylov subspace methods with write counting (paper Section 8).

Contents:

* :mod:`repro.krylov.stencil` — (2b+1)^d-point stencil operators on
  d-dimensional meshes, the paper's model problem class.
* :mod:`repro.krylov.basis` — polynomial bases (monomial, Newton,
  Chebyshev) and their recurrence/Hessenberg matrices.
* :mod:`repro.krylov.cg` — conventional conjugate gradient.
* :mod:`repro.krylov.matrix_powers` — the matrix-powers kernel: naive,
  blocked (communication-avoiding), and *streaming* (write-avoiding,
  recompute-twice) variants, all with mechanical traffic counting.
* :mod:`repro.krylov.cacg` — CA-CG (s-step CG, paper Algorithm 7), with
  the streaming option that cuts writes to slow memory by Θ(s).
"""

from repro.krylov.stencil import stencil_matrix, spd_stencil_system
from repro.krylov.basis import (
    ChebyshevBasis,
    MonomialBasis,
    NewtonBasis,
    PolynomialBasis,
)
from repro.krylov.cg import KSMTraffic, cg
from repro.krylov.matrix_powers import (
    matrix_powers,
    matrix_powers_blocked,
    matrix_powers_streaming,
)
from repro.krylov.cacg import cacg
from repro.krylov.tsqr import streaming_basis_r, tsqr, tsqr_q_explicit
from repro.krylov.gmres import ca_gmres, gmres

__all__ = [
    "stencil_matrix",
    "spd_stencil_system",
    "PolynomialBasis",
    "MonomialBasis",
    "NewtonBasis",
    "ChebyshevBasis",
    "KSMTraffic",
    "cg",
    "matrix_powers",
    "matrix_powers_blocked",
    "matrix_powers_streaming",
    "cacg",
    "streaming_basis_r",
    "tsqr",
    "tsqr_q_explicit",
    "ca_gmres",
    "gmres",
]
