"""Stencil operators on d-dimensional Cartesian meshes.

The paper's Section-8 result quantifies the write reduction for
"(2b+1)^d-point stencils on a sufficiently large d-dimensional Cartesian
mesh" with s = Θ(M₁^{1/d}/b).  We build exactly that operator family as
scipy sparse matrices: every mesh point couples to all neighbours within
Chebyshev (ℓ∞) distance *b*.
"""

from __future__ import annotations

import itertools
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.util import check_positive_int, require

__all__ = ["stencil_matrix", "spd_stencil_system", "stencil_bandwidth"]


def stencil_matrix(
    mesh: int, d: int = 1, b: int = 1, *, periodic: bool = False
) -> sp.csr_matrix:
    """(2b+1)^d-point stencil adjacency on a *mesh*^d grid.

    Entry (i, j) = 1 when mesh points i ≠ j are within ℓ∞ distance *b*;
    rows are the flattened mesh in row-major order.  ``periodic`` wraps
    the mesh into a torus (keeps row counts uniform).
    """
    check_positive_int(mesh, "mesh")
    check_positive_int(d, "d")
    check_positive_int(b, "b")
    require(mesh > b, f"mesh ({mesh}) must exceed stencil radius b ({b})")
    n = mesh**d
    offsets = [
        off for off in itertools.product(range(-b, b + 1), repeat=d)
        if any(o != 0 for o in off)
    ]
    coords = np.indices((mesh,) * d).reshape(d, n)  # (d, n)
    rows_acc = []
    cols_acc = []
    for off in offsets:
        shifted = coords + np.array(off)[:, None]
        if periodic:
            shifted %= mesh
            valid = np.ones(n, dtype=bool)
        else:
            valid = np.all((shifted >= 0) & (shifted < mesh), axis=0)
        flat = np.zeros(n, dtype=np.int64)
        for axis in range(d):
            flat = flat * mesh + shifted[axis]
        rows_acc.append(np.arange(n)[valid])
        cols_acc.append(flat[valid])
    rows = np.concatenate(rows_acc)
    cols = np.concatenate(cols_acc)
    data = np.ones(len(rows))
    return sp.csr_matrix((data, (rows, cols)), shape=(n, n))


def stencil_bandwidth(mesh: int, d: int, b: int) -> int:
    """Bandwidth of the flattened stencil matrix (ghost-zone width per
    matrix-powers level): b·(mesh^{d-1} + ... + 1) ≈ b·mesh^{d-1}."""
    return b * sum(mesh**k for k in range(d))


def spd_stencil_system(
    mesh: int, d: int = 1, b: int = 1, *, seed: int = 0,
    periodic: bool = False,
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """A well-conditioned SPD stencil system (A, rhs) for CG tests.

    A = (degmax + 1)·I − stencil: symmetric, strictly diagonally dominant,
    hence SPD; rhs is a fixed random vector.
    """
    S = stencil_matrix(mesh, d, b, periodic=periodic)
    n = S.shape[0]
    degmax = int(S.sum(axis=1).max())
    A = sp.identity(n, format="csr") * float(degmax + 1) - S
    rng = np.random.default_rng(seed)
    rhs = rng.standard_normal(n)
    return A.tocsr(), rhs
