"""Polynomial bases for s-step Krylov methods (paper Section 8).

A basis is a sequence ρ₀, ρ₁, ... with deg ρ_j = j satisfying a short
recurrence; CA-CG computes the basis vectors ρ_j(A)·y and works in their
coordinates.  The recurrence is encoded in the (m+1)×m upper-Hessenberg
matrix H with ``A·K_m = K_{m+1}·H`` where K_m = [ρ₀(A)y, ..., ρ_{m-1}(A)y]
— exactly the paper's formulation.

Three classical choices (see Carson–Knight–Demmel [14]):

* :class:`MonomialBasis` — ρ_j(z) = z^j.  Simplest; condition number grows
  exponentially with s (fine for the small s we test).
* :class:`NewtonBasis` — ρ_{j+1}(z) = (z − θ_j)·ρ_j(z) with user shifts
  (e.g. Leja-ordered Ritz values).
* :class:`ChebyshevBasis` — scaled three-term Chebyshev recurrence on a
  spectral interval [λmin, λmax]; the best-conditioned practical choice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.util import check_positive_int, require

__all__ = [
    "PolynomialBasis",
    "MonomialBasis",
    "NewtonBasis",
    "ChebyshevBasis",
]


class PolynomialBasis:
    """Abstract basis defined by a three-term recurrence

    ``ρ_{j+1}(z) = (z − a_j)/g_j · ρ_j(z) − c_j/g_j · ρ_{j-1}(z)``

    with ρ₀ = 1.  Subclasses supply coefficient sequences a, g, c.
    """

    def coeffs(self, j: int) -> tuple:
        """Return (a_j, g_j, c_j)."""
        raise NotImplementedError

    def vectors(self, A, y: np.ndarray, m: int) -> np.ndarray:
        """K = [ρ₀(A)y, ..., ρ_m(A)y], shape (n, m+1)."""
        check_positive_int(m + 1, "m+1")
        y = np.asarray(y, dtype=float)
        n = len(y)
        K = np.empty((n, m + 1))
        K[:, 0] = y
        for j in range(m):
            a, g, c = self.coeffs(j)
            require(g != 0, "basis scale g_j must be nonzero")
            v = (A @ K[:, j] - a * K[:, j]) / g
            if j >= 1 and c != 0:
                v = v - (c / g) * K[:, j - 1]
            K[:, j + 1] = v
        return K

    def hessenberg(self, m: int) -> np.ndarray:
        """The (m+1)×m matrix H with A·K_m = K_{m+1}·H.

        Column j (0-based) expresses A·ρ_j(A)y = g_j·ρ_{j+1} + a_j·ρ_j +
        c_j·ρ_{j-1}.
        """
        check_positive_int(m, "m")
        H = np.zeros((m + 1, m))
        for j in range(m):
            a, g, c = self.coeffs(j)
            H[j + 1, j] = g
            H[j, j] = a
            if j >= 1:
                H[j - 1, j] = c
        return H


class MonomialBasis(PolynomialBasis):
    """ρ_j(z) = z^j: a_j = 0, g_j = 1, c_j = 0."""

    def coeffs(self, j: int) -> tuple:
        return (0.0, 1.0, 0.0)


class NewtonBasis(PolynomialBasis):
    """ρ_{j+1}(z) = (z − θ_j) ρ_j(z) for a shift sequence θ."""

    def __init__(self, shifts: Sequence[float]):
        require(len(shifts) >= 1, "need at least one shift")
        self.shifts = list(shifts)

    def coeffs(self, j: int) -> tuple:
        theta = self.shifts[j % len(self.shifts)]
        return (theta, 1.0, 0.0)


class ChebyshevBasis(PolynomialBasis):
    """Scaled Chebyshev basis on [lo, hi] (spectral bounds of A).

    With center θ=(hi+lo)/2 and half-width δ=(hi−lo)/2, the shifted
    Chebyshev recurrence gives a_j = θ, g_j = δ/σ_j, c_j matching the
    standard three-term form (σ₁ = 1, σ_j = 2 thereafter in the simplest
    scaling, which we use).
    """

    def __init__(self, lo: float, hi: float):
        require(hi > lo, f"need hi > lo, got [{lo}, {hi}]")
        self.theta = (hi + lo) / 2
        self.delta = (hi - lo) / 2
        require(self.delta > 0, "interval must have positive width")

    def coeffs(self, j: int) -> tuple:
        if j == 0:
            return (self.theta, self.delta, 0.0)
        return (self.theta, self.delta / 2, self.delta / 2)
