"""GMRES and s-step CA-GMRES with the §8 streaming-TSQR interleaving.

The paper's Section-8 closing remark: for Arnoldi-based Krylov methods,
the Gram-matrix computation is replaced by a tall-skinny QR that can be
interleaved with the matrix-powers kernel "in a similar manner" — cutting
writes by Θ(s) at the cost of computing the basis twice.  We implement the
whole chain:

* :func:`gmres` — restarted GMRES(m) with modified Gram–Schmidt Arnoldi.
  Each Arnoldi step writes a new n-vector of the stored basis: W12 ≈ m·n
  writes per cycle.
* :func:`ca_gmres` — s-step GMRES: per cycle, build the Krylov basis
  K_{s+1}(A, r₀), get its R factor, and solve the *small* least-squares
  problem ``min_y ‖R(e₁ − H·y)‖`` (H = the basis Hessenberg), then recover
  ``x += K_s·y``.  In exact arithmetic this equals GMRES restarted every s
  steps.
  - ``streaming=False``: the basis is stored (blocked matrix powers) and
    read back: Θ(s·n) writes per cycle — CA, not WA.
  - ``streaming=True``: pass 1 streams basis blocks into a sequential
    TSQR (only R survives); pass 2 streams them again into the solution
    update.  Writes fall to Θ(n) per cycle — the Arnoldi analogue of
    streaming CA-CG, built on :func:`repro.krylov.tsqr.streaming_basis_r`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.krylov.basis import MonomialBasis, PolynomialBasis
from repro.krylov.cg import KSMTraffic
from repro.krylov.matrix_powers import (
    matrix_powers_blocked,
    matrix_powers_streaming,
)
from repro.util import check_positive_int, require

__all__ = ["gmres", "ca_gmres", "GMRESResult"]


@dataclass
class GMRESResult:
    x: np.ndarray
    cycles: int
    inner_steps: int
    residuals: List[float]
    traffic: KSMTraffic
    converged: bool

    @property
    def writes_per_step(self) -> float:
        return self.traffic.writes / max(1, self.inner_steps)


def gmres(
    A,
    b: np.ndarray,
    *,
    restart: int,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_cycles: int = 100,
) -> GMRESResult:
    """Restarted GMRES(m) with modified Gram–Schmidt Arnoldi.

    Traffic model (n ≫ M₁): each Arnoldi step performs one SpMV and MGS
    against all previous basis vectors; the new basis vector is written to
    slow memory (it is re-read by every later step): restart·n writes per
    cycle plus the solution update.
    """
    check_positive_int(restart, "restart")
    b = np.asarray(b, dtype=float)
    n = len(b)
    require(A.shape == (n, n), f"A must be ({n},{n}), got {A.shape}")
    require(tol > 0 and max_cycles >= 1, "tol/max_cycles must be positive")
    nnz = A.nnz if sp.issparse(A) else int(np.count_nonzero(A))

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
    traffic = KSMTraffic(reads=n + nnz, writes=n)
    bnorm = float(np.linalg.norm(b)) or 1.0
    residuals = []
    inner_total = 0
    cycles = 0
    converged = False

    while cycles < max_cycles and not converged:
        r = b - A @ x
        beta = float(np.linalg.norm(r))
        residuals.append(beta)
        if beta <= tol * bnorm:
            converged = True
            break
        m = restart
        Q = np.zeros((n, m + 1))
        H = np.zeros((m + 1, m))
        Q[:, 0] = r / beta
        traffic.writes += n  # store q0
        k_used = 0
        for k in range(m):
            w = A @ Q[:, k]
            traffic.reads += nnz + n
            for i in range(k + 1):
                H[i, k] = float(Q[:, i] @ w)
                w -= H[i, k] * Q[:, i]
                traffic.reads += 2 * n
            H[k + 1, k] = float(np.linalg.norm(w))
            traffic.writes += n  # store the new basis vector
            traffic.flops += 2 * nnz + 4 * n * (k + 1)
            k_used = k + 1
            inner_total += 1
            if H[k + 1, k] < 1e-14:
                break
            Q[:, k + 1] = w / H[k + 1, k]
        # Small least squares: min ‖β e₁ − H y‖.
        e1 = np.zeros(k_used + 1)
        e1[0] = beta
        y, *_ = np.linalg.lstsq(H[: k_used + 1, :k_used], e1, rcond=None)
        x = x + Q[:, :k_used] @ y
        traffic.reads += k_used * n
        traffic.writes += n
        cycles += 1
        res = float(np.linalg.norm(b - A @ x))
        residuals.append(res)
        converged = res <= tol * bnorm
    return GMRESResult(x=x, cycles=cycles, inner_steps=inner_total,
                       residuals=residuals, traffic=traffic,
                       converged=converged)


def ca_gmres(
    A,
    b: np.ndarray,
    *,
    s: int,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    max_cycles: int = 100,
    basis: Optional[PolynomialBasis] = None,
    block: Optional[int] = None,
    streaming: bool = False,
) -> GMRESResult:
    """s-step GMRES: equals GMRES restarted every s steps (exact arith.).

    Per cycle: basis K_{s+1}(A, r₀); R factor of K; small least squares
    ``min_y ‖R(e₁ − H y)‖``; recovery ``x += K_s y``.
    """
    check_positive_int(s, "s")
    b = np.asarray(b, dtype=float)
    n = len(b)
    require(A.shape == (n, n), f"A must be ({n},{n}), got {A.shape}")
    require(sp.issparse(A), "ca_gmres expects a sparse matrix")
    A = A.tocsr()
    if basis is None:
        basis = MonomialBasis()
    if block is None:
        block = max(1, -(-n // 8))
    check_positive_int(block, "block")

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
    traffic = KSMTraffic(reads=n + A.nnz, writes=n)
    bnorm = float(np.linalg.norm(b)) or 1.0
    residuals = []
    cycles = 0
    inner_total = 0
    converged = False
    H = basis.hessenberg(s)  # (s+1) x s: A·K_s = K_{s+1}·H

    while cycles < max_cycles and not converged:
        r = b - A @ x
        rnorm = float(np.linalg.norm(r))
        residuals.append(rnorm)
        if rnorm <= tol * bnorm:
            converged = True
            break

        if not streaming:
            K, t1 = matrix_powers_blocked(A, r, s, block=block, basis=basis)
            traffic.add(t1)
            R = np.linalg.qr(K, mode="r")
            traffic.reads += (s + 1) * n  # read the stored basis back
        else:
            # Pass 1: basis blocks stream into a sequential TSQR.
            state = {"R": None}

            def consumer(r0, r1, Kblk):
                if state["R"] is None:
                    _, state["R"] = np.linalg.qr(Kblk)
                else:
                    _, state["R"] = np.linalg.qr(
                        np.vstack([state["R"], Kblk]))
                return 0

            t1 = matrix_powers_streaming(A, r, s, consumer, block=block,
                                         basis=basis)
            traffic.add(t1)
            traffic.writes += (s + 1) ** 2  # R itself
            R = state["R"]

        # Small least squares in basis coordinates:
        # residual = K_{s+1}(e₁ − H y); ‖K z‖ = ‖R z‖.
        e1 = np.zeros(s + 1)
        e1[0] = 1.0
        M_ = R @ H                      # (s+1) x s
        rhs = R @ e1
        y, *_ = np.linalg.lstsq(M_, rhs, rcond=None)
        inner_total += s

        # Recovery: x += K_s · y.
        if not streaming:
            x = x + K[:, :s] @ y
            traffic.reads += s * n
            traffic.writes += n
        else:
            dx = np.empty(n)

            def consumer2(r0, r1, Kblk):
                dx[r0:r1] = Kblk[:, :s] @ y
                return r1 - r0

            t2 = matrix_powers_streaming(A, r, s, consumer2, block=block,
                                         basis=basis)
            traffic.add(t2)
            x = x + dx
            traffic.writes += n
        cycles += 1
        res = float(np.linalg.norm(b - A @ x))
        residuals.append(res)
        converged = res <= tol * bnorm
    return GMRESResult(x=x, cycles=cycles, inner_steps=inner_total,
                       residuals=residuals, traffic=traffic,
                       converged=converged)
