"""Matrix-powers kernels: naive, blocked (CA), and streaming (WA).

Given a banded/stencil matrix A and vector y, all three compute the basis
``K = [ρ₀(A)y, ρ₁(A)y, ..., ρ_s(A)y]`` and report slow-memory traffic:

* :func:`matrix_powers` — s sequential SpMVs: reads A s times, writes all
  s·n basis words.  Neither CA nor WA.
* :func:`matrix_powers_blocked` — the CA kernel: row blocks with s·bw ghost
  zones; A and the block are read **once** (an Θ(s)-fold read reduction,
  the paper's f(s)), but the basis is still written to slow memory:
  W12 = Θ(s·n) — CA, not WA.
* :func:`matrix_powers_streaming` — the Section-8 "streaming" optimization
  [14, §6.3]: basis blocks are handed to a *consumer* (Gram-matrix or
  coefficient-recovery accumulation) and **discarded**, never written.
  Writes drop to the consumer's output size; the price is recomputing the
  basis for each consumer pass (2× flops in CA-CG).

Bandwidth is taken from the matrix structure; blocks plus their ghost
zones are what must fit in fast memory (s = Θ(M₁^{1/d}/b) in the paper's
mesh setting).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.krylov.basis import MonomialBasis, PolynomialBasis
from repro.krylov.cg import KSMTraffic
from repro.util import check_positive_int, require

__all__ = [
    "matrix_bandwidth",
    "matrix_powers",
    "matrix_powers_blocked",
    "matrix_powers_streaming",
]


def matrix_bandwidth(A: sp.spmatrix) -> int:
    """Max |i − j| over nonzeros (the ghost-zone width per basis level)."""
    coo = A.tocoo()
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.row - coo.col).max())


def _as_csr(A) -> sp.csr_matrix:
    require(sp.issparse(A), "matrix-powers kernels expect a sparse matrix")
    return A.tocsr()


def matrix_powers(
    A,
    y: np.ndarray,
    s: int,
    *,
    basis: Optional[PolynomialBasis] = None,
) -> Tuple[np.ndarray, KSMTraffic]:
    """Naive kernel: s dependent SpMV sweeps.  Returns (K, traffic)."""
    A = _as_csr(A)
    check_positive_int(s, "s")
    if basis is None:
        basis = MonomialBasis()
    K = basis.vectors(A, y, s)
    t = KSMTraffic(
        reads=s * (A.nnz + len(y)),
        writes=s * len(y),
        flops=2 * s * A.nnz,
    )
    return K, t


def matrix_powers_blocked(
    A,
    y: np.ndarray,
    s: int,
    *,
    block: int,
    basis: Optional[PolynomialBasis] = None,
) -> Tuple[np.ndarray, KSMTraffic]:
    """CA kernel: compute all s levels block-by-block with ghost zones.

    Each row block of size *block* is extended by s·bw rows on each side;
    the extended region's matrix rows and y entries are read once, all s
    levels are computed locally (boundary garbage shrinks by bw per level
    and never reaches the owned rows), and the owned basis rows are
    written out.
    """
    A = _as_csr(A)
    check_positive_int(s, "s")
    check_positive_int(block, "block")
    if basis is None:
        basis = MonomialBasis()
    n = A.shape[0]
    require(len(y) == n, "y length must match A")
    bw = matrix_bandwidth(A)
    halo = s * bw
    K = np.empty((n, s + 1))
    t = KSMTraffic()
    for r0 in range(0, n, block):
        r1 = min(r0 + block, n)
        lo = max(0, r0 - halo)
        hi = min(n, r1 + halo)
        Asub = A[lo:hi, lo:hi]
        Ksub = basis.vectors(Asub, y[lo:hi], s)
        K[r0:r1] = Ksub[r0 - lo : r1 - lo]
        # One read of the extended rows of A and y; writes of owned rows.
        t.reads += Asub.nnz + (hi - lo)
        t.writes += s * (r1 - r0)
        t.flops += 2 * s * Asub.nnz
    # Level 0 is y itself (already resident); only levels 1..s counted.
    return K, t


def matrix_powers_streaming(
    A,
    y: np.ndarray,
    s: int,
    consumer: Callable[[int, int, np.ndarray], int],
    *,
    block: int,
    basis: Optional[PolynomialBasis] = None,
) -> KSMTraffic:
    """WA kernel: stream basis blocks to *consumer*, never storing them.

    ``consumer(r0, r1, K_block)`` receives the owned rows [r0, r1) of the
    basis (shape (r1−r0, s+1)) and returns the number of words *it* wrote
    to slow memory (charged to the returned traffic).  The basis itself
    contributes **zero** writes.
    """
    A = _as_csr(A)
    check_positive_int(s, "s")
    check_positive_int(block, "block")
    if basis is None:
        basis = MonomialBasis()
    n = A.shape[0]
    require(len(y) == n, "y length must match A")
    bw = matrix_bandwidth(A)
    halo = s * bw
    t = KSMTraffic()
    for r0 in range(0, n, block):
        r1 = min(r0 + block, n)
        lo = max(0, r0 - halo)
        hi = min(n, r1 + halo)
        Asub = A[lo:hi, lo:hi]
        Ksub = basis.vectors(Asub, y[lo:hi], s)
        written = consumer(r0, r1, Ksub[r0 - lo : r1 - lo])
        require(written >= 0, "consumer must report nonnegative writes")
        t.reads += Asub.nnz + (hi - lo)
        t.writes += written
        t.flops += 2 * s * Asub.nnz
    return t
