"""Tall-skinny QR (TSQR) and its streaming, write-avoiding interleaving.

Section 8's closing remark: "For Arnoldi-based KSMs, the computation of G
is replaced by a tall-skinny QR factorization, which can be interleaved
with the matrix powers computation in a similar manner."  This module
supplies both pieces:

* :func:`tsqr` — communication-optimal TSQR [19]: QR per row block, then a
  binary reduction tree combining R factors.  The Q tree is kept, so the
  basis's orthogonal factor can be applied later; writes = the Q blocks +
  R = Θ(m·n), the output size (TSQR is naturally write-avoiding for its
  own output, but storing the *input* basis first costs Θ(s·n) writes).

* :func:`streaming_basis_r` — the WA interleaving: basis blocks flow from
  the streaming matrix-powers kernel straight into the TSQR reduction and
  are discarded; only the s×s R factor (the Gram information an s-step
  Arnoldi needs) is ever written.  Writes drop from Θ(s·n) to Θ(s²·n/block)
  tree traffic — the Arnoldi analogue of the CA-CG result.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.krylov.basis import MonomialBasis, PolynomialBasis
from repro.krylov.cg import KSMTraffic
from repro.krylov.matrix_powers import matrix_powers_streaming
from repro.util import check_positive_int, require

__all__ = ["tsqr", "tsqr_q_explicit", "streaming_basis_r"]


def tsqr(
    A: np.ndarray, *, block: int
) -> Tuple[list, np.ndarray, KSMTraffic]:
    """TSQR of a tall matrix A (m ≫ n): per-block QR + reduction tree.

    Returns ``(tree, R, traffic)`` where *tree* holds the per-level local
    Q factors (level 0: one per row block; level k: one per merged pair)
    and R is the final n×n triangular factor.

    Traffic (two-level model, block rows streamed through fast memory):
    reads = m·n (the input once), writes = the stored Q factors
    (m·n at the leaves + O(n²·#nodes) up the tree) + R.
    """
    A = np.asarray(A, dtype=float)
    require(A.ndim == 2 and A.shape[0] >= A.shape[1],
            f"A must be tall, got {A.shape}")
    check_positive_int(block, "block")
    m, n = A.shape
    require(block >= n, f"block ({block}) must be >= n ({n})")
    t = KSMTraffic()

    level: List[np.ndarray] = []
    qtree: List[List[np.ndarray]] = [[]]
    for r0 in range(0, m, block):
        blk = A[r0 : r0 + block]
        Q, R = np.linalg.qr(blk)
        qtree[0].append(Q)
        level.append(R)
        t.reads += blk.size
        t.writes += Q.size
        t.flops += 2 * blk.shape[0] * n * n
    t.writes += sum(R.size for R in level)

    while len(level) > 1:
        nxt = []
        qtree.append([])
        for i in range(0, len(level), 2):
            if i + 1 == len(level):
                nxt.append(level[i])
                qtree[-1].append(np.eye(level[i].shape[0]))
                continue
            stacked = np.vstack([level[i], level[i + 1]])
            Q, R = np.linalg.qr(stacked)
            qtree[-1].append(Q)
            nxt.append(R)
            t.reads += stacked.size
            t.writes += Q.size + R.size
            t.flops += 2 * stacked.shape[0] * n * n
        level = nxt
    return qtree, level[0], t


def tsqr_q_explicit(qtree: list, m: int, block: int) -> np.ndarray:
    """Materialize the m×n orthogonal factor from the TSQR tree (tests)."""
    leaves = qtree[0]
    n = leaves[0].shape[1]
    # Start from the leaf Qs stacked block-diagonally, then apply tree Qs.
    parts = [q.copy() for q in leaves]
    for lvl in qtree[1:]:
        merged = []
        for qi, i in zip(lvl, range(0, len(parts), 2)):
            if i + 1 == len(parts):
                # Odd tail carried up with an identity combiner.
                merged.append(parts[i] @ qi)
                continue
            # qi factors two stacked n×n R's: shape (2n, n).
            merged.append(np.vstack([parts[i] @ qi[:n, :],
                                     parts[i + 1] @ qi[n:, :]]))
        parts = merged
    return np.vstack(parts)


def streaming_basis_r(
    A,
    y: np.ndarray,
    s: int,
    *,
    block: int,
    basis: Optional[PolynomialBasis] = None,
) -> Tuple[np.ndarray, KSMTraffic]:
    """R factor of the Krylov basis K_{s+1}(A, y) without storing the basis.

    Streams matrix-powers blocks into a sequential TSQR reduction: each
    incoming (block × s+1) panel is stacked under the running R and
    re-factored; the panel is then discarded.  Only R (an (s+1)² object)
    and no basis vectors are ever written to slow memory — the §8
    interleaving for Arnoldi-based methods.

    Returns ``(R, traffic)`` with R upper triangular up to column signs.
    """
    if basis is None:
        basis = MonomialBasis()
    state = {"R": None}

    def consumer(r0, r1, Kblk):
        if state["R"] is None:
            _, state["R"] = np.linalg.qr(Kblk)
        else:
            stacked = np.vstack([state["R"], Kblk])
            _, state["R"] = np.linalg.qr(stacked)
        return 0  # nothing written: R lives in fast memory

    t = matrix_powers_streaming(A, y, s, consumer, block=block,
                                basis=basis)
    R = state["R"]
    require(R is not None, "empty input")
    t.writes += R.size  # final R written once
    return R, t
