"""Conventional conjugate gradient with slow-memory traffic counting.

The baseline of Section 8: each CG iteration streams the matrix and the
four working vectors (x, p, r, w) through fast memory, performing ≈ 4n
writes to slow memory when n ≫ M₁ — ``W12 = Ω(N·n)`` over N iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from repro.util import require

__all__ = ["KSMTraffic", "cg", "CGResult"]


@dataclass
class KSMTraffic:
    """Word/flop counters for a Krylov solve (slow-memory perspective)."""

    reads: int = 0
    writes: int = 0
    flops: int = 0

    def add(self, other: "KSMTraffic") -> None:
        self.reads += other.reads
        self.writes += other.writes
        self.flops += other.flops


@dataclass
class CGResult:
    x: np.ndarray
    iterations: int
    residuals: List[float]
    traffic: KSMTraffic
    converged: bool

    @property
    def writes_per_iteration(self) -> float:
        return self.traffic.writes / max(1, self.iterations)


def cg(
    A,
    b: np.ndarray,
    *,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-8,
    maxiter: int = 1000,
) -> CGResult:
    """Conjugate gradient (paper Algorithm 6) for SPD A.

    Traffic model (n ≫ M₁): per iteration one SpMV reads the matrix
    (nnz values + column indices) and the vector; the vector updates write
    x, r, p and the SpMV writes w — 4n words to slow memory per iteration.
    """
    b = np.asarray(b, dtype=float)
    n = len(b)
    require(A.shape == (n, n), f"A must be ({n},{n}), got {A.shape}")
    require(tol > 0 and maxiter >= 1, "tol and maxiter must be positive")
    nnz = A.nnz if sp.issparse(A) else int(np.count_nonzero(A))

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float).copy()
    r = b - A @ x
    p = r.copy()
    delta = float(r @ r)
    bnorm = float(np.sqrt(b @ b)) or 1.0
    traffic = KSMTraffic()
    # Setup: read b and A once, write x, r, p.
    traffic.reads += n + nnz
    traffic.writes += 3 * n

    residuals = [float(np.sqrt(delta))]
    converged = residuals[-1] <= tol * bnorm
    it = 0
    while not converged and it < maxiter:
        w = A @ p
        alpha = delta / float(p @ w)
        x += alpha * p
        r -= alpha * w
        delta_new = float(r @ r)
        beta = delta_new / delta
        p = r + beta * p
        delta = delta_new
        it += 1
        residuals.append(float(np.sqrt(delta)))
        converged = residuals[-1] <= tol * bnorm
        # Traffic: SpMV reads A + p, writes w; updates read/write x, r, p.
        traffic.reads += nnz + 4 * n
        traffic.writes += 4 * n
        traffic.flops += 2 * nnz + 10 * n
    return CGResult(x=x, iterations=it, residuals=residuals,
                    traffic=traffic, converged=converged)
