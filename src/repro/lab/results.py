"""Flat result records: export, aggregation, and sweep-vs-sweep compare.

A :class:`ResultSet` is a list of flat dict rows (one per scenario point)
with a stable, first-seen column order — the shape the csl-experiments
GEMM workflow exports for model fitting, and the shape spreadsheet/pandas
users expect.  It deliberately has no numpy/pandas dependency.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.util import format_table, require

__all__ = ["ResultSet"]

#: row fields that identify a point to a human, in preference order
#: (used by the missing-column errors below).
_IDENTITY_KEYS = ("kernel", "machine", "scheme", "policy", "algorithm",
                  "method", "cache_blocks", "n")


def _describe_row(i: int, row: Dict[str, Any]) -> str:
    """``row 3 (kernel='matmul-cache', scheme='wa2', ...)`` — enough to
    find the offending point without dumping the whole record."""
    ident = {k: row[k] for k in _IDENTITY_KEYS if k in row}
    if not ident:  # fall back to the first few columns, whatever they are
        ident = dict(list(row.items())[:4])
    parts = ", ".join(f"{k}={v!r}" for k, v in ident.items())
    return f"row {i} ({parts})"

_AGGREGATORS: Dict[str, Callable[[List[float]], float]] = {
    "sum": sum,
    "mean": lambda xs: sum(xs) / len(xs),
    "min": min,
    "max": max,
    "count": len,
}


class ResultSet:
    """An ordered list of flat records with spreadsheet-style helpers."""

    def __init__(self, rows: Sequence[Dict[str, Any]]):
        self.rows: List[Dict[str, Any]] = [dict(r) for r in rows]

    @classmethod
    def from_report(cls, report: Any) -> "ResultSet":
        """Flatten a :class:`~repro.lab.executor.SweepReport`: kernel +
        machine identity + params + record fields, one row per point."""
        rows = []
        for res in report.results:
            spec = res.point.machine.as_dict()
            row: Dict[str, Any] = {"kernel": res.point.kernel,
                                   "machine": spec.pop("name")}
            row.update(spec)  # every remaining machine field, swept or not
            row.update(res.point.params)
            row.update(res.record)
            row["cached"] = res.cached
            rows.append(row)
        return cls(rows)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Inverse of :meth:`to_json`: parse a JSON array of row objects
        (e.g. a ``GET /results/<id>`` response) back into a set."""
        data = json.loads(text)
        require(isinstance(data, list),
                "ResultSet JSON must be an array of row objects, got "
                f"{type(data).__name__}")
        for i, row in enumerate(data):
            require(isinstance(row, dict),
                    f"ResultSet JSON row {i} is not an object")
        return cls(data)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.rows)

    @property
    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def to_csv(self, path: Optional[Union[str, Path]] = None) -> str:
        cols = self.columns
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=cols, restval="")
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        text = buf.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def to_json(self, path: Optional[Union[str, Path]] = None) -> str:
        text = json.dumps(self.rows, indent=2, default=str)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def format(self, title: Optional[str] = None) -> str:
        cols = self.columns
        body = [[row.get(c, "") for c in cols] for row in self.rows]
        return format_table(cols, body, title=title)

    def pivot(self, index: Sequence[str], column: str,
              value: str) -> "ResultSet":
        """Long-to-wide reshape: rows sharing *index* collapse to one row
        with a new column per distinct *column* value, holding *value*.

        Output rows keep the first-seen order of their index tuples, and
        pivoted columns the first-seen order of the *column* values — so
        a grid swept row-major reassembles in grid order (the Table-1/2
        idiom: one record per (row, algorithm) cell, pivoted back into
        the paper's layout).  ``None`` *values* survive the reshape, but
        a row missing any index/column/value key outright is an error
        naming the row — silently reshaping around it would fabricate a
        hole in the grid.  Duplicate (index, column) cells are rejected.
        """
        index = list(index)
        out: Dict[Tuple, Dict[str, Any]] = {}
        for i, row in enumerate(self.rows):
            for k in index:
                require(k in row, f"pivot index key {k!r} missing from "
                                  f"{_describe_row(i, row)}")
            require(column in row and row[column] is not None,
                    f"pivot column {column!r} missing from "
                    f"{_describe_row(i, row)}")
            require(value in row,
                    f"pivot value {value!r} missing from "
                    f"{_describe_row(i, row)}")
            key = tuple(row[k] for k in index)
            target = out.setdefault(key, dict(zip(index, key)))
            col = str(row[column])
            require(col not in target,
                    f"duplicate pivot cell {key} x {col!r}")
            target[col] = row[value]
        return ResultSet(list(out.values()))

    # ------------------------------------------------------------------ #
    # aggregation / comparison
    # ------------------------------------------------------------------ #
    def group_by(self, *keys: str) -> Dict[Tuple, "ResultSet"]:
        groups: Dict[Tuple, List[Dict]] = {}
        for row in self.rows:
            groups.setdefault(tuple(row.get(k) for k in keys),
                              []).append(row)
        return {k: ResultSet(v) for k, v in groups.items()}

    def aggregate(self, keys: Sequence[str], value: str,
                  how: str = "mean") -> "ResultSet":
        """Collapse rows sharing *keys* to one row with ``how(value)``.

        Every row must carry *value*: a point whose record lacks the
        aggregated column is an error naming that point, not a silent
        drop from the mean.
        """
        require(how in _AGGREGATORS,
                f"unknown aggregator {how!r}; choose from "
                f"{sorted(_AGGREGATORS)}")
        fn = _AGGREGATORS[how]
        for i, row in enumerate(self.rows):
            require(value in row,
                    f"aggregate value {value!r} missing from "
                    f"{_describe_row(i, row)}")
        out = []
        for gkey, group in self.group_by(*keys).items():
            values = [row[value] for row in group.rows]
            require(len(values) > 0, f"no values for column {value!r}")
            row = dict(zip(keys, gkey))
            row[f"{how}_{value}"] = fn(values)
            row["n"] = len(values)
            out.append(row)
        return ResultSet(out)

    def compare(self, other: "ResultSet", on: Sequence[str],
                value: str) -> "ResultSet":
        """Join two sweeps on *on* and report ``value`` side by side with
        the b/a ratio — the predicted-vs-measured idiom."""
        index = {tuple(row.get(k) for k in on): row for row in other.rows}
        out = []
        for row in self.rows:
            key = tuple(row.get(k) for k in on)
            if key not in index:
                continue
            a, b = row.get(value), index[key].get(value)
            merged = dict(zip(on, key))
            merged[f"{value}_a"] = a
            merged[f"{value}_b"] = b
            merged["ratio"] = (b / a) if a else float("inf")
            out.append(merged)
        return ResultSet(out)
