"""``repro-lab serve`` — a long-running sweep daemon over the hot cache.

The engine's cost models are microseconds per point once warm, and the
content-addressed :class:`~repro.lab.cache.ResultCache` makes repeated
grids free — what batch invocations cannot give is *sharing*: every
``repro-lab run`` pays process start-up, and two users sweeping the
same grid both pay for it.  This module is the missing front-end: one
warm process answering sweep requests over HTTP so arbitrarily many
clients share a single hot cache.

Deliberately **zero-dependency** (stdlib ``http.server`` only), like
the rest of the lab.  Endpoints:

``POST /sweep``
    Body is JSON: either ``{"scenario": "fig2", "quick": true}`` (a
    preset, with optional ``"set"``/``"hw"`` override objects — the
    HTTP spelling of ``--set``/``--hw``) or an inline grid
    ``{"kernel": ..., "machine": ..., "set": {...}, "grid": {...}}``
    mirroring ``repro-lab sweep``.  Replies with a job id.  Requests
    whose every point is already cached are answered synchronously
    without enqueuing anything (``serve.cache_hit``); a request
    identical to one already queued or running joins that job instead
    of re-executing (single-flight, ``serve.dedup``) — "identical"
    means the same set of result-cache point keys, so it is exactly
    the dedup the cache itself would have provided, minus the wasted
    compute.

``GET /jobs/<id>``
    JSON status; with ``?sse=1`` (or ``Accept: text/event-stream``) a
    Server-Sent-Events stream of the job's :class:`RunTrace` events —
    spans, per-point paths, counters — live while the sweep runs,
    ending with the trace summary and an ``event: done`` terminator.

``GET /results/<id>``
    The finished job's flat records via :class:`ResultSet` — JSON by
    default, ``?format=csv`` for CSV.  Records are bit-identical to
    the same scenario run through ``repro-lab sweep``: the daemon
    calls the very same :func:`repro.lab.executor.execute`.

``GET /metrics``
    The :class:`~repro.lab.telemetry.MetricsRegistry` aggregated from
    the server's own trace plus every job trace — schema-v1 events in,
    the standard counters/gauges/histograms dict out.  No second
    metrics format is invented here.

``POST /jobs/<id>/cancel``
    Ask a queued/running job to stop at the next task boundary (the
    executor's job-level ``cancel`` hook).  Completed points are
    already cached, so a cancelled grid resumes for free.

Sweeps run on a single job-runner thread with a bounded worker budget
(``jobs=N`` workers *shared across* jobs, never multiplied by them);
HTTP handler threads only parse, probe the cache, enqueue and stream.
Graceful shutdown stops accepting, drains queued jobs through the
runner, and reclaims half-written cache temporaries — the same path a
SIGINT takes in the CLI.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import parse_qs, urlparse

from repro.lab import telemetry
from repro.lab.cache import ResultCache, point_key
from repro.lab.executor import (MissingResultsError, SweepCancelled,
                                execute)
from repro.lab.registry import resolve_machine
from repro.lab.results import ResultSet
from repro.lab.scenarios import Scenario, ScenarioPoint, get_scenario
from repro.lab.telemetry import MetricsRegistry, RunTrace

__all__ = ["Job", "JobManager", "ServeDaemon"]

#: job states a subscriber can no longer observe progress from.
_TERMINAL = frozenset({"done", "failed", "cancelled"})


# --------------------------------------------------------------------- #
# request -> points
# --------------------------------------------------------------------- #
def _coerce(value: Any) -> Any:
    """JSON bodies may carry CLI-style string literals ("true", "30");
    coerce them exactly like the CLI's key=value parser so a curl user
    quoting everything gets the same cache keys as a typed client."""
    if isinstance(value, str):
        low = value.lower()
        if low in ("true", "false"):
            return low == "true"
        for cast in (int, float):
            try:
                return cast(value)
            except ValueError:
                continue
    return value


def _coerce_map(obj: Any, what: str) -> Dict[str, Any]:
    if obj is None:
        return {}
    if not isinstance(obj, Mapping):
        raise ValueError(f"{what!r} must be an object of key -> value")
    return {str(k): _coerce(v) for k, v in obj.items()}


def _coerce_grid(obj: Any) -> Dict[str, List[Any]]:
    """Grid axes accept a JSON list, a single scalar (a pinned axis),
    or the CLI's comma-string spelling ("2,30")."""
    if obj is None:
        return {}
    if not isinstance(obj, Mapping):
        raise ValueError("'grid' must be an object of key -> values")
    out: Dict[str, List[Any]] = {}
    for k, v in obj.items():
        if isinstance(v, str):
            out[str(k)] = [_coerce(part) for part in v.split(",")]
        elif isinstance(v, Sequence):
            out[str(k)] = [_coerce(part) for part in v]
        else:
            out[str(k)] = [_coerce(v)]
    return out


def points_from_request(body: Any
                        ) -> Tuple[str, List[ScenarioPoint]]:
    """Resolve a ``POST /sweep`` body to ``(label, points)``.

    Mirrors ``repro-lab sweep``: a ``scenario`` key selects a preset
    (``quick``/``set``/``hw`` as overrides; ``grid`` is rejected — the
    preset defines the grid), otherwise ``kernel``/``machine``/``set``/
    ``grid``/``hw`` describe an ad-hoc cartesian sweep.  Raises
    ``ValueError`` (-> HTTP 400) on anything malformed.
    """
    if not isinstance(body, Mapping):
        raise ValueError("request body must be a JSON object")
    sets = _coerce_map(body.get("set"), "set")
    hw = _coerce_map(body.get("hw"), "hw")
    if body.get("scenario"):
        if body.get("grid"):
            raise ValueError("'grid' cannot be combined with 'scenario' "
                             "(the preset defines the grid; pin axes "
                             "with 'set')")
        scenario = get_scenario(str(body["scenario"]),
                                quick=bool(body.get("quick")))
        scenario = scenario.with_overrides(sets, hw=hw)
    elif body.get("kernel"):
        machine = resolve_machine(str(body.get("machine", "sim-l3")))
        if hw:
            machine = machine.with_hw(**hw)
        scenario = Scenario(
            name="adhoc",
            kernel=str(body["kernel"]),
            machine=machine,
            description="ad-hoc HTTP sweep",
            fixed=sets,
            grid=_coerce_grid(body.get("grid")),
        )
    else:
        raise ValueError("request must name a 'scenario' preset or an "
                         "inline 'kernel' grid")
    points = scenario.points()
    if not points:
        raise ValueError("request resolves to zero points")
    return scenario.name, points


# --------------------------------------------------------------------- #
# jobs
# --------------------------------------------------------------------- #
class Job:
    """One submitted sweep: its points, its in-memory :class:`RunTrace`
    (the SSE source), and its finished :class:`ResultSet`.

    Subscribers get ``(backlog, queue)``: a snapshot of every event so
    far plus a queue the trace listener fans live events into.  Events
    arrive indexed so a subscriber skips anything its backlog already
    covered — no event is lost or duplicated across the handoff.  A
    ``None`` sentinel on the queue means the job reached a terminal
    state and nothing more will come.
    """

    def __init__(self, job_id: str, key: str, label: str,
                 points: Sequence[ScenarioPoint]) -> None:
        self.id = job_id
        self.key = key
        self.label = label
        self.points = list(points)
        self.status = "queued"
        self.cached = False
        self.error: Optional[str] = None
        self.rows: Optional[ResultSet] = None
        self.summary: Dict[str, Any] = {}
        self.cancel_requested = False
        self.trace = RunTrace(meta={"command": "serve", "job": job_id,
                                    "scenario": label})
        self._lock = threading.Lock()
        self._subs: List["queue.SimpleQueue[Any]"] = []
        self._emitted = 0
        self.trace.add_listener(self._fanout)

    # ------------------------------------------------------------------ #
    def _fanout(self, event: Dict[str, Any]) -> None:
        with self._lock:
            idx = self._emitted
            self._emitted += 1
            for q in self._subs:
                q.put((idx, event))

    def subscribe(self) -> Tuple[List[Dict[str, Any]],
                                 "queue.SimpleQueue[Any]"]:
        with self._lock:
            backlog = list(self.trace.events)
            q: "queue.SimpleQueue[Any]" = queue.SimpleQueue()
            self._subs.append(q)
            if self.status in _TERMINAL:
                q.put(None)
            return backlog, q

    def unsubscribe(self, q: "queue.SimpleQueue[Any]") -> None:
        with self._lock:
            try:
                self._subs.remove(q)
            except ValueError:
                pass

    def _finish(self, status: str) -> None:
        with self._lock:
            self.status = status
            for q in self._subs:
                q.put(None)

    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, Any]:
        return {"job": self.id, "label": self.label,
                "status": self.status, "points": len(self.points),
                "cached": self.cached, "error": self.error,
                "events": len(self.trace.events), **self.summary}


class JobManager:
    """Single-flight job queue over one runner thread.

    * Warm requests (every point cached) are served synchronously on
      the calling thread — a ``require_cached`` execute, zero compute,
      nothing enqueued.
    * Cold requests dedup on the *grid key* — a hash of the sorted
      result-cache point keys — so two clients asking for the same
      uncached grid share one execution.
    * All sweeps run on one runner thread with ``jobs`` workers: the
      worker budget is shared across jobs, never multiplied by them.
    """

    def __init__(self, cache: Optional[ResultCache],
                 jobs: int = 1) -> None:
        self.cache = cache
        self.jobs = jobs
        self.executions = 0  #: sweeps actually run (cache-served excluded)
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._seq = itertools.count(1)
        self._cancel_all = False
        self._stopped = False
        self._runner = threading.Thread(target=self._run_loop,
                                        name="repro-lab-serve-runner",
                                        daemon=True)
        self._runner.start()

    # ------------------------------------------------------------------ #
    def grid_key(self, points: Sequence[ScenarioPoint]) -> str:
        """Request identity = the multiset of result-cache point keys
        (order-independent: the same grid swept in any order is the
        same work)."""
        if self.cache is not None:
            keys = sorted(self.cache.key_for(pt.cache_payload())
                          for pt in points)
        else:
            keys = sorted(point_key(pt.cache_payload(), "")
                          for pt in points)
        digest = hashlib.sha256("\n".join(keys).encode("ascii"))
        return digest.hexdigest()[:16]

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs_snapshot(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def _new_job(self, key: str, label: str,
                 points: Sequence[ScenarioPoint]) -> Job:
        with self._lock:
            job = Job(f"job-{next(self._seq):04d}-{key[:8]}", key,
                      label, points)
            self._jobs[job.id] = job
            return job

    # ------------------------------------------------------------------ #
    def submit(self, label: str, points: Sequence[ScenarioPoint]
               ) -> Tuple[Job, str]:
        """Route a request; returns ``(job, how)`` with *how* one of
        ``"cached"`` (answered synchronously from the result cache),
        ``"dedup"`` (joined an identical queued/running job) or
        ``"queued"``."""
        key = self.grid_key(points)
        job: Optional[Job] = None
        if self._probe_warm(points):
            job = self._new_job(key, label, points)
            try:
                self._run_cached(job)
                return job, "cached"
            except MissingResultsError:
                pass  # raced a gc between probe and read: run it cold
        if job is None:
            job = self._new_job(key, label, points)
        with self._lock:
            existing = self._inflight.get(key)
            if existing is not None:
                self._jobs.pop(job.id, None)  # join theirs, drop ours
                return existing, "dedup"
            job.status = "queued"
            self._inflight[key] = job
            self._queue.put(job)
        return job, "queued"

    def _probe_warm(self, points: Sequence[ScenarioPoint]) -> bool:
        """Whether every point is already cached.  Probed *untraced* —
        the probe is bookkeeping, not execution; counting its reads
        would double every hit in ``/metrics``."""
        if self.cache is None or self.cache.disabled:
            return False
        with telemetry.tracing(None):
            return all(self.cache.get(pt.cache_payload()) is not None
                       for pt in points)

    def _run_cached(self, job: Job) -> None:
        """Answer a fully-warm request on the calling thread: a
        ``require_cached`` execute reads every record (zero compute)
        under the job's own trace, so ``/metrics`` still attributes
        the hits."""
        job.status = "running"
        try:
            report = execute(job.points, cache=self.cache,
                             require_cached=True, trace=job.trace)
        except MissingResultsError:
            job.trace.finish(status="failed")
            job._finish("failed")
            raise
        job.rows = ResultSet.from_report(report)
        job.cached = True
        job.summary = {"hits": report.hits, "misses": report.misses,
                       "elapsed": report.elapsed}
        job.trace.finish(status="done", cached=True)
        job._finish("done")

    # ------------------------------------------------------------------ #
    def _run_loop(self) -> None:
        while True:
            job = self._queue.get()
            try:
                if job is None:
                    return
                if self._cancel_all:
                    self._settle(job, "cancelled")
                    continue
                self._run_job(job)
            finally:
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        job.status = "running"
        with self._lock:
            self.executions += 1
        status = "failed"
        try:
            report = execute(
                job.points, jobs=self.jobs, cache=self.cache,
                trace=job.trace,
                cancel=lambda: self._cancel_all or job.cancel_requested)
            job.rows = ResultSet.from_report(report)
            job.summary = {"hits": report.hits,
                           "misses": report.misses,
                           "elapsed": report.elapsed,
                           "failed": report.failed}
            status = "done"
        except SweepCancelled:
            status = "cancelled"
        except Exception as exc:  # surfaced via the job, not the thread
            job.error = f"{type(exc).__name__}: {exc}"
            status = "failed"
        finally:
            self._settle(job, status)

    def _settle(self, job: Job, status: str) -> None:
        with self._lock:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]
        job.trace.finish(status=status)
        job._finish(status)

    # ------------------------------------------------------------------ #
    def stop(self, drain: bool = True) -> None:
        """Stop the runner.  ``drain=True`` lets every queued job run
        to completion first; ``drain=False`` cancels the running sweep
        at its next task boundary and fails the queue fast.  Either
        way completed points are already in the cache."""
        if self._stopped:
            return
        self._stopped = True
        if not drain:
            self._cancel_all = True
        self._queue.put(None)
        self._runner.join()


# --------------------------------------------------------------------- #
# HTTP layer
# --------------------------------------------------------------------- #
class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    repro_daemon: "ServeDaemon"


class _Handler(BaseHTTPRequestHandler):
    # HTTP/1.0: the connection closes when the handler returns, which
    # is exactly the framing an SSE stream without chunked encoding
    # needs.
    protocol_version = "HTTP/1.0"
    server: _ServeHTTPServer

    @property
    def daemon(self) -> "ServeDaemon":
        return self.server.repro_daemon

    def log_message(self, format: str, *args: Any) -> None:
        pass  # the run trace is the access log

    # ------------------------------------------------------------------ #
    def _send_json(self, code: int, payload: Mapping[str, Any]) -> None:
        blob = json.dumps(payload, indent=2, default=str).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _send_text(self, code: int, text: str, ctype: str) -> None:
        blob = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except ValueError:
            raise ValueError("request body is not valid JSON") from None

    # ------------------------------------------------------------------ #
    def do_POST(self) -> None:
        t0 = time.monotonic()
        path = urlparse(self.path).path
        status = 500
        try:
            if path == "/sweep":
                status = self._post_sweep()
            elif path.startswith("/jobs/") and path.endswith("/cancel"):
                status = self._post_cancel(path[len("/jobs/"):
                                                -len("/cancel")])
            else:
                status = 404
                self._send_json(404, {"error": f"no such route {path}"})
        except ValueError as exc:
            status = 400
            self._send_json(400, {"error": str(exc)})
        except (BrokenPipeError, ConnectionResetError):
            return  # client went away; nothing to answer
        finally:
            self.daemon.record_request("POST", path, status, t0)

    def do_GET(self) -> None:
        t0 = time.monotonic()
        parsed = urlparse(self.path)
        path = parsed.path
        status = 500
        try:
            if path == "/metrics":
                status = self._get_metrics()
            elif path == "/healthz":
                status = 200
                self._send_json(200, {"ok": True,
                                      "accepting": self.daemon.accepting})
            elif path.startswith("/jobs/"):
                status = self._get_job(path[len("/jobs/"):], parsed.query)
            elif path.startswith("/results/"):
                status = self._get_results(path[len("/results/"):],
                                           parsed.query)
            else:
                status = 404
                self._send_json(404, {"error": f"no such route {path}"})
        except (BrokenPipeError, ConnectionResetError):
            return  # a disconnected SSE client is routine, not an error
        finally:
            self.daemon.record_request("GET", path, status, t0)

    # ------------------------------------------------------------------ #
    def _post_sweep(self) -> int:
        daemon = self.daemon
        if not daemon.accepting:
            self._send_json(503, {"error": "shutting down"})
            return 503
        body = self._read_body()
        label, points = points_from_request(body)
        daemon.count("serve.request")
        job, how = daemon.manager.submit(label, points)
        if how == "cached":
            daemon.count("serve.cache_hit")
        elif how == "dedup":
            daemon.count("serve.dedup")
        code = 202 if how == "queued" else 200
        self._send_json(code, {
            **job.describe(), "source": how,
            "links": {"status": f"/jobs/{job.id}",
                      "events": f"/jobs/{job.id}?sse=1",
                      "results": f"/results/{job.id}"}})
        return code

    def _post_cancel(self, job_id: str) -> int:
        job = self.daemon.manager.get(job_id)
        if job is None:
            self._send_json(404, {"error": f"no such job {job_id!r}"})
            return 404
        job.cancel_requested = True
        self._send_json(200, {"job": job.id, "status": job.status,
                              "cancel_requested": True})
        return 200

    def _get_job(self, job_id: str, query: str) -> int:
        job = self.daemon.manager.get(job_id)
        if job is None:
            self._send_json(404, {"error": f"no such job {job_id!r}"})
            return 404
        wants_sse = (parse_qs(query).get("sse", ["0"])[0] not in
                     ("0", "", "false")) or \
            "text/event-stream" in (self.headers.get("Accept") or "")
        if not wants_sse:
            self._send_json(200, job.describe())
            return 200
        self._stream_events(job)
        return 200

    def _stream_events(self, job: Job) -> None:
        """SSE: replay the trace backlog, then relay live events until
        the job settles.  ``event:`` carries the trace event type, the
        payload is the schema-v1 event verbatim."""
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        backlog, q = job.subscribe()
        try:
            for ev in backlog:
                self._sse_event(ev)
            self.wfile.flush()
            skip = len(backlog)
            while True:
                item = q.get()
                if item is None:
                    break
                idx, ev = item
                if idx < skip:
                    continue  # the backlog already carried this one
                self._sse_event(ev)
                self.wfile.flush()
            self.wfile.write(b"event: done\ndata: {}\n\n")
            self.wfile.flush()
        finally:
            job.unsubscribe(q)

    def _sse_event(self, event: Mapping[str, Any]) -> None:
        kind = str(event.get("type", "event"))
        data = json.dumps(event, sort_keys=True, default=str)
        self.wfile.write(f"event: {kind}\ndata: {data}\n\n"
                         .encode("utf-8"))

    def _get_results(self, job_id: str, query: str) -> int:
        job = self.daemon.manager.get(job_id)
        if job is None:
            self._send_json(404, {"error": f"no such job {job_id!r}"})
            return 404
        if job.rows is None:
            self._send_json(409, {**job.describe(),
                                  "error": f"job is {job.status}; "
                                           f"no results to fetch"})
            return 409
        fmt = parse_qs(query).get("format", ["json"])[0]
        if fmt == "csv":
            self._send_text(200, job.rows.to_csv(), "text/csv")
        elif fmt == "json":
            self._send_text(200, job.rows.to_json(), "application/json")
        else:
            self._send_json(400, {"error": f"unknown format {fmt!r} "
                                           f"(json or csv)"})
            return 400
        return 200

    def _get_metrics(self) -> int:
        self._send_json(200, self.daemon.metrics_payload())
        return 200


# --------------------------------------------------------------------- #
# daemon
# --------------------------------------------------------------------- #
class ServeDaemon:
    """The serve front-end: HTTP server + job manager + server trace.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    the bound ``(host, port)``.  :meth:`serve_forever` runs in the
    calling thread (the CLI); :meth:`start` spawns a background thread
    instead.  Either way :meth:`shutdown` stops accepting, drains (or
    cancels) the job queue, closes the socket and sweeps half-written
    cache temporaries — the same exit path a CLI SIGINT takes.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8737,
                 jobs: int = 1,
                 cache: Optional[ResultCache] = None) -> None:
        self.cache = cache
        self.trace = RunTrace(meta={"command": "serve"})
        self._trace_lock = threading.Lock()
        self.manager = JobManager(cache, jobs=jobs)
        self.accepting = True
        self._closed = False
        self.httpd = _ServeHTTPServer((host, port), _Handler)
        self.httpd.repro_daemon = self
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        self.httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "ServeDaemon":
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="repro-lab-serve-http",
                                        daemon=True)
        self._thread.start()
        return self

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, settle the queue (*drain* runs queued jobs
        to completion; ``drain=False`` cancels at the next task
        boundary), close the socket, finish the server trace, and
        reclaim stale cache temporaries.  Idempotent."""
        self.accepting = False
        self.manager.stop(drain=drain)
        if self._closed:
            return
        self._closed = True
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
        self.httpd.server_close()
        with self._trace_lock:
            self.trace.finish(jobs=len(self.manager.jobs_snapshot()),
                              executions=self.manager.executions)
        if self.cache is not None:
            self.cache.cleanup_tmp()

    # ------------------------------------------------------------------ #
    # server-trace emission (handler threads share one trace; RunTrace
    # itself is single-writer, so serialize).
    # ------------------------------------------------------------------ #
    def count(self, name: str) -> None:
        with self._trace_lock:
            self.trace.counter(name)

    def record_request(self, method: str, path: str, status: int,
                       start_monotonic: float) -> None:
        with self._trace_lock:
            if self.trace.finished:
                return
            self.trace.emit_span(
                "http_request",
                start_monotonic=start_monotonic,
                duration=time.monotonic() - start_monotonic,
                method=method, path=path, status=status)

    def metrics_payload(self) -> Dict[str, Any]:
        """``GET /metrics``: the schema-v1 events of the server trace
        plus every job trace, aggregated through the one true
        :class:`MetricsRegistry`."""
        with self._trace_lock:
            events: List[Dict[str, Any]] = list(self.trace.events)
        by_status: Dict[str, int] = {}
        for job in self.manager.jobs_snapshot():
            events.extend(list(job.trace.events))
            by_status[job.status] = by_status.get(job.status, 0) + 1
        registry = MetricsRegistry.from_events(events)
        return {"schema_version": telemetry.SCHEMA_VERSION,
                "metrics": registry.as_dict(),
                "jobs": by_status,
                "executions": self.manager.executions}
