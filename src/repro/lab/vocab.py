"""Schema-v1 telemetry vocabulary: every span/phase/counter name.

:mod:`repro.lab.telemetry` traces are consumed *by name* downstream —
``benchmarks/digest.py`` aggregates counters, ``repro-lab trace diff``
compares span and phase timings across runs.  A renamed span would not
crash anything; it would silently vanish from every digest and diff.
This module is the single place the names are declared, and the static
contract analyzer (rule R5 of :mod:`repro.lab.check`) rejects any
literal span/phase/counter name passed to the tracing API that is not
declared here.
"""

from typing import FrozenSet

__all__ = ["SCHEMA_VERSION", "SPANS", "PHASES", "COUNTERS"]

#: must match :data:`repro.lab.telemetry.SCHEMA_VERSION`.
SCHEMA_VERSION = 1

#: structured span names (``RunTrace.span`` / ``RunTrace.emit_span``).
SPANS: FrozenSet[str] = frozenset({
    "sweep",
    "task",
    "http_request",
})

#: fastsim phase-timing names (:func:`repro.machine.fastsim.profile
#: .phase` hook sections, folded into traces by the executor).
PHASES: FrozenSet[str] = frozenset({
    "trace_build",
    "supersymbol_fold",
    "radix_partition",
    "distance_pass",
    "capacity_fold",
    "stream_window",
    "next_use",
    "opt_replay",
})

#: counter names (``RunTrace.counter``).
COUNTERS: FrozenSet[str] = frozenset({
    "cache.hit",
    "cache.miss",
    "cache.write",
    "tracestore.hit",
    "tracestore.miss",
    "trace.events",
    "trace.symbols",
    "task.retry",
    "task.timeout",
    "worker.respawn",
    "point.failed",
    "serve.request",
    "serve.cache_hit",
    "serve.dedup",
})
