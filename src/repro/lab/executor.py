"""Parallel scenario-point executor with cache-aware scheduling.

The executor resolves cache hits first (cheap, in-process), then fans only
the remaining points out over a ``multiprocessing`` pool — so a warm sweep
costs one JSON read per point regardless of ``jobs``, and a cold sweep
scales with cores.  All *result-cache* I/O happens in the parent process;
workers are deterministic functions from point payloads to records, though
with a trace store installed (:mod:`repro.lab.tracestore`) they do share
memoized traces through it (memory-mapped reads, atomic writes — safe
under concurrency, and purely an accelerator: records are unaffected).

**Batching** (on by default): uncached points whose kernel registers a
:class:`~repro.lab.registry.BatchKernel` entry and that share the
entry's group key are collapsed into one task that evaluates the whole
group at once and emits exact per-point records, which are then fanned
back out into the result cache under each point's own key.  Batching is
purely an execution strategy: reports, caching and record contents stay
bit-identical to the per-point path.  Two batch families exist today:

* **multi-capacity trace batches** — points of one line-trace kernel
  (:data:`repro.lab.registry.TRACE_KERNELS`) differing only in cache
  capacity and batchable policy replay the trace once through the
  single-pass fastsim sweeps (``multi_capacity=False`` /
  ``--no-multi-capacity`` opts out);
* **cost-grid batches** — points of one analytic ``cost-*`` family
  under the same ``HwParams`` evaluate as a single numpy-vectorized
  grid, infeasible points masked to ``feasible: False`` records
  (``batch=False`` / ``--no-batch`` opts out).

**Cache identity**: records are keyed on
:meth:`~repro.lab.scenarios.ScenarioPoint.cache_payload` — the machine
spec projected to the fields the kernel declares it reads
(:data:`repro.lab.registry.MACHINE_FIELDS`) — so same-params points
under differently named (or irrelevantly differing) machines share one
cache entry.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.lab.cache import ResultCache
from repro.lab.registry import BATCH_KERNELS, run_batch
from repro.lab.scenarios import ScenarioPoint
from repro.util import json_number_default

__all__ = ["execute", "PointResult", "SweepReport", "MissingResultsError"]


class MissingResultsError(RuntimeError):
    """Raised by ``require_cached`` runs when points are absent from cache."""

    def __init__(self, missing: int, total: int):
        super().__init__(
            f"{missing} of {total} points are not in the result cache; "
            f"run the sweep first (repro-lab run ...)"
        )
        self.missing = missing
        self.total = total


@dataclass
class PointResult:
    """One executed (or cache-served) scenario point."""

    point: ScenarioPoint
    record: Dict[str, Any]
    cached: bool


@dataclass
class SweepReport:
    """Results in point order plus cache/timing accounting."""

    results: List[PointResult]
    hits: int = 0
    misses: int = 0
    elapsed: float = 0.0
    jobs: int = 1
    #: points computed through batched tasks / batch count.
    batched_points: int = 0
    batches: int = 0

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 1.0

    def records(self) -> List[Dict[str, Any]]:
        return [r.record for r in self.results]

    def cache_line(self, cache: Optional[ResultCache]) -> str:
        """The one-line cache summary the CLIs print."""
        batched = (f", {self.batched_points} via {self.batches} "
                   f"batch(es)" if self.batches else "")
        if cache is None or cache.disabled:
            return (f"[repro.lab] cache disabled; computed "
                    f"{self.total} points in {self.elapsed:.2f}s "
                    f"(jobs={self.jobs}{batched})")
        return (f"[repro.lab] {self.hits}/{self.total} points "
                f"({self.hit_rate:.0%}) served from cache at {cache.root}; "
                f"computed {self.misses} in {self.elapsed:.2f}s "
                f"(jobs={self.jobs}{batched})")


# --------------------------------------------------------------------- #
# batch grouping
# --------------------------------------------------------------------- #
def _batch_key(point: ScenarioPoint, *, multi_capacity: bool,
               batch: bool,
               memo: Optional[Dict[Any, Optional[str]]] = None
               ) -> Optional[str]:
    """A key shared exactly by points that may ride one batched task
    (``None`` marks a point that must run on its own).

    Grouping is driven by the batch-kernel protocol
    (:data:`repro.lab.registry.BATCH_KERNELS`); each entry's gate flag
    (``multi_capacity`` for trace-capacity batches, ``batch`` for grid
    batches) must be on.  The group identity is serialized with
    numpy-canonical JSON, so ``np.int64``/``np.float64`` grid values
    neither split nor duplicate batch groups.  Entries whose identity
    ignores params (``machine_only``) are memoized per (kernel,
    machine) in *memo* — a 10^4-point grid derives its key once.
    """
    bk = BATCH_KERNELS.get(point.kernel)
    if bk is None:
        return None
    if not (multi_capacity if bk.toggle == "multi_capacity" else batch):
        return None
    memo_key = None
    if bk.machine_only and memo is not None:
        # id() is stable here: the planner's point list keeps every
        # machine object alive for the memo's whole lifetime.
        memo_key = (point.kernel, id(point.machine))
        try:
            return memo[memo_key]
        except KeyError:
            pass
    group = bk.group_key(point.machine, point.params)
    if group is None:
        key = None
    else:
        try:
            key = json.dumps({"kernel": point.kernel, "group": group},
                             sort_keys=True, default=json_number_default)
        except (TypeError, ValueError):
            key = None
    if memo_key is not None:
        memo[memo_key] = key
    return key


def _capacity_group_key(point: ScenarioPoint) -> Optional[str]:
    """Back-compat alias: the trace-capacity view of :func:`_batch_key`."""
    return _batch_key(point, multi_capacity=True, batch=False)


def _plan_tasks(points: Sequence[ScenarioPoint], pending: Sequence[int],
                multi_capacity: bool, batch: bool = True
                ) -> List[List[int]]:
    """Partition pending point indices into tasks (singletons or
    batches), preserving first-appearance order."""
    groups: Dict[str, List[int]] = {}
    tasks: List[List[int]] = []
    memo: Dict[Any, Optional[str]] = {}
    for i in pending:
        key = _batch_key(points[i], multi_capacity=multi_capacity,
                         batch=batch, memo=memo)
        if key is None:
            tasks.append([i])
        elif key in groups:
            groups[key].append(i)
        else:
            group = [i]
            groups[key] = group
            tasks.append(group)
    return tasks


def _run_points(pts: Sequence[ScenarioPoint]) -> List[Dict[str, Any]]:
    """Run one planned task — a single point or one batch — returning
    records in task order."""
    if len(pts) == 1:
        return [pts[0].run()]
    return run_batch(pts[0].kernel,
                     [(pt.machine, pt.params) for pt in pts])


def _run_task(task: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Pool worker: :func:`_run_points` after payload-transport
    reconstruction (kernels are pure functions of the payload, so this
    is bit-identical to the in-process path)."""
    return _run_points([ScenarioPoint.from_payload(p)
                        for p in task["points"]])


def execute(
    points: Sequence[ScenarioPoint],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    require_cached: bool = False,
    multi_capacity: bool = True,
    batch: bool = True,
) -> SweepReport:
    """Run every point, serving repeats from *cache* when provided.

    Parameters
    ----------
    points:
        Concrete scenario points (e.g. from :meth:`Scenario.points`).
    jobs:
        Worker processes for the uncached remainder; ``1`` runs in-process
        (bit-identical to the workers — kernels are deterministic pure
        functions of the payload).
    cache:
        A :class:`ResultCache`; hits skip simulation entirely.  Records
        key on the machine-projected :meth:`ScenarioPoint.cache_payload`.
    require_cached:
        Report-only mode: raise :class:`MissingResultsError` instead of
        computing anything.
    multi_capacity:
        Collapse same-trace LRU/Belady capacity sweeps into
        single-replay batches (see the module docstring).  Purely an
        execution strategy: records and cache contents are identical
        either way.
    batch:
        Collapse same-machine analytic grids (the ``cost-*`` families)
        into vectorized batch evaluations — the grid analogue of
        ``multi_capacity``, with the same bit-identity guarantee.
    """
    t0 = time.perf_counter()
    points = list(points)
    results: List[Optional[PointResult]] = [None] * len(points)
    pending: List[int] = []
    for i, pt in enumerate(points):
        record = cache.get(pt.cache_payload()) if cache is not None else None
        if record is not None:
            results[i] = PointResult(pt, record, cached=True)
        else:
            pending.append(i)

    if pending and require_cached:
        raise MissingResultsError(len(pending), len(points))

    batches = batched_points = 0
    if pending:
        tasks = _plan_tasks(points, pending, multi_capacity, batch)
        for task in tasks:
            if len(task) > 1:
                batches += 1
                batched_points += len(task)
        if jobs > 1 and len(tasks) > 1:
            payloads = [{"points": [points[i].payload() for i in task]}
                        for task in tasks]
            with multiprocessing.Pool(min(jobs, len(tasks))) as pool:
                record_lists = pool.map(_run_task, payloads)
        else:
            record_lists = [_run_points([points[i] for i in task])
                            for task in tasks]
        for task, records in zip(tasks, record_lists):
            if len(records) != len(task):
                # A broken BatchKernel.run must fail attributably, not
                # silently drop points from the report.
                raise RuntimeError(
                    f"batch evaluator for kernel "
                    f"{points[task[0]].kernel!r} returned "
                    f"{len(records)} record(s) for {len(task)} points")
            for i, record in zip(task, records):
                if cache is not None:
                    cache.put(points[i].cache_payload(), record)
                results[i] = PointResult(points[i], record, cached=False)

    return SweepReport(
        results=[r for r in results if r is not None],
        hits=len(points) - len(pending),
        misses=len(pending),
        elapsed=time.perf_counter() - t0,
        jobs=jobs,
        batched_points=batched_points,
        batches=batches,
    )
