"""Parallel scenario-point executor with cache-aware scheduling.

The executor resolves cache hits first (cheap, in-process), then fans only
the remaining points out over a ``multiprocessing`` pool — so a warm sweep
costs one JSON read per point regardless of ``jobs``, and a cold sweep
scales with cores.  All *result-cache* I/O happens in the parent process;
workers are deterministic functions from point payloads to records, though
with a trace store installed (:mod:`repro.lab.tracestore`) they do share
memoized traces through it (memory-mapped reads, atomic writes — safe
under concurrency, and purely an accelerator: records are unaffected).

**Batching** (on by default): uncached points whose kernel registers a
:class:`~repro.lab.registry.BatchKernel` entry and that share the
entry's group key are collapsed into one task that evaluates the whole
group at once and emits exact per-point records, which are then fanned
back out into the result cache under each point's own key.  Batching is
purely an execution strategy: reports, caching and record contents stay
bit-identical to the per-point path.  Two batch families exist today:

* **multi-capacity trace batches** — points of one line-trace kernel
  (:data:`repro.lab.registry.TRACE_KERNELS`) differing only in cache
  capacity and batchable policy replay the trace once through the
  single-pass fastsim sweeps (``multi_capacity=False`` /
  ``--no-multi-capacity`` opts out);
* **cost-grid batches** — points of one analytic ``cost-*`` family
  under the same ``HwParams`` evaluate as a single numpy-vectorized
  grid, infeasible points masked to ``feasible: False`` records
  (``batch=False`` / ``--no-batch`` opts out).

**Cache identity**: records are keyed on
:meth:`~repro.lab.scenarios.ScenarioPoint.cache_payload` — the machine
spec projected to the fields the kernel declares it reads
(:data:`repro.lab.registry.MACHINE_FIELDS`) — so same-params points
under differently named (or irrelevantly differing) machines share one
cache entry.

**Telemetry** (:mod:`repro.lab.telemetry`): with a
:class:`~repro.lab.telemetry.RunTrace` active (``--trace`` or an
explicit ``trace=`` argument) the executor emits a ``sweep`` span, one
``task`` span per planned task (tagged with its kind, venue —
``in_process`` or ``pool-worker-N`` — and queue-vs-compute seconds),
and one ``point`` event per point tagged with its execution path
(``cache``/``batch``/``multi_capacity``/``scalar``), cache key and
whether it was batchable.  Pool workers capture their own events
(fastsim phases, trace-store counters) into an in-memory subtrace that
the parent splices back in; kernels listed in
:data:`~repro.lab.registry.METRIC_FIELDS` additionally fold the named
record fields into trace metrics.  Tracing never changes records —
the untraced path pays one ``None`` check per site.
"""

from __future__ import annotations

import json
import multiprocessing
import time
import traceback as tb
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lab import telemetry
from repro.lab.cache import ResultCache
from repro.lab.registry import BATCH_KERNELS, METRIC_FIELDS, run_batch
from repro.lab.scenarios import ScenarioPoint
from repro.machine.fastsim import profile as fs_profile
from repro.util import json_number_default

__all__ = ["execute", "PointResult", "SweepReport", "MissingResultsError",
           "PointExecutionError"]


class MissingResultsError(RuntimeError):
    """Raised by ``require_cached`` runs when points are absent from cache."""

    def __init__(self, missing: int, total: int):
        super().__init__(
            f"{missing} of {total} points are not in the result cache; "
            f"run the sweep first (repro-lab run ...)"
        )
        self.missing = missing
        self.total = total


class PointExecutionError(RuntimeError):
    """A pool worker failed while evaluating a task.

    ``multiprocessing`` re-raises worker exceptions after a round trip
    that can lose the original traceback (and always loses which point
    was being evaluated), so workers catch failures themselves and ship
    a structured error record home; the parent raises this with the
    worker-side traceback attached as :attr:`remote_traceback` and
    included in the message.
    """

    def __init__(self, message: str,
                 remote_traceback: Optional[str] = None):
        if remote_traceback:
            message = (f"{message}\n--- remote traceback ---\n"
                       f"{remote_traceback.rstrip()}")
        super().__init__(message)
        self.remote_traceback = remote_traceback


@dataclass
class PointResult:
    """One executed (or cache-served) scenario point."""

    point: ScenarioPoint
    record: Dict[str, Any]
    cached: bool


@dataclass
class SweepReport:
    """Results in point order plus cache/timing accounting."""

    results: List[PointResult]
    hits: int = 0
    misses: int = 0
    elapsed: float = 0.0
    jobs: int = 1
    #: points computed through batched tasks / batch count.
    batched_points: int = 0
    batches: int = 0

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 1.0

    def records(self) -> List[Dict[str, Any]]:
        return [r.record for r in self.results]

    def cache_line(self, cache: Optional[ResultCache]) -> str:
        """The one-line cache summary the CLIs print."""
        batched = (f", {self.batched_points} via {self.batches} "
                   f"batch(es)" if self.batches else "")
        if cache is None or cache.disabled:
            return (f"[repro.lab] cache disabled; computed "
                    f"{self.total} points in {self.elapsed:.2f}s "
                    f"(jobs={self.jobs}{batched})")
        return (f"[repro.lab] {self.hits}/{self.total} points "
                f"({self.hit_rate:.0%}) served from cache at {cache.root}; "
                f"computed {self.misses} in {self.elapsed:.2f}s "
                f"(jobs={self.jobs}{batched})")


# --------------------------------------------------------------------- #
# batch grouping
# --------------------------------------------------------------------- #
def _batch_key(point: ScenarioPoint, *, multi_capacity: bool,
               batch: bool,
               memo: Optional[Dict[Any, Optional[str]]] = None
               ) -> Optional[str]:
    """A key shared exactly by points that may ride one batched task
    (``None`` marks a point that must run on its own).

    Grouping is driven by the batch-kernel protocol
    (:data:`repro.lab.registry.BATCH_KERNELS`); each entry's gate flag
    (``multi_capacity`` for trace-capacity batches, ``batch`` for grid
    batches) must be on.  The group identity is serialized with
    numpy-canonical JSON, so ``np.int64``/``np.float64`` grid values
    neither split nor duplicate batch groups.  Entries whose identity
    ignores params (``machine_only``) are memoized per (kernel,
    machine) in *memo* — a 10^4-point grid derives its key once.
    """
    bk = BATCH_KERNELS.get(point.kernel)
    if bk is None:
        return None
    if not (multi_capacity if bk.toggle == "multi_capacity" else batch):
        return None
    memo_key = None
    if bk.machine_only and memo is not None:
        # id() is stable here: the planner's point list keeps every
        # machine object alive for the memo's whole lifetime.
        memo_key = (point.kernel, id(point.machine))
        try:
            return memo[memo_key]
        except KeyError:
            pass
    group = bk.group_key(point.machine, point.params)
    if group is None:
        key = None
    else:
        try:
            key = json.dumps({"kernel": point.kernel, "group": group},
                             sort_keys=True, default=json_number_default)
        except (TypeError, ValueError):
            key = None
    if memo_key is not None:
        memo[memo_key] = key
    return key


def _capacity_group_key(point: ScenarioPoint) -> Optional[str]:
    """Back-compat alias: the trace-capacity view of :func:`_batch_key`."""
    return _batch_key(point, multi_capacity=True, batch=False)


def _plan(points: Sequence[ScenarioPoint], pending: Sequence[int],
          multi_capacity: bool, batch: bool = True
          ) -> List[Tuple[List[int], Optional[str]]]:
    """Partition pending point indices into ``(indices, kind)`` tasks,
    preserving first-appearance order.  *kind* is the batch family's
    toggle name (``"multi_capacity"`` / ``"batch"``) for points that
    matched a batch group, else ``None`` — which is also the telemetry
    notion of "batchable": a ``None``-kind point had no batch path."""
    groups: Dict[str, List[int]] = {}
    tasks: List[Tuple[List[int], Optional[str]]] = []
    memo: Dict[Any, Optional[str]] = {}
    for i in pending:
        key = _batch_key(points[i], multi_capacity=multi_capacity,
                         batch=batch, memo=memo)
        if key is None:
            tasks.append(([i], None))
        elif key in groups:
            groups[key].append(i)
        else:
            group = [i]
            groups[key] = group
            tasks.append((group, BATCH_KERNELS[points[i].kernel].toggle))
    return tasks


def _plan_tasks(points: Sequence[ScenarioPoint], pending: Sequence[int],
                multi_capacity: bool, batch: bool = True
                ) -> List[List[int]]:
    """Back-compat view of :func:`_plan`: just the index partition."""
    return [task for task, _ in _plan(points, pending, multi_capacity,
                                      batch)]


def _run_points(pts: Sequence[ScenarioPoint]) -> List[Dict[str, Any]]:
    """Run one planned task — a single point or one batch — returning
    records in task order."""
    if len(pts) == 1:
        return [pts[0].run()]
    return run_batch(pts[0].kernel,
                     [(pt.machine, pt.params) for pt in pts])


# --------------------------------------------------------------------- #
# telemetry plumbing
# --------------------------------------------------------------------- #
@contextmanager
def _phase_capture(trace: Optional[telemetry.RunTrace]):
    """Route fastsim profiling phases into *trace* for the duration
    (no-op without a trace, so untraced runs keep the free fast path)."""
    if trace is None:
        yield
        return
    previous = fs_profile.set_phase_hook(trace.phase)
    try:
        yield
    finally:
        fs_profile.set_phase_hook(previous)


def _worker_venue(name: str) -> str:
    """``ForkPoolWorker-3`` → ``pool-worker-3`` (the trace's venue tag)."""
    digits = "".join(c for c in name if c.isdigit())
    return f"pool-worker-{digits}" if digits else "pool-worker"


def _fold_metrics(trace: telemetry.RunTrace, kernel: str,
                  record: Dict[str, Any]) -> None:
    """Fold the record fields *kernel* declared in
    :data:`~repro.lab.registry.METRIC_FIELDS` into trace metrics."""
    for field in METRIC_FIELDS.get(kernel, ()):
        value = record.get(field)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        trace.metric(f"{kernel}.{field}", float(value))


def _run_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Pool worker: :func:`_run_points` after payload-transport
    reconstruction (kernels are pure functions of the payload, so this
    is bit-identical to the in-process path).

    Returns ``{"records", "worker", "t0", "t1"}`` plus, when the parent
    is tracing (``task["telemetry"]``), the worker's captured
    ``"events"``/``"epoch"`` — or, on failure, a structured ``"error"``
    record carrying the worker-side traceback (the parent re-raises it
    as :class:`PointExecutionError`)."""
    pts = [ScenarioPoint.from_payload(p) for p in task["points"]]
    out: Dict[str, Any] = {
        "worker": multiprocessing.current_process().name,
    }
    subtrace = telemetry.RunTrace() if task.get("telemetry") else None
    out["t0"] = time.monotonic()
    try:
        with telemetry.tracing(subtrace), _phase_capture(subtrace):
            out["records"] = _run_points(pts)
    except Exception as exc:  # shipped home; parent re-raises
        out["error"] = {
            "exc_type": type(exc).__name__,
            "message": str(exc),
            "kernel": pts[0].kernel,
            "points": len(pts),
            "traceback": tb.format_exc(),
        }
    out["t1"] = time.monotonic()
    if subtrace is not None:
        out["events"] = subtrace.events
        out["epoch"] = subtrace.epoch
    return out


def _raise_remote(out: Dict[str, Any]) -> None:
    err = out["error"]
    raise PointExecutionError(
        f"worker {out['worker']} failed on kernel {err['kernel']!r} "
        f"({err['points']} point task): "
        f"{err['exc_type']}: {err['message']}",
        remote_traceback=err.get("traceback"))


def execute(
    points: Sequence[ScenarioPoint],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    require_cached: bool = False,
    multi_capacity: bool = True,
    batch: bool = True,
    trace: Optional[telemetry.RunTrace] = None,
) -> SweepReport:
    """Run every point, serving repeats from *cache* when provided.

    Parameters
    ----------
    points:
        Concrete scenario points (e.g. from :meth:`Scenario.points`).
    jobs:
        Worker processes for the uncached remainder; ``1`` runs in-process
        (bit-identical to the workers — kernels are deterministic pure
        functions of the payload).
    cache:
        A :class:`ResultCache`; hits skip simulation entirely.  Records
        key on the machine-projected :meth:`ScenarioPoint.cache_payload`.
    require_cached:
        Report-only mode: raise :class:`MissingResultsError` instead of
        computing anything.
    multi_capacity:
        Collapse same-trace LRU/Belady capacity sweeps into
        single-replay batches (see the module docstring).  Purely an
        execution strategy: records and cache contents are identical
        either way.
    batch:
        Collapse same-machine analytic grids (the ``cost-*`` families)
        into vectorized batch evaluations — the grid analogue of
        ``multi_capacity``, with the same bit-identity guarantee.
    trace:
        A :class:`~repro.lab.telemetry.RunTrace` to record attribution
        events into; defaults to the process-wide
        :func:`~repro.lab.telemetry.active_trace` (usually ``None``).
        Tracing never changes records or cache contents.
    """
    if trace is None:
        trace = telemetry.active_trace()
    with telemetry.tracing(trace), _phase_capture(trace):
        return _execute(points, jobs=jobs, cache=cache,
                        require_cached=require_cached,
                        multi_capacity=multi_capacity, batch=batch,
                        trace=trace)


def _execute(
    points: Sequence[ScenarioPoint],
    *,
    jobs: int,
    cache: Optional[ResultCache],
    require_cached: bool,
    multi_capacity: bool,
    batch: bool,
    trace: Optional[telemetry.RunTrace],
) -> SweepReport:
    t0 = time.perf_counter()
    points = list(points)
    results: List[Optional[PointResult]] = [None] * len(points)
    pending: List[int] = []
    sweep_cm = (trace.span("sweep", points=len(points), jobs=jobs)
                if trace is not None else nullcontext())
    with sweep_cm as sweep_span:
        for i, pt in enumerate(points):
            payload = pt.cache_payload() if cache is not None else None
            record = cache.get(payload) if cache is not None else None
            if record is not None:
                results[i] = PointResult(pt, record, cached=True)
                if trace is not None:
                    trace.point(index=i, kernel=pt.kernel, path="cache",
                                venue="in_process", cached=True,
                                key=cache.key_for(payload))
            else:
                pending.append(i)

        if pending and require_cached:
            raise MissingResultsError(len(pending), len(points))

        batches = batched_points = 0
        if pending:
            plan = _plan(points, pending, multi_capacity, batch)
            for task, _kind in plan:
                if len(task) > 1:
                    batches += 1
                    batched_points += len(task)
            record_lists: List[List[Dict[str, Any]]] = []
            venues: List[str] = []
            if jobs > 1 and len(plan) > 1:
                payloads = [{"points": [points[i].payload() for i in task],
                             "telemetry": trace is not None}
                            for task, _kind in plan]
                submitted = time.monotonic()
                with multiprocessing.Pool(min(jobs, len(plan))) as pool:
                    outs = pool.map(_run_task, payloads)
                for (task, kind), out in zip(plan, outs):
                    if "error" in out:
                        _raise_remote(out)
                    record_lists.append(out["records"])
                    venue = _worker_venue(out["worker"])
                    venues.append(venue)
                    if trace is not None:
                        compute_s = round(out["t1"] - out["t0"], 6)
                        span_id = trace.emit_span(
                            "task", start_monotonic=out["t0"],
                            duration=out["t1"] - out["t0"],
                            parent=sweep_span.id,
                            kernel=points[task[0]].kernel,
                            kind=kind or "scalar", points=len(task),
                            venue=venue,
                            queue_s=round(
                                max(0.0, out["t0"] - submitted), 6),
                            compute_s=compute_s)
                        if out.get("events"):
                            trace.merge_subtrace(out["events"],
                                                 out["epoch"],
                                                 parent_id=span_id)
            else:
                for task, kind in plan:
                    pts = [points[i] for i in task]
                    if trace is not None:
                        with trace.span("task", kernel=pts[0].kernel,
                                        kind=kind or "scalar",
                                        points=len(task),
                                        venue="in_process",
                                        queue_s=0.0) as tspan:
                            tc0 = time.perf_counter()
                            recs = _run_points(pts)
                            tspan.tag(compute_s=round(
                                time.perf_counter() - tc0, 6))
                    else:
                        recs = _run_points(pts)
                    record_lists.append(recs)
                    venues.append("in_process")
            for (task, kind), records, venue in zip(plan, record_lists,
                                                    venues):
                if len(records) != len(task):
                    # A broken BatchKernel.run must fail attributably,
                    # not silently drop points from the report.
                    raise RuntimeError(
                        f"batch evaluator for kernel "
                        f"{points[task[0]].kernel!r} returned "
                        f"{len(records)} record(s) for {len(task)} points")
                path = kind if (kind is not None and len(task) > 1) \
                    else "scalar"
                for i, record in zip(task, records):
                    if cache is not None:
                        cache.put(points[i].cache_payload(), record)
                    results[i] = PointResult(points[i], record,
                                             cached=False)
                    if trace is not None:
                        tags: Dict[str, Any] = dict(
                            index=i, kernel=points[i].kernel, path=path,
                            venue=venue, cached=False,
                            batchable=kind is not None)
                        if cache is not None:
                            tags["key"] = cache.key_for(
                                points[i].cache_payload())
                        trace.point(**tags)
                        _fold_metrics(trace, points[i].kernel, record)

        if trace is not None:
            sweep_span.tag(hits=len(points) - len(pending),
                           misses=len(pending), batches=batches,
                           batched_points=batched_points)

    return SweepReport(
        results=[r for r in results if r is not None],
        hits=len(points) - len(pending),
        misses=len(pending),
        elapsed=time.perf_counter() - t0,
        jobs=jobs,
        batched_points=batched_points,
        batches=batches,
    )
