"""Parallel scenario-point executor with cache-aware scheduling.

The executor resolves cache hits first (cheap, in-process), then fans only
the remaining points out over a supervised pool of worker processes — so a
warm sweep costs one JSON read per point regardless of ``jobs``, and a
cold sweep scales with cores.  All *result-cache* I/O happens in the
parent process; workers are deterministic functions from point payloads to
records, though with a trace store installed
(:mod:`repro.lab.tracestore`) they do share memoized traces through it
(memory-mapped reads, atomic writes — safe under concurrency, and purely
an accelerator: records are unaffected).

**Batching** (on by default): uncached points whose kernel registers a
:class:`~repro.lab.registry.BatchKernel` entry and that share the
entry's group key are collapsed into one task that evaluates the whole
group at once and emits exact per-point records, which are then fanned
back out into the result cache under each point's own key.  Batching is
purely an execution strategy: reports, caching and record contents stay
bit-identical to the per-point path.  Two batch families exist today:

* **multi-capacity trace batches** — points of one line-trace kernel
  (:data:`repro.lab.registry.TRACE_KERNELS`) differing only in cache
  capacity and batchable policy replay the trace once through the
  single-pass fastsim sweeps (``multi_capacity=False`` /
  ``--no-multi-capacity`` opts out);
* **cost-grid batches** — points of one analytic ``cost-*`` family
  under the same ``HwParams`` evaluate as a single numpy-vectorized
  grid, infeasible points masked to ``feasible: False`` records
  (``batch=False`` / ``--no-batch`` opts out).

**Fault tolerance**: dispatch is a supervised completion loop, not a
bare ``pool.map``.  Each task gets a wall-clock ``timeout`` (the worker
is killed and respawned on expiry) and a per-task ``retries`` budget
with capped exponential backoff and deterministic jitter; a failed
*batch* falls back to per-point scalar tasks so one poisoned point
cannot sink its siblings; a worker that dies mid-task (SIGKILL,
``os._exit``) is detected, respawned (capped by
:attr:`RetryPolicy.max_respawns`) and its task requeued.  Every
successful point is cached *immediately on completion*, so an
interrupted or partially failed sweep resumes through the result cache
(re-run = retry only the failures).  With ``keep_going=True`` a point
that exhausts its retries produces a structured error record
(``failed``/``error``/``exc_type``/``remote_traceback``/``attempts``,
plus the scenario point identity) instead of aborting the sweep;
otherwise the first terminal failure raises
:class:`PointExecutionError` — completed siblings stay cached either
way.  A seeded :class:`~repro.lab.faults.FaultPlan` (``faults=``,
``--fault-plan``, ``$REPRO_LAB_FAULTS``) injects deterministic
raise/hang/die faults at the worker boundary so every recovery path is
testable.

**Cache identity**: records are keyed on
:meth:`~repro.lab.scenarios.ScenarioPoint.cache_payload` — the machine
spec projected to the fields the kernel declares it reads
(:data:`repro.lab.registry.MACHINE_FIELDS`) — so same-params points
under differently named (or irrelevantly differing) machines share one
cache entry.  Error records are **never** cached.

**Telemetry** (:mod:`repro.lab.telemetry`): with a
:class:`~repro.lab.telemetry.RunTrace` active (``--trace`` or an
explicit ``trace=`` argument) the executor emits a ``sweep`` span, one
``task`` span per completed task attempt (tagged with its kind, venue —
``in_process`` or ``pool-worker-N`` — attempt number and
queue-vs-compute seconds), one ``point`` event per point tagged with
its execution path (``cache``/``batch``/``multi_capacity``/``scalar``/
``failed``), and ``task.retry`` / ``task.timeout`` /
``worker.respawn`` / ``point.failed`` counters for every recovery
action.  Pool workers capture their own events (fastsim phases,
trace-store counters) into an in-memory subtrace that the parent
splices back in; kernels listed in
:data:`~repro.lab.registry.METRIC_FIELDS` additionally fold the named
record fields into trace metrics.  Tracing never changes records —
the untraced path pays one ``None`` check per site.
"""

from __future__ import annotations

import errno
import json
import multiprocessing
import time
import traceback as tb
from collections import deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple, Union)

from repro.lab import telemetry
from repro.lab.cache import ResultCache
from repro.lab.faults import FaultPlan, deterministic_unit, fault_key
from repro.lab.registry import (BATCH_KERNELS, METRIC_FIELDS, TRACE_KERNELS,
                                run_batch)
from repro.lab.scenarios import ScenarioPoint
from repro.lab.tracestore import active_store, staged_keys
from repro.machine.fastsim import profile as fs_profile
from repro.util import json_number_default

__all__ = ["execute", "PointResult", "SweepReport", "MissingResultsError",
           "PointExecutionError", "RetryPolicy", "SweepCancelled"]


#: errno values that mean "the pipe's peer is gone" — the only class of
#: OSError a worker pipe send may swallow as worker/parent death.  An
#: EBADF, ENOMEM or EMSGSIZE there is *our* bug and must surface, not
#: silently count as a crash-respawn.
_PEER_GONE_ERRNOS = frozenset({errno.EPIPE, errno.ECONNRESET,
                               errno.ESHUTDOWN})


def _is_peer_gone(exc: OSError) -> bool:
    """Whether *exc* from a pipe send means the other end died (vs a
    genuine local error that must propagate)."""
    if isinstance(exc, (BrokenPipeError, ConnectionResetError)):
        return True
    return exc.errno in _PEER_GONE_ERRNOS


class MissingResultsError(RuntimeError):
    """Raised by ``require_cached`` runs when points are absent from cache."""

    def __init__(self, missing: int, total: int):
        super().__init__(
            f"{missing} of {total} points are not in the result cache; "
            f"run the sweep first (repro-lab run ...)"
        )
        self.missing = missing
        self.total = total


class PointExecutionError(RuntimeError):
    """A task failed terminally while evaluating scenario points.

    ``multiprocessing`` re-raises worker exceptions after a round trip
    that can lose the original traceback (and always loses which point
    was being evaluated), so workers catch failures themselves and ship
    a structured error record home; the parent raises this with the
    worker-side traceback attached as :attr:`remote_traceback` and
    included in the message.  Completed sibling points are already in
    the result cache when this raises.
    """

    def __init__(self, message: str,
                 remote_traceback: Optional[str] = None):
        if remote_traceback:
            message = (f"{message}\n--- remote traceback ---\n"
                       f"{remote_traceback.rstrip()}")
        super().__init__(message)
        self.remote_traceback = remote_traceback


class SweepCancelled(RuntimeError):
    """The ``cancel`` hook asked the sweep to stop before completion.

    Raised from :func:`execute` when the caller-supplied ``cancel``
    callable returns True between tasks.  Every point that completed
    before the cancellation is already in the result cache (the same
    resume-by-re-running guarantee an interrupted sweep has), so a
    cancelled job costs only its in-flight task."""


@dataclass(frozen=True)
class RetryPolicy:
    """Fault-tolerance knobs for one :func:`execute` call.

    ``retries`` is the per-task retry budget *beyond* the first attempt;
    backoff before attempt *k* is
    ``min(backoff_cap, backoff_base * 2**(k-1))`` scaled by a
    deterministic jitter factor in ``[0.5, 1.5)``.  ``timeout`` is the
    per-task wall-clock limit (pool execution only — an in-process task
    cannot be preempted).  ``max_respawns`` caps *unexpected* worker
    deaths (crashes, not deliberate timeout kills) before the sweep is
    declared unrecoverable.
    """

    retries: int = 0
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    max_respawns: int = 8
    poll_s: float = 0.05
    kill_grace_s: float = 5.0

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    def backoff(self, attempts: int, key: str) -> float:
        """Delay before re-dispatching a task that has made *attempts*
        attempts; jitter is a pure function of *key* so schedules are
        reproducible."""
        base = min(self.backoff_cap,
                   self.backoff_base * (2 ** max(0, attempts - 1)))
        return base * (0.5 + deterministic_unit(f"backoff:{key}:{attempts}"))


@dataclass
class PointResult:
    """One executed (or cache-served) scenario point."""

    point: ScenarioPoint
    record: Dict[str, Any]
    cached: bool
    #: the record is a structured failure, not a kernel result.
    failed: bool = False


@dataclass
class SweepReport:
    """Results in point order plus cache/timing/fault accounting."""

    results: List[PointResult]
    hits: int = 0
    misses: int = 0
    elapsed: float = 0.0
    jobs: int = 1
    #: points computed through batched tasks / batch count.
    batched_points: int = 0
    batches: int = 0
    #: points that exhausted their retries (``keep_going`` error records).
    failed: int = 0
    #: task re-dispatches (error, timeout or worker-crash retries).
    retries: int = 0
    #: tasks killed for exceeding the per-task timeout.
    timeouts: int = 0
    #: worker processes respawned after dying or being killed.
    respawns: int = 0

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 1.0

    def records(self) -> List[Dict[str, Any]]:
        return [r.record for r in self.results]

    def failures(self) -> List[PointResult]:
        """The failed points (empty unless ``keep_going`` was on)."""
        return [r for r in self.results if r.failed]

    def cache_line(self, cache: Optional[ResultCache]) -> str:
        """The one-line cache summary the CLIs print."""
        batched = (f", {self.batched_points} via {self.batches} "
                   f"batch(es)" if self.batches else "")
        faults = ""
        if self.failed or self.retries or self.timeouts or self.respawns:
            faults = (f"; faults: {self.failed} failed, "
                      f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}, "
                      f"{self.timeouts} timeout(s), "
                      f"{self.respawns} respawn(s)")
        if cache is None or cache.disabled:
            return (f"[repro.lab] cache disabled; computed "
                    f"{self.total} points in {self.elapsed:.2f}s "
                    f"(jobs={self.jobs}{batched}){faults}")
        return (f"[repro.lab] {self.hits}/{self.total} points "
                f"({self.hit_rate:.0%}) served from cache at {cache.root}; "
                f"computed {self.misses} in {self.elapsed:.2f}s "
                f"(jobs={self.jobs}{batched}){faults}")


# --------------------------------------------------------------------- #
# batch grouping
# --------------------------------------------------------------------- #
def _batch_key(point: ScenarioPoint, *, multi_capacity: bool,
               batch: bool,
               memo: Optional[Dict[Any, Optional[str]]] = None
               ) -> Optional[str]:
    """A key shared exactly by points that may ride one batched task
    (``None`` marks a point that must run on its own).

    Grouping is driven by the batch-kernel protocol
    (:data:`repro.lab.registry.BATCH_KERNELS`); each entry's gate flag
    (``multi_capacity`` for trace-capacity batches, ``batch`` for grid
    batches) must be on.  The group identity is serialized with
    numpy-canonical JSON, so ``np.int64``/``np.float64`` grid values
    neither split nor duplicate batch groups.  Entries whose identity
    ignores params (``machine_only``) are memoized per (kernel,
    machine) in *memo* — a 10^4-point grid derives its key once.
    """
    bk = BATCH_KERNELS.get(point.kernel)
    if bk is None:
        return None
    if not (multi_capacity if bk.toggle == "multi_capacity" else batch):
        return None
    memo_key = None
    if bk.machine_only and memo is not None:
        # id() is stable here: the planner's point list keeps every
        # machine object alive for the memo's whole lifetime, and the
        # memo never outlives the plan (it shapes task grouping only,
        # not cache keys).
        memo_key = (point.kernel, id(point.machine))  # lab-check: ignore[R3]
        try:
            return memo[memo_key]
        except KeyError:
            pass
    group = bk.group_key(point.machine, point.params)
    if group is None:
        key = None
    else:
        try:
            key = json.dumps({"kernel": point.kernel, "group": group},
                             sort_keys=True, default=json_number_default)
        except (TypeError, ValueError):
            key = None
    if memo_key is not None:
        memo[memo_key] = key
    return key


def _capacity_group_key(point: ScenarioPoint) -> Optional[str]:
    """Back-compat alias: the trace-capacity view of :func:`_batch_key`."""
    return _batch_key(point, multi_capacity=True, batch=False)


def _plan(points: Sequence[ScenarioPoint], pending: Sequence[int],
          multi_capacity: bool, batch: bool = True
          ) -> List[Tuple[List[int], Optional[str]]]:
    """Partition pending point indices into ``(indices, kind)`` tasks,
    preserving first-appearance order.  *kind* is the batch family's
    toggle name (``"multi_capacity"`` / ``"batch"``) for points that
    matched a batch group, else ``None`` — which is also the telemetry
    notion of "batchable": a ``None``-kind point had no batch path."""
    groups: Dict[str, List[int]] = {}
    tasks: List[Tuple[List[int], Optional[str]]] = []
    memo: Dict[Any, Optional[str]] = {}
    for i in pending:
        key = _batch_key(points[i], multi_capacity=multi_capacity,
                         batch=batch, memo=memo)
        if key is None:
            tasks.append(([i], None))
        elif key in groups:
            groups[key].append(i)
        else:
            group = [i]
            groups[key] = group
            tasks.append((group, BATCH_KERNELS[points[i].kernel].toggle))
    return tasks


def _plan_tasks(points: Sequence[ScenarioPoint], pending: Sequence[int],
                multi_capacity: bool, batch: bool = True
                ) -> List[List[int]]:
    """Back-compat view of :func:`_plan`: just the index partition."""
    return [task for task, _ in _plan(points, pending, multi_capacity,
                                      batch)]


def _run_points(pts: Sequence[ScenarioPoint]) -> List[Dict[str, Any]]:
    """Run one planned task — a single point or one batch — returning
    records in task order."""
    if len(pts) == 1:
        return [pts[0].run()]
    return run_batch(pts[0].kernel,
                     [(pt.machine, pt.params) for pt in pts])


# --------------------------------------------------------------------- #
# telemetry plumbing
# --------------------------------------------------------------------- #
@contextmanager
def _phase_capture(trace: Optional[telemetry.RunTrace]):
    """Route fastsim profiling phases into *trace* for the duration
    (no-op without a trace, so untraced runs keep the free fast path)."""
    if trace is None:
        yield
        return
    previous = fs_profile.set_phase_hook(trace.phase)
    try:
        yield
    finally:
        fs_profile.set_phase_hook(previous)


def _worker_venue(name: str) -> str:
    """``LabWorker-3`` → ``pool-worker-3`` (the trace's venue tag)."""
    digits = "".join(c for c in name if c.isdigit())
    return f"pool-worker-{digits}" if digits else "pool-worker"


def _fold_metrics(trace: telemetry.RunTrace, kernel: str,
                  record: Dict[str, Any]) -> None:
    """Fold the record fields *kernel* declared in
    :data:`~repro.lab.registry.METRIC_FIELDS` into trace metrics."""
    for field in METRIC_FIELDS.get(kernel, ()):
        value = record.get(field)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        trace.metric(f"{kernel}.{field}", float(value))


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
def _run_task(task: Dict[str, Any]) -> Dict[str, Any]:
    """Pool worker: :func:`_run_points` after payload-transport
    reconstruction (kernels are pure functions of the payload, so this
    is bit-identical to the in-process path).

    Returns ``{"records", "worker", "t0", "t1"}`` plus, when the parent
    is tracing (``task["telemetry"]``), the worker's captured
    ``"events"``/``"epoch"`` — or, on failure, a structured ``"error"``
    record carrying the worker-side traceback.  A fault plan riding the
    payload (``task["faults"]``) fires at this boundary, *before* any
    kernel runs.

    ``task["trace_keys"]`` — content-addressed trace-store keys the
    parent staged at dispatch — are installed for the task body, so
    trace kernels resolve their traces as read-only mmaps of the
    shared store files (zero-copy: the pipe carries only the keys,
    never event arrays)."""
    pts = [ScenarioPoint.from_payload(p) for p in task["points"]]
    out: Dict[str, Any] = {
        "worker": multiprocessing.current_process().name,
    }
    subtrace = telemetry.RunTrace() if task.get("telemetry") else None
    plan = FaultPlan.parse(task.get("faults"))
    out["t0"] = time.monotonic()
    try:
        if plan is not None:
            plan.maybe_fire(task.get("fault_keys") or (),
                            task.get("attempt", 1), in_worker=True)
        with telemetry.tracing(subtrace), _phase_capture(subtrace), \
                staged_keys(task.get("trace_keys") or ()):
            out["records"] = _run_points(pts)
    except Exception as exc:  # shipped home; parent decides retry/fail
        out["error"] = {
            "exc_type": type(exc).__name__,
            "message": str(exc),
            "kernel": pts[0].kernel,
            "points": len(pts),
            "traceback": tb.format_exc(),
        }
    out["t1"] = time.monotonic()
    if subtrace is not None:
        out["events"] = subtrace.events
        out["epoch"] = subtrace.epoch
    return out


def _pool_worker_main(conn: Any) -> None:
    """Supervised-pool worker loop: run tasks off a dedicated duplex
    pipe until the ``None`` sentinel, EOF, or the parent terminates us.

    Each worker owns its own pipe — deliberately *not* a shared result
    queue: a queue's feeder thread can die (``os._exit``, SIGKILL)
    while holding the shared write lock, wedging every sibling's
    ``put`` forever.  With per-worker pipes a dying worker can only
    corrupt its own channel, which the supervisor detects and replaces.
    SIGINT is ignored so a Ctrl-C in the parent drives one orderly
    shutdown instead of racing tracebacks in every process."""
    try:
        import signal
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ImportError, ValueError, OSError):
        pass
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        try:
            conn.send((task["id"], _run_task(task)))
        except OSError as exc:
            # Only a dead peer (EPIPE/ECONNRESET class) means "the
            # parent went away; nothing left to report to".  Any other
            # OSError (EBADF, ENOMEM, ...) is a real local failure and
            # must crash loudly instead of masquerading as an orderly
            # exit the supervisor would misread as a worker crash.
            if _is_peer_gone(exc):
                return
            raise


# --------------------------------------------------------------------- #
# supervisor
# --------------------------------------------------------------------- #
@dataclass
class _Task:
    """One schedulable unit: a point or a batch, plus retry state."""

    tid: int
    indices: List[int]
    kind: Optional[str]
    attempts: int = 0        #: attempts already made
    ready_at: float = 0.0    #: monotonic time this becomes runnable
    queued_at: float = 0.0   #: for queue-vs-compute attribution


@dataclass
class _Worker:
    proc: Any
    conn: Any  #: parent end of the worker's dedicated duplex pipe
    task: Optional[_Task] = None
    deadline: Optional[float] = None


@dataclass
class _Counters:
    retries: int = 0
    timeouts: int = 0
    respawns: int = 0
    failed: int = 0


class _Supervisor:
    """Drives planned tasks to completion with retries, timeouts,
    worker-crash recovery and immediate per-point caching.

    One instance per :func:`execute` call; :meth:`run_inline` executes
    tasks in-process (``jobs=1`` or a single-task plan) and
    :meth:`run_pool` across worker processes.  Both share the same
    completion/failure bookkeeping, so records, cache contents and
    error semantics are identical either way.
    """

    def __init__(self, points: Sequence[ScenarioPoint],
                 results: List[Optional[PointResult]],
                 cache: Optional[ResultCache],
                 trace: Optional[telemetry.RunTrace],
                 sweep_span: Optional[telemetry.Span],
                 policy: RetryPolicy, keep_going: bool,
                 faults: Optional[FaultPlan],
                 cancel: Optional[Callable[[], bool]] = None):
        self.points = points
        self.results = results
        self.cache = cache
        self.trace = trace
        self.sweep_span = sweep_span
        self.policy = policy
        self.keep_going = keep_going
        self.faults = faults
        self.cancel = cancel
        self.counters = _Counters()
        self._next_tid = 0
        self._worker_seq = 0

    def _check_cancel(self) -> None:
        """Raise :class:`SweepCancelled` when the job-level cancel hook
        fires — checked between tasks, never mid-kernel, so completed
        points are always cached before the sweep unwinds."""
        if self.cancel is not None and self.cancel():
            raise SweepCancelled(
                "sweep cancelled by its cancel hook; completed points "
                "are cached — re-running resumes from them")

    # ------------------------------------------------------------------ #
    def make_tasks(self, plan: Sequence[Tuple[List[int], Optional[str]]]
                   ) -> List[_Task]:
        now = time.monotonic()
        tasks = []
        for indices, kind in plan:
            tasks.append(_Task(self._next_tid, list(indices), kind,
                               ready_at=now, queued_at=now))
            self._next_tid += 1
        return tasks

    def _fault_payload(self, task: _Task) -> Dict[str, Any]:
        if self.faults is None:
            return {}
        return {"faults": self.faults.spec(),
                "fault_keys": [fault_key(self.points[i].payload())
                               for i in task.indices]}

    def _kernel(self, task: _Task) -> str:
        return self.points[task.indices[0]].kernel

    # ------------------------------------------------------------------ #
    # completion / failure bookkeeping (shared by both paths)
    # ------------------------------------------------------------------ #
    def complete(self, task: _Task, records: List[Dict[str, Any]],
                 venue: str) -> None:
        """Fan a finished task's records out: validate, cache each
        point immediately, fill result slots, emit point telemetry."""
        if len(records) != len(task.indices):
            # A broken BatchKernel.run must fail attributably,
            # not silently drop points from the report.
            raise RuntimeError(
                f"batch evaluator for kernel {self._kernel(task)!r} "
                f"returned {len(records)} record(s) for "
                f"{len(task.indices)} points")
        path = task.kind if (task.kind is not None
                             and len(task.indices) > 1) else "scalar"
        for i, record in zip(task.indices, records):
            point = self.points[i]
            if self.cache is not None:
                self.cache.put(point.cache_payload(), record)
            self.results[i] = PointResult(point, record, cached=False)
            if self.trace is not None:
                tags: Dict[str, Any] = dict(
                    index=i, kernel=point.kernel, path=path,
                    venue=venue, cached=False,
                    batchable=task.kind is not None)
                if self.cache is not None:
                    tags["key"] = self.cache.key_for(point.cache_payload())
                self.trace.point(**tags)
                _fold_metrics(self.trace, point.kernel, record)

    def fail(self, task: _Task, err: Dict[str, Any], venue: str,
             reason: str) -> List[_Task]:
        """Handle one failed attempt: batch → scalar fallback, retry
        with backoff while budget remains, else terminal (error records
        under ``keep_going``, :class:`PointExecutionError` otherwise).
        Returns the replacement tasks to enqueue."""
        now = time.monotonic()
        if len(task.indices) > 1:
            # One poisoned point must not sink its batch: always fall
            # back to per-point scalar execution (children inherit the
            # attempt count, and are guaranteed at least one run).
            self.counters.retries += 1
            if self.trace is not None:
                self.trace.counter("task.retry", kernel=self._kernel(task),
                                   reason=reason, fallback="scalar")
            children = []
            for i in task.indices:
                delay = self.policy.backoff(
                    task.attempts, f"{self._kernel(task)}:{i}")
                children.append(_Task(
                    self._next_tid, [i], None,
                    attempts=task.attempts,
                    ready_at=now + delay, queued_at=now + delay))
                self._next_tid += 1
            return children
        if task.attempts <= self.policy.retries:
            self.counters.retries += 1
            if self.trace is not None:
                self.trace.counter("task.retry", kernel=self._kernel(task),
                                   reason=reason)
            delay = self.policy.backoff(
                task.attempts, f"{self._kernel(task)}:{task.indices[0]}")
            task.ready_at = task.queued_at = now + delay
            return [task]
        return self._terminal(task, err, venue)

    def _terminal(self, task: _Task, err: Dict[str, Any],
                  venue: str) -> List[_Task]:
        if not self.keep_going:
            raise PointExecutionError(
                f"worker {err.get('worker', venue)} failed on kernel "
                f"{self._kernel(task)!r} ({len(task.indices)} point "
                f"task, attempt {task.attempts}): "
                f"{err['exc_type']}: {err['message']}",
                remote_traceback=err.get("traceback"))
        for i in task.indices:
            point = self.points[i]
            record = {
                "failed": True,
                "error": f"{err['exc_type']}: {err['message']}",
                "exc_type": err["exc_type"],
                "remote_traceback": err.get("traceback") or "",
                "attempts": task.attempts,
                "point": {"kernel": point.kernel,
                          "machine": point.machine.name,
                          "params": dict(point.params)},
            }
            self.results[i] = PointResult(point, record, cached=False,
                                          failed=True)
            self.counters.failed += 1
            if self.trace is not None:
                self.trace.counter("point.failed", kernel=point.kernel,
                                   exc_type=err["exc_type"])
                self.trace.point(index=i, kernel=point.kernel,
                                 path="failed", venue=venue, cached=False,
                                 batchable=task.kind is not None,
                                 attempts=task.attempts)
        return []

    # ------------------------------------------------------------------ #
    # in-process execution
    # ------------------------------------------------------------------ #
    def run_inline(self, tasks: List[_Task]) -> None:
        """Execute tasks in this process.  Retries and ``keep_going``
        apply; per-task timeouts cannot (nothing can preempt us), and
        only ``raise`` faults fire (see :mod:`repro.lab.faults`)."""
        pending = deque(tasks)
        while pending:
            self._check_cancel()
            task = pending.popleft()
            delay = task.ready_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            task.attempts += 1
            pts = [self.points[i] for i in task.indices]
            try:
                if self.faults is not None:
                    self.faults.maybe_fire(
                        [fault_key(pt.payload()) for pt in pts],
                        task.attempts, in_worker=False)
                if self.trace is not None:
                    with self.trace.span(
                            "task", kernel=pts[0].kernel,
                            kind=task.kind or "scalar",
                            points=len(task.indices),
                            venue="in_process", queue_s=0.0,
                            attempt=task.attempts) as tspan:
                        tc0 = time.perf_counter()
                        recs = _run_points(pts)
                        tspan.tag(compute_s=round(
                            time.perf_counter() - tc0, 6))
                else:
                    recs = _run_points(pts)
            except Exception as exc:
                err = {"exc_type": type(exc).__name__,
                       "message": str(exc), "worker": "in_process",
                       "traceback": tb.format_exc()}
                pending.extend(self.fail(task, err, "in_process", "error"))
                continue
            self.complete(task, recs, "in_process")

    # ------------------------------------------------------------------ #
    # supervised pool execution
    # ------------------------------------------------------------------ #
    def _spawn(self) -> _Worker:
        self._worker_seq += 1
        parent_conn, child_conn = multiprocessing.Pipe()
        proc = multiprocessing.Process(
            target=_pool_worker_main, args=(child_conn,),
            name=f"LabWorker-{self._worker_seq}", daemon=True)
        proc.start()
        child_conn.close()  # the worker holds the only live child end
        return _Worker(proc=proc, conn=parent_conn)

    def _kill(self, worker: _Worker) -> None:
        proc = worker.proc
        proc.terminate()
        proc.join(self.policy.kill_grace_s)
        if proc.is_alive():
            kill = getattr(proc, "kill", proc.terminate)
            kill()
            proc.join(self.policy.kill_grace_s)
        try:
            worker.conn.close()
        except (OSError, ValueError):
            pass

    def _respawn(self, workers: List[_Worker], slot: int,
                 *, reason: str, count_toward_cap: bool) -> None:
        self.counters.respawns += 1
        if self.trace is not None:
            self.trace.counter("worker.respawn", reason=reason)
        if count_toward_cap:
            self._crash_respawns = getattr(self, "_crash_respawns", 0) + 1
            if self._crash_respawns > self.policy.max_respawns:
                raise PointExecutionError(
                    f"worker pool unstable: {self._crash_respawns} "
                    f"unexpected worker deaths (respawn cap "
                    f"{self.policy.max_respawns}); aborting sweep — "
                    f"completed points are cached")
        workers[slot] = self._spawn()

    def _stage_traces(self, task: _Task) -> Tuple[str, ...]:
        """Zero-copy handoff, parent half: make sure every trace the
        task's points need exists in the active store (building each at
        most once, here, instead of concurrently in N workers) and
        return the content-addressed keys to ship in the payload.

        Batch tasks share one trace identity by construction, so this
        is one key per capacity batch.  Returns ``()`` — ship nothing —
        for scalar tasks (their builds stay in the workers, parallel as
        ever), when no store is active, or when the points are not
        trace kernels; a point whose payload cannot even be formed is
        skipped so the worker reports the real parameter error."""
        store = active_store()
        if task.kind != "multi_capacity" or store is None or store.disabled:
            return ()
        keys: List[str] = []
        for i in task.indices:
            pt = self.points[i]
            tk = TRACE_KERNELS.get(pt.kernel)
            if tk is None:
                continue
            try:
                spec = tk.payload(pt.machine, pt.params)
            except (KeyError, TypeError, ValueError):
                continue
            key = store.key_for(spec)
            if key in keys:
                continue
            store.get_or_build_trace(
                spec, lambda _tk=tk, _spec=spec: _tk.build(_spec))
            keys.append(key)
        return tuple(keys)

    def _dispatch(self, worker: _Worker, task: _Task,
                  tracing: bool) -> bool:
        """Send *task* to *worker*; False if the pipe is already dead
        (the crash sweep will respawn and the task stays pending)."""
        payload = {
            "id": task.tid,
            "points": [self.points[i].payload() for i in task.indices],
            "telemetry": tracing,
            "attempt": task.attempts + 1,
            **self._fault_payload(task),
        }
        trace_keys = self._stage_traces(task)
        if trace_keys:
            payload["trace_keys"] = trace_keys
        try:
            worker.conn.send(payload)
        except OSError as exc:
            # A dead peer is routine (the crash sweep respawns); any
            # other OSError is a parent-side bug and must propagate
            # instead of silently burning a crash-respawn.
            if not _is_peer_gone(exc):
                raise
            return False
        task.attempts += 1
        worker.task = task
        worker.deadline = (time.monotonic() + self.policy.timeout
                           if self.policy.timeout else None)
        return True

    def _pool_complete(self, task: _Task, out: Dict[str, Any]) -> None:
        venue = _worker_venue(out.get("worker", "?"))
        if self.trace is not None:
            compute_s = round(out["t1"] - out["t0"], 6)
            span_id = self.trace.emit_span(
                "task", start_monotonic=out["t0"],
                duration=out["t1"] - out["t0"],
                parent=self.sweep_span.id if self.sweep_span else None,
                kernel=self._kernel(task),
                kind=task.kind or "scalar", points=len(task.indices),
                venue=venue, attempt=task.attempts,
                queue_s=round(max(0.0, out["t0"] - task.queued_at), 6),
                compute_s=compute_s)
            if out.get("events"):
                self.trace.merge_subtrace(out["events"], out["epoch"],
                                          parent_id=span_id)
        self.complete(task, out["records"], venue)

    def run_pool(self, tasks: List[_Task], jobs: int) -> None:
        """The supervised completion loop: dispatch to idle workers,
        harvest results as they land, enforce deadlines, detect and
        respawn dead workers.  Any exception (terminal failure,
        KeyboardInterrupt, respawn-cap breach) terminates and joins the
        whole pool before propagating — completed points are already
        cached at that moment."""
        tracing = self.trace is not None
        workers = [self._spawn() for _ in range(min(jobs, len(tasks)))]
        pending: List[_Task] = list(tasks)
        known: Dict[int, _Task] = {t.tid: t for t in tasks}
        done: Set[int] = set()

        def settle(task: _Task, replacements: List[_Task]) -> None:
            """A failed attempt either spawned replacement tasks or
            went terminal (error records / raise happened in fail)."""
            if replacements:
                pending.extend(replacements)
                known.update({t.tid: t for t in replacements})
            else:
                done.add(task.tid)

        def harvest(worker: _Worker, tid: int, out: Dict[str, Any]
                    ) -> None:
            task = known.get(tid)
            if task is None or tid in done:
                return  # stale duplicate; first result won
            if task in pending:
                pending.remove(task)
            if "error" in out:
                err = dict(out["error"])
                err["worker"] = out.get("worker", "?")
                settle(task, self.fail(
                    task, err, _worker_venue(out.get("worker", "?")),
                    "error"))
            else:
                self._pool_complete(task, out)
                done.add(tid)

        try:
            while pending or any(w.task is not None for w in workers):
                self._check_cancel()
                now = time.monotonic()
                # 1. fill idle workers with runnable tasks
                for worker in workers:
                    if worker.task is not None:
                        continue
                    ready = [t for t in pending if t.ready_at <= now]
                    if not ready:
                        break
                    task = min(ready, key=lambda t: (t.ready_at, t.tid))
                    pending.remove(task)
                    if not self._dispatch(worker, task, tracing):
                        # dead pipe — the crash sweep below respawns;
                        # the task just stays runnable.
                        pending.append(task)
                # 2. harvest results from every readable pipe
                busy = [w for w in workers if w.task is not None]
                if busy:
                    ready_conns = mp_connection.wait(
                        [w.conn for w in busy],
                        timeout=self.policy.poll_s)
                    for conn in ready_conns:
                        worker = next(w for w in busy if w.conn is conn)
                        try:
                            tid, out = conn.recv()
                        except (EOFError, OSError):
                            continue  # died mid-send; crash sweep below
                        worker.task = None
                        worker.deadline = None
                        harvest(worker, tid, out)
                else:
                    time.sleep(self.policy.poll_s)  # backoff gap
                # 3. enforce per-task deadlines
                now = time.monotonic()
                for slot, worker in enumerate(workers):
                    if worker.task is None or worker.deadline is None \
                            or now <= worker.deadline:
                        continue
                    task = worker.task
                    worker.task = None
                    worker.deadline = None
                    name = worker.proc.name
                    self.counters.timeouts += 1
                    if self.trace is not None:
                        self.trace.counter("task.timeout",
                                           kernel=self._kernel(task))
                    self._kill(worker)
                    self._respawn(workers, slot, reason="timeout",
                                  count_toward_cap=False)
                    err = {"exc_type": "TaskTimeout",
                           "message": f"task exceeded the "
                                      f"{self.policy.timeout}s wall-clock "
                                      f"timeout (attempt {task.attempts})",
                           "worker": name, "traceback": None}
                    settle(task, self.fail(task, err,
                                           _worker_venue(name), "timeout"))
                # 4. detect workers that died under us
                for slot, worker in enumerate(workers):
                    if worker.proc.is_alive():
                        continue
                    task = worker.task
                    worker.task = None
                    worker.deadline = None
                    exitcode = worker.proc.exitcode
                    name = worker.proc.name
                    # A completed result may still sit in the pipe
                    # (death after send): drain it before declaring
                    # the task lost.
                    if task is not None and task.tid not in done:
                        try:
                            if worker.conn.poll(0):
                                tid, out = worker.conn.recv()
                                harvest(worker, tid, out)
                                task = None
                        except (EOFError, OSError):
                            pass
                    try:
                        worker.conn.close()
                    except (OSError, ValueError):
                        pass
                    self._respawn(workers, slot, reason="crash",
                                  count_toward_cap=True)
                    if task is None or task.tid in done:
                        continue
                    err = {"exc_type": "WorkerCrashed",
                           "message": f"worker died with exit code "
                                      f"{exitcode} mid-task (attempt "
                                      f"{task.attempts})",
                           "worker": name, "traceback": None}
                    settle(task, self.fail(task, err, _worker_venue(name),
                                           "worker-crash"))
        finally:
            for worker in workers:
                if worker.proc.is_alive():
                    worker.proc.terminate()
            for worker in workers:
                worker.proc.join(self.policy.kill_grace_s)
                if worker.proc.is_alive():
                    kill = getattr(worker.proc, "kill",
                                   worker.proc.terminate)
                    kill()
                    worker.proc.join(1.0)
                try:
                    worker.conn.close()
                except (OSError, ValueError):
                    pass


# --------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------- #
def execute(
    points: Sequence[ScenarioPoint],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    require_cached: bool = False,
    multi_capacity: bool = True,
    batch: bool = True,
    trace: Optional[telemetry.RunTrace] = None,
    retries: int = 0,
    timeout: Optional[float] = None,
    keep_going: bool = False,
    faults: Optional[Union[FaultPlan, str]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    cancel: Optional[Callable[[], bool]] = None,
) -> SweepReport:
    """Run every point, serving repeats from *cache* when provided.

    Parameters
    ----------
    points:
        Concrete scenario points (e.g. from :meth:`Scenario.points`).
    jobs:
        Worker processes for the uncached remainder; ``1`` runs in-process
        (bit-identical to the workers — kernels are deterministic pure
        functions of the payload).
    cache:
        A :class:`ResultCache`; hits skip simulation entirely.  Records
        key on the machine-projected :meth:`ScenarioPoint.cache_payload`
        and are written the moment each point completes, so interrupted
        sweeps resume for free.  Error records are never cached.
    require_cached:
        Report-only mode: raise :class:`MissingResultsError` instead of
        computing anything.
    multi_capacity:
        Collapse same-trace LRU/Belady capacity sweeps into
        single-replay batches (see the module docstring).  Purely an
        execution strategy: records and cache contents are identical
        either way.
    batch:
        Collapse same-machine analytic grids (the ``cost-*`` families)
        into vectorized batch evaluations — the grid analogue of
        ``multi_capacity``, with the same bit-identity guarantee.
    trace:
        A :class:`~repro.lab.telemetry.RunTrace` to record attribution
        events into; defaults to the process-wide
        :func:`~repro.lab.telemetry.active_trace` (usually ``None``).
        Tracing never changes records or cache contents.
    retries:
        Per-task retry budget beyond the first attempt (capped
        exponential backoff with deterministic jitter; a failed batch
        falls back to per-point scalar tasks first).
    timeout:
        Per-task wall-clock limit in seconds; an overdue worker is
        killed and respawned and the task retried.  Pool execution
        only — in-process tasks cannot be preempted.
    keep_going:
        Degrade gracefully: points that exhaust their retries produce
        structured error records (``failed``/``error``/``exc_type``/
        ``remote_traceback``/``attempts`` + the point identity) in the
        report instead of aborting the sweep.
    faults:
        A :class:`~repro.lab.faults.FaultPlan` (or its spec string)
        injecting deterministic raise/hang/die faults at the worker
        boundary — the chaos-test harness.
    retry_policy:
        Full :class:`RetryPolicy` override (backoff shape, respawn cap,
        poll interval); when given, *retries*/*timeout* are read from
        it and the bare arguments are ignored.
    cancel:
        Zero-argument callable polled between tasks; returning ``True``
        raises :class:`SweepCancelled`.  Points completed before the
        cancellation are already in *cache*, so a cancelled sweep can
        be resumed later at the cost of one in-flight task.
    """
    if trace is None:
        trace = telemetry.active_trace()
    if retry_policy is None:
        retry_policy = RetryPolicy(retries=retries, timeout=timeout)
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    with telemetry.tracing(trace), _phase_capture(trace):
        return _execute(points, jobs=jobs, cache=cache,
                        require_cached=require_cached,
                        multi_capacity=multi_capacity, batch=batch,
                        trace=trace, policy=retry_policy,
                        keep_going=keep_going, faults=faults,
                        cancel=cancel)


def _execute(
    points: Sequence[ScenarioPoint],
    *,
    jobs: int,
    cache: Optional[ResultCache],
    require_cached: bool,
    multi_capacity: bool,
    batch: bool,
    trace: Optional[telemetry.RunTrace],
    policy: RetryPolicy,
    keep_going: bool,
    faults: Optional[FaultPlan],
    cancel: Optional[Callable[[], bool]] = None,
) -> SweepReport:
    t0 = time.perf_counter()
    points = list(points)
    results: List[Optional[PointResult]] = [None] * len(points)
    pending: List[int] = []
    sweep_cm = (trace.span("sweep", points=len(points), jobs=jobs)
                if trace is not None else nullcontext())
    supervisor: Optional[_Supervisor] = None
    batches = batched_points = 0
    with sweep_cm as sweep_span:
        for i, pt in enumerate(points):
            payload = pt.cache_payload() if cache is not None else None
            record = cache.get(payload) if cache is not None else None
            if record is not None:
                results[i] = PointResult(pt, record, cached=True)
                if trace is not None:
                    trace.point(index=i, kernel=pt.kernel, path="cache",
                                venue="in_process", cached=True,
                                key=cache.key_for(payload))
            else:
                pending.append(i)

        if pending and require_cached:
            raise MissingResultsError(len(pending), len(points))

        if pending:
            plan = _plan(points, pending, multi_capacity, batch)
            for task, _kind in plan:
                if len(task) > 1:
                    batches += 1
                    batched_points += len(task)
            supervisor = _Supervisor(points, results, cache, trace,
                                     sweep_span if trace is not None
                                     else None,
                                     policy, keep_going, faults,
                                     cancel=cancel)
            tasks = supervisor.make_tasks(plan)
            if jobs > 1 and len(plan) > 1:
                supervisor.run_pool(tasks, jobs)
            else:
                supervisor.run_inline(tasks)

        if trace is not None:
            sweep_span.tag(hits=len(points) - len(pending),
                           misses=len(pending), batches=batches,
                           batched_points=batched_points)
            if supervisor is not None:
                c = supervisor.counters
                if c.retries or c.timeouts or c.respawns or c.failed:
                    sweep_span.tag(retries=c.retries, timeouts=c.timeouts,
                                   respawns=c.respawns, failed=c.failed)

    counters = supervisor.counters if supervisor is not None else _Counters()
    return SweepReport(
        results=[r for r in results if r is not None],
        hits=len(points) - len(pending),
        misses=len(pending),
        elapsed=time.perf_counter() - t0,
        jobs=jobs,
        batched_points=batched_points,
        batches=batches,
        failed=counters.failed,
        retries=counters.retries,
        timeouts=counters.timeouts,
        respawns=counters.respawns,
    )
