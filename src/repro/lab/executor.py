"""Parallel scenario-point executor with cache-aware scheduling.

The executor resolves cache hits first (cheap, in-process), then fans only
the remaining points out over a ``multiprocessing`` pool — so a warm sweep
costs one JSON read per point regardless of ``jobs``, and a cold sweep
scales with cores.  All cache I/O happens in the parent process; workers
are pure functions from point payloads to records.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.lab.cache import ResultCache
from repro.lab.scenarios import ScenarioPoint

__all__ = ["execute", "PointResult", "SweepReport", "MissingResultsError"]


class MissingResultsError(RuntimeError):
    """Raised by ``require_cached`` runs when points are absent from cache."""

    def __init__(self, missing: int, total: int):
        super().__init__(
            f"{missing} of {total} points are not in the result cache; "
            f"run the sweep first (repro-lab run ...)"
        )
        self.missing = missing
        self.total = total


@dataclass
class PointResult:
    """One executed (or cache-served) scenario point."""

    point: ScenarioPoint
    record: Dict[str, Any]
    cached: bool


@dataclass
class SweepReport:
    """Results in point order plus cache/timing accounting."""

    results: List[PointResult]
    hits: int = 0
    misses: int = 0
    elapsed: float = 0.0
    jobs: int = 1

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 1.0

    def records(self) -> List[Dict[str, Any]]:
        return [r.record for r in self.results]

    def cache_line(self, cache: Optional[ResultCache]) -> str:
        """The one-line cache summary the CLIs print."""
        if cache is None or cache.disabled:
            return (f"[repro.lab] cache disabled; computed "
                    f"{self.total} points in {self.elapsed:.2f}s "
                    f"(jobs={self.jobs})")
        return (f"[repro.lab] {self.hits}/{self.total} points "
                f"({self.hit_rate:.0%}) served from cache at {cache.root}; "
                f"computed {self.misses} in {self.elapsed:.2f}s "
                f"(jobs={self.jobs})")


def _run_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Pool worker: rebuild the point and run its kernel."""
    return ScenarioPoint.from_payload(payload).run()


def execute(
    points: Sequence[ScenarioPoint],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    require_cached: bool = False,
) -> SweepReport:
    """Run every point, serving repeats from *cache* when provided.

    Parameters
    ----------
    points:
        Concrete scenario points (e.g. from :meth:`Scenario.points`).
    jobs:
        Worker processes for the uncached remainder; ``1`` runs in-process
        (bit-identical to the workers — kernels are deterministic pure
        functions of the payload).
    cache:
        A :class:`ResultCache`; hits skip simulation entirely.
    require_cached:
        Report-only mode: raise :class:`MissingResultsError` instead of
        computing anything.
    """
    t0 = time.perf_counter()
    points = list(points)
    results: List[Optional[PointResult]] = [None] * len(points)
    pending: List[int] = []
    for i, pt in enumerate(points):
        record = cache.get(pt.payload()) if cache is not None else None
        if record is not None:
            results[i] = PointResult(pt, record, cached=True)
        else:
            pending.append(i)

    if pending and require_cached:
        raise MissingResultsError(len(pending), len(points))

    if pending:
        if jobs > 1 and len(pending) > 1:
            payloads = [points[i].payload() for i in pending]
            with multiprocessing.Pool(min(jobs, len(pending))) as pool:
                records = pool.map(_run_payload, payloads)
        else:
            records = [points[i].run() for i in pending]
        for i, record in zip(pending, records):
            if cache is not None:
                cache.put(points[i].payload(), record)
            results[i] = PointResult(points[i], record, cached=False)

    return SweepReport(
        results=[r for r in results if r is not None],
        hits=len(points) - len(pending),
        misses=len(pending),
        elapsed=time.perf_counter() - t0,
        jobs=jobs,
    )
