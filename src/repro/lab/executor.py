"""Parallel scenario-point executor with cache-aware scheduling.

The executor resolves cache hits first (cheap, in-process), then fans only
the remaining points out over a ``multiprocessing`` pool — so a warm sweep
costs one JSON read per point regardless of ``jobs``, and a cold sweep
scales with cores.  All *result-cache* I/O happens in the parent process;
workers are deterministic functions from point payloads to records, though
with a trace store installed (:mod:`repro.lab.tracestore`) they do share
memoized traces through it (memory-mapped reads, atomic writes — safe
under concurrency, and purely an accelerator: records are unaffected).

**Multi-capacity batching** (on by default): uncached points that differ
*only* in cache capacity and batchable policy — same registered
line-trace kernel (:data:`repro.lab.registry.TRACE_KERNELS`), same trace
parameters, fully-associative LRU or Belady machine — are collapsed into
one task that replays the trace once through the single-pass fastsim
sweeps (:func:`repro.machine.fastsim.simulate_lru_sweep` for LRU points,
:func:`repro.machine.fastsim.simulate_opt_sweep` for Belady ones) and
emits exact per-point records, which are then fanned back out into the
result cache under each point's own key.  A K-capacity sweep thus costs
one trace generation and one sweep pass per policy instead of K full
replays, while reports, caching and record contents stay bit-identical
to the per-point path.
"""

from __future__ import annotations

import json
import multiprocessing
import numbers
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.lab.cache import ResultCache
from repro.lab.registry import (
    BATCHABLE_POLICIES,
    TRACE_KERNELS,
    run_capacity_batch,
)
from repro.lab.scenarios import ScenarioPoint

__all__ = ["execute", "PointResult", "SweepReport", "MissingResultsError"]


class MissingResultsError(RuntimeError):
    """Raised by ``require_cached`` runs when points are absent from cache."""

    def __init__(self, missing: int, total: int):
        super().__init__(
            f"{missing} of {total} points are not in the result cache; "
            f"run the sweep first (repro-lab run ...)"
        )
        self.missing = missing
        self.total = total


@dataclass
class PointResult:
    """One executed (or cache-served) scenario point."""

    point: ScenarioPoint
    record: Dict[str, Any]
    cached: bool


@dataclass
class SweepReport:
    """Results in point order plus cache/timing accounting."""

    results: List[PointResult]
    hits: int = 0
    misses: int = 0
    elapsed: float = 0.0
    jobs: int = 1
    #: points computed through multi-capacity batches / batch count.
    batched_points: int = 0
    batches: int = 0

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 1.0

    def records(self) -> List[Dict[str, Any]]:
        return [r.record for r in self.results]

    def cache_line(self, cache: Optional[ResultCache]) -> str:
        """The one-line cache summary the CLIs print."""
        batched = (f", {self.batched_points} via {self.batches} "
                   f"multi-capacity batch(es)" if self.batches else "")
        if cache is None or cache.disabled:
            return (f"[repro.lab] cache disabled; computed "
                    f"{self.total} points in {self.elapsed:.2f}s "
                    f"(jobs={self.jobs}{batched})")
        return (f"[repro.lab] {self.hits}/{self.total} points "
                f"({self.hit_rate:.0%}) served from cache at {cache.root}; "
                f"computed {self.misses} in {self.elapsed:.2f}s "
                f"(jobs={self.jobs}{batched})")


# --------------------------------------------------------------------- #
# multi-capacity grouping
# --------------------------------------------------------------------- #
def _json_canonical(value: Any) -> Any:
    """``json.dumps`` fallback so numpy scalars (``np.int64`` grid axes,
    ``np.float64`` costs) key identically to their python twins."""
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    raise TypeError(f"not JSON-serializable: {value!r}")


def _capacity_group_key(point: ScenarioPoint) -> Optional[str]:
    """A key shared exactly by points that may ride one trace replay
    (``None`` marks a point that must run on its own).

    Grouping is driven by the trace-kernel protocol
    (:data:`repro.lab.registry.TRACE_KERNELS`): any registered line-trace
    kernel qualifies when its point describes a fully-associative cache
    under a batchable policy.  The policy axis itself is *excluded* from
    the key — LRU and Belady points of one trace ride the same replay,
    each through its own single-pass sweep kernel.
    """
    tk = TRACE_KERNELS.get(point.kernel)
    if tk is None:
        return None
    machine = point.machine
    if (machine.policy not in BATCHABLE_POLICIES
            or machine.levels is not None
            or machine.associativity is not None):
        return None
    params = point.params
    if not all(name in params for name in tk.required):
        return None
    try:
        cap_words = tk.capacity_words(machine, params)
        trace_id = tk.payload(machine, params)
    except (KeyError, TypeError, ValueError):
        return None
    # numpy integer capacities (np.int64 grids) batch like python ints;
    # bools are excluded (True is Integral but never a capacity).
    if (not isinstance(cap_words, numbers.Integral)
            or isinstance(cap_words, bool) or cap_words <= 0
            or cap_words % machine.line_size != 0):
        return None
    # Identity = the full payload minus the capacity and policy axes.
    machine_d = machine.as_dict()
    machine_d.pop("cache_words")
    machine_d.pop("policy")
    params_d = {k: v for k, v in params.items()
                if k not in tk.capacity_params}
    try:
        return json.dumps({"kernel": point.kernel, "machine": machine_d,
                           "params": params_d, "trace": trace_id},
                          sort_keys=True, default=_json_canonical)
    except (TypeError, ValueError):
        return None


def _plan_tasks(points: Sequence[ScenarioPoint], pending: Sequence[int],
                multi_capacity: bool) -> List[List[int]]:
    """Partition pending point indices into tasks (singletons or capacity
    batches), preserving first-appearance order."""
    if not multi_capacity:
        return [[i] for i in pending]
    groups: Dict[str, List[int]] = {}
    tasks: List[List[int]] = []
    for i in pending:
        key = _capacity_group_key(points[i])
        if key is None:
            tasks.append([i])
        elif key in groups:
            groups[key].append(i)
        else:
            group = [i]
            groups[key] = group
            tasks.append(group)
    return tasks


def _run_task(task: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Pool worker: run one point or one capacity batch, records in
    task order."""
    pts = [ScenarioPoint.from_payload(p) for p in task["points"]]
    if len(pts) == 1:
        return [pts[0].run()]
    return run_capacity_batch(pts[0].kernel,
                              [(pt.machine, pt.params) for pt in pts])


def execute(
    points: Sequence[ScenarioPoint],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    require_cached: bool = False,
    multi_capacity: bool = True,
) -> SweepReport:
    """Run every point, serving repeats from *cache* when provided.

    Parameters
    ----------
    points:
        Concrete scenario points (e.g. from :meth:`Scenario.points`).
    jobs:
        Worker processes for the uncached remainder; ``1`` runs in-process
        (bit-identical to the workers — kernels are deterministic pure
        functions of the payload).
    cache:
        A :class:`ResultCache`; hits skip simulation entirely.
    require_cached:
        Report-only mode: raise :class:`MissingResultsError` instead of
        computing anything.
    multi_capacity:
        Collapse same-trace LRU capacity sweeps into single-replay
        batches (see the module docstring).  Purely an execution
        strategy: records and cache contents are identical either way.
    """
    t0 = time.perf_counter()
    points = list(points)
    results: List[Optional[PointResult]] = [None] * len(points)
    pending: List[int] = []
    for i, pt in enumerate(points):
        record = cache.get(pt.payload()) if cache is not None else None
        if record is not None:
            results[i] = PointResult(pt, record, cached=True)
        else:
            pending.append(i)

    if pending and require_cached:
        raise MissingResultsError(len(pending), len(points))

    batches = batched_points = 0
    if pending:
        tasks = _plan_tasks(points, pending, multi_capacity)
        payloads = [{"points": [points[i].payload() for i in task]}
                    for task in tasks]
        for task in tasks:
            if len(task) > 1:
                batches += 1
                batched_points += len(task)
        if jobs > 1 and len(tasks) > 1:
            with multiprocessing.Pool(min(jobs, len(tasks))) as pool:
                record_lists = pool.map(_run_task, payloads)
        else:
            record_lists = [_run_task(p) for p in payloads]
        for task, records in zip(tasks, record_lists):
            for i, record in zip(task, records):
                if cache is not None:
                    cache.put(points[i].payload(), record)
                results[i] = PointResult(points[i], record, cached=False)

    return SweepReport(
        results=[r for r in results if r is not None],
        hits=len(points) - len(pending),
        misses=len(pending),
        elapsed=time.perf_counter() - t0,
        jobs=jobs,
        batched_points=batched_points,
        batches=batches,
    )
