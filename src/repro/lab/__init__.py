"""repro.lab — parallel scenario-sweep engine with persistent result caching.

The paper's evidence is sweep-shaped: every table and figure is a grid of
(kernel x machine geometry x replacement policy x problem size) runs.  This
subpackage turns those grids into first-class objects:

* :mod:`repro.lab.registry` — every kernel, machine model and replacement
  policy under a string key (:data:`KERNELS`, :data:`MACHINES`,
  :data:`POLICIES`, :data:`EXPERIMENTS`), including NVM-style machines
  with asymmetric read/write costs and ``hw-*`` analytic cost-model
  presets (:class:`MachineSpec.hw_params`);
* :mod:`repro.lab.modelkernels` — point-level kernels for the Section-7
  cost models (``cost-*``), the executed distributed algorithms
  (``summa-2d``, ``mm-25d``, ``lu-*-nonpivot``) and the Section-8
  Krylov methods (``krylov-*``);
* :mod:`repro.lab.scenarios` — declarative :class:`Scenario` grids with
  cartesian expansion and presets for the paper's figures and tables
  (``fig2``, ``fig5``, ``sec6``, ``table1``, ``table2``, ``sec7-nvm``,
  ``lu-tradeoff``) plus new sweeps (``nvm-matmul``, ``prop62``,
  ``distributed``, ``krylov``);
* :mod:`repro.lab.executor` — :func:`execute` fans points out over
  ``multiprocessing`` workers;
* :mod:`repro.lab.cache` — :class:`ResultCache`, a content-addressed
  on-disk store keyed by point payload + code fingerprint, so repeated
  sweeps skip already-simulated points across processes and sessions;
* :mod:`repro.lab.results` — :class:`ResultSet` flat records with
  CSV/JSON export, aggregation and sweep-vs-sweep comparison;
* :mod:`repro.lab.telemetry` — :class:`RunTrace` structured run traces
  (spans, per-point path tags, cache/trace-store counters, fastsim
  phase timings) streaming to JSONL, aggregated by
  :class:`MetricsRegistry` and rendered by ``repro-lab ... --trace`` /
  ``repro-lab trace {show,diff}``;
* :mod:`repro.lab.cli` — ``python -m repro.lab
  {list,run,sweep,report,trace,cache}``.

Quickstart::

    from repro.lab import ResultCache, execute, get_scenario

    scenario = get_scenario("fig2", quick=True)
    report = execute(scenario.points(), jobs=4, cache=ResultCache())
    print(scenario.render(report.results))   # == the serial harness output
    print(report.cache_line(None))
"""

from repro.lab.cache import ResultCache, code_fingerprint, default_cache_root
from repro.lab.executor import (
    MissingResultsError,
    PointExecutionError,
    PointResult,
    SweepReport,
    execute,
)
from repro.lab.registry import (
    EXPERIMENTS,
    KERNELS,
    MACHINES,
    POLICIES,
    MachineSpec,
    resolve_machine,
)
from repro.lab.results import ResultSet
from repro.lab.scenarios import SCENARIOS, Scenario, ScenarioPoint, get_scenario
from repro.lab.telemetry import (
    MetricsRegistry,
    RunTrace,
    active_trace,
    render_attribution,
    tracing,
)

__all__ = [
    "ResultCache",
    "code_fingerprint",
    "default_cache_root",
    "MissingResultsError",
    "PointExecutionError",
    "PointResult",
    "SweepReport",
    "execute",
    "EXPERIMENTS",
    "KERNELS",
    "MACHINES",
    "POLICIES",
    "MachineSpec",
    "resolve_machine",
    "ResultSet",
    "SCENARIOS",
    "Scenario",
    "ScenarioPoint",
    "get_scenario",
    "MetricsRegistry",
    "RunTrace",
    "active_trace",
    "render_attribution",
    "tracing",
]
