"""``python -m repro.lab`` / ``repro-lab`` — the sweep engine's CLI.

Subcommands::

    repro-lab list                     # scenarios, kernels, machines, policies
    repro-lab run fig2 --quick --jobs 4
    repro-lab run nvm-matmul --csv out.csv
    repro-lab run table1 --jobs 4      # Table 1, one point per cell
    repro-lab run sec6 --set middle=64 --set machine.line_size=8
    repro-lab sweep --kernel matmul-cache --machine nvm-pcm \\
        --set n=32 --set middle=64 --set b3=8 --set b2=4 --set base=4 \\
        --grid scheme=co,wa2 --grid machine.write_slow=2,30 --jobs 2
    repro-lab sweep --kernel cost-25d-mm-l3 \\
        --grid c3=1,2,4,8 --grid P=64,256 --hw beta_23=30
    repro-lab sweep --preset sec6 --quick --trace   # preset sweep, traced
    repro-lab report fig2 --quick      # re-render from cache, compute nothing
    repro-lab trace show RUN.jsonl     # attribution table of a saved trace
    repro-lab trace diff A.jsonl B.jsonl
    repro-lab serve --port 8737 --jobs 4   # HTTP sweep daemon (hot cache)
    repro-lab cache stats              # result-cache + trace-store inventory
    repro-lab cache gc                 # prune superseded code versions
    repro-lab check                    # static contract analyzer (R1-R5)
    repro-lab check --format json --output findings.json

Every ``run``/``sweep`` prints a final accounting line reporting how many
points were served from the persistent result cache.  Capacity sweeps
over fully-associative LRU machines are collapsed into single-replay
fastsim batches unless ``--no-multi-capacity`` is given, analytic
``cost-*`` grids are collapsed into vectorized batch evaluations unless
``--no-batch`` is given, and generated traces are memoized in an
on-disk trace store (``--no-trace-store`` or ``REPRO_LAB_TRACES=off``
opts out).

With ``--trace`` (``run``/``sweep``) the engine records a structured run
trace (:mod:`repro.lab.telemetry`): a JSONL event stream written beside
the result cache (``<cache root>/runs/`` unless ``--trace-out`` names a
file) plus a post-run attribution table — execution path per point,
batch efficiency, cache hit rate with miss reasons, fastsim phase
timings.  Tracing never changes records or cache contents.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.lab import telemetry
from repro.lab.cache import ResultCache, default_cache_root
from repro.lab.executor import (MissingResultsError, PointExecutionError,
                                execute)
from repro.lab.faults import FAULTS_ENV, FaultPlan, plan_from_env
from repro.lab.registry import KERNELS, MACHINES, POLICIES, resolve_machine
from repro.lab.results import ResultSet
from repro.lab.scenarios import SCENARIOS, Scenario, get_scenario
from repro.lab.telemetry import RunTrace
from repro.lab.tracestore import (
    _OFF_VALUES,
    TRACES_ENV,
    TraceStore,
    set_active_store,
    store_from_env,
)
from repro.util import format_table

__all__ = ["main"]


def _parse_value(text: str) -> Any:
    """CLI literal -> python value: int, float, bool, or str."""
    low = text.lower()
    if low in ("true", "false"):
        return low == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_kv(items: Optional[Sequence[str]], *, grid: bool) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for item in items or ():
        if "=" not in item:
            raise SystemExit(f"expected key=value, got {item!r}")
        key, _, raw = item.partition("=")
        if grid:
            out[key] = [_parse_value(v) for v in raw.split(",")]
        else:
            out[key] = _parse_value(raw)
    return out


def _make_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _default_trace_root(args: argparse.Namespace) -> Optional[str]:
    """A ``--cache-dir`` scopes the trace store too (``<dir>/traces``),
    so scoped runs and scoped ``cache stats/gc`` see the same traces;
    ``None`` falls back to the global default root."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        return str(Path(cache_dir) / "traces")
    return None


def _setup_trace_store(args: argparse.Namespace) -> None:
    """Install the trace store for this run (and its workers), honouring
    ``--no-trace-store``, an explicit ``$REPRO_LAB_TRACES``, and
    ``--cache-dir`` scoping."""
    if getattr(args, "no_trace_store", False):
        set_active_store(None)
        return
    if os.environ.get(TRACES_ENV, "").strip():
        # Resolve whatever the env dictates (a path, or an off-value).
        set_active_store(store_from_env())
        return
    if getattr(args, "no_cache", False):
        # "read/write no cache" means no disk at all: skip the default
        # trace store too (an explicit $REPRO_LAB_TRACES above still wins).
        set_active_store(None)
        return
    store = TraceStore(_default_trace_root(args))
    set_active_store(None if store.disabled else store)


def _make_run_trace(args: argparse.Namespace,
                    label: str) -> Optional[RunTrace]:
    """The :class:`RunTrace` this invocation should record into, or
    ``None``.  ``--trace-out FILE`` picks the sink explicitly; bare
    ``--trace`` writes a timestamped JSONL under ``<cache root>/runs``
    (beside the result cache, scoped by ``--cache-dir`` like it)."""
    out = getattr(args, "trace_out", None)
    if not getattr(args, "trace", False) and not out:
        return None
    if not out:
        root = (Path(args.cache_dir) if getattr(args, "cache_dir", None)
                else default_cache_root())
        out = telemetry.default_trace_path(root / "runs", label)
    return RunTrace(out, meta={"command": args.command, "scenario": label,
                               "jobs": getattr(args, "jobs", 1)})


def _render_failures(report) -> str:
    """The per-point failure table a degraded (``--keep-going``) sweep
    prints instead of burying errors in the flat export."""
    rows = []
    for res in report.failures():
        ident = res.record.get("point") or {}
        params = ", ".join(f"{k}={v}" for k, v in
                           sorted((ident.get("params") or {}).items()))
        rows.append([ident.get("kernel", res.point.kernel),
                     ident.get("machine", res.point.machine.name),
                     params,
                     res.record.get("attempts", "?"),
                     res.record.get("error", "?")])
    return format_table(["kernel", "machine", "params", "attempts",
                         "error"], rows, title="failed points")


def _finish(scenario: Scenario, report, cache, args,
            trace: Optional[RunTrace] = None) -> int:
    rs = ResultSet.from_report(report)
    if report.failed:
        # Scenario renderers assume complete kernel records; a degraded
        # sweep shows the flat rows that exist plus a failure table
        # (the error-record internals stay in the exports).
        display = ResultSet([{k: v for k, v in row.items()
                              if k not in ("remote_traceback", "point")}
                             for row in rs.rows])
        print(display.format(title=f"{scenario.name} — partial results "
                                   f"({report.failed} of {report.total} "
                                   f"point(s) failed)"))
        print(_render_failures(report))
        print(f"[repro.lab] re-running the same command retries only "
              f"the failures (completed points are cached)")
    else:
        print(scenario.render(report.results))
    if getattr(args, "csv", None):
        rs.to_csv(args.csv)
        print(f"[repro.lab] wrote {len(rs)} rows to {args.csv}")
    if getattr(args, "json", None):
        rs.to_json(args.json)
        print(f"[repro.lab] wrote {len(rs)} rows to {args.json}")
    print(report.cache_line(cache))
    if trace is not None:
        trace.finish(hits=report.hits, misses=report.misses,
                     elapsed=report.elapsed, failed=report.failed)
        print(telemetry.render_attribution(trace))
        print(f"[repro.lab] run trace written to {trace.path}")
    return 3 if report.failed else 0


def _cmd_list(args: argparse.Namespace) -> int:
    print("scenarios:")
    for name in sorted(SCENARIOS):
        print(f"  {name:<14} {SCENARIOS[name](False).description}")
    print("kernels:")
    for name in sorted(KERNELS):
        doc = (KERNELS[name].__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<18} {doc}")
    print("machines:")
    for name, spec in sorted(MACHINES.items()):
        geom = (f"levels={list(spec.levels)}" if spec.levels
                else f"{spec.cache_words}w")
        print(f"  {name:<14} policy={spec.policy:<13} {geom:<22} "
              f"read_slow={spec.read_slow} write_slow={spec.write_slow}")
    print("policies:")
    print("  " + "  ".join(sorted(POLICIES)))
    return 0


def _warn_unknown_sets(scenario: Scenario, sets: Dict[str, Any]) -> None:
    """A typo'd --set key is otherwise silently inert (it still changes
    every cache key); flag it but keep going — optional kernel params a
    preset doesn't spell out are legitimate.  Rebuild-backed presets
    hard-reject unknown keys in with_overrides, so no warning there."""
    if scenario.meta.get("rebuild") is not None:
        return
    known = scenario.known_param_keys()
    unknown = sorted(k for k in sets
                     if not k.startswith("machine.") and k not in known)
    if unknown:
        print(f"[repro.lab] note: --set key(s) {unknown} are not "
              f"parameters of any {scenario.name!r} point; applying "
              f"anyway", file=sys.stderr)


def _fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """``--fault-plan SPEC`` wins; otherwise honour ``$REPRO_LAB_FAULTS``
    (how CI's chaos job injects without touching the preset commands)."""
    spec = getattr(args, "fault_plan", None)
    if spec is not None:
        return FaultPlan.parse(spec)
    return plan_from_env()


def _engine_kwargs(args: argparse.Namespace) -> Dict[str, Any]:
    """The fault-tolerance arguments ``run``/``sweep`` thread through
    to :func:`repro.lab.executor.execute`."""
    return dict(retries=args.retries, timeout=args.timeout,
                keep_going=args.keep_going, faults=_fault_plan(args))


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario, quick=args.quick)
    sets = _parse_kv(args.set, grid=False)
    _warn_unknown_sets(scenario, sets)
    scenario = scenario.with_overrides(sets,
                                       hw=_parse_kv(args.hw, grid=False))
    cache = _make_cache(args)
    _setup_trace_store(args)
    trace = _make_run_trace(args, scenario.name)
    report = execute(scenario.points(), jobs=args.jobs, cache=cache,
                     multi_capacity=not args.no_multi_capacity,
                     batch=not args.no_batch, trace=trace,
                     **_engine_kwargs(args))
    return _finish(scenario, report, cache, args, trace=trace)


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.preset:
        if args.grid:
            raise SystemExit("repro-lab sweep: --grid cannot be combined "
                             "with --preset (the preset defines the grid; "
                             "pin axes with --set)")
        scenario = get_scenario(args.preset, quick=args.quick)
        sets = _parse_kv(args.set, grid=False)
        _warn_unknown_sets(scenario, sets)
        scenario = scenario.with_overrides(
            sets, hw=_parse_kv(args.hw, grid=False))
    else:
        machine = resolve_machine(args.machine)
        hw = _parse_kv(args.hw, grid=False)
        if hw:
            machine = machine.with_hw(**hw)
        scenario = Scenario(
            name="adhoc",
            kernel=args.kernel,
            machine=machine,
            description="ad-hoc CLI sweep",
            fixed=_parse_kv(args.set, grid=False),
            grid=_parse_kv(args.grid, grid=True),
        )
    cache = _make_cache(args)
    _setup_trace_store(args)
    trace = _make_run_trace(args, scenario.name)
    report = execute(scenario.points(), jobs=args.jobs, cache=cache,
                     multi_capacity=not args.no_multi_capacity,
                     batch=not args.no_batch, trace=trace,
                     **_engine_kwargs(args))
    return _finish(scenario, report, cache, args, trace=trace)


def _cmd_serve(args: argparse.Namespace) -> int:
    # Deferred import: the batch subcommands shouldn't pay for the HTTP
    # layer at startup.
    from repro.lab.serve import ServeDaemon

    cache = _make_cache(args)
    _setup_trace_store(args)
    daemon = ServeDaemon(host=args.host, port=args.port, jobs=args.jobs,
                         cache=cache)
    print(f"[repro.lab] serving on {daemon.url} (jobs={args.jobs}, "
          f"cache={'off' if cache is None else cache.root})")
    print("[repro.lab] POST /sweep · GET /jobs/<id>[?sse=1] · "
          "GET /results/<id>[?format=csv] · GET /metrics; "
          "Ctrl-C drains and exits")
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("\n[repro.lab] draining in-flight sweeps (Ctrl-C again "
              "cancels at the next task boundary) ...", file=sys.stderr)
        try:
            daemon.shutdown(drain=True)
        except KeyboardInterrupt:
            daemon.shutdown(drain=False)
            raise  # main()'s SIGINT path sweeps temporaries, exits 130
        print("[repro.lab] serve: clean shutdown; completed points are "
              "cached", file=sys.stderr)
    return 0


def _cmd_trace_show(args: argparse.Namespace) -> int:
    trace = RunTrace.load(args.file)
    print(telemetry.render_attribution(trace))
    if args.metrics:
        reg = trace.metrics()
        print(reg.format(title=f"metrics — {args.file}"))
        events = reg.counters.get("trace.events", 0)
        symbols = reg.counters.get("trace.symbols", 0)
        if symbols:
            print(f"super-symbol compression: {events:.0f} events -> "
                  f"{symbols:.0f} symbols ({events / symbols:.1f}x)")
    return 0


def _cmd_trace_diff(args: argparse.Namespace) -> int:
    a = RunTrace.load(args.a)
    b = RunTrace.load(args.b)
    print(telemetry.render_diff(a, b, labels=(Path(args.a).stem,
                                              Path(args.b).stem)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario, quick=args.quick)
    sets = _parse_kv(args.set, grid=False)
    _warn_unknown_sets(scenario, sets)
    scenario = scenario.with_overrides(sets,
                                       hw=_parse_kv(args.hw, grid=False))
    cache = ResultCache(args.cache_dir)
    try:
        report = execute(scenario.points(), cache=cache, require_cached=True)
    except MissingResultsError as exc:
        print(f"[repro.lab] {exc}", file=sys.stderr)
        return 1
    return _finish(scenario, report, cache, args)


def _maintenance_store(args: argparse.Namespace) -> Optional[TraceStore]:
    """The trace store ``cache stats/gc`` should inspect — the same
    resolution ``run``/``sweep`` use: --trace-dir, else
    $REPRO_LAB_TRACES (a path, or an off-value meaning *no* store), else
    <--cache-dir>/traces, else the default root."""
    if getattr(args, "trace_dir", None):
        return TraceStore(args.trace_dir)
    env = os.environ.get(TRACES_ENV, "").strip()
    if env:
        if env.lower() in _OFF_VALUES:
            return None  # disabled for runs => nothing to inspect/prune
        return TraceStore(env)
    return TraceStore(_default_trace_root(args))


_STORE_OFF_NOTE = (f"trace store disabled (${TRACES_ENV}); "
                   f"pass --trace-dir to inspect one anyway")


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    print(f"[repro.lab] {cache.describe()}")
    versions = cache.versions()
    for version in sorted(versions, key=lambda v: -versions[v]):
        marker = " (current)" if version == cache.code_version else ""
        print(f"  {versions[version]:>6} record(s) from code version "
              f"{version}{marker}")
    store = _maintenance_store(args)
    if store is None:
        print(f"[repro.lab] {_STORE_OFF_NOTE}")
        return 0
    print(f"[repro.lab] {store.describe()}")
    stale = sum(1 for doc in store.entries()
                if doc.get("code_version") != store.code_version)
    if stale:
        print(f"  {stale} trace(s) from superseded code versions "
              f"(repro-lab cache gc reclaims them)")
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    removed = cache.gc(keep_version="" if args.all else None)
    note = (f" ({cache.quarantined} quarantined as corrupt)"
            if cache.quarantined else "")
    print(f"[repro.lab] removed {removed} result record(s){note}; "
          f"{len(cache)} kept at {cache.root}")
    store = _maintenance_store(args)
    if store is None:
        print(f"[repro.lab] {_STORE_OFF_NOTE}")
        return 0
    removed = store.gc(keep_version="" if args.all else None)
    print(f"[repro.lab] removed {removed} trace(s); "
          f"{len(store)} kept at {store.root}")
    return 0


def _add_cache_args(p: argparse.ArgumentParser, *,
                    allow_disable: bool = True) -> None:
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result-cache directory (default: $REPRO_LAB_CACHE "
                        "or ~/.cache/repro-lab)")
    if allow_disable:
        p.add_argument("--no-cache", action="store_true",
                       help="compute everything, read/write no cache "
                            "(skips the default trace store too)")


def _add_engine_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--no-multi-capacity", action="store_true",
                   help="replay capacity sweeps point by point instead of "
                        "batching them through the fastsim kernel")
    p.add_argument("--no-batch", action="store_true",
                   help="evaluate analytic cost-* grids point by point "
                        "instead of as vectorized batches")
    p.add_argument("--no-trace-store", action="store_true",
                   help="regenerate traces instead of memoizing them "
                        "on disk")
    p.add_argument("--trace", action="store_true",
                   help="record a structured run trace (JSONL under "
                        "<cache root>/runs) and print the attribution "
                        "table; never changes records")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write the run trace to FILE (implies --trace)")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="per-task retry budget beyond the first attempt "
                        "(capped exponential backoff; a failed batch "
                        "falls back to per-point execution first)")
    p.add_argument("--timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="per-task wall-clock limit; an overdue worker "
                        "is killed and the task retried (--jobs > 1 "
                        "only — in-process tasks cannot be preempted)")
    p.add_argument("--keep-going", action="store_true",
                   help="degrade instead of aborting: points that "
                        "exhaust their retries become structured error "
                        "records in the report (exit code 3)")
    p.add_argument("--fault-plan", default=None, metavar="SPEC",
                   help="deterministic fault injection for chaos "
                        "testing, e.g. 'seed=42,rate=0.3,"
                        "kinds=raise+die,times=1' "
                        f"(default: ${FAULTS_ENV} if set; 'off' "
                        f"disables)")


def _add_export_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--csv", default=None, metavar="FILE",
                   help="also export flat records as CSV")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="also export flat records as JSON")


def _cmd_check(args: argparse.Namespace) -> int:
    # Deferred import: the analyzer parses the whole package on load;
    # the runtime subcommands shouldn't pay for that at startup.
    from repro.lab.check import (ALL_RULES, default_config, render_table,
                                 report_to_json, run_check)

    cfg = default_config()
    if args.rules:
        wanted = tuple(dict.fromkeys(
            r.strip().upper() for chunk in args.rules
            for r in chunk.split(",") if r.strip()))
        bad = sorted(set(wanted) - set(ALL_RULES))
        if bad:
            raise ValueError(f"unknown rule(s) {', '.join(bad)}; "
                             f"available: {', '.join(ALL_RULES)}")
        cfg = cfg.with_rules(wanted)
    report = run_check(cfg)
    payload = report_to_json(report, cfg.display_base)
    if args.output:
        Path(args.output).write_text(payload + "\n")
    if args.format == "json":
        print(payload)
    else:
        print(render_table(report, cfg.display_base))
    return 1 if report.findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lab",
        description="Parallel scenario-sweep engine with persistent "
                    "result caching for the Write-Avoiding Algorithms "
                    "reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="enumerate scenarios, kernels, "
                                         "machines and policies")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run a named scenario preset")
    p_run.add_argument("scenario", choices=sorted(SCENARIOS))
    p_run.add_argument("--quick", action="store_true",
                       help="smaller geometry, seconds instead of minutes")
    p_run.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for uncached points")
    p_run.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override a preset parameter on every point; "
                            "'machine.<field>=..' edits the machine spec, "
                            "a grid-axis key pins that axis (repeatable)")
    p_run.add_argument("--hw", action="append", metavar="KEY=VALUE",
                       help="override an HwParams cost parameter (e.g. "
                            "beta_23=30) on every point (repeatable)")
    _add_cache_args(p_run)
    _add_engine_args(p_run)
    _add_export_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_sweep = sub.add_parser("sweep", help="ad-hoc cartesian sweep over a "
                                           "registered kernel, or a named "
                                           "preset via --preset")
    p_sweep.add_argument("--preset", default=None, metavar="NAME",
                         choices=sorted(SCENARIOS),
                         help="sweep a scenario preset instead of an "
                              "ad-hoc grid (ignores --kernel/--machine; "
                              "--set/--hw apply as overrides)")
    p_sweep.add_argument("--quick", action="store_true",
                         help="with --preset: the preset's quick geometry")
    p_sweep.add_argument("--kernel", default="matmul-cache",
                         choices=sorted(KERNELS))
    p_sweep.add_argument("--machine", default="sim-l3",
                         help=f"machine preset ({', '.join(sorted(MACHINES))})")
    p_sweep.add_argument("--set", action="append", metavar="KEY=VALUE",
                         help="fixed kernel parameter (repeatable)")
    p_sweep.add_argument("--grid", action="append", metavar="KEY=V1,V2,..",
                         help="swept axis; 'machine.<field>=..' overrides "
                              "the machine spec (repeatable)")
    p_sweep.add_argument("--hw", action="append", metavar="KEY=VALUE",
                         help="override an HwParams cost parameter of the "
                              "machine (e.g. beta_23=30, M2=16384) for the "
                              "cost-* kernels (repeatable)")
    p_sweep.add_argument("--jobs", type=int, default=1, metavar="N")
    _add_cache_args(p_sweep)
    _add_engine_args(p_sweep)
    _add_export_args(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_serve = sub.add_parser(
        "serve", help="HTTP sweep daemon over the hot cache: POST "
                      "/sweep, SSE job progress, /results, /metrics")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8737,
                         help="bind port (default: 8737; 0 = ephemeral)")
    p_serve.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker budget shared across all jobs")
    _add_cache_args(p_serve)
    p_serve.add_argument("--no-trace-store", action="store_true",
                         help="regenerate traces instead of memoizing "
                              "them on disk")
    p_serve.set_defaults(func=_cmd_serve)

    p_rep = sub.add_parser("report", help="re-render a scenario purely from "
                                          "cached results")
    p_rep.add_argument("scenario", choices=sorted(SCENARIOS))
    p_rep.add_argument("--quick", action="store_true")
    p_rep.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="same overrides as the `run` that filled the "
                            "cache (repeatable)")
    p_rep.add_argument("--hw", action="append", metavar="KEY=VALUE",
                       help="same HwParams overrides as the `run` that "
                            "filled the cache (repeatable)")
    _add_cache_args(p_rep, allow_disable=False)
    _add_export_args(p_rep)
    p_rep.set_defaults(func=_cmd_report)

    p_trace = sub.add_parser("trace", help="render or compare saved run "
                                           "traces (--trace JSONL files)")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_tshow = trace_sub.add_parser(
        "show", help="attribution table of one saved run trace")
    p_tshow.add_argument("file", help="run-trace JSONL file")
    p_tshow.add_argument("--metrics", action="store_true",
                         help="also dump the aggregated metrics registry")
    p_tshow.set_defaults(func=_cmd_trace_show)
    p_tdiff = trace_sub.add_parser(
        "diff", help="compare two saved run traces side by side")
    p_tdiff.add_argument("a", help="baseline run-trace JSONL file")
    p_tdiff.add_argument("b", help="candidate run-trace JSONL file")
    p_tdiff.set_defaults(func=_cmd_trace_diff)

    p_cache = sub.add_parser("cache", help="inspect or prune the result "
                                           "cache and trace store")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_stats = cache_sub.add_parser(
        "stats", help="record/trace counts, sizes and code versions")
    p_gc = cache_sub.add_parser(
        "gc", help="drop records and traces from superseded code versions")
    p_gc.add_argument("--all", action="store_true",
                      help="drop everything, current code version included")
    for p in (p_stats, p_gc):
        _add_cache_args(p, allow_disable=False)
        p.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="trace-store directory (default: "
                            "$REPRO_LAB_TRACES or <cache dir>/traces)")
    p_stats.set_defaults(func=_cmd_cache_stats)
    p_gc.set_defaults(func=_cmd_cache_gc)

    p_check = sub.add_parser(
        "check", help="static contract analyzer: kernel/cache/telemetry "
                      "invariants (rules R1-R5)")
    p_check.add_argument("--format", choices=("table", "json"),
                         default="table",
                         help="render findings as a human table (default) "
                              "or as JSON")
    p_check.add_argument("--output", default=None, metavar="FILE",
                         help="also write the JSON report to FILE, "
                              "whatever --format says (CI artifact)")
    p_check.add_argument("--rules", action="append", metavar="R1,R2,..",
                         help="run only these rules (comma-separated, "
                              "repeatable; default: all)")
    p_check.set_defaults(func=_cmd_check)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ValueError as exc:
        # Registry lookups (unknown machine/kernel/scenario, bad grid
        # values) surface as ValueError; report them CLI-style.
        print(f"repro-lab: error: {exc}", file=sys.stderr)
        return 2
    except PointExecutionError as exc:
        # A task failed terminally and the run was not --keep-going;
        # everything that completed before the failure is cached.
        print(f"repro-lab: sweep aborted: {exc}", file=sys.stderr)
        print("repro-lab: completed points are cached; re-run (or add "
              "--keep-going / --retries) to continue", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Terminating the pool is the executor's job (its finally
        # block); here we sweep up half-written cache temporaries and
        # exit with the conventional SIGINT status instead of a
        # traceback.  Completed points were cached as they finished.
        if not getattr(args, "no_cache", False):
            try:
                ResultCache(getattr(args, "cache_dir", None)).cleanup_tmp()
            except Exception:
                pass
        print("\n[repro.lab] interrupted; completed points are cached — "
              "re-run the same command to resume", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # `repro-lab trace show ... | head` closes stdout early; exit
        # quietly instead of tracebacking.  Detach stdout so the
        # interpreter's shutdown flush doesn't raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
