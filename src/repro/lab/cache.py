"""Content-addressed on-disk result cache for scenario points.

Every record is keyed by the SHA-256 of the point's canonical JSON payload
**plus a code-version fingerprint** (a hash over every ``.py`` file of the
installed ``repro`` package), so a repeated sweep is served from disk while
any source change — a kernel tweak, a policy fix — transparently invalidates
everything it could have affected.

Records are single JSON files sharded by key prefix under the cache root
(``$REPRO_LAB_CACHE`` or ``~/.cache/repro-lab``).  Writes are atomic
(tempfile + ``os.replace``) so concurrent sweeps can share a cache; reads
treat any unreadable or non-JSON file as a miss.  A cache that cannot
create its root degrades to a no-op rather than failing the sweep.

With a run trace active (:mod:`repro.lab.telemetry`) every lookup emits
a ``cache.hit`` / ``cache.miss`` counter — misses tagged with their
reason (``absent`` / ``stale-fingerprint`` / ``unreadable`` /
``disabled``) — and every store a ``cache.write``.  Stale-fingerprint
classification distinguishes "never computed" from "invalidated by a
code change": the first absent lookup of a traced run builds a lazy
index of code-version-independent point identities present under
*other* fingerprints, which is exactly the set a gc would drop.
Untraced lookups skip all of this.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import (Any, Dict, Iterator, Mapping, Optional, Set, Union,
                    cast)

import repro
from repro.lab import telemetry
from repro.util import json_number_default

__all__ = ["ResultCache", "code_fingerprint", "default_cache_root",
           "point_key"]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of the repro package sources (the cache's code-version axis)."""
    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
    return h.hexdigest()[:16]


def default_cache_root() -> Path:
    env = os.environ.get("REPRO_LAB_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-lab"


def point_key(payload: Mapping[str, Any], code_version: str) -> str:
    """Deterministic content address of one scenario point.

    Numpy scalars in the payload (``np.int64`` grid axes) key
    identically to their python twins — a numpy-built scenario must
    neither crash the key derivation nor split cache entries from an
    equivalent plain-int sweep.
    """
    blob = json.dumps({"point": payload, "code": code_version},
                      sort_keys=True, separators=(",", ":"),
                      default=json_number_default)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Persistent point-record store with hit/miss accounting.

    Parameters
    ----------
    root:
        Cache directory (created on demand).  Defaults to
        ``$REPRO_LAB_CACHE`` or ``~/.cache/repro-lab``.
    code_version:
        Override the automatic source fingerprint (tests use this to model
        "the code changed").
    """

    def __init__(self,
                 root: Optional[Union[str, Path]] = None,
                 code_version: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.code_version = code_version or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.disabled = False
        #: unreadable records dropped by the last :meth:`gc` call.
        self.quarantined = 0
        #: lazy stale-fingerprint index (see :meth:`_is_stale`).
        self._stale_index: Optional[Set[str]] = None
        #: unreadable paths already warned about (once per run).
        self._warned_unreadable: Set[str] = set()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            self.disabled = True

    # ------------------------------------------------------------------ #
    def key_for(self, payload: Mapping[str, Any]) -> str:
        return point_key(payload, self.code_version)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _is_stale(self, payload: Mapping[str, Any]) -> bool:
        """Whether an absent *payload* exists under another code
        fingerprint — i.e. the miss is a code-change invalidation, not
        a never-computed point.  Keys fold payload and code version
        into one hash, so this is answered through a one-time scan of
        the store building version-independent point identities for
        every other-fingerprint document.  Only telemetry consults
        this; plain lookups never pay the scan."""
        if self._stale_index is None:
            index: Set[str] = set()
            for doc in self.entries():
                if doc.get("code_version") == self.code_version:
                    continue
                point = doc.get("point")
                if isinstance(point, dict):
                    index.add(point_key(point, ""))
            self._stale_index = index
        return point_key(payload, "") in self._stale_index

    def _count_miss(self, payload: Mapping[str, Any], reason: str) -> None:
        self.misses += 1
        trace = telemetry.active_trace()
        if trace is not None:
            if reason == "absent" and self._is_stale(payload):
                reason = "stale-fingerprint"
            trace.counter("cache.miss", reason=reason)

    def _warn_unreadable(self, path: Path) -> None:
        """Name the corrupt entry behind an ``unreadable`` miss — once
        per file per run, so a 10^4-point sweep over one bad record
        prints one line, not 10^4."""
        key = str(path)
        if key in self._warned_unreadable:
            return
        self._warned_unreadable.add(key)
        print(f"[repro.lab] unreadable cache entry {path} — serving as "
              f"a miss; `repro-lab cache gc` quarantines it",
              file=sys.stderr)

    def get(self, payload: Mapping[str, Any]
            ) -> Optional[Dict[str, Any]]:
        """Return the cached record for *payload*, or ``None`` on a miss."""
        if self.disabled:
            self._count_miss(payload, "disabled")
            return None
        path = self._path(self.key_for(payload))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            record = doc["record"]
        except FileNotFoundError:
            self._count_miss(payload, "absent")
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self._warn_unreadable(path)
            self._count_miss(payload, "unreadable")
            return None
        self.hits += 1
        trace = telemetry.active_trace()
        if trace is not None:
            trace.counter("cache.hit")
        return cast(Dict[str, Any], record)

    def put(self, payload: Mapping[str, Any],
            record: Mapping[str, Any]) -> bool:
        """Store *record*; returns False (and stores nothing) if the record
        is not JSON-serializable or the filesystem refuses."""
        if self.disabled:
            return False
        key = self.key_for(payload)
        doc = {"key": key, "code_version": self.code_version,
               "point": dict(payload), "record": dict(record)}
        try:
            # numpy scalars store in canonical python form, matching how
            # point_key hashed them.
            blob = json.dumps(doc, sort_keys=True,
                              default=json_number_default)
        except (TypeError, ValueError):
            return False
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self.stores += 1
        trace = telemetry.active_trace()
        if trace is not None:
            trace.counter("cache.write")
        return True

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if self.disabled or not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Yield every stored document (any code version)."""
        if self.disabled or not self.root.exists():
            return
        for path in sorted(self.root.glob("*/*.json")):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    yield json.load(fh)
            except (OSError, ValueError):
                continue

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        if self.disabled or not self.root.exists():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def versions(self) -> Dict[str, int]:
        """Record counts by code version (``repro-lab cache stats``)."""
        counts: Dict[str, int] = {}
        for doc in self.entries():
            version = doc.get("code_version", "<unknown>")
            counts[version] = counts.get(version, 0) + 1
        return counts

    def total_bytes(self) -> int:
        if self.disabled or not self.root.exists():
            return 0
        return sum(p.stat().st_size for p in self.root.glob("*/*.json"))

    def cleanup_tmp(self) -> int:
        """Delete stale ``*.tmp`` spill files (write temporaries left
        behind by an interrupted sweep — ``os.replace`` never ran).
        Recursive, so it also reclaims trace-store ``.npy.tmp``
        temporaries nested under ``traces/<shard>/``, not just the
        record shards one level down.  Returns how many were removed.
        Safe against concurrent writers: an in-flight temporary that
        vanishes under a writer just fails that single ``put`` as it
        already could."""
        removed = 0
        if self.disabled or not self.root.exists():
            return removed
        for path in self.root.rglob("*.tmp"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def gc(self, keep_version: Optional[str] = None) -> int:
        """Drop records from superseded code versions (default: keep only
        the current fingerprint); pass ``keep_version=""`` to drop
        everything.  Returns the number of records removed; unreadable
        (corrupt) records are deleted too and counted in
        :attr:`quarantined`, and stale ``*.tmp`` write temporaries are
        swept as a side effect."""
        if keep_version is None:
            keep_version = self.code_version
        self.quarantined = 0
        if not keep_version:
            removed = self.clear()  # nothing can match: skip the parsing
            self.cleanup_tmp()
            return removed
        removed = 0
        if self.disabled or not self.root.exists():
            return removed
        for path in sorted(self.root.glob("*/*.json")):
            quarantine = False
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    doc = json.load(fh)
                keep = doc.get("code_version") == keep_version
            except (OSError, ValueError):
                keep = False  # unreadable records are dead weight
                quarantine = True
            if not keep:
                try:
                    path.unlink()
                    removed += 1
                    if quarantine:
                        self.quarantined += 1
                except OSError:
                    continue
        self.cleanup_tmp()
        return removed

    def describe(self) -> str:
        state = "disabled" if self.disabled else str(self.root)
        return (f"cache at {state}: {len(self)} records, "
                f"{self.total_bytes() / 1e6:.1f} MB, "
                f"code version {self.code_version}")
