"""Deterministic fault injection for the sweep engine's chaos tests.

A :class:`FaultPlan` is a *seeded* description of which scenario points
should misbehave and how: ``raise`` (the task throws
:class:`FaultInjected`), ``hang`` (the task sleeps ``hang_s`` seconds
before running, so per-task timeouts have something to kill), or
``die`` (the worker process ``os._exit``\\ s mid-flight, exercising
dead-worker detection and respawn).  The decision for a point is a pure
function of ``(seed, point identity)`` — no RNG state, no ordering
dependence — so a plan injects exactly the same faults into the same
points whether the sweep runs serial, parallel, batched, or is resumed
after an interrupt, and a recovery test can assert byte-identical
records against a fault-free run.

Plans are spec strings (``seed=42,rate=0.3,kinds=raise+die,times=1``)
so they travel through the CLI (``--fault-plan``), the environment
(:data:`FAULTS_ENV`), and worker task payloads unchanged.  ``times``
bounds how many *attempts* of a chosen point fault — ``times=1`` means
"first attempt fails, retry succeeds", the shape CI's chaos job uses to
require 100% eventual completion.

Faults fire at the worker boundary (:func:`FaultPlan.maybe_fire`,
called by the executor just before a task's kernels run), never inside
kernels — records of surviving points are untouched by construction.
In-process execution (``jobs=1``) only honours ``raise`` faults:
``hang`` needs a killable worker and ``die`` would take the whole
process down.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.util import json_number_default

__all__ = [
    "FAULTS_ENV",
    "FAULT_KINDS",
    "FaultInjected",
    "FaultPlan",
    "deterministic_unit",
    "fault_key",
    "plan_from_env",
]

#: environment variable carrying a fault-plan spec (CI's chaos job).
FAULTS_ENV = "REPRO_LAB_FAULTS"

#: the supported misbehaviours, in spec-string order.
FAULT_KINDS = ("raise", "hang", "die")

#: exit code a ``die`` fault kills its worker with (distinctive, so a
#: chaos log line is attributable to the plan rather than the OOM killer).
DIE_EXIT_CODE = 23


class FaultInjected(RuntimeError):
    """The exception a ``raise`` fault throws inside a task."""


def deterministic_unit(key: str) -> float:
    """A uniform-ish float in ``[0, 1)`` derived purely from *key* —
    the shared source of seeded fault decisions and retry-backoff
    jitter (no RNG state, stable across processes and runs)."""
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def fault_key(payload: Mapping[str, Any]) -> str:
    """A point's fault identity: canonical JSON of its full payload.
    Stable between a batched attempt and its per-point scalar fallback
    (both carry the same payload), and across runs of the same sweep."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      default=json_number_default)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic fault-injection plan.

    Parameters
    ----------
    seed:
        Decision seed; two plans differing only in seed choose
        different victim points.
    rate:
        Fraction of points chosen to fault (per-point Bernoulli on the
        deterministic unit hash).
    kinds:
        Which misbehaviours to inject; a chosen point's kind is itself
        derived deterministically from ``(seed, point)``.
    times:
        Attempts 1..times of a chosen point fault; later attempts run
        clean.  ``times <= retries`` therefore guarantees eventual
        completion of every point.
    hang_s:
        How long a ``hang`` fault sleeps before the task proceeds.
    """

    seed: int = 0
    rate: float = 0.0
    kinds: Tuple[str, ...] = ("raise",)
    times: int = 1
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds", tuple(self.kinds))
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; "
                    f"expected one of {FAULT_KINDS}")
        if not self.kinds:
            raise ValueError("fault plan needs at least one kind")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], "
                             f"got {self.rate}")

    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, spec: Optional[str]) -> Optional["FaultPlan"]:
        """``seed=42,rate=0.3,kinds=raise+die,times=1,hang_s=30`` →
        plan; ``None``/empty/``off`` → ``None`` (no injection)."""
        if spec is None:
            return None
        spec = spec.strip()
        if not spec or spec.lower() in ("off", "none", "0", "false"):
            return None
        kwargs: Dict[str, Any] = {}
        for item in spec.split(","):
            if "=" not in item:
                raise ValueError(
                    f"bad fault-plan entry {item!r} in {spec!r} "
                    f"(expected key=value)")
            key, _, raw = item.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key == "seed":
                kwargs["seed"] = int(raw)
            elif key == "rate":
                kwargs["rate"] = float(raw)
            elif key == "kinds":
                kwargs["kinds"] = tuple(k for k in raw.split("+") if k)
            elif key == "times":
                kwargs["times"] = int(raw)
            elif key == "hang_s":
                kwargs["hang_s"] = float(raw)
            else:
                raise ValueError(
                    f"unknown fault-plan key {key!r} in {spec!r} "
                    f"(known: seed, rate, kinds, times, hang_s)")
        return cls(**kwargs)

    def spec(self) -> str:
        """Round-trippable spec string (how plans ride task payloads)."""
        return (f"seed={self.seed},rate={self.rate},"
                f"kinds={'+'.join(self.kinds)},times={self.times},"
                f"hang_s={self.hang_s}")

    # ------------------------------------------------------------------ #
    def decide(self, key: str, attempt: int) -> Optional[str]:
        """The fault kind attempt number *attempt* of point *key*
        suffers, or ``None``.  Pure function of (seed, key, attempt)."""
        if attempt > self.times or self.rate <= 0.0:
            return None
        if deterministic_unit(f"{self.seed}:choose:{key}") >= self.rate:
            return None
        pick = deterministic_unit(f"{self.seed}:kind:{key}")
        return self.kinds[int(pick * len(self.kinds)) % len(self.kinds)]

    def maybe_fire(self, keys: Sequence[str], attempt: int,
                   in_worker: bool = True) -> Optional[str]:
        """Inject at most one fault for a task covering *keys*.

        Returns the kind fired for ``hang`` (the task then proceeds and
        completes — slowly); ``raise`` raises :class:`FaultInjected`
        naming the victim point, and ``die`` never returns.  Outside a
        worker process only ``raise`` is honoured (see module docs).
        """
        for key in keys:
            kind = self.decide(key, attempt)
            if kind is None:
                continue
            if kind == "raise":
                raise FaultInjected(
                    f"injected fault (seed={self.seed}, attempt "
                    f"{attempt}) on point {key}")
            if not in_worker:
                continue  # hang/die need a killable worker process
            if kind == "hang":
                time.sleep(self.hang_s)
                return "hang"
            if kind == "die":
                os._exit(DIE_EXIT_CODE)
        return None


def plan_from_env() -> Optional[FaultPlan]:
    """The plan :data:`FAULTS_ENV` dictates, or ``None``."""
    return FaultPlan.parse(os.environ.get(FAULTS_ENV))
