"""Structured run tracing and metrics for the sweep engine.

Every load-bearing fast path in the engine — multi-capacity trace
batching, vectorized cost grids, the content-addressed result cache —
is invisible from the outside: a sweep prints one accounting line and
nothing says which path a point actually took, where the wall-clock
went, or why a point missed the cache.  This module is the engine's
flight recorder:

* a :class:`RunTrace` records **events** — nested *spans* (sweep →
  task) with monotonic timings, per-point *path tags*
  (``cache``/``batch``/``multi_capacity``/``scalar`` plus the venue,
  ``in_process`` or ``pool-worker-N``), *counters* (cache hits/misses
  with the miss reason, trace-store builds vs mmap reuse), *phases*
  (fastsim's trace build, radix partition, distance pass, per-capacity
  fold) and *metrics* (record fields kernels declare in
  :data:`repro.lab.registry.METRIC_FIELDS`);
* events stream to a JSONL file beside the result cache (one JSON
  object per line, a ``meta`` header first and a ``summary`` footer
  last) and aggregate into a :class:`MetricsRegistry`
  (counters/gauges/histograms);
* :func:`render_attribution` turns a trace into the post-run table
  ``repro-lab run/sweep --trace`` print; :func:`render_diff` compares
  two saved traces (``repro-lab trace diff``); ``benchmarks/digest.py``
  turns traces into the committed markdown regression report.

The module is deliberately **zero-dependency** (stdlib only) and
**opt-in**: instrumentation sites consult :func:`active_trace` and do
nothing when no trace is installed, so an untraced sweep pays one
``None`` check per event site and produces bit-identical records
(enforced by ``tests/test_lab_telemetry.py``).  Executor pool workers
capture events into an in-memory subtrace that the parent splices back
in (:meth:`RunTrace.merge_subtrace`) with timestamps rebased onto the
parent's epoch — ``time.monotonic`` is system-wide on the platforms we
run on, so queue-vs-compute attribution stays meaningful across
processes.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import (Any, Callable, Dict, Iterator, List, Mapping, Optional,
                    Sequence, TextIO, Union)

from repro.util import format_table

__all__ = [
    "SCHEMA_VERSION",
    "RunTrace",
    "Span",
    "MetricsRegistry",
    "active_trace",
    "set_active_trace",
    "tracing",
    "default_trace_path",
    "summarize",
    "render_attribution",
    "render_diff",
]

#: bumped whenever the JSONL event schema changes incompatibly.
SCHEMA_VERSION = 1

#: point paths that mean "rode a batched task".
BATCHED_PATHS = ("batch", "multi_capacity")


# --------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------- #
class MetricsRegistry:
    """Counters, gauges and histograms aggregated from trace events.

    Histograms are the cheap streaming kind — count/total/min/max —
    which is all the attribution and digest layers need; anything
    fancier can re-derive from the raw JSONL.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        h = self.histograms.get(name)
        if h is None:
            self.histograms[name] = {"count": 1, "total": value,
                                     "min": value, "max": value}
        else:
            h["count"] += 1
            h["total"] += value
            h["min"] = min(h["min"], value)
            h["max"] = max(h["max"], value)

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, Any]:
        return {"counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "histograms": {k: dict(v)
                               for k, v in self.histograms.items()}}

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "MetricsRegistry":
        reg = cls()
        reg.counters.update(d.get("counters", {}))
        reg.gauges.update(d.get("gauges", {}))
        for k, v in d.get("histograms", {}).items():
            reg.histograms[k] = dict(v)
        return reg

    @classmethod
    def from_events(cls, events: Sequence[Mapping[str, Any]]
                    ) -> "MetricsRegistry":
        """Aggregate a trace's event stream.

        * ``counter`` events sum into :attr:`counters` (miss reasons
          fan out as ``<name>[reason]`` sub-counters);
        * ``span`` and ``phase`` durations observe into
          ``span.<name>.seconds`` / ``phase.<name>.seconds``;
        * ``metric`` events observe under their own name.
        """
        reg = cls()
        for ev in events:
            kind = ev.get("type")
            if kind == "counter":
                name = ev["name"]
                reg.count(name, ev.get("value", 1))
                reason = (ev.get("tags") or {}).get("reason")
                if reason is not None:
                    reg.count(f"{name}[{reason}]", ev.get("value", 1))
            elif kind == "span":
                reg.observe(f"span.{ev['name']}.seconds", ev.get("dur", 0.0))
            elif kind == "phase":
                reg.observe(f"phase.{ev['name']}.seconds",
                            ev.get("dur", 0.0))
            elif kind == "metric":
                reg.observe(ev["name"], ev.get("value", 0.0))
        return reg

    def format(self, title: str = "metrics") -> str:
        rows: List[List[Any]] = []
        for name in sorted(self.counters):
            rows.append(["counter", name, _num(self.counters[name]), ""])
        for name in sorted(self.gauges):
            rows.append(["gauge", name, _num(self.gauges[name]), ""])
        for name in sorted(self.histograms):
            h = self.histograms[name]
            rows.append(["hist", name, _num(h["total"]),
                         f"n={int(h['count'])} min={_num(h['min'])} "
                         f"max={_num(h['max'])}"])
        return format_table(["kind", "name", "value", "detail"], rows,
                            title=title)


def _num(x: float) -> Any:
    """Render a metric value compactly (ints stay ints)."""
    if isinstance(x, float):
        return int(x) if x == int(x) else round(x, 6)
    return x


# --------------------------------------------------------------------- #
# run traces
# --------------------------------------------------------------------- #
class Span:
    """Handle yielded by :meth:`RunTrace.span`; lets the body attach
    tags discovered mid-span (e.g. how many batches a plan produced)."""

    __slots__ = ("id", "tags")

    def __init__(self, span_id: int, tags: Dict[str, Any]) -> None:
        self.id = span_id
        self.tags = tags

    def tag(self, **tags: Any) -> None:
        self.tags.update(tags)


class RunTrace:
    """One run's structured event stream.

    With a *path* the trace streams events to a JSONL sink as they are
    emitted (``meta`` header first, ``summary`` footer on
    :meth:`finish`); without one it records in memory only — the shape
    executor pool workers use for their capture subtraces, whose raw
    ``(events, epoch)`` the parent splices back in via
    :meth:`merge_subtrace`.
    """

    def __init__(self,
                 path: Optional[Union[str, Path]] = None,
                 meta: Optional[Mapping[str, Any]] = None) -> None:
        self.meta: Dict[str, Any] = dict(meta or {})
        self.path = Path(path) if path is not None else None
        self.events: List[Dict[str, Any]] = []
        self.epoch = time.monotonic()
        self.finished = False
        self._fh: Optional[TextIO] = None
        self._ids = itertools.count(1)
        self._stack: List[int] = []
        self._listeners: List[Callable[[Dict[str, Any]], None]] = []
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w", encoding="utf-8")
        self.emit({"type": "meta", "version": SCHEMA_VERSION,
                   "meta": self.meta})

    # ------------------------------------------------------------------ #
    def now(self) -> float:
        return time.monotonic() - self.epoch

    def add_listener(self, fn: Callable[[Dict[str, Any]], None]) -> None:
        """Call *fn* with every subsequently emitted event — the live
        tap the serve daemon's SSE streams ride.  Listeners run on the
        emitting thread and must not raise; they see events *after*
        they are appended to :attr:`events`, so a subscriber that
        snapshots the backlog first and then listens misses nothing."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[Dict[str, Any]], None]) -> None:
        """Detach a listener added by :meth:`add_listener` (no-op if it
        was already removed)."""
        try:
            self._listeners.remove(fn)
        except ValueError:
            pass

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)
        if self._fh is not None:
            self._fh.write(json.dumps(event, sort_keys=True,
                                      default=str) + "\n")
        for fn in tuple(self._listeners):
            fn(event)

    def current_span(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[Span]:
        """A nested timed span; the event is emitted when it closes."""
        sid = next(self._ids)
        parent = self.current_span()
        handle = Span(sid, dict(tags))
        t0 = self.now()
        self._stack.append(sid)
        try:
            yield handle
        finally:
            self._stack.pop()
            self.emit({"type": "span", "name": name, "id": sid,
                       "parent": parent, "t": round(t0, 6),
                       "dur": round(self.now() - t0, 6),
                       "tags": handle.tags})

    def emit_span(self, name: str, *, start_monotonic: float,
                  duration: float, parent: Optional[int] = None,
                  **tags: Any) -> int:
        """A span from absolute ``time.monotonic`` stamps — how the
        executor records worker tasks after the pool fans them back in.
        Returns the span id (for parenting merged subtrace events)."""
        sid = next(self._ids)
        self.emit({"type": "span", "name": name, "id": sid,
                   "parent": parent if parent is not None
                   else self.current_span(),
                   "t": round(start_monotonic - self.epoch, 6),
                   "dur": round(duration, 6), "tags": dict(tags)})
        return sid

    def point(self, **tags: Any) -> None:
        """One scenario point's attribution tags (kernel, path, venue,
        cached, result-cache key)."""
        self.emit({"type": "point", "t": round(self.now(), 6),
                   "parent": self.current_span(), "tags": tags})

    def counter(self, name: str, value: float = 1, **tags: Any) -> None:
        ev: Dict[str, Any] = {"type": "counter", "name": name,
                              "t": round(self.now(), 6), "value": value}
        if tags:
            ev["tags"] = tags
        self.emit(ev)

    def phase(self, name: str, seconds: float, **tags: Any) -> None:
        """A profiling-hook sample (e.g. one fastsim radix partition)."""
        ev: Dict[str, Any] = {"type": "phase", "name": name,
                              "t": round(self.now(), 6),
                              "dur": round(seconds, 9)}
        if tags:
            ev["tags"] = tags
        self.emit(ev)

    def metric(self, name: str, value: float, **tags: Any) -> None:
        ev: Dict[str, Any] = {"type": "metric", "name": name,
                              "t": round(self.now(), 6), "value": value}
        if tags:
            ev["tags"] = tags
        self.emit(ev)

    # ------------------------------------------------------------------ #
    def merge_subtrace(self, events: Sequence[Mapping[str, Any]],
                       epoch: float,
                       parent_id: Optional[int] = None) -> None:
        """Splice a worker-side capture into this trace: timestamps are
        rebased from the subtrace's epoch onto ours, span ids are
        re-allocated, and events that were top-level in the worker hang
        under *parent_id* (the task span)."""
        shift = epoch - self.epoch
        id_map: Dict[int, int] = {}
        for ev in events:
            old = ev.get("id")
            if old is not None:
                id_map[old] = next(self._ids)
        for ev in events:
            if ev.get("type") == "meta":
                continue  # the worker header carries no information
            ev = dict(ev)
            if "t" in ev:
                ev["t"] = round(ev["t"] + shift, 6)
            if ev.get("id") is not None:
                ev["id"] = id_map[ev["id"]]
            if "parent" in ev:
                ev["parent"] = id_map.get(ev["parent"], parent_id)
            self.emit(ev)

    def metrics(self) -> MetricsRegistry:
        return MetricsRegistry.from_events(self.events)

    def finish(self, **tags: Any) -> None:
        """Emit the summary footer (aggregated metrics + any final
        tags) and close the JSONL sink.  Idempotent."""
        if self.finished:
            return
        self.finished = True
        self.emit({"type": "summary", "t": round(self.now(), 6),
                   "elapsed": round(self.now(), 6), "tags": dict(tags),
                   "metrics": self.metrics().as_dict()})
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------ #
    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunTrace":
        """Read a saved JSONL trace back (for ``trace show/diff`` and
        the digest writer).  Unparseable lines are skipped — a trace
        truncated by a crash still renders."""
        trace = cls()
        trace.events.clear()  # drop the fresh meta header
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    ev = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(ev, dict):
                    continue
                if ev.get("type") == "meta":
                    trace.meta = dict(ev.get("meta") or {})
                trace.events.append(ev)
        trace.finished = True
        return trace


# --------------------------------------------------------------------- #
# thread-local active trace
# --------------------------------------------------------------------- #
# Thread-local rather than process-global: the serve daemon runs sweeps
# on a job-runner thread while HTTP handler threads probe the result
# cache concurrently — a global active trace would splice one request's
# cache counters into another job's trace.  Single-threaded callers
# (the CLI, executor pool workers — which are processes, each scoping
# its own subtrace) see exactly the old semantics.
_active = threading.local()


def active_trace() -> Optional[RunTrace]:
    """The trace instrumentation sites on *this thread* should emit to
    (or ``None``, the default — in which case every site is a no-op)."""
    trace: Optional[RunTrace] = getattr(_active, "trace", None)
    return trace


def set_active_trace(trace: Optional[RunTrace]) -> Optional[RunTrace]:
    """Install *trace* for the current thread; returns the previous one."""
    previous: Optional[RunTrace] = getattr(_active, "trace", None)
    _active.trace = trace
    return previous


@contextmanager
def tracing(trace: Optional[RunTrace]) -> Iterator[Optional[RunTrace]]:
    """Scope *trace* as the active trace for a ``with`` body."""
    previous = set_active_trace(trace)
    try:
        yield trace
    finally:
        set_active_trace(previous)


def default_trace_path(runs_dir: Union[str, Path], label: str) -> Path:
    """Where ``--trace`` writes when no ``--trace-out`` is given: a
    timestamped JSONL under *runs_dir* (``<cache root>/runs``)."""
    stamp = time.strftime("%Y%m%dT%H%M%S")
    safe = "".join(c if (c.isalnum() or c in "-_.") else "-"
                   for c in label) or "run"
    return Path(runs_dir) / f"{safe}-{stamp}-{os.getpid()}.jsonl"


# --------------------------------------------------------------------- #
# summarization / rendering
# --------------------------------------------------------------------- #
def summarize(trace: RunTrace) -> Dict[str, Any]:
    """Reduce a trace to the attribution numbers every renderer shares.

    Returns a plain dict: total points and elapsed, per-path and
    per-kernel point counts, batch efficiency, batch-path coverage of
    batchable points, cache/trace-store counters with miss reasons,
    fastsim phase totals, and queue-vs-compute seconds.
    """
    paths: Dict[str, int] = {}
    kernels: Dict[str, Dict[str, float]] = {}
    phases: Dict[str, Dict[str, float]] = {}
    counters: Dict[str, float] = {}
    reasons: Dict[str, Dict[str, float]] = {}
    batchable = covered = 0
    batches = batched_points = 0
    queue_s = compute_s = 0.0
    elapsed = 0.0
    points = 0
    jobs = None
    for ev in trace.events:
        kind = ev.get("type")
        tags = ev.get("tags") or {}
        if kind == "point":
            points += 1
            path = tags.get("path", "?")
            paths[path] = paths.get(path, 0) + 1
            k = kernels.setdefault(tags.get("kernel", "?"),
                                   {"points": 0, "tasks": 0,
                                    "compute_s": 0.0})
            k["points"] += 1
            if tags.get("batchable"):
                batchable += 1
                if path in BATCHED_PATHS:
                    covered += 1
        elif kind == "span":
            name = ev.get("name")
            if name == "task":
                dur = ev.get("dur", 0.0)
                k = kernels.setdefault(tags.get("kernel", "?"),
                                       {"points": 0, "tasks": 0,
                                        "compute_s": 0.0})
                k["tasks"] += 1
                k["compute_s"] += tags.get("compute_s", dur)
                queue_s += tags.get("queue_s", 0.0)
                compute_s += tags.get("compute_s", dur)
                if tags.get("kind") in BATCHED_PATHS \
                        and tags.get("points", 0) > 1:
                    batches += 1
                    batched_points += int(tags.get("points", 0))
            elif name == "sweep":
                elapsed = max(elapsed, ev.get("dur", 0.0))
                jobs = tags.get("jobs", jobs)
        elif kind == "phase":
            p = phases.setdefault(ev["name"], {"calls": 0, "seconds": 0.0})
            p["calls"] += 1
            p["seconds"] += ev.get("dur", 0.0)
        elif kind == "counter":
            name = ev["name"]
            counters[name] = counters.get(name, 0) + ev.get("value", 1)
            reason = tags.get("reason")
            if reason is not None:
                by = reasons.setdefault(name, {})
                by[reason] = by.get(reason, 0) + ev.get("value", 1)
        elif kind == "summary":
            elapsed = max(elapsed, ev.get("elapsed", 0.0))
    hits = counters.get("cache.hit", 0)
    misses = counters.get("cache.miss", 0)
    return {
        "meta": dict(trace.meta),
        "points": points,
        "elapsed": elapsed,
        "jobs": jobs,
        "paths": paths,
        "kernels": kernels,
        "batches": batches,
        "batched_points": batched_points,
        "batch_coverage": (covered / batchable) if batchable else 1.0,
        "batchable_points": batchable,
        "cache": {
            "hits": hits,
            "misses": misses,
            "writes": counters.get("cache.write", 0),
            "hit_rate": hits / (hits + misses) if hits + misses else None,
            "miss_reasons": reasons.get("cache.miss", {}),
        },
        "tracestore": {
            "reuses": counters.get("tracestore.hit", 0),
            "misses": counters.get("tracestore.miss", 0),
        },
        "phases": phases,
        "queue_s": queue_s,
        "compute_s": compute_s,
        "faults": {
            "retries": counters.get("task.retry", 0),
            "timeouts": counters.get("task.timeout", 0),
            "respawns": counters.get("worker.respawn", 0),
            "failed_points": counters.get("point.failed", 0),
            "retry_reasons": reasons.get("task.retry", {}),
            "respawn_reasons": reasons.get("worker.respawn", {}),
        },
    }


def _share(n: int, total: int) -> str:
    return f"{n / total:.0%}" if total else "-"


def render_attribution(trace: RunTrace) -> str:
    """The post-run attribution table ``--trace`` prints: where every
    point went (path × kernel family), batch efficiency, cache hit
    rate with miss reasons, fastsim phase timings, queue vs compute."""
    s = summarize(trace)
    out: List[str] = []
    label = s["meta"].get("scenario") or s["meta"].get("kernel") \
        or s["meta"].get("command") or "run"
    head = (f"run trace — {label}: {s['points']} point(s) in "
            f"{s['elapsed']:.2f}s")
    if s["jobs"] is not None:
        head += f" (jobs={s['jobs']})"
    out.append(head)

    rows = [[path, n, _share(n, s["points"])]
            for path, n in sorted(s["paths"].items(),
                                  key=lambda kv: -kv[1])]
    out.append(format_table(["path", "points", "share"], rows,
                            title="execution paths"))
    if s["batches"]:
        out.append(f"batch efficiency: {s['batched_points']} point(s) in "
                   f"{s['batches']} batch(es) "
                   f"({s['batched_points'] / s['batches']:.1f} "
                   f"points/batch); batch-path coverage "
                   f"{s['batch_coverage']:.0%} of "
                   f"{s['batchable_points']} batchable point(s)")
    krows = [[name, int(k["points"]), int(k["tasks"]),
              round(k["compute_s"], 4)]
             for name, k in sorted(s["kernels"].items(),
                                   key=lambda kv: -kv[1]["compute_s"])]
    out.append(format_table(["kernel", "points", "tasks", "compute_s"],
                            krows, title="kernel families"))
    c = s["cache"]
    if c["hits"] or c["misses"] or c["writes"]:
        reasons = ", ".join(f"{k}={int(v)}" for k, v in
                            sorted(c["miss_reasons"].items())) or "-"
        rate = f"{c['hit_rate']:.0%}" if c["hit_rate"] is not None else "-"
        out.append(f"result cache: {int(c['hits'])} hit(s) / "
                   f"{int(c['misses'])} miss(es) ({rate} hit rate), "
                   f"{int(c['writes'])} write(s); miss reasons: {reasons}")
    ts = s["tracestore"]
    if ts["reuses"] or ts["misses"]:
        out.append(f"trace store: {int(ts['reuses'])} mmap reuse(s), "
                   f"{int(ts['misses'])} miss(es) (built fresh)")
    f = s["faults"]
    if f["retries"] or f["timeouts"] or f["respawns"] or f["failed_points"]:
        reasons = ", ".join(f"{k}={int(v)}" for k, v in
                            sorted(f["retry_reasons"].items())) or "-"
        out.append(f"fault tolerance: {int(f['retries'])} task retr"
                   f"{'y' if f['retries'] == 1 else 'ies'} "
                   f"(reasons: {reasons}), {int(f['timeouts'])} "
                   f"timeout kill(s), {int(f['respawns'])} worker "
                   f"respawn(s), {int(f['failed_points'])} failed "
                   f"point(s)")
    if s["phases"]:
        prows = [[name, int(p["calls"]), round(p["seconds"], 4)]
                 for name, p in sorted(s["phases"].items(),
                                       key=lambda kv: -kv[1]["seconds"])]
        out.append(format_table(["phase", "calls", "seconds"], prows,
                                title="profiling phases"))
    out.append(f"queue vs compute: {s['queue_s']:.3f}s queued, "
               f"{s['compute_s']:.3f}s computing")
    return "\n".join(out)


def render_diff(a: RunTrace, b: RunTrace,
                labels: Sequence[str] = ("a", "b")) -> str:
    """Side-by-side comparison of two saved traces (the regression
    view: elapsed, paths, batch efficiency, cache behaviour, kernel
    compute time and fastsim phases, with b/a ratios)."""
    sa, sb = summarize(a), summarize(b)
    la, lb = labels

    def ratio(x: Any, y: Any) -> Any:
        if isinstance(x, (int, float)) and isinstance(y, (int, float)) \
                and x:
            return round(y / x, 3)
        return "-"

    def fmt(v: Any) -> Any:
        if isinstance(v, float):
            return round(v, 4)
        return v if v is not None else "-"

    rows: List[List[Any]] = []

    def add(name: str, va: Any, vb: Any) -> None:
        rows.append([name, fmt(va), fmt(vb), ratio(va, vb)])

    add("points", sa["points"], sb["points"])
    add("elapsed_s", sa["elapsed"], sb["elapsed"])
    for path in sorted(set(sa["paths"]) | set(sb["paths"])):
        add(f"path.{path}", sa["paths"].get(path, 0),
            sb["paths"].get(path, 0))
    add("batches", sa["batches"], sb["batches"])
    add("batched_points", sa["batched_points"], sb["batched_points"])
    add("batch_coverage", sa["batch_coverage"], sb["batch_coverage"])
    add("cache.hit_rate", sa["cache"]["hit_rate"], sb["cache"]["hit_rate"])
    add("cache.writes", sa["cache"]["writes"], sb["cache"]["writes"])
    add("queue_s", sa["queue_s"], sb["queue_s"])
    add("compute_s", sa["compute_s"], sb["compute_s"])
    fa, fb = sa["faults"], sb["faults"]
    if any(fa[k] or fb[k] for k in
           ("retries", "timeouts", "respawns", "failed_points")):
        add("faults.retries", fa["retries"], fb["retries"])
        add("faults.timeouts", fa["timeouts"], fb["timeouts"])
        add("faults.respawns", fa["respawns"], fb["respawns"])
        add("faults.failed_points", fa["failed_points"],
            fb["failed_points"])
    for kernel in sorted(set(sa["kernels"]) | set(sb["kernels"])):
        add(f"kernel.{kernel}.compute_s",
            sa["kernels"].get(kernel, {}).get("compute_s", 0.0),
            sb["kernels"].get(kernel, {}).get("compute_s", 0.0))
    for phase in sorted(set(sa["phases"]) | set(sb["phases"])):
        add(f"phase.{phase}.seconds",
            sa["phases"].get(phase, {}).get("seconds", 0.0),
            sb["phases"].get(phase, {}).get("seconds", 0.0))
    title = (f"trace diff — {la}: "
             f"{sa['meta'].get('scenario') or sa['meta'].get('kernel') or '?'}"
             f" vs {lb}: "
             f"{sb['meta'].get('scenario') or sb['meta'].get('kernel') or '?'}")
    return format_table(["metric", la, lb, f"{lb}/{la}"], rows, title=title)
