"""Content-addressed on-disk store for generated address traces.

Building a trace (a Python loop over the kernel's task order) costs far
more than simulating it, and a capacity/policy sweep re-generates the
*same* trace for every point — per worker process, per run.  This store
memoizes finalized ``(lines, writes)`` arrays on disk, keyed exactly like
the result cache: the SHA-256 of the canonical JSON of the
trace-generating parameters plus the repro source fingerprint, so any
code change transparently invalidates every trace it could have shaped.

Each entry is a pair of raw ``.npy`` files (loaded back memory-mapped, so
concurrent workers share pages instead of each materializing a copy), an
optional ``.chunks.npy`` sidecar holding the tile-chunk lengths (so the
fastsim super-symbol fold survives the store round-trip), plus a small
JSON sidecar recording the payload for `repro-lab cache stats`.  Writes
are atomic (tempfile + ``os.replace``); a store whose root cannot be
created degrades to a no-op, like :class:`repro.lab.cache.ResultCache`.

The store is also the executor's **zero-copy worker handoff**: the
parent stages a batch task's traces here at dispatch and ships only the
content-addressed *keys* in the task payload; workers resolve them with
:func:`TraceStore.get_by_key` inside a :func:`staged_keys` context and
mmap the shared files read-only instead of unpickling event arrays.

The store is **opt-in**: :func:`active_store` returns one only when
``$REPRO_LAB_TRACES`` names a directory or the CLI/executor installed one
via :func:`set_active_store` (``repro-lab run/sweep`` do so by default;
``--no-trace-store`` opts back out).  Plain library calls never touch the
filesystem behind your back.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import (Callable, Dict, Iterable, Iterator, Optional, Tuple,
                    Union)

import numpy as np

from repro.lab import telemetry
from repro.lab.cache import code_fingerprint, default_cache_root, point_key
from repro.machine.fastsim.profile import phase as fs_phase
from repro.machine.trace import Trace

__all__ = ["TraceStore", "active_store", "set_active_store",
           "default_trace_root", "store_from_env",
           "staged_keys", "is_staged"]

#: env var: a directory enables the store there; "off"/"0"/"none" keeps it
#: disabled even when the CLI would install the default one.
TRACES_ENV = "REPRO_LAB_TRACES"
_OFF_VALUES = ("off", "0", "none", "disabled", "no")
#: internal worker-propagation channel for :func:`set_active_store`;
#: never read as user intent (that is what :data:`TRACES_ENV` is for).
_ACTIVE_ENV = "_REPRO_LAB_TRACES_ACTIVE"


def default_trace_root() -> Path:
    return default_cache_root() / "traces"


class TraceStore:
    """Persistent ``(lines, writes)`` store with hit/miss accounting."""

    def __init__(self,
                 root: Optional[Union[str, Path]] = None,
                 code_version: Optional[str] = None):
        self.root = Path(root) if root is not None else default_trace_root()
        self.code_version = code_version or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.disabled = False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            self.disabled = True

    # ------------------------------------------------------------------ #
    def key_for(self, payload: Dict) -> str:
        return point_key({"trace": dict(payload)}, self.code_version)

    def _paths(self, key: str) -> Tuple[Path, Path, Path, Path]:
        shard = self.root / key[:2]
        return (shard / f"{key}.lines.npy",
                shard / f"{key}.writes.npy",
                shard / f"{key}.chunks.npy",
                shard / f"{key}.json")

    def get(self, payload: Dict) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Memory-mapped arrays for *payload*, or ``None`` on a miss.

        Entries are validated structurally before they are served: a
        finalized trace is a 1-D ``int64`` line array and a matching 1-D
        ``bool`` write mask, and anything else on disk (a truncated
        write, a foreign file under the right name, a stale format) is
        treated as a miss — :meth:`get_or_build` then rebuilds and
        overwrites it — rather than fed into the simulation kernels.
        """
        tr = self.get_by_key(self.key_for(payload))
        return None if tr is None else (tr.lines, tr.writes)

    def get_trace(self, payload: Dict) -> Optional[Trace]:
        """Like :meth:`get`, but as a :class:`Trace` with the tile-chunk
        sidecar attached when one round-trips validation."""
        return self.get_by_key(self.key_for(payload))

    def get_by_key(self, key: str) -> Optional[Trace]:
        """Memory-mapped :class:`Trace` for a content-addressed *key*.

        This is the zero-copy worker handoff: the executor ships keys
        (strings) across the pool boundary and each worker maps the
        shared ``.npy`` files read-only here.  The ``.chunks.npy``
        sidecar is optional — a missing or inconsistent one degrades to
        ``chunk_lens=None`` (event-granular simulation), never to an
        error.
        """
        if self.disabled:
            self._count_miss("disabled")
            return None
        lines_p, writes_p, chunks_p, _ = self._paths(key)
        try:
            lines = np.load(lines_p, mmap_mode="r")
            writes = np.load(writes_p, mmap_mode="r")
        except (OSError, ValueError):
            self._count_miss("absent")
            return None
        if (lines.ndim != 1 or writes.ndim != 1
                or lines.shape != writes.shape
                or lines.dtype != np.int64 or writes.dtype != np.bool_):
            self._count_miss("invalid")
            return None
        chunk_lens: Optional[np.ndarray] = None
        try:
            chunks = np.load(chunks_p, mmap_mode="r")
            if (chunks.ndim == 1 and chunks.dtype == np.int64
                    and (len(chunks) == 0 or int(chunks.min()) > 0)
                    and int(chunks.sum()) == len(lines)):
                chunk_lens = chunks
        except (OSError, ValueError):
            pass
        self.hits += 1
        trace = telemetry.active_trace()
        if trace is not None:
            # build-vs-reuse attribution: a hit is a mmap reuse.
            trace.counter("tracestore.hit")
        return Trace(lines, writes, chunk_lens)

    def _count_miss(self, reason: str) -> None:
        self.misses += 1
        trace = telemetry.active_trace()
        if trace is not None:
            trace.counter("tracestore.miss", reason=reason)

    def put(self, payload: Dict, lines: np.ndarray,
            writes: np.ndarray,
            chunk_lens: Optional[np.ndarray] = None) -> bool:
        if self.disabled:
            return False
        key = self.key_for(payload)
        lines_p, writes_p, chunks_p, meta_p = self._paths(key)
        if chunk_lens is not None:
            chunk_lens = np.ascontiguousarray(chunk_lens, dtype=np.int64)
            if (chunk_lens.ndim != 1
                    or (len(chunk_lens)
                        and int(chunk_lens.min()) <= 0)
                    or int(chunk_lens.sum()) != len(lines)):
                chunk_lens = None  # malformed sidecar: store chunkless
        meta = {"key": key, "code_version": self.code_version,
                "trace": dict(payload), "events": int(len(lines)),
                "chunks": None if chunk_lens is None else len(chunk_lens)}
        try:
            blob = json.dumps(meta, sort_keys=True)
        except (TypeError, ValueError):
            return False
        # Store the canonical trace form get() validates (1-D int64 /
        # bool): other integer widths widen and non-bool write masks
        # coerce exactly as the simulation kernels would; anything else
        # (float lines, wrong ndim) is refused outright — a blob get()
        # permanently rejects would only force a rebuild on every run.
        lines = np.ascontiguousarray(lines)
        if lines.dtype != np.int64 and np.issubdtype(lines.dtype,
                                                     np.integer):
            lines = lines.astype(np.int64)
        writes = np.ascontiguousarray(writes, dtype=bool)
        if (lines.dtype != np.int64 or lines.ndim != 1
                or writes.ndim != 1 or lines.shape != writes.shape):
            return False
        try:
            lines_p.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_npy(lines_p, lines)
            self._atomic_npy(writes_p, writes)
            if chunk_lens is not None:
                self._atomic_npy(chunks_p, chunk_lens)
            elif chunks_p.exists():
                chunks_p.unlink()  # don't pair a stale sidecar with new data
            fd, tmp = tempfile.mkstemp(dir=str(meta_p.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(blob)
                os.replace(tmp, meta_p)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self.stores += 1
        return True

    @staticmethod
    def _atomic_npy(path: Path, arr: np.ndarray) -> None:
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".npy.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.save(fh, arr)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_or_build(
        self,
        payload: Dict,
        builder: Callable[[], Tuple[np.ndarray, np.ndarray]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Serve *payload* from disk, or build, store and return it."""
        cached = self.get(payload)
        if cached is not None:
            return cached
        with fs_phase("trace_build"):
            lines, writes = builder()
        self.put(payload, lines, writes)
        return lines, writes

    def get_or_build_trace(self, payload: Dict,
                           builder: Callable[[], Trace]) -> Trace:
        """Serve *payload* as a :class:`Trace` from disk, or build,
        store (with the tile-chunk sidecar) and return it."""
        cached = self.get_trace(payload)
        if cached is not None:
            return cached
        with fs_phase("trace_build"):
            built = builder()
        self.put(payload, built.lines, built.writes, built.chunk_lens)
        return built

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if self.disabled or not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def entries(self) -> Iterator[Dict]:
        """Yield every sidecar document (any code version)."""
        if self.disabled or not self.root.exists():
            return
        for path in sorted(self.root.glob("*/*.json")):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    yield json.load(fh)
            except (OSError, ValueError):
                continue

    def total_bytes(self) -> int:
        if self.disabled or not self.root.exists():
            return 0
        return sum(p.stat().st_size
                   for p in self.root.glob("*/*")
                   if p.is_file())

    def gc(self, keep_version: Optional[str] = None) -> int:
        """Drop traces not matching *keep_version* (default: current code
        fingerprint); pass ``keep_version=""`` to drop everything.

        Sweeps every file under the root — not just entries with valid
        sidecars — so blobs orphaned by a crashed ``put()`` (payload
        written, sidecar not) are reclaimed too.  Returns the number of
        distinct trace keys removed.
        """
        if keep_version is None:
            keep_version = self.code_version
        if self.disabled or not self.root.exists():
            return 0
        keep_keys = set()
        if keep_version:
            for doc in self.entries():
                if doc.get("code_version") == keep_version and doc.get("key"):
                    keep_keys.add(doc["key"])
        removed_keys = set()
        for path in list(self.root.glob("*/*")):
            if not path.is_file():
                continue
            name = path.name
            key = None
            for suffix in (".lines.npy", ".writes.npy", ".chunks.npy",
                           ".json"):
                if name.endswith(suffix):
                    key = name[:-len(suffix)]
                    break
            if key in keep_keys:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            if key is not None:  # junk (e.g. crashed tmp files) swept
                removed_keys.add(key)  # but not counted as traces
        return len(removed_keys)

    def describe(self) -> str:
        state = "disabled" if self.disabled else str(self.root)
        return (f"trace store at {state}: {len(self)} traces, "
                f"{self.total_bytes() / 1e6:.1f} MB, "
                f"code version {self.code_version}")


# --------------------------------------------------------------------- #
# process-wide active store (inherited by executor worker processes)
# --------------------------------------------------------------------- #
_active: Union[TraceStore, None, str] = "unset"


def store_from_env() -> Optional[TraceStore]:
    """A store as ``$REPRO_LAB_TRACES`` dictates: a path enables it there,
    off-values (or an unset variable) leave it disabled."""
    env = os.environ.get(TRACES_ENV, "").strip()
    if not env or env.lower() in _OFF_VALUES:
        return None
    store = TraceStore(env)
    return None if store.disabled else store


def active_store() -> Optional[TraceStore]:
    """The store trace-generating kernels should consult (or ``None``).

    Resolution order: a store installed via :func:`set_active_store`
    (including one an executor parent exported for its workers), then
    whatever ``$REPRO_LAB_TRACES`` dictates.
    """
    global _active
    if _active == "unset":
        exported = os.environ.get(_ACTIVE_ENV)
        if exported is not None:
            if exported.lower() in _OFF_VALUES:
                _active = None
            else:
                store = TraceStore(exported)
                _active = None if store.disabled else store
        else:
            _active = store_from_env()
    return _active  # type: ignore[return-value]


# --------------------------------------------------------------------- #
# staged-key context: the executor's zero-copy trace handoff
# --------------------------------------------------------------------- #
_staged: frozenset = frozenset()


@contextmanager
def staged_keys(keys: Iterable[str]) -> Iterator[None]:
    """Mark trace-store *keys* as staged for the current task.

    The executor parent builds (or verifies) each batch task's traces in
    the store at dispatch and ships their keys in the task payload; the
    worker wraps the task body in this context so
    :meth:`repro.lab.registry.TraceKernel.trace` resolves the trace with
    a read-only mmap (:meth:`TraceStore.get_by_key`) instead of
    rebuilding — or worse, the parent pickling event arrays across the
    pool boundary."""
    global _staged
    prev = _staged
    _staged = prev | frozenset(keys)
    try:
        yield
    finally:
        _staged = prev


def is_staged(key: str) -> bool:
    """Whether the executor staged *key* for the current task."""
    return key in _staged


def set_active_store(store: Optional[TraceStore]) -> Optional[TraceStore]:
    """Install *store* process-wide and export it on the *internal*
    worker-propagation variable (so executor worker processes resolve the
    same one); ``$REPRO_LAB_TRACES`` itself — the user's intent — is
    never touched.  Returns the previous store."""
    global _active
    previous = None if _active == "unset" else _active
    _active = store
    if store is None or store.disabled:
        os.environ[_ACTIVE_ENV] = "off"
    else:
        os.environ[_ACTIVE_ENV] = str(store.root)
    return previous  # type: ignore[return-value]
