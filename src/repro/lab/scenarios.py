"""Declarative scenario specs, cartesian expansion, and named presets.

A :class:`Scenario` is a parameter grid over a kernel and a machine; its
:meth:`~Scenario.points` expand to concrete :class:`ScenarioPoint`\\ s, the
unit the executor runs and the result cache keys.  Presets in
:data:`SCENARIOS` reproduce each decomposable paper figure point-by-point
(so sweeps parallelize and cache at the finest grain) and add new
NVM-style machine sweeps that the serial harnesses never covered.

Report helpers (:func:`fig2_rows`, :func:`fig5_rows`, :func:`sec6_rows`)
reassemble point records into exactly the row structures the serial
harnesses in :mod:`repro.experiments` return, so the formatted output of
``python -m repro.lab run fig2`` is byte-identical to
``python -m repro.experiments fig2``.
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass, field, replace
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Set)

from repro.experiments import Fig2Config, format_fig2, format_fig5, format_sec6
from repro.experiments.fig2 import fig2_ideal_misses, fig2_variants
from repro.experiments.lu_tradeoff import lu_scenario
from repro.experiments.sec7_model1 import sec7_scenario
from repro.experiments.table1 import table1_scenario
from repro.experiments.table2 import table2_scenario
from repro.lab.registry import (
    EXPERIMENTS,
    KERNELS,
    MACHINES,
    MachineSpec,
    fig2_config,
    machine_fields,
    project_machine,
)
from repro.util import format_table, require

__all__ = [
    "Scenario",
    "ScenarioPoint",
    "SCENARIOS",
    "get_scenario",
    "fig2_scenario",
    "fig5_scenario",
    "sec6_scenario",
    "nvm_matmul_scenario",
    "prop62_scenario",
    "distributed_scenario",
    "krylov_scenario",
    "costmap_scenario",
    "experiments_scenario",
    "fig2_rows",
    "fig5_rows",
    "sec6_rows",
]


# --------------------------------------------------------------------- #
# points and scenarios
# --------------------------------------------------------------------- #
@dataclass
class ScenarioPoint:
    """One concrete (kernel, machine, params) simulation."""

    kernel: str
    machine: MachineSpec
    params: Dict[str, Any]

    def payload(self) -> Dict[str, Any]:
        """JSON-serializable identity of this point — the full machine
        spec, as workers need to reconstruct it (:meth:`from_payload`)."""
        return {
            "kernel": self.kernel,
            "machine": self.machine.as_dict(),
            "params": dict(self.params),
        }

    def cache_payload(self) -> Dict[str, Any]:
        """The result-cache identity of this point: the payload with the
        machine projected to the fields this point's kernel declares it
        reads (:data:`repro.lab.registry.MACHINE_FIELDS`), so renaming a
        machine — or changing a field the kernel never looks at — does
        not cold-start the cache."""
        return {
            "kernel": self.kernel,
            "machine": project_machine(self.machine, self.kernel),
            "params": dict(self.params),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ScenarioPoint":
        return cls(
            kernel=payload["kernel"],
            machine=MachineSpec.from_dict(payload["machine"]),
            params=dict(payload["params"]),
        )

    def run(self) -> Dict[str, Any]:
        try:
            fn = KERNELS[self.kernel]
        except KeyError:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"available: {sorted(KERNELS)}"
            ) from None
        return fn(self.machine, self.params)


@dataclass
class Scenario:
    """A named sweep: fixed params + a cartesian grid over a kernel.

    ``grid`` maps parameter names to value lists; keys are expanded in
    insertion order with the **last key varying fastest** (standard
    odometer order).  A key of the form ``machine.<field>`` overrides that
    field of the machine spec instead of becoming a kernel parameter.
    Presets with non-cartesian structure supply ``explicit`` points.
    """

    name: str
    kernel: str
    machine: MachineSpec
    description: str = ""
    fixed: Dict[str, Any] = field(default_factory=dict)
    grid: Dict[str, Sequence[Any]] = field(default_factory=dict)
    explicit: Optional[List[ScenarioPoint]] = None
    #: assembles (scenario, results) into a human-readable report.
    report: Optional[Callable[["Scenario", List[Any]], str]] = None
    #: free-form context the report assembler needs (e.g. the middles axis).
    meta: Dict[str, Any] = field(default_factory=dict)

    def points(self) -> List[ScenarioPoint]:
        if self.explicit is not None:
            return list(self.explicit)
        self._check_machine_axes()
        keys = list(self.grid)
        pts: List[ScenarioPoint] = []
        for values in itertools.product(*(self.grid[k] for k in keys)):
            params = dict(self.fixed)
            spec = self.machine
            overrides: Dict[str, Any] = {}
            for key, val in zip(keys, values):
                if key.startswith("machine."):
                    overrides[key[len("machine."):]] = val
                else:
                    params[key] = val
            if overrides:
                spec = spec.override(**overrides)
            pts.append(ScenarioPoint(self.kernel, spec, params))
        return pts

    def _check_machine_axes(self) -> None:
        """Reject grid axes over machine fields the kernel never reads.

        A kernel with declared machine relevance
        (:data:`repro.lab.registry.MACHINE_FIELDS`) produces the same
        record for every value of an unread field, so such an axis
        would sweep identical points (and, under projected cache keys,
        collapse onto one cache entry) — a silent no-op grid.  Failing
        at scenario validation keeps the mistake loud.
        """
        fields = machine_fields(self.kernel)
        if fields is None:
            return
        for key in self.grid:
            if not key.startswith("machine."):
                continue
            name = key[len("machine."):]
            hint = ("; use --hw KEY=VALUE to sweep cost-model rates"
                    if "hw" in fields else "")
            require(
                name in fields,
                f"kernel {self.kernel!r} does not read machine.{name}; "
                f"sweeping it would produce identical points (relevant "
                f"machine fields: {sorted(fields) or 'none'}{hint})")

    def render(self, results: List[Any]) -> str:
        if self.report is not None:
            return self.report(self, results)
        return _default_report(self, results)

    def known_param_keys(self) -> Set[str]:
        """Every kernel-parameter name this scenario's points carry —
        the CLI warns when a ``--set`` key matches none of them (a typo
        is silently inert otherwise, while still changing cache keys).
        Rebuild-backed presets don't consult this: their ``--set`` keys
        are validated against the factory signature in
        :meth:`with_overrides` instead."""
        if self.explicit is not None:
            keys: Set[str] = set()
            for pt in self.explicit:
                keys |= set(pt.params)
            return keys
        return set(self.fixed) | set(self.grid)

    def with_overrides(self, sets: Optional[Mapping[str, Any]] = None,
                       hw: Optional[Mapping[str, float]] = None,
                       ) -> "Scenario":
        """A copy with ``--set``-style overrides applied.

        *sets* keys become fixed kernel parameters (``machine.<field>``
        keys override the machine spec instead); a key that names a grid
        axis pins it, removing the axis.  *hw* merges
        :class:`~repro.distributed.costmodel.HwParams` overrides into
        every machine (see :meth:`MachineSpec.with_hw`).

        Presets whose points are a *coupled* family (the table1/table2/
        sec7-nvm/lu-tradeoff decompositions, where e.g. ``P`` means one
        thing to the analytic cells and another to the small executed
        cross-check) carry a ``rebuild`` hook in :attr:`meta`; parameter
        overrides are routed through it so the whole family — headline
        cells, dominance point, validation geometry — stays consistent.
        Elsewhere parameter overrides merge into every point; reports
        may assume the preset's geometry — overriding it is a power
        tool.
        """
        sets = dict(sets or {})
        hw = dict(hw or {})
        if not sets and not hw:
            return self
        machine_over = {k[len("machine."):]: v for k, v in sets.items()
                        if k.startswith("machine.")}
        param_over = {k: v for k, v in sets.items()
                      if not k.startswith("machine.")}

        rebuild = self.meta.get("rebuild")
        if param_over and rebuild is not None:
            try:
                # Bind first so only genuinely unsupported *keys* are
                # reported here; a bad *value* raises from the factory
                # body with its own (accurate) error.
                inspect.signature(rebuild).bind(**param_over)
            except TypeError:
                raise ValueError(
                    f"scenario {self.name!r} does not accept override(s) "
                    f"{sorted(param_over)}; see its factory signature for "
                    f"the supported keys") from None
            rebuilt = rebuild(**param_over)
            machine_sets = {k: v for k, v in sets.items()
                            if k.startswith("machine.")}
            return rebuilt.with_overrides(machine_sets, hw)

        def patch(spec: MachineSpec) -> MachineSpec:
            if machine_over:
                spec = spec.override(**machine_over)
            if hw:
                spec = spec.with_hw(**hw)
            return spec

        if self.explicit is not None:
            points = [
                ScenarioPoint(pt.kernel, patch(pt.machine),
                              {**pt.params, **param_over})
                for pt in self.explicit
            ]
            return replace(self, machine=patch(self.machine),
                           explicit=points)
        return replace(
            self,
            machine=patch(self.machine),
            fixed={**self.fixed, **param_over},
            grid={k: v for k, v in self.grid.items() if k not in sets},
        )


def _default_report(scenario: Scenario, results: List[Any]) -> str:
    """Flat table over the union of param and record columns, plus any
    machine fields that vary across the sweep (swept ``machine.<field>``
    axes must stay visible in the output)."""
    specs = [res.point.machine.as_dict() for res in results]
    varying = [k for k in (specs[0] if specs else {})
               if any(s[k] != specs[0][k] for s in specs)]
    cols: List[str] = []
    rows = []
    for res, spec in zip(results, specs):
        flat = {**{f"machine.{k}": spec[k] for k in varying},
                **res.point.params, **res.record}
        for k in flat:
            if k not in cols:
                cols.append(k)
        rows.append(flat)
    body = [[row.get(c, "") for c in cols] for row in rows]
    return format_table(cols, body, title=f"scenario {scenario.name}")


# --------------------------------------------------------------------- #
# report assemblers (records -> legacy harness row structures)
# --------------------------------------------------------------------- #
def _counter_rows(chunk: List[Any], middles: Sequence[int]
                  ) -> Dict[str, Any]:
    p0 = chunk[0].point.params
    return {
        "scheme": p0["scheme"],
        "b3": p0["b3"],
        "middles": list(middles),
        "VICTIMS.M": [r.record["writebacks"] for r in chunk],
        "VICTIMS.E": [r.record["victims_e"] for r in chunk],
        "FILLS.E": [r.record["fills"] for r in chunk],
        "write_lb": [r.record["write_lb"] for r in chunk],
    }


def _chunks(items: List[Any], size: int) -> List[List[Any]]:
    require(len(items) % size == 0, "result list does not tile the grid")
    return [items[i:i + size] for i in range(0, len(items), size)]


def fig2_rows(scenario: Scenario, results: List[Any]
              ) -> List[Dict[str, Any]]:
    """Reassemble point records into ``run_fig2``'s output structure."""
    cfg: Fig2Config = scenario.meta["cfg"]
    rows = [_counter_rows(c, cfg.middles)
            for c in _chunks(results, len(cfg.middles))]
    rows[0]["ideal_misses"] = fig2_ideal_misses(cfg)
    return rows


def fig5_rows(scenario: Scenario, results: List[Any]
              ) -> Dict[str, List[Dict[str, Any]]]:
    """Reassemble point records into ``run_fig5``'s output structure."""
    cfg: Fig2Config = scenario.meta["cfg"]
    out: Dict[str, List[Dict[str, Any]]] = {"multilevel-wa": [],
                                            "two-level-ab": []}
    col_of = {"wa-multilevel": "multilevel-wa", "ab-multilevel": "two-level-ab"}
    for chunk in _chunks(results, len(cfg.middles)):
        row = _counter_rows(chunk, cfg.middles)
        out[col_of[row["scheme"]]].append(row)
    return out


def sec6_rows(scenario: Scenario, results: List[Any]
              ) -> List[Dict[str, Any]]:
    """Reassemble point records into ``run_sec6``'s output structure."""
    floor = scenario.meta["floor"]
    rows = []
    for res in results:
        rows.append({
            "scheme": res.point.params["scheme"],
            "capacity_blocks": res.point.params["cache_blocks"],
            "policy": res.point.machine.policy,
            "writebacks": res.record["writebacks"],
            "floor": floor,
            "ratio": res.record["writebacks"] / floor,
            "fills": res.record["fills"],
        })
    return rows


# --------------------------------------------------------------------- #
# presets
# --------------------------------------------------------------------- #
def fig2_scenario(quick: bool = False,
                  cfg: Optional[Fig2Config] = None) -> Scenario:
    """Figure 2 decomposed into one point per (variant, middle)."""
    cfg = cfg or fig2_config(quick)
    machine = MachineSpec(name="fig2-l3", cache_words=cfg.cache(),
                          line_size=cfg.line_size, policy=cfg.policy)
    points = [
        ScenarioPoint("matmul-cache", machine,
                      {"n": cfg.n_outer, "middle": m, "scheme": scheme,
                       "b3": b3, "b2": cfg.b2, "base": cfg.base})
        for scheme, b3 in fig2_variants(cfg)
        for m in cfg.middles
    ]
    return Scenario(
        name="fig2",
        kernel="matmul-cache",
        machine=machine,
        description="Figure 2: L3 counters of six matmul orders vs the "
                    "middle dimension",
        explicit=points,
        report=lambda sc, res: format_fig2(fig2_rows(sc, res)),
        meta={"cfg": cfg},
    )


def fig5_scenario(quick: bool = False,
                  cfg: Optional[Fig2Config] = None) -> Scenario:
    """Figure 5 decomposed into one point per (column, blocking, middle)."""
    cfg = cfg or fig2_config(quick)
    machine = MachineSpec(name="fig5-l3", cache_words=cfg.cache(),
                          line_size=cfg.line_size, policy=cfg.policy)
    points = [
        ScenarioPoint("matmul-cache", machine,
                      {"n": cfg.n_outer, "middle": m, "scheme": scheme,
                       "b3": b3, "b2": cfg.b2, "base": cfg.base})
        for b3 in cfg.b3_sizes()
        for scheme in ("wa-multilevel", "ab-multilevel")
        for m in cfg.middles
    ]
    return Scenario(
        name="fig5",
        kernel="matmul-cache",
        machine=machine,
        description="Figure 5: multi-level WA vs slab order under LRU",
        explicit=points,
        report=lambda sc, res: format_fig5(fig5_rows(sc, res)),
        meta={"cfg": cfg},
    )


def sec6_scenario(
    quick: bool = False,
    *,
    n: Optional[int] = None,
    middle: Optional[int] = None,
    b3: int = 16,
    b2: int = 8,
    base: int = 4,
    line: int = 4,
    policies: Sequence[str] = ("lru", "clock", "segmented-lru", "belady"),
    schemes: Sequence[str] = ("wa2", "ab-multilevel", "wa-multilevel"),
) -> Scenario:
    """Section 6 policy study as a scheme x capacity x policy grid."""
    n = n if n is not None else (32 if quick else 64)
    middle = middle if middle is not None else (32 if quick else 128)
    machine = MachineSpec(name="sec6-l3", line_size=line, policy="lru")
    return Scenario(
        name="sec6",
        kernel="matmul-cache",
        machine=machine,
        description="Section 6: write-backs vs output floor across "
                    "replacement policies and capacities",
        fixed={"n": n, "middle": middle, "b3": b3, "b2": b2, "base": base},
        grid={
            "scheme": list(schemes),
            "cache_blocks": [3, 4, 5],
            "machine.policy": list(policies),
        },
        report=lambda sc, res: format_sec6(sec6_rows(sc, res)),
        meta={"floor": n * n // line},
    )


def nvm_matmul_scenario(quick: bool = False) -> Scenario:
    """NEW: matmul orders on NVM-style machines with asymmetric costs.

    Sweeps the slow-side write energy from symmetric (battery-backed DRAM)
    to PCM-like 30x, on a cache sized so that only ~3 blocks fit — the
    regime where instruction order decides the write bill.
    """
    n = 32 if quick else 64
    b3 = max(4, n // 4)
    machine = MACHINES["nvm-pcm"].override(
        name="nvm-sweep", cache_words=3 * b3 * b3 + 4, line_size=4)
    return Scenario(
        name="nvm-matmul",
        kernel="matmul-cache",
        machine=machine,
        description="NVM provisioning: slow-memory energy of matmul orders "
                    "as the write/read cost asymmetry grows",
        fixed={"n": n, "middle": 2 * n, "b3": b3, "b2": max(4, b3 // 2),
               "base": 4},
        grid={
            "scheme": ["co", "mkl-like", "wa2", "ab-multilevel"],
            "machine.write_slow": [2.0, 8.0, 30.0],
        },
        report=_nvm_report,
    )


def _nvm_report(scenario: Scenario, results: List[Any]) -> str:
    headers = ["scheme", "write_slow", "writebacks", "fills", "energy",
               "energy/floor-energy"]
    body = []
    for res in results:
        m = res.point.machine
        floor_energy = m.line_size * (
            res.record["fills"] * m.read_slow
            + res.record["write_lb"] * m.write_slow
        )
        body.append([
            res.point.params["scheme"],
            m.write_slow,
            res.record["writebacks"],
            res.record["fills"],
            res.record["energy"],
            round(res.record["energy"] / floor_energy, 3),
        ])
    return format_table(
        headers, body,
        title="NVM sweep — slow-boundary energy by instruction order and "
              "write-cost asymmetry (floor = same fills, write-floor "
              "write-backs)")


def prop62_scenario(quick: bool = False) -> Scenario:
    """Proposition 6.2 across kernels: the TRSM, Cholesky and N-body
    write floors vs capacity, under LRU and the offline optimum.

    One point per (kernel, capacity, policy); every (kernel, policy)
    column is a pure capacity sweep over one memoized line trace, so the
    executor collapses the whole scenario into one batched replay per
    kernel (LRU and Belady share it — both are stack algorithms).
    """
    line = 4
    if quick:
        geometries = (("trsm-cache", {"n": 16, "m": 8, "b": 4}),
                      ("cholesky-cache", {"n": 16, "b": 4}),
                      ("nbody-cache", {"n": 32, "b": 8}))
    else:
        geometries = (("trsm-cache", {"n": 32, "m": 16, "b": 8}),
                      ("cholesky-cache", {"n": 32, "b": 8}),
                      ("nbody-cache", {"n": 64, "b": 8}))
    machine = MachineSpec(name="prop62-l3", line_size=line, policy="lru")
    points = [
        ScenarioPoint(kernel, machine.override(policy=policy),
                      dict(params, cache_blocks=blocks))
        for kernel, params in geometries
        for blocks in (1, 2, 3, 4, 5, 6)
        for policy in ("lru", "belady")
    ]
    return Scenario(
        name="prop62",
        kernel="trsm-cache",
        machine=machine,
        description="Proposition 6.2: TRSM/Cholesky/N-body write-backs "
                    "vs the output floor across capacities and policies",
        explicit=points,
        report=_prop62_report,
    )


def _prop62_report(scenario: Scenario, results: List[Any]) -> str:
    headers = ["kernel", "cache (blocks)", "policy", "write-backs",
               "floor", "ratio", "fills"]
    body = []
    for res in results:
        rec = res.record
        body.append([
            res.point.kernel,
            res.point.params["cache_blocks"],
            res.point.machine.policy,
            rec["writebacks"],
            rec["write_lb"],
            round(rec["writebacks"] / rec["write_lb"], 2),
            rec["fills"],
        ])
    return format_table(
        headers, body,
        title="Proposition 6.2 — write-backs vs output floor (five b-blocks "
              "suffice for TRSM/Cholesky; three for N-body)")


def distributed_scenario(quick: bool = False) -> Scenario:
    """Every executed distributed algorithm as one verified, counted
    point: both SUMMA flavours (Model 1), the Model-2.2 pair exhibiting
    the Theorem-4 trade-off, 2.5D replication, and both LU variants."""
    machine = MachineSpec(name="dist-sim")
    if quick:
        n, P, M1, M2 = 16, 4, 3 * 16, 3 * 2 * 2
    else:
        n, P, M1, M2 = 32, 16, 3 * 16, 3 * 4 * 4
    points = [
        ScenarioPoint("summa-2d", machine,
                      {"n": n, "P": P, "M1": M1, "hoard": False, "seed": 0}),
        ScenarioPoint("summa-2d", machine,
                      {"n": n, "P": P, "M1": M1, "hoard": True, "seed": 0}),
        ScenarioPoint("summa-l3-ool2", machine,
                      {"n": n, "P": P, "M2": M2, "seed": 1}),
        ScenarioPoint("mm-25d", machine,
                      {"n": n, "P": P, "c": 1, "storage": "L3-ooL2",
                       "M2": M2, "seed": 1}),
        ScenarioPoint("mm-25d", machine,
                      {"n": 8 if quick else 16, "P": 8, "c": 2, "seed": 0}),
        ScenarioPoint("lu-ll-nonpivot", machine,
                      {"n": n, "b": 4, "P": 4, "seed": 0}),
        ScenarioPoint("lu-rl-nonpivot", machine,
                      {"n": n, "b": 4, "P": 4, "seed": 0}),
    ]
    return Scenario(
        name="distributed",
        kernel="summa-2d",
        machine=machine,
        description="Executed distributed kernels: SUMMA / 2.5D / LU, "
                    "verified, with per-rank channel counters",
        explicit=points,
        report=_distributed_report,
    )


def _distributed_report(scenario: Scenario, results: List[Any]) -> str:
    headers = ["kernel", "n", "P", "correct", "net recv (max)",
               "NVM writes (max)", "NVM reads (max)", "L1→L2 (max)"]
    body = []
    for res in results:
        p, rec = res.point.params, res.record
        body.append([
            res.point.kernel, p["n"], p["P"], rec["correct"],
            rec["nw_recv_max"], rec["l2_to_l3_max"], rec["l3_to_l2_max"],
            rec["l1_to_l2_max"],
        ])
    return format_table(
        headers, body,
        title="Distributed kernels — executed and verified, per-rank "
              "maxima on the paper's channels")


def krylov_scenario(quick: bool = False) -> Scenario:
    """Section 8 as a sweep: CG vs (streaming) CA-CG vs (CA-)GMRES plus
    the matrix-powers and TSQR building blocks, one point per method
    configuration with slow-memory read/write/flop counters."""
    machine = MachineSpec(name="krylov-sim")
    mesh = 128 if quick else 256
    block = 32 if quick else 64
    s_values = (2, 4) if quick else (2, 4, 8)
    fixed = {"mesh": mesh, "block": block}
    points = [ScenarioPoint("krylov-cg", machine, {"mesh": mesh})]
    points += [
        ScenarioPoint("krylov-cacg", machine,
                      {**fixed, "s": s, "streaming": streaming})
        for s in s_values
        for streaming in (False, True)
    ]
    points += [
        ScenarioPoint("krylov-gmres", machine,
                      {**fixed, "s": 4, "variant": variant})
        for variant in ("restarted", "ca")
    ]
    points += [
        ScenarioPoint("krylov-matrix-powers", machine,
                      {**fixed, "s": 4, "variant": variant})
        for variant in ("naive", "blocked", "streaming")
    ]
    points += [
        ScenarioPoint("krylov-tsqr", machine,
                      {**fixed, "s": 4, "variant": variant})
        for variant in ("stored", "streaming")
    ]
    return Scenario(
        name="krylov",
        kernel="krylov-cacg",
        machine=machine,
        description="Krylov methods: write traffic of CG / CA-CG / "
                    "GMRES and the matrix-powers / TSQR kernels",
        explicit=points,
        report=_krylov_report,
    )


def _krylov_report(scenario: Scenario, results: List[Any]) -> str:
    headers = ["method", "s", "steps", "reads", "writes", "writes/step",
               "flops", "converged"]
    body = []
    for res in results:
        rec = res.record
        body.append([
            rec["method"], rec.get("s", 1), rec.get("steps", ""),
            rec["reads"], rec["writes"],
            round(rec["writes_per_step"], 1), rec["flops"],
            rec.get("converged", ""),
        ])
    return format_table(
        headers, body,
        title=f"Krylov sweep — slow-memory traffic "
              f"(mesh={scenario.explicit[0].params['mesh']}); streaming "
              f"variants cut writes by Θ(s)")


def costmap_scenario(quick: bool = False) -> Scenario:
    """NEW: an analytic provisioning map over (P, c3) for the Model-2.2
    NVM-staged 2.5D matmul.

    Pure closed-form arithmetic, so the executor evaluates the whole
    grid as one vectorized ``cost-*`` batch (``--no-batch`` opts out);
    the c3 axis deliberately runs past each P's ``c3 <= P^(1/3)`` edge,
    where points report ``feasible: False`` — provisioning questions
    are exactly about walking past those edges.
    """
    machine = MACHINES["hw-2015"]
    P_axis = [64, 256, 1024] if quick else [64, 256, 1024, 4096, 16384]
    c3_axis = [1, 2, 4, 8] if quick else [1, 2, 4, 8, 16, 32]
    return Scenario(
        name="cost-map",
        kernel="cost-25d-mm-l3-ool2",
        machine=machine,
        description="Provisioning map: 2.5DMML3ooL2 analytic cost over "
                    "(P, c3), one vectorized batch",
        fixed={"n": 1 << 14},
        grid={"P": P_axis, "c3": c3_axis},
    )


def experiments_scenario(quick: bool = False,
                         names: Optional[Sequence[str]] = None) -> Scenario:
    """Every legacy table/figure harness as one cacheable point each."""
    names = list(names) if names is not None else sorted(EXPERIMENTS)
    for name in names:
        require(name in EXPERIMENTS, f"unknown experiment {name!r}")
    machine = MachineSpec(name="paper")
    points = [
        ScenarioPoint("experiment", machine, {"name": name, "quick": quick})
        for name in names
    ]
    return Scenario(
        name="experiments",
        kernel="experiment",
        machine=machine,
        description="All paper tables/figures, one point per harness",
        explicit=points,
        report=lambda sc, res: "\n".join(
            f"==== {r.record['name']} "
            + "=" * max(0, 64 - len(r.record["name"]))
            + f"\n{r.record['formatted']}\n"
            for r in res
        ),
    )


#: Named presets: factory(quick) -> Scenario.
SCENARIOS: Dict[str, Callable[[bool], Scenario]] = {
    "fig2": fig2_scenario,
    "fig5": fig5_scenario,
    "sec6": sec6_scenario,
    "nvm-matmul": nvm_matmul_scenario,
    "prop62": prop62_scenario,
    "table1": table1_scenario,
    "table2": table2_scenario,
    "sec7-nvm": sec7_scenario,
    "lu-tradeoff": lu_scenario,
    "distributed": distributed_scenario,
    "krylov": krylov_scenario,
    "cost-map": costmap_scenario,
    "experiments": experiments_scenario,
}


def get_scenario(name: str, quick: bool = False) -> Scenario:
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return factory(quick)
