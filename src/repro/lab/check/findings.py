"""Finding/severity types and suppression filtering for `repro-lab check`."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ERROR", "WARNING", "Finding", "apply_suppressions",
           "sort_findings"]

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One contract violation, anchored to a source location."""

    rule: str        # "R1".."R5"
    severity: str    # ERROR | WARNING
    file: str        # absolute path; rendered relative to the repo root
    line: int
    message: str
    kernel: Optional[str] = None

    def location(self, base: Optional[Path] = None) -> str:
        path = Path(self.file)
        if base is not None:
            try:
                path = path.relative_to(base)
            except ValueError:
                pass
        return f"{path}:{self.line}"

    def to_dict(self, base: Optional[Path] = None) -> Dict[str, Any]:
        path = Path(self.file)
        if base is not None:
            try:
                path = path.relative_to(base)
            except ValueError:
                pass
        return {
            "rule": self.rule,
            "severity": self.severity,
            "file": str(path),
            "line": self.line,
            "kernel": self.kernel,
            "message": self.message,
        }


def apply_suppressions(findings: Sequence[Finding],
                       suppressions: Dict[str, Dict[int, set]]
                       ) -> List[Finding]:
    """Drop findings whose line carries ``# lab-check: ignore[RULE]``
    (or ``ignore[*]``) in *suppressions* (``file -> line -> {rules}``)."""
    kept = []
    for f in findings:
        rules = suppressions.get(f.file, {}).get(f.line, set())
        if f.rule in rules or "*" in rules:
            continue
        kept.append(f)
    return kept


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    return sorted(findings,
                  key=lambda f: (f.file, f.line, f.rule, f.message))
