"""repro.lab.check — static contract analyzer for the lab engine.

``repro-lab check`` (and the tier-1 pytest gate) enforces the engine's
declarative contracts *before runtime*:

* **R1 machine-projection soundness** — every ``machine.<attr>`` read in
  a kernel's call graph must be covered by its ``MACHINE_FIELDS`` row,
  or the projected cache key can serve stale records;
* **R2 registry completeness** — every kernel has explicit
  ``MACHINE_FIELDS``/``METRIC_FIELDS`` rows, presets reference
  registered kernels/machines/policies, batch toggles map to real CLI
  flags;
* **R3 determinism hazards** — no ``time``/``random``/``id()``/``hash()``
  or unsorted-set serialization in the cache-key call graphs;
* **R4 worker-boundary picklability** — functions dispatched to pool
  workers must be module-level importables;
* **R5 telemetry vocabulary** — literal span/phase/counter names must
  belong to :mod:`repro.lab.vocab`.

Findings are suppressable inline with ``# lab-check: ignore[RULE]`` on
the flagged line.  Sources parse under ``feature_version`` 3.10 — the
oldest supported interpreter — so newer-only syntax cannot sneak past a
newer CI runner.
"""

from repro.lab.check.findings import ERROR, WARNING, Finding
from repro.lab.check.project import FEATURE_VERSION, ProjectIndex
from repro.lab.check.rules import RULES, RegistryView
from repro.lab.check.runner import (
    ALL_RULES,
    CheckConfig,
    CheckReport,
    default_config,
    render_table,
    report_to_json,
    run_check,
)

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "FEATURE_VERSION",
    "ProjectIndex",
    "RULES",
    "RegistryView",
    "ALL_RULES",
    "CheckConfig",
    "CheckReport",
    "default_config",
    "render_table",
    "report_to_json",
    "run_check",
]
