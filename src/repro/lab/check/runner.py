"""Configuration, driver and renderers for `repro-lab check`."""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.lab.check.findings import (ERROR, Finding, apply_suppressions,
                                      sort_findings)
from repro.lab.check.project import ProjectIndex
from repro.lab.check.rules import RULES, RegistryView
from repro.util import format_table

__all__ = ["CheckConfig", "CheckReport", "default_config", "run_check",
           "render_table", "report_to_json"]

ALL_RULES: Tuple[str, ...] = ("R1", "R2", "R3", "R4", "R5")


@dataclass(frozen=True)
class CheckConfig:
    """What to analyze and against which contracts.

    The default configuration (:func:`default_config`) targets
    ``src/repro``; tests point a config at fixture packages with
    deliberately broken registrations instead.
    """

    #: package directories to parse (module names derive from each
    #: directory's name, so pass e.g. ``src/repro``).
    package_roots: Tuple[Path, ...]
    #: module exposing ``KERNELS`` / ``MACHINE_FIELDS`` / ``METRIC_FIELDS``
    #: / ``TRACE_KERNELS`` / ``BATCH_KERNELS`` / ``MACHINES`` / ``POLICIES``.
    registry_module: str
    #: module exposing ``SCENARIOS`` (optional).
    scenarios_module: Optional[str] = None
    #: module whose ``add_argument`` calls define the engine gate flags.
    cli_module: Optional[str] = None
    #: module exposing ``SPANS`` / ``PHASES`` / ``COUNTERS`` (rule R5).
    vocab_module: Optional[str] = None
    #: ``(module, class)`` of the machine-spec dataclass (rule R1).
    machine_class: Optional[Tuple[str, str]] = None
    #: ``(module, class)`` of the trace-kernel protocol class whose
    #: ``run``/``record``/``lines`` methods join every trace kernel's
    #: call graph.
    trace_kernel_class: Optional[Tuple[str, str]] = None
    #: ``(module, qualname)`` roots of the cache-key call graphs (R3).
    key_roots: Tuple[Tuple[str, str], ...] = ()
    #: functions R1 must not descend into (the projection itself).
    r1_exempt: Tuple[Tuple[str, str], ...] = ()
    #: ``(module, attr)`` of extra ``{kernel: callable}`` evaluator
    #: tables whose entries join R1's walk (dynamic dict dispatch the
    #: static walker cannot follow).
    extra_evaluator_attrs: Tuple[Tuple[str, str], ...] = ()
    #: modules R5 skips (the telemetry machinery itself).
    r5_exclude_modules: Tuple[str, ...] = ()
    #: ``(module, qualname)`` of free functions that emit phase timings.
    phase_functions: Tuple[Tuple[str, str], ...] = ()
    #: base directory findings are rendered relative to.
    display_base: Optional[Path] = None
    rules: Tuple[str, ...] = ALL_RULES

    def with_rules(self, rules: Tuple[str, ...]) -> "CheckConfig":
        return replace(self, rules=rules)


@dataclass
class CheckReport:
    """The outcome of one analyzer run."""

    findings: List[Finding]
    suppressed: int
    rules: Tuple[str, ...]

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == ERROR)

    @property
    def warnings(self) -> int:
        return len(self.findings) - self.errors


def default_config() -> CheckConfig:
    """The shipped-tree configuration: ``src/repro`` and its contracts."""
    import repro

    package_root = Path(repro.__file__).resolve().parent
    return CheckConfig(
        package_roots=(package_root,),
        registry_module="repro.lab.registry",
        scenarios_module="repro.lab.scenarios",
        cli_module="repro.lab.cli",
        vocab_module="repro.lab.vocab",
        machine_class=("repro.lab.registry", "MachineSpec"),
        trace_kernel_class=("repro.lab.registry", "TraceKernel"),
        key_roots=(
            ("repro.lab.cache", "point_key"),
            ("repro.lab.scenarios", "ScenarioPoint.payload"),
            ("repro.lab.scenarios", "ScenarioPoint.cache_payload"),
            ("repro.lab.faults", "fault_key"),
            ("repro.lab.executor", "_batch_key"),
            ("repro.lab.registry", "capacity_group_payload"),
        ),
        r1_exempt=(("repro.lab.registry", "project_machine"),),
        extra_evaluator_attrs=(
            ("repro.lab.modelkernels", "COST_BATCH_EVALUATORS"),
        ),
        r5_exclude_modules=("repro.lab.telemetry",),
        phase_functions=(("repro.machine.fastsim.profile", "phase"),),
        display_base=package_root.parent.parent,
    )


def run_check(cfg: CheckConfig) -> CheckReport:
    """Parse, import, run every configured rule, apply suppressions."""
    index = ProjectIndex(cfg.package_roots)
    reg = RegistryView.load(cfg)
    findings: List[Finding] = []
    for rule in cfg.rules:
        findings.extend(RULES[rule](cfg, index, reg))
    suppressions: Dict[str, Dict[int, Set[str]]] = {
        str(m.path): m.suppressions
        for m in index.modules.values() if m.suppressions
    }
    kept = apply_suppressions(findings, suppressions)
    return CheckReport(
        findings=sort_findings(kept),
        suppressed=len(findings) - len(kept),
        rules=cfg.rules,
    )


def render_table(report: CheckReport, base: Optional[Path] = None) -> str:
    """Human-readable findings table plus a one-line verdict."""
    lines: List[str] = []
    if report.findings:
        rows = [(f.rule, f.severity, f.location(base),
                 (f.kernel or "-"), f.message)
                for f in report.findings]
        lines.append(format_table(
            ("RULE", "SEVERITY", "LOCATION", "KERNEL", "MESSAGE"), rows,
            title="lab-check findings"))
        lines.append("")
    verdict = (f"{report.errors} error(s), {report.warnings} warning(s)"
               if report.findings else "clean")
    suppressed = (f", {report.suppressed} suppressed"
                  if report.suppressed else "")
    lines.append(f"lab-check [{', '.join(report.rules)}]: "
                 f"{verdict}{suppressed}")
    return "\n".join(lines)


def report_to_json(report: CheckReport, base: Optional[Path] = None
                   ) -> str:
    payload: Dict[str, Any] = {
        "version": 1,
        "rules": list(report.rules),
        "errors": report.errors,
        "warnings": report.warnings,
        "suppressed": report.suppressed,
        "findings": [f.to_dict(base) for f in report.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
