"""Machine-projection call-graph walker (rule R1).

Given a kernel's entry callables, walk their statically-resolvable call
graph tracking every value known to *be* the machine spec — the
parameter named ``machine``, reassignments, ``override``/``with_hw``
copies, ``(machine, params)`` pairs destructured out of a batch
``group`` — and collect each ``machine.<attr>`` read with its source
location.  The union of reads is then compared against the kernel's
``MACHINE_FIELDS`` declaration: an undeclared read means the result
cache can serve stale records (the field changes, the projected key
does not), a declared-but-never-read field means cache entries split
for no reason.

Deliberate blind spots, documented so findings stay explainable:

* exception-handler bodies are skipped — a raising point produces no
  record, so its reads cannot leak into one;
* calls that cannot be resolved statically (callables fetched from
  dicts, protocol fields like ``tk.payload``) are skipped — the rule
  driver seeds those concrete callables as additional entries instead;
* the projection function itself (``project_machine``) is exempt: it
  reads the full spec *by design* in order to build the projection.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lab.check.project import FunctionInfo, ProjectIndex

__all__ = ["MachineReads", "MachineModel", "MachineReadWalker", "ReadSite"]

#: tracked-value roles.
_MACHINE = "machine"
_GROUP = "group"      # a sequence of (machine, params) pairs
_PAIR = "pair"        # one (machine, params) tuple


@dataclass(frozen=True)
class ReadSite:
    """Where a field read was observed."""

    file: str
    line: int


@dataclass
class MachineReads:
    """Accumulated reads for one kernel."""

    fields: Dict[str, ReadSite] = field(default_factory=dict)
    #: set when the walk hits ``self.__dict__`` / ``as_dict``-style
    #: whole-spec access.
    all_fields: Optional[ReadSite] = None

    def add(self, name: str, site: ReadSite) -> None:
        self.fields.setdefault(name, site)


@dataclass
class MachineModel:
    """Static model of the machine-spec class, derived from its AST."""

    fields: Set[str]
    methods: Dict[str, FunctionInfo]
    #: methods returning a (new) tracked spec.
    copy_methods: Set[str]

    @classmethod
    def from_class(cls, index: ProjectIndex, module_name: str,
                   class_name: str) -> Optional["MachineModel"]:
        module = index.modules.get(module_name)
        if module is None or class_name not in module.classes:
            return None
        node = module.classes[class_name]
        fields: Set[str] = set()
        methods: Dict[str, FunctionInfo] = {}
        for stmt in node.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                fields.add(stmt.target.id)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = module.method(class_name, stmt.name)
                if info is not None:
                    methods[stmt.name] = info
        copy_methods = {
            name for name, info in methods.items()
            if _returns_spec_copy(info.node, class_name)
        }
        return cls(fields=fields, methods=methods, copy_methods=copy_methods)


def _returns_spec_copy(node: ast.AST, class_name: str) -> bool:
    """Heuristic: the method's annotated return type is the spec class
    itself (``override``/``with_hw``-style copy constructors)."""
    returns = getattr(node, "returns", None)
    if isinstance(returns, ast.Constant) and isinstance(returns.value, str):
        return returns.value.strip("'\"") == class_name
    if isinstance(returns, ast.Name):
        return returns.id == class_name
    return False


class MachineReadWalker:
    """Collects machine-field reads over an entry set's call graph."""

    def __init__(self, index: ProjectIndex,
                 model: Optional[MachineModel],
                 exempt: Sequence[Tuple[str, str]] = ()):
        self.index = index
        self.model = model
        self.exempt = set(exempt)
        self._max_depth = 40

    def collect(self, entries: Sequence[Tuple[FunctionInfo, Dict[str, str]]]
                ) -> MachineReads:
        """*entries* are ``(function, {param_name: role})`` seeds."""
        out = MachineReads()
        visited: Set[Tuple[str, str, Tuple[Tuple[str, str], ...]]] = set()
        for info, roles in entries:
            self._walk(info, roles, out, visited, depth=0)
        return out

    def _walk(self, info: FunctionInfo, roles: Dict[str, str],
              out: MachineReads,
              visited: Set[Tuple[str, str, Tuple[Tuple[str, str], ...]]],
              depth: int) -> None:
        if depth > self._max_depth or not roles:
            return
        key = (*info.key(), tuple(sorted(roles.items())))
        if key in visited:
            return
        visited.add(key)
        visitor = _FnVisitor(self, info, dict(roles), out, visited, depth)
        body = info.node.body
        if isinstance(body, ast.expr):     # lambda
            visitor.visit(body)
        else:
            for stmt in body:
                visitor.visit(stmt)


class _FnVisitor(ast.NodeVisitor):
    def __init__(self, walker: MachineReadWalker, info: FunctionInfo,
                 env: Dict[str, str], out: MachineReads,
                 visited: Set[Tuple[str, str, Tuple[Tuple[str, str], ...]]],
                 depth: int):
        self.walker = walker
        self.info = info
        self.env = env
        self.out = out
        self.visited = visited
        self.depth = depth

    # ------------------------------------------------------------------ #
    # role bookkeeping
    # ------------------------------------------------------------------ #
    def _role(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id)
        if isinstance(expr, ast.Subscript):
            base = self._role(expr.value)
            if base == _GROUP:
                return _PAIR
            if base == _PAIR and _is_const(expr.slice, 0):
                return _MACHINE
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if (isinstance(func, ast.Attribute)
                    and self._role(func.value) == _MACHINE
                    and self.walker.model is not None
                    and func.attr in self.walker.model.copy_methods):
                return _MACHINE
        return None

    def _site(self, node: ast.AST) -> ReadSite:
        return ReadSite(str(self.info.module.path),
                        getattr(node, "lineno", self.info.line))

    def _bind(self, target: ast.expr, role: Optional[str]) -> None:
        if isinstance(target, ast.Name):
            if role is not None:
                self.env[target.id] = role
            else:
                self.env.pop(target.id, None)

    def _destructure(self, target: ast.expr, role: Optional[str]) -> None:
        """Bind a (machine, params) pair being unpacked."""
        if role == _PAIR and isinstance(target, (ast.Tuple, ast.List)) \
                and target.elts:
            self._bind(target.elts[0], _MACHINE)
            for extra in target.elts[1:]:
                self._bind(extra, None)
        else:
            self._bind(target, role)
            if isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    self._bind(elt, None)

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #
    def visit_Assign(self, node: ast.Assign) -> None:
        role = self._role(node.value)
        for target in node.targets:
            self._destructure(target, role)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._destructure(node.target, self._role(node.value))
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._bind(node.target, None)
        self.visit(node.value)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        return None   # error paths produce no record

    def _bind_iter(self, target: ast.expr, iterable: ast.expr) -> None:
        role = self._role(iterable)
        if role == _GROUP:
            if isinstance(target, (ast.Tuple, ast.List)) and target.elts:
                self._bind(target.elts[0], _MACHINE)
            else:
                self._bind(target, _PAIR)
            return
        if isinstance(iterable, ast.Call) \
                and isinstance(iterable.func, ast.Name) \
                and iterable.func.id in ("zip", "enumerate") \
                and isinstance(target, (ast.Tuple, ast.List)):
            args = iterable.args
            if iterable.func.id == "enumerate" and len(target.elts) == 2:
                if args and self._role(args[0]) == _GROUP:
                    self._destructure(target.elts[1], _PAIR)
                return
            for arg, elt in zip(args, target.elts):
                if self._role(arg) == _GROUP:
                    self._destructure(elt, _PAIR)
            return
        self._destructure(target, None)

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._bind_iter(node.target, node.iter)
        for stmt in (*node.body, *node.orelse):
            self.visit(stmt)

    visit_AsyncFor = visit_For

    def _visit_comp(self, node: ast.AST) -> None:
        for comp in node.generators:          # type: ignore[attr-defined]
            self.visit(comp.iter)
            self._bind_iter(comp.target, comp.iter)
            for cond in comp.ifs:
                self.visit(cond)
        if isinstance(node, ast.DictComp):
            self.visit(node.key)
            self.visit(node.value)
        else:
            self.visit(node.elt)              # type: ignore[attr-defined]

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    # ------------------------------------------------------------------ #
    # reads and call-graph descent
    # ------------------------------------------------------------------ #
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._role(node.value) == _MACHINE \
                and isinstance(node.ctx, ast.Load):
            model = self.walker.model
            if node.attr == "__dict__":
                if self.out.all_fields is None:
                    self.out.all_fields = self._site(node)
            elif model is not None and node.attr in model.methods:
                pass   # method reference; descent happens at the call
            else:
                self.out.add(node.attr, self._site(node))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        model = self.walker.model
        if (isinstance(func, ast.Attribute)
                and self._role(func.value) == _MACHINE
                and model is not None and func.attr in model.methods):
            self.walker._walk(model.methods[func.attr],
                              {"self": _MACHINE}, self.out,
                              self.visited, self.depth + 1)
        else:
            callee = self.walker.index.resolve_function(
                self.info.module, func, self.info)
            if callee is not None \
                    and callee.key() not in self.walker.exempt:
                roles = self._arg_roles(callee, node)
                if roles:
                    self.walker._walk(callee, roles, self.out,
                                      self.visited, self.depth + 1)
        self.generic_visit(node)

    def _arg_roles(self, callee: FunctionInfo, node: ast.Call
                   ) -> Dict[str, str]:
        params = callee.params()
        offset = 1 if params and params[0] == "self" else 0
        roles: Dict[str, str] = {}
        for i, arg in enumerate(node.args):
            role = self._role(arg)
            if role is not None and i + offset < len(params):
                roles[params[i + offset]] = role
        for kw in node.keywords:
            if kw.arg is not None:
                role = self._role(kw.value)
                if role is not None and kw.arg in params:
                    roles[kw.arg] = role
        return roles


def _is_const(expr: ast.expr, value: object) -> bool:
    return isinstance(expr, ast.Constant) and expr.value == value
