"""Rules R1–R5 of the static contract analyzer.

Each rule is a function ``(config, index, registry) -> [Finding]`` over
the parsed project (:class:`~repro.lab.check.project.ProjectIndex`) and
the imported registries (:class:`RegistryView` — dict contents are the
runtime ground truth; the AST is how reads, calls and literals are
located and attributed).
"""

from __future__ import annotations

import ast
import importlib
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterator, List, Mapping, Optional,
                    Set, Tuple)

from repro.lab.check.findings import ERROR, WARNING, Finding
from repro.lab.check.machinewalk import (MachineModel, MachineReadWalker,
                                         MachineReads)
from repro.lab.check.project import FunctionInfo, ModuleInfo, ProjectIndex

__all__ = ["RegistryView", "rule_r1", "rule_r2", "rule_r3", "rule_r4",
           "rule_r5", "RULES"]


# --------------------------------------------------------------------- #
# runtime ground truth
# --------------------------------------------------------------------- #
@dataclass
class RegistryView:
    """The imported registries the rules validate against."""

    kernels: Dict[str, Callable[..., Any]] = field(default_factory=dict)
    machine_fields: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    metric_fields: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    trace_kernels: Dict[str, Any] = field(default_factory=dict)
    batch_kernels: Dict[str, Any] = field(default_factory=dict)
    machines: Dict[str, Any] = field(default_factory=dict)
    policies: Dict[str, Any] = field(default_factory=dict)
    scenarios: Dict[str, Callable[..., Any]] = field(default_factory=dict)
    extra_evaluators: Dict[str, Callable[..., Any]] = \
        field(default_factory=dict)

    @classmethod
    def load(cls, cfg: Any) -> "RegistryView":
        reg = importlib.import_module(cfg.registry_module)

        def table(attr: str) -> Dict[str, Any]:
            return dict(getattr(reg, attr, None) or {})

        scenarios: Dict[str, Callable[..., Any]] = {}
        if cfg.scenarios_module:
            scn = importlib.import_module(cfg.scenarios_module)
            scenarios = dict(getattr(scn, "SCENARIOS", None) or {})
        extra: Dict[str, Callable[..., Any]] = {}
        for mod_name, attr in cfg.extra_evaluator_attrs:
            mod = importlib.import_module(mod_name)
            extra.update(getattr(mod, attr, None) or {})
        return cls(
            kernels=table("KERNELS"),
            machine_fields=table("MACHINE_FIELDS"),
            metric_fields=table("METRIC_FIELDS"),
            trace_kernels=table("TRACE_KERNELS"),
            batch_kernels=table("BATCH_KERNELS"),
            machines=table("MACHINES"),
            policies=table("POLICIES"),
            scenarios=scenarios,
            extra_evaluators=extra,
        )


# --------------------------------------------------------------------- #
# AST anchors
# --------------------------------------------------------------------- #
def _assign_node(module: Optional[ModuleInfo], name: str
                 ) -> Optional[ast.AST]:
    if module is None:
        return None
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets
                       if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            targets = [node.target.id]
        else:
            continue
        if name in targets:
            return node
    return None


def _dict_entry_lines(module: Optional[ModuleInfo], name: str
                      ) -> Tuple[Dict[str, int], Tuple[str, int]]:
    """Per-key source lines of a top-level ``NAME = {...}`` table, plus
    the table's own ``(file, line)`` fallback anchor."""
    node = _assign_node(module, name)
    if module is None or node is None:
        return {}, ("<unknown>", 1)
    fallback = (str(module.path), node.lineno)
    lines: Dict[str, int] = {}
    value = node.value if isinstance(node, (ast.Assign, ast.AnnAssign)) \
        else None
    if isinstance(value, ast.Dict):
        for key in value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                lines[key.value] = key.lineno
    return lines, fallback


def _anchor(lines: Dict[str, int], fallback: Tuple[str, int], key: str
            ) -> Tuple[str, int]:
    return (fallback[0], lines.get(key, fallback[1]))


def _walk_with_parents(root: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST]]:
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            yield child, node
            stack.append(child)


# --------------------------------------------------------------------- #
# R1 — machine-projection soundness
# --------------------------------------------------------------------- #
def _entry_roles(info: FunctionInfo) -> Dict[str, str]:
    roles: Dict[str, str] = {}
    for p in info.params():
        if p == "machine":
            roles[p] = "machine"
        elif p == "group":
            roles[p] = "group"
    return roles


def _kernel_entries(cfg: Any, index: ProjectIndex, reg: RegistryView,
                    name: str) -> List[Tuple[FunctionInfo, Dict[str, str]]]:
    entries: List[Tuple[FunctionInfo, Dict[str, str]]] = []
    seen: Set[Tuple[str, str]] = set()

    def add_info(info: Optional[FunctionInfo]) -> None:
        if info is None or info.key() in seen:
            return
        roles = _entry_roles(info)
        if roles:
            seen.add(info.key())
            entries.append((info, roles))

    def add(fn: Any) -> None:
        if callable(fn):
            add_info(index.locate_callable(fn))

    add(reg.kernels.get(name))
    tk = reg.trace_kernels.get(name)
    if tk is not None:
        for attr in ("payload", "capacity_words", "write_lb"):
            add(getattr(tk, attr, None))
        if cfg.trace_kernel_class:
            mod = index.modules.get(cfg.trace_kernel_class[0])
            if mod is not None:
                for meth in ("run", "record", "lines"):
                    add_info(mod.method(cfg.trace_kernel_class[1], meth))
    bk = reg.batch_kernels.get(name)
    if bk is not None:
        add(getattr(bk, "run", None))
        add(getattr(bk, "group_key", None))
    add(reg.extra_evaluators.get(name))
    return entries


def rule_r1(cfg: Any, index: ProjectIndex, reg: RegistryView
            ) -> List[Finding]:
    model = None
    if cfg.machine_class:
        model = MachineModel.from_class(index, *cfg.machine_class)
    walker = MachineReadWalker(index, model, cfg.r1_exempt)
    reg_mod = index.modules.get(cfg.registry_module)
    decl_lines, decl_fallback = _dict_entry_lines(reg_mod, "MACHINE_FIELDS")
    findings: List[Finding] = []
    for name in sorted(reg.kernels):
        declared = reg.machine_fields.get(name)
        if declared is None:
            continue   # keyed on the full spec; R2 reports the absence
        entries = _kernel_entries(cfg, index, reg, name)
        if not entries:
            continue
        reads: MachineReads = walker.collect(entries)
        declared_set = set(declared)
        for fname in sorted(reads.fields):
            if fname in declared_set:
                continue
            site = reads.fields[fname]
            findings.append(Finding(
                "R1", ERROR, site.file, site.line, kernel=name,
                message=(f"kernel {name!r} reads machine.{fname} but its "
                         f"MACHINE_FIELDS row omits it — the projected "
                         f"cache key cannot see {fname!r} changing, so "
                         f"stale records would be served"),
            ))
        if reads.all_fields is not None:
            spec_fields = (model.fields - {"name"}) if model else set()
            missing = sorted(spec_fields - declared_set)
            if missing:
                site = reads.all_fields
                findings.append(Finding(
                    "R1", ERROR, site.file, site.line, kernel=name,
                    message=(f"kernel {name!r} reads the whole machine "
                             f"spec but MACHINE_FIELDS omits {missing}"),
                ))
        else:
            unread = sorted(declared_set - set(reads.fields))
            if unread:
                file, line = _anchor(decl_lines, decl_fallback, name)
                findings.append(Finding(
                    "R1", WARNING, file, line, kernel=name,
                    message=(f"kernel {name!r} declares machine field(s) "
                             f"{unread} that its call graph never reads — "
                             f"cache entries split on irrelevant fields"),
                ))
    return findings


# --------------------------------------------------------------------- #
# R2 — registry completeness
# --------------------------------------------------------------------- #
def rule_r2(cfg: Any, index: ProjectIndex, reg: RegistryView
            ) -> List[Finding]:
    findings: List[Finding] = []
    reg_mod = index.modules.get(cfg.registry_module)
    for table in ("MACHINE_FIELDS", "METRIC_FIELDS"):
        declared = getattr(reg, table.lower())
        lines, fallback = _dict_entry_lines(reg_mod, table)
        for name in sorted(reg.kernels):
            if name not in declared:
                findings.append(Finding(
                    "R2", ERROR, fallback[0], fallback[1], kernel=name,
                    message=(f"kernel {name!r} has no {table} row — "
                             f"declare one (an empty tuple is fine; "
                             f"absence is not)"),
                ))
        for name in sorted(declared):
            if name not in reg.kernels:
                file, line = _anchor(lines, fallback, name)
                findings.append(Finding(
                    "R2", WARNING, file, line, kernel=name,
                    message=(f"{table} declares {name!r}, which is not a "
                             f"registered kernel"),
                ))
    findings.extend(_check_batch_toggles(cfg, index, reg))
    findings.extend(_check_scenarios(cfg, index, reg))
    return findings


def _cli_flags(index: ProjectIndex, cli_module: Optional[str]
               ) -> Optional[Set[str]]:
    module = index.modules.get(cli_module) if cli_module else None
    if module is None:
        return None
    flags: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "add_argument":
            for arg in node.args:
                if isinstance(arg, ast.Constant) \
                        and isinstance(arg.value, str):
                    flags.add(arg.value)
    return flags


def _check_batch_toggles(cfg: Any, index: ProjectIndex, reg: RegistryView
                         ) -> List[Finding]:
    findings: List[Finding] = []
    reg_mod = index.modules.get(cfg.registry_module)
    _, fallback = _dict_entry_lines(reg_mod, "BATCH_KERNELS")
    flags = _cli_flags(index, cfg.cli_module)
    for name in sorted(reg.batch_kernels):
        bk = reg.batch_kernels[name]
        if name not in reg.kernels:
            findings.append(Finding(
                "R2", WARNING, fallback[0], fallback[1], kernel=name,
                message=(f"BATCH_KERNELS declares {name!r}, which is not "
                         f"a registered kernel"),
            ))
        toggle = getattr(bk, "toggle", None)
        if not isinstance(toggle, str) or not toggle:
            findings.append(Finding(
                "R2", ERROR, fallback[0], fallback[1], kernel=name,
                message=f"batch kernel {name!r} has no gate toggle",
            ))
            continue
        if flags is not None:
            flag = "--no-" + toggle.replace("_", "-")
            if flag not in flags:
                findings.append(Finding(
                    "R2", ERROR, fallback[0], fallback[1], kernel=name,
                    message=(f"batch kernel {name!r} is gated by toggle "
                             f"{toggle!r}, but the CLI defines no "
                             f"{flag!r} flag"),
                ))
    return findings


def _check_scenarios(cfg: Any, index: ProjectIndex, reg: RegistryView
                     ) -> List[Finding]:
    findings: List[Finding] = []
    if not reg.scenarios:
        return findings
    scn_mod = index.modules.get(cfg.scenarios_module or "")
    lines, fallback = _dict_entry_lines(scn_mod, "SCENARIOS")
    for name in sorted(reg.scenarios):
        file, line = _anchor(lines, fallback, name)
        factory = reg.scenarios[name]
        try:
            scenario = factory(True)
            points = scenario.points()
        except Exception as exc:
            findings.append(Finding(
                "R2", ERROR, file, line,
                message=f"preset {name!r} failed to build: {exc}",
            ))
            continue
        bad_kernels = sorted({p.kernel for p in points
                              if p.kernel not in reg.kernels})
        for kernel in bad_kernels:
            findings.append(Finding(
                "R2", ERROR, file, line, kernel=kernel,
                message=(f"preset {name!r} references unregistered "
                         f"kernel {kernel!r}"),
            ))
        if reg.policies:
            bad_policies = sorted({
                p.machine.policy for p in points
                if getattr(p.machine, "policy", None) not in reg.policies})
            for policy in bad_policies:
                findings.append(Finding(
                    "R2", ERROR, file, line,
                    message=(f"preset {name!r} references unregistered "
                             f"replacement policy {policy!r}"),
                ))
    return findings


# --------------------------------------------------------------------- #
# R3 — determinism hazards in cache-key paths
# --------------------------------------------------------------------- #
_R3_PREFIXES = ("time.", "random.", "numpy.random.", "uuid.", "secrets.")
_R3_EXACT = frozenset({"id", "hash", "os.urandom", "globals", "vars"})


def _key_roots(cfg: Any, index: ProjectIndex, reg: RegistryView
               ) -> List[Tuple[FunctionInfo, str]]:
    roots: List[Tuple[FunctionInfo, str]] = []
    for mod_name, qualname in cfg.key_roots:
        info = index.get(mod_name, qualname)
        if info is not None:
            roots.append((info, qualname))
    for name in sorted(reg.batch_kernels):
        info = index.locate_callable(
            getattr(reg.batch_kernels[name], "group_key", None))
        if info is not None:
            roots.append((info, f"{name}.group_key"))
    for name in sorted(reg.trace_kernels):
        info = index.locate_callable(
            getattr(reg.trace_kernels[name], "payload", None))
        if info is not None:
            roots.append((info, f"{name}.payload"))
    return roots


def rule_r3(cfg: Any, index: ProjectIndex, reg: RegistryView
            ) -> List[Finding]:
    findings: List[Finding] = []
    visited: Set[Tuple[str, str]] = set()
    queue = [(info, root) for info, root in _key_roots(cfg, index, reg)]
    while queue:
        info, root = queue.pop()
        if info.key() in visited:
            continue
        visited.add(info.key())
        path = str(info.module.path)
        for node, parent in _walk_with_parents(info.node):
            if isinstance(node, ast.Call):
                ext = index.resolve_external(info.module, node.func)
                if ext is not None and (
                        ext in _R3_EXACT
                        or ext.startswith(_R3_PREFIXES)):
                    findings.append(Finding(
                        "R3", ERROR, path, node.lineno,
                        message=(f"call to {ext}() inside the cache-key "
                                 f"path of {root!r} — keys must be a "
                                 f"pure function of the point payload"),
                    ))
                callee = index.resolve_function(info.module, node.func,
                                                info)
                if callee is not None and callee.key() not in visited:
                    queue.append((callee, root))
            elif isinstance(node, (ast.Set, ast.SetComp)) \
                    and not _sorted_wrapped(parent):
                findings.append(Finding(
                    "R3", ERROR, path, node.lineno,
                    message=(f"unsorted set construction inside the "
                             f"cache-key path of {root!r} — iteration "
                             f"order would leak into serialization "
                             f"(wrap in sorted(...))"),
                ))
    return findings


def _sorted_wrapped(parent: ast.AST) -> bool:
    return (isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted")


# --------------------------------------------------------------------- #
# R4 — worker-boundary picklability
# --------------------------------------------------------------------- #
_POOL_METHODS = frozenset({
    "apply", "apply_async", "map", "map_async", "starmap",
    "starmap_async", "imap", "imap_unordered", "submit",
})


def rule_r4(cfg: Any, index: ProjectIndex, reg: RegistryView
            ) -> List[Finding]:
    findings: List[Finding] = []
    for module in index.modules.values():
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            ext = index.resolve_external(module, node.func)
            if ext == "multiprocessing.Process" \
                    or (ext or "").startswith("multiprocessing.") \
                    and (ext or "").endswith(".Process"):
                target = None
                for kw in node.keywords:
                    if kw.arg == "target":
                        target = kw.value
                if target is None and len(node.args) > 1:
                    target = node.args[1]
                if target is not None:
                    findings.extend(_check_dispatch(
                        module, target, "multiprocessing.Process target"))
            elif isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _POOL_METHODS and node.args:
                if isinstance(node.args[0], ast.Lambda):
                    findings.append(Finding(
                        "R4", ERROR, str(module.path),
                        node.args[0].lineno,
                        message=(f"lambda passed to .{node.func.attr}() — "
                                 f"functions crossing the worker boundary "
                                 f"must be module-level importables"),
                    ))
    return findings


def _check_dispatch(module: ModuleInfo, target: ast.expr, what: str
                    ) -> List[Finding]:
    if isinstance(target, ast.Lambda):
        return [Finding(
            "R4", ERROR, str(module.path), target.lineno,
            message=(f"{what} is a lambda — workers resolve dispatched "
                     f"functions by import, so the target must be a "
                     f"module-level def"),
        )]
    if isinstance(target, ast.Name):
        name = target.id
        if name in module.functions:
            return []   # module-level def: fine
        nested = [q for q in module.functions
                  if q.endswith(f".{name}") and "<lambda" not in q]
        if nested and name not in module.imports:
            return [Finding(
                "R4", ERROR, str(module.path), target.lineno,
                message=(f"{what} {name!r} resolves to a nested def "
                         f"({nested[0]}) — closures cannot cross the "
                         f"worker boundary; hoist it to module level"),
            )]
    return []


# --------------------------------------------------------------------- #
# R5 — telemetry vocabulary
# --------------------------------------------------------------------- #
def rule_r5(cfg: Any, index: ProjectIndex, reg: RegistryView
            ) -> List[Finding]:
    if not cfg.vocab_module:
        return []
    vocab = importlib.import_module(cfg.vocab_module)
    spans = frozenset(getattr(vocab, "SPANS", ()) or ())
    phases = frozenset(getattr(vocab, "PHASES", ()) or ())
    counters = frozenset(getattr(vocab, "COUNTERS", ()) or ())
    method_vocab: Mapping[str, Tuple[str, frozenset]] = {
        "span": ("span", spans),
        "emit_span": ("span", spans),
        "counter": ("counter", counters),
        "phase": ("phase", phases),
    }
    phase_fns = set(cfg.phase_functions)
    exclude = set(cfg.r5_exclude_modules) | {cfg.vocab_module}
    findings: List[Finding] = []
    for module in index.modules.values():
        if module.name in exclude \
                or module.name.startswith("repro.lab.check"):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant)
                    and isinstance(first.value, str)):
                continue   # dynamic names (per-kernel metrics) are exempt
            kind: Optional[Tuple[str, frozenset]] = None
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in method_vocab:
                kind = method_vocab[node.func.attr]
            elif isinstance(node.func, ast.Name):
                callee = index.resolve_function(module, node.func)
                if callee is not None and callee.key() in phase_fns:
                    kind = ("phase", phases)
            if kind is None:
                continue
            label, vocab_set = kind
            if first.value not in vocab_set:
                findings.append(Finding(
                    "R5", ERROR, str(module.path), first.lineno,
                    message=(f"{label} name {first.value!r} is not in the "
                             f"schema-v1 vocabulary "
                             f"({cfg.vocab_module}) — digests and trace "
                             f"diffs would silently miss it"),
                ))
    return findings


RULES: Dict[str, Callable[[Any, ProjectIndex, RegistryView],
                          List[Finding]]] = {
    "R1": rule_r1,
    "R2": rule_r2,
    "R3": rule_r3,
    "R4": rule_r4,
    "R5": rule_r5,
}
