"""AST project index for the static contract analyzer.

The analyzer is hybrid: registries (``KERNELS``, ``MACHINE_FIELDS``,
``SCENARIOS``…) are imported and read as runtime ground truth, but every
rule *walks source*, so each callable must be locatable as an AST node.
This module parses every ``.py`` file under the configured roots —
pinned to ``feature_version`` :data:`FEATURE_VERSION`, the oldest
interpreter the package supports, so syntax only valid on a newer CI
runner cannot sneak past the analyzer — and indexes:

* every module by dotted name and by source path;
* every ``def``/``lambda`` by qualified name and by ``(file, line)``,
  which is how a runtime callable's ``__code__`` is mapped back to its
  AST node;
* per-module import tables, for resolving a call expression to either a
  project function (descend) or an external dotted name (hazard-match);
* inline ``# lab-check: ignore[RULE]`` suppressions per line.
"""

from __future__ import annotations

import ast
import functools
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple, Union)

__all__ = [
    "FEATURE_VERSION",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "parse_suppressions",
]

#: oldest supported interpreter (``requires-python = ">=3.10"``): the
#: grammar every source file must parse under, regardless of the
#: interpreter running the check.
FEATURE_VERSION: Tuple[int, int] = (3, 10)

_SUPPRESS_RE = re.compile(r"#\s*lab-check:\s*ignore\[([A-Za-z0-9_*,\s]+)\]")

FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """``line -> {rule, ...}`` for every inline suppression comment."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if m:
            out[lineno] = {r.strip() for r in m.group(1).split(",")
                           if r.strip()}
    return out


@dataclass
class FunctionInfo:
    """One ``def`` or ``lambda`` located in a project module."""

    module: "ModuleInfo"
    qualname: str
    node: FuncNode
    #: enclosing class name when this is a method, else ``None``.
    owner_class: Optional[str] = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def line(self) -> int:
        return self.node.lineno

    def params(self) -> List[str]:
        """Positional parameter names (including ``self``) in order."""
        a = self.node.args
        return [p.arg for p in (*a.posonlyargs, *a.args)]

    def key(self) -> Tuple[str, str]:
        return (self.module.name, self.qualname)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str
    path: Path
    tree: ast.Module
    #: qualname -> info, for defs at any nesting depth (lambdas get
    #: synthetic ``<lambda@LINE:COL>`` leaf names).
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    #: local name -> absolute dotted target of an import.
    imports: Dict[str, str] = field(default_factory=dict)
    #: top-level ``NAME = other_callable`` aliases.
    aliases: Dict[str, str] = field(default_factory=dict)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: lineno -> functions starting there (``def`` line or first
    #: decorator line, matching CPython's ``co_firstlineno`` behaviour).
    by_line: Dict[int, List[FunctionInfo]] = field(default_factory=dict)

    def method(self, class_name: str, attr: str) -> Optional[FunctionInfo]:
        return self.functions.get(f"{class_name}.{attr}")


class _Indexer(ast.NodeVisitor):
    def __init__(self, module: ModuleInfo):
        self.module = module
        self.stack: List[str] = []

    def _add(self, node: FuncNode, leaf: str) -> FunctionInfo:
        qualname = ".".join([*self.stack, leaf]) if self.stack else leaf
        owner = None
        if self.stack and self.stack[-1] in self.module.classes:
            owner = self.stack[-1]
        info = FunctionInfo(self.module, qualname, node, owner)
        self.module.functions[qualname] = info
        for line in {node.lineno, _first_lineno(node)}:
            self.module.by_line.setdefault(line, []).append(info)
        return info

    def _visit_def(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
                   ) -> None:
        self._add(node, node.name)
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._add(node, f"<lambda@{node.lineno}:{node.col_offset}>")
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self.stack:
            self.module.classes[node.name] = node
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()


def _first_lineno(node: FuncNode) -> int:
    decorators = getattr(node, "decorator_list", None) or []
    return decorators[0].lineno if decorators else node.lineno


def _collect_imports(module: ModuleInfo) -> None:
    package_parts = module.name.split(".")
    if module.path.name == "__init__.py":
        package = package_parts
    else:
        package = package_parts[:-1]
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(
                    ".")[0]
                module.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package[:len(package) - (node.level - 1)] \
                    if node.level > 1 else package
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = f"{base}.{alias.name}" if base \
                    else alias.name


def _collect_aliases(module: ModuleInfo) -> None:
    for node in module.tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Name)):
            module.aliases[node.targets[0].id] = node.value.id


class ProjectIndex:
    """Every parsed module of the project, with call-resolution helpers.

    *roots* are **package directories** (e.g. ``src/repro``): each is
    scanned recursively and module names are derived relative to its
    parent, so ``src/repro/lab/cache.py`` indexes as
    ``repro.lab.cache``.
    """

    def __init__(self, roots: Sequence[Path]):
        self.roots = [Path(r).resolve() for r in roots]
        self.modules: Dict[str, ModuleInfo] = {}
        self._by_file: Dict[str, ModuleInfo] = {}
        for root in self.roots:
            for path in sorted(root.rglob("*.py")):
                self._load(root, path)
        self._packages = {name.split(".")[0] for name in self.modules}

    def _load(self, root: Path, path: Path) -> None:
        rel = path.relative_to(root.parent)
        parts = list(rel.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        name = ".".join(parts)
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path),
                         feature_version=FEATURE_VERSION)
        module = ModuleInfo(name=name, path=path, tree=tree,
                            suppressions=parse_suppressions(source))
        _Indexer(module).visit(tree)
        _collect_imports(module)
        _collect_aliases(module)
        self.modules[name] = module
        self._by_file[str(path.resolve())] = module

    # ------------------------------------------------------------------ #
    # runtime callable -> AST
    # ------------------------------------------------------------------ #
    def locate_callable(self, fn: Callable[..., Any]
                        ) -> Optional[FunctionInfo]:
        """Map a runtime callable back to its parsed node via
        ``__code__`` — works for lambdas and nested defs, which have no
        importable qualname."""
        while isinstance(fn, functools.partial):
            fn = fn.func
        fn = getattr(fn, "__func__", fn)
        code = getattr(fn, "__code__", None)
        if code is None:
            return None
        module = self._by_file.get(str(Path(code.co_filename).resolve()))
        if module is None:
            return None
        candidates = module.by_line.get(code.co_firstlineno, [])
        if len(candidates) > 1:
            want = list(code.co_varnames[:code.co_argcount])
            named = [c for c in candidates if c.params() == want]
            if named:
                candidates = named
        return candidates[0] if candidates else None

    # ------------------------------------------------------------------ #
    # call resolution
    # ------------------------------------------------------------------ #
    def resolve_function(self, module: ModuleInfo, expr: ast.expr,
                         within: Optional[FunctionInfo] = None
                         ) -> Optional[FunctionInfo]:
        """The project function *expr* calls, if statically resolvable."""
        if isinstance(expr, ast.Name):
            name = module.aliases.get(expr.id, expr.id)
            info = module.functions.get(name)
            if info is not None and "." not in info.qualname:
                return info
            target = module.imports.get(name)
            if target is not None:
                return self._resolve_dotted(target)
            return None
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if (isinstance(base, ast.Name) and base.id == "self"
                    and within is not None and within.owner_class):
                return module.method(within.owner_class, expr.attr)
            base_module = self._module_of(module, base)
            if base_module is not None:
                info = base_module.functions.get(expr.attr)
                if info is not None and "." not in info.qualname:
                    return info
        return None

    def _module_of(self, module: ModuleInfo, expr: ast.expr
                   ) -> Optional[ModuleInfo]:
        dotted = self._dotted_of(module, expr)
        return self.modules.get(dotted) if dotted else None

    def _dotted_of(self, module: ModuleInfo, expr: ast.expr
                   ) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return module.imports.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._dotted_of(module, expr.value)
            return f"{base}.{expr.attr}" if base else None
        return None

    def _resolve_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        if "." not in dotted:
            return None
        mod_name, attr = dotted.rsplit(".", 1)
        target = self.modules.get(mod_name)
        if target is None:
            return None
        info = target.functions.get(target.aliases.get(attr, attr))
        if info is not None and "." not in info.qualname:
            return info
        return None

    def resolve_external(self, module: ModuleInfo, expr: ast.expr
                         ) -> Optional[str]:
        """Dotted name of an *external* (non-project) call target:
        ``time.time``, ``os.urandom``, or a bare builtin like ``id``."""
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in module.functions or name in module.aliases:
                return None
            target = module.imports.get(name)
            if target is not None:
                head = target.split(".")[0]
                return None if head in self._packages else target
            if name in _BUILTINS:
                return name
            return None
        if isinstance(expr, ast.Attribute):
            base = self.resolve_external(module, expr.value)
            return f"{base}.{expr.attr}" if base else None
        return None

    def get(self, module_name: str, qualname: str
            ) -> Optional[FunctionInfo]:
        module = self.modules.get(module_name)
        if module is None:
            return None
        return module.functions.get(qualname)

    def module_for_path(self, path: Path) -> Optional[ModuleInfo]:
        return self._by_file.get(str(Path(path).resolve()))


_BUILTINS = frozenset(dir(__import__("builtins")))
