"""String-keyed registries: kernels, machine models, policies, experiments.

Everything the sweep engine can run is resolvable by name here, so a
scenario file (or a CLI invocation) is pure data:

* :data:`MACHINES` — named :class:`MachineSpec` presets, including
  NVM-style machines with asymmetric read/write energy costs (the
  Section-7 hardware the paper provisions for);
* :data:`KERNELS` — functions ``f(machine, params) -> record`` producing
  one flat, JSON-serializable record per scenario point;
* :data:`POLICIES` — re-exported replacement-policy classes
  (:mod:`repro.machine.policies`);
* :data:`EXPERIMENTS` — the legacy per-table/figure harnesses of
  :mod:`repro.experiments`, each wrapped as ``f(quick) -> formatted str``
  so whole experiments can also be fanned out and cached as single points.
"""

from __future__ import annotations

import numbers
from dataclasses import asdict, dataclass, field, replace
from typing import (Any, Callable, Dict, Mapping, Optional, Sequence, Tuple,
                    Union)

from repro.core.traces import (
    cholesky_trace,
    matmul_trace,
    nbody_trace,
    trsm_trace,
)
from repro.distributed.costmodel import HwParams, hw_param_key
from repro.experiments import (
    Fig2Config,
    format_fig2,
    format_fig5,
    format_lu,
    format_sec3,
    format_sec4,
    format_sec5,
    format_sec6,
    format_sec7_model1,
    format_sec8,
    format_table1,
    format_table2,
    run_fig2,
    run_fig5,
    run_lu,
    run_sec3,
    run_sec4,
    run_sec5,
    run_sec6,
    run_sec7_model1,
    run_sec8,
    run_table1,
    run_table2,
)
from repro.lab.modelkernels import (
    COST_BATCH_EVALUATORS,
    COST_KERNELS,
    DISTRIBUTED_KERNELS,
    KRYLOV_KERNELS,
    MODEL_KERNELS,
    run_cost_batch,
)
from repro.lab.telemetry import active_trace
from repro.lab.tracestore import active_store, is_staged
from repro.machine.cache import CacheSim, CacheStats
from repro.machine.energy import EnergyModel
from repro.machine.fastsim.profile import phase as fs_phase
from repro.machine.multicache import CacheHierarchySim
from repro.machine.policies import POLICIES
from repro.machine.trace import Trace
from repro.util import canonical_int, require

__all__ = [
    "MachineSpec",
    "MACHINES",
    "KERNELS",
    "POLICIES",
    "EXPERIMENTS",
    "HwParams",
    "hw_overrides",
    "TraceKernel",
    "TRACE_KERNELS",
    "BatchKernel",
    "BATCH_KERNELS",
    "BATCHABLE_POLICIES",
    "MACHINE_FIELDS",
    "METRIC_FIELDS",
    "machine_fields",
    "project_machine",
    "fig2_config",
    "resolve_machine",
    "matmul_trace_payload",
    "matmul_lines",
    "matmul_capacity_words",
    "capacity_group_payload",
    "run_batch",
    "run_capacity_batch",
    "run_matmul_capacity_batch",
]


# --------------------------------------------------------------------- #
# machine models
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class MachineSpec:
    """Declarative machine geometry + cost model for one scenario point.

    A spec describes either a single simulated cache level
    (``cache_words``) or, when ``levels`` is set, a
    :class:`~repro.machine.multicache.CacheHierarchySim` chain.  The four
    energy fields model the boundary below the simulated level(s);
    asymmetric ``read_slow``/``write_slow`` are the NVM machines of the
    paper's Section 7.

    ``hw`` carries the Section-7 analytic cost model: a tuple of sorted
    ``(field, value)`` overrides applied on top of the
    :class:`~repro.distributed.costmodel.HwParams` defaults.  ``None``
    means "the defaults"; the cost-model kernels (``cost-*``) resolve it
    via :meth:`hw_params`, and ``repro-lab sweep --hw KEY=VALUE`` edits it
    via :meth:`with_hw`.
    """

    name: str = "custom"
    cache_words: int = 3 * 24 * 24 + 4
    line_size: int = 4
    associativity: Optional[int] = None
    policy: str = "lru"
    seed: Optional[int] = None
    levels: Optional[Tuple[int, ...]] = None
    read_fast: float = 1.0
    write_fast: float = 1.0
    read_slow: float = 2.0
    write_slow: float = 2.0
    hw: Optional[Tuple[Tuple[str, float], ...]] = None

    def __post_init__(self) -> None:
        # Canonicalize the structured fields exactly as from_dict would,
        # so a hand-built spec (list levels, int hw rates, dict hw) is
        # indistinguishable from its payload round-trip — in-process
        # execution and pool workers must produce identical records.
        if self.levels is not None and type(self.levels) is not tuple:
            object.__setattr__(self, "levels", tuple(self.levels))
        if self.hw is not None:
            items = (self.hw.items() if isinstance(self.hw, Mapping)
                     else self.hw)
            object.__setattr__(
                self, "hw",
                tuple(sorted((str(k), float(v)) for k, v in items)))

    def as_dict(self) -> Dict[str, Any]:
        # A manual flat copy: every field is a scalar or tuple, and
        # dataclasses.asdict's recursive deepcopy is measurable when a
        # 10^4-point sweep serializes every point's machine.
        d = dict(self.__dict__)
        if d["levels"] is not None:
            d["levels"] = list(d["levels"])
        if d["hw"] is not None:
            d["hw"] = {k: v for k, v in d["hw"]}
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "MachineSpec":
        d = dict(d)
        if d.get("levels") is not None:
            d["levels"] = tuple(d["levels"])
        if d.get("hw") is not None:
            hw = d["hw"]
            items = hw.items() if isinstance(hw, Mapping) else hw
            d["hw"] = tuple(sorted((str(k), float(v)) for k, v in items))
        return cls(**d)

    def override(self, **changes: Any) -> "MachineSpec":
        require("hw" not in changes,
                "machine.hw cannot be overridden directly; adjust cost "
                "model parameters with --hw KEY=VALUE "
                "(MachineSpec.with_hw)")
        try:
            return replace(self, **changes)
        except TypeError:
            fields = sorted(self.as_dict())
            bad = sorted(set(changes) - set(fields))
            raise ValueError(
                f"unknown machine field(s) {bad}; available: {fields}"
            ) from None

    def hw_params(self) -> HwParams:
        """The analytic :class:`HwParams` this spec describes: the 2015
        defaults with this spec's ``hw`` overrides applied."""
        return HwParams(**dict(self.hw or ()))

    def with_hw(self, **changes: float) -> "MachineSpec":
        """A copy with *changes* merged into the ``hw`` override set.

        Keys accept either ``HwParams`` attribute names (``beta_23``) or
        the paper's table labels (``β23``)."""
        merged = dict(self.hw or ())
        valid = set(HwParams.__dataclass_fields__)
        for key, value in changes.items():
            attr = hw_param_key(key)
            require(attr in valid,
                    f"unknown hw parameter {key!r}; available: "
                    f"{sorted(valid)}")
            merged[attr] = float(value)
        return replace(self, hw=tuple(sorted(merged.items())))

    def energy_model(self) -> EnergyModel:
        return EnergyModel(
            read_fast=self.read_fast,
            write_fast=self.write_fast,
            read_slow=self.read_slow,
            write_slow=self.write_slow,
        )

    def make(self) -> Union[CacheSim, CacheHierarchySim]:
        """Instantiate the simulator this spec describes."""
        if self.levels is not None:
            return CacheHierarchySim(
                self.levels,
                line_size=self.line_size,
                policies=[self.policy] * len(self.levels),
                seed=self.seed,
            )
        return CacheSim(
            self.cache_words,
            line_size=self.line_size,
            policy=self.policy,
            associativity=self.associativity,
            seed=self.seed,
        )


#: Named machine presets.  Scenario grids may override any field with
#: ``machine.<field>`` grid keys (see :class:`repro.lab.scenarios.Scenario`).
MACHINES: Dict[str, MachineSpec] = {
    # The default simulated L3 of the Figure-2/5/sec-6 experiments.
    "sim-l3": MachineSpec(name="sim-l3", policy="lru"),
    # Nehalem-ish: the 3-bit clock approximation the paper measures.
    "clock-l3": MachineSpec(name="clock-l3", policy="clock"),
    # NVM tiers with asymmetric read/write word-energy (Section 7):
    # a 2015 PCM prototype (writes ~30x DRAM reads), a fast NVM part,
    # and battery-backed DRAM (symmetric) as the control.
    "nvm-pcm": MachineSpec(name="nvm-pcm", read_slow=4.0, write_slow=30.0),
    "nvm-fast": MachineSpec(name="nvm-fast", read_slow=2.0, write_slow=4.0),
    "battery-dram": MachineSpec(name="battery-dram",
                                read_slow=2.0, write_slow=2.0),
    # A small three-level hierarchy for multi-level WA studies.
    "three-level": MachineSpec(name="three-level",
                               levels=(256, 1024, 4096), line_size=4),
    # Section-7 analytic cost models (HwParams presets) for the cost-*
    # kernels: the paper's 2015-era node (NVM writes 20x the network),
    # the Model-2.2 out-of-L2 regime (small M1/M2, Table 2's default),
    # and a symmetric battery-backed-DRAM control.
    "hw-2015": MachineSpec(name="hw-2015", hw=()),
    "hw-ool2": MachineSpec(name="hw-ool2",
                           hw=(("M1", 2.0**8), ("M2", 2.0**14))),
    "hw-sym": MachineSpec(name="hw-sym",
                          hw=(("beta_23", 4.0), ("beta_32", 4.0))),
}


def hw_overrides(hw: Optional[HwParams]
                 ) -> Optional[Tuple[Tuple[str, float], ...]]:
    """A :attr:`MachineSpec.hw` override tuple pinning every field of
    *hw* (``None`` passes through: the machine keeps the defaults)."""
    if hw is None:
        return None
    return tuple(sorted((k, float(v)) for k, v in asdict(hw).items()))


def resolve_machine(machine: Union[str, MachineSpec, Mapping[str, Any]],
                    ) -> MachineSpec:
    """Accept a preset name, a spec, or a plain dict; return a spec."""
    if isinstance(machine, MachineSpec):
        return machine
    if isinstance(machine, str):
        try:
            return MACHINES[machine]
        except KeyError:
            raise ValueError(
                f"unknown machine {machine!r}; available: {sorted(MACHINES)}"
            ) from None
    return MachineSpec.from_dict(machine)


# --------------------------------------------------------------------- #
# trace-kernel protocol
# --------------------------------------------------------------------- #
#: policies a capacity batch can replay in one pass: the stack algorithms
#: with a single-pass multi-capacity fastsim kernel (LRU by Mattson
#: inclusion, Belady/MIN because OPT is a stack algorithm too).
BATCHABLE_POLICIES = ("lru", "belady")


def _require_params(params: Mapping[str, Any], names: Tuple[str, ...],
                    kernel: str) -> None:
    missing = sorted(set(names) - set(params))
    require(not missing,
            f"kernel {kernel!r} is missing required parameter(s) {missing} "
            f"(pass them via --set or the scenario's fixed/grid)")


# Trace-parameter canonicalization (np.int64 grid axes -> plain int, so
# payloads stay JSON-able and CacheSim validation is satisfied).
_as_int = canonical_int


@dataclass(frozen=True)
class TraceKernel:
    """Declarative protocol entry for a line-trace kernel.

    A trace kernel is any registry kernel whose record is a pure function
    of a finalized :class:`~repro.machine.trace.Trace` (determined by the
    trace parameters alone) replayed through one simulated
    fully-associative cache level.  Declaring the ingredients — trace
    identity, trace builder, capacity, write floor — instead of
    hard-coding them per kernel lets the engine share work mechanically:

    * :meth:`trace` memoizes ``payload`` → ``build`` results in the
      active trace store (tile-chunk sidecar included), so
      capacity/policy sweeps generate each trace once across points,
      workers and runs — and honors keys the executor staged for
      zero-copy handoff (:func:`repro.lab.tracestore.staged_keys`);
    * the executor groups points that differ only in the capacity (and
      batchable-policy) axes and replays each group through the
      single-pass fastsim sweeps (:func:`run_capacity_batch`), which
      fold at super-symbol granularity when ``tiles`` holds.
    """

    name: str
    #: parameters every point must carry.
    required: Tuple[str, ...]
    #: parameters that size the simulated cache; excluded from the trace
    #: identity and from the executor's capacity-group key.
    capacity_params: Tuple[str, ...]
    #: (machine, params) -> canonical JSON-able trace identity.
    payload: Callable[[MachineSpec, Mapping[str, Any]], Dict[str, Any]]
    #: trace identity -> finalized :class:`~repro.machine.trace.Trace`.
    build: Callable[[Mapping[str, Any]], Trace]
    #: (machine, params) -> simulated capacity in words.
    capacity_words: Callable[[MachineSpec, Mapping[str, Any]], int]
    #: (machine, params) -> the paper's write lower bound, in lines.
    write_lb: Callable[[MachineSpec, Mapping[str, Any]], int]
    #: whether ``build`` emits tile-granular chunks (each chunk one
    #: base-tile visit), making the kernel eligible for the super-symbol
    #: fold; kernels without tile structure set ``False`` and always
    #: replay event-granular.
    tiles: bool = True

    def trace(self, machine: MachineSpec, params: Mapping[str, Any]
              ) -> Trace:
        """Finalized :class:`~repro.machine.trace.Trace`, served from the
        active trace store when one is installed.

        When the executor staged this trace's key for the current task
        (zero-copy handoff), the arrays arrive as read-only mmaps via
        :meth:`~repro.lab.tracestore.TraceStore.get_by_key` and the
        build closure is never entered."""
        spec = self.payload(machine, params)
        store = active_store()
        if store is None:
            with fs_phase("trace_build"):
                return self.build(spec)
        key = store.key_for(spec)
        if is_staged(key):
            staged = store.get_by_key(key)
            if staged is not None:
                return staged
        return store.get_or_build_trace(spec, lambda: self.build(spec))

    def lines(self, machine: MachineSpec, params: Mapping[str, Any]
              ) -> Tuple[Any, Any]:
        """Finalized ``(lines, writes)``, served from the active trace
        store when one is installed."""
        return self.trace(machine, params).pair()

    def record(self, machine: MachineSpec, params: Mapping[str, Any],
               st: "CacheStats") -> Dict[str, Any]:
        """One flat record (the same shape for every trace kernel)."""
        return {
            "accesses": st.accesses,
            "hits": st.hits,
            "misses": st.misses,
            "fills": st.fills,
            "victims_m": st.victims_m,
            "victims_e": st.victims_e,
            "flush_writebacks": st.flush_writebacks,
            "writebacks": st.writebacks,
            "write_lb": self.write_lb(machine, params),
            "energy": machine.energy_model().cache_boundary(
                st, machine.line_size),
        }

    def run(self, machine: MachineSpec, params: Mapping[str, Any]) -> Dict[str, Any]:
        """The per-point path: replay the trace through ``machine``."""
        _require_params(params, self.required, self.name)
        require(machine.levels is None,
                f"{self.name} simulates a single cache level; "
                f"machines with `levels` need a hierarchy kernel")
        machine = machine.override(
            cache_words=int(self.capacity_words(machine, params)))
        trace = self.trace(machine, params)
        sim = machine.make()
        assert isinstance(sim, CacheSim)
        sim.run_trace(trace)
        sim.flush()
        return self.record(machine, params, sim.stats)


# ----------------------------- matmul ---------------------------------- #
def matmul_trace_payload(machine: MachineSpec, params: Mapping[str, Any]) -> Dict[str, Any]:
    """The trace-identity of a matmul-cache point: every parameter that
    shapes the generated access sequence — and nothing capacity-related,
    so all points of a capacity sweep share one entry in the trace
    store."""
    n = _as_int(params["n"], "n")
    return {
        "family": "matmul",
        "n": n,
        "middle": _as_int(params["middle"], "middle"),
        "l": _as_int(params.get("l", n), "l"),
        "scheme": str(params["scheme"]),
        "b3": _as_int(params.get("b3", 64), "b3"),
        "b2": _as_int(params.get("b2", 16), "b2"),
        "base": _as_int(params.get("base", 8), "base"),
        "line_size": machine.line_size,
        "c_touch_hint": bool(params.get("c_touch_hint", False)),
    }


def _build_matmul(spec: Mapping) -> Trace:
    buf = matmul_trace(
        spec["n"], spec["middle"], spec["l"],
        scheme=spec["scheme"],
        b3=spec["b3"],
        b2=spec["b2"],
        base=spec["base"],
        line_size=spec["line_size"],
        c_touch_hint=spec["c_touch_hint"],
    )
    return buf.finalize_trace()


def matmul_capacity_words(machine: MachineSpec, params: Mapping[str, Any]) -> int:
    """Simulated capacity of a matmul-cache point, in words
    (``cache_blocks`` counts b3-blocks, as Section 6 sizes caches)."""
    if params.get("cache_blocks") is not None:
        b3 = _as_int(params.get("b3", 64), "b3")
        return (_as_int(params["cache_blocks"], "cache_blocks") * b3 * b3
                + machine.line_size)
    return machine.cache_words


def _matmul_write_lb(machine: MachineSpec, params: Mapping[str, Any]) -> int:
    n = _as_int(params["n"], "n")
    l = _as_int(params.get("l", n), "l")
    return n * l // machine.line_size


# ------------------------ TRSM / Cholesky / N-body --------------------- #
def trsm_trace_payload(machine: MachineSpec, params: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "family": "trsm",
        "n": _as_int(params["n"], "n"),
        "m": _as_int(params["m"], "m"),
        "b": _as_int(params["b"], "b"),
        "line_size": machine.line_size,
    }


def cholesky_trace_payload(machine: MachineSpec, params: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "family": "cholesky",
        "n": _as_int(params["n"], "n"),
        "b": _as_int(params["b"], "b"),
        "line_size": machine.line_size,
    }


def nbody_trace_payload(machine: MachineSpec, params: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        "family": "nbody",
        "n": _as_int(params["n"], "n"),
        "b": _as_int(params["b"], "b"),
        "line_size": machine.line_size,
    }


def _block_squared_capacity(machine: MachineSpec, params: Mapping[str, Any]) -> int:
    """``cache_blocks`` b×b matrix blocks plus the paper's spare line."""
    if params.get("cache_blocks") is not None:
        b = _as_int(params["b"], "b")
        return (_as_int(params["cache_blocks"], "cache_blocks") * b * b
                + machine.line_size)
    return machine.cache_words


def _block_vector_capacity(machine: MachineSpec, params: Mapping[str, Any]) -> int:
    """``cache_blocks`` b-particle vector blocks plus the spare line."""
    if params.get("cache_blocks") is not None:
        return (_as_int(params["cache_blocks"], "cache_blocks")
                * _as_int(params["b"], "b") + machine.line_size)
    return machine.cache_words


#: Every line-trace kernel the engine can batch, by registry name.
TRACE_KERNELS: Dict[str, TraceKernel] = {tk.name: tk for tk in (
    TraceKernel(
        name="matmul-cache",
        required=("n", "middle", "scheme"),
        capacity_params=("cache_blocks",),
        payload=matmul_trace_payload,
        build=_build_matmul,
        capacity_words=matmul_capacity_words,
        write_lb=_matmul_write_lb,
    ),
    TraceKernel(
        name="trsm-cache",
        required=("n", "m", "b"),
        capacity_params=("cache_blocks",),
        payload=trsm_trace_payload,
        build=lambda spec: trsm_trace(
            spec["n"], spec["m"], b=spec["b"],
            line_size=spec["line_size"]).finalize_trace(),
        capacity_words=_block_squared_capacity,
        # Proposition 6.2: write-backs = the n×m output.
        write_lb=lambda machine, params: (
            _as_int(params["n"], "n") * _as_int(params["m"], "m")
            // machine.line_size),
    ),
    TraceKernel(
        name="cholesky-cache",
        required=("n", "b"),
        capacity_params=("cache_blocks",),
        payload=cholesky_trace_payload,
        build=lambda spec: cholesky_trace(
            spec["n"], b=spec["b"],
            line_size=spec["line_size"]).finalize_trace(),
        capacity_words=_block_squared_capacity,
        # Lower-triangle output, full diagonal blocks: n(n+b)/2 words.
        write_lb=lambda machine, params: (
            _as_int(params["n"], "n")
            * (_as_int(params["n"], "n") + _as_int(params["b"], "b"))
            // 2 // machine.line_size),
    ),
    TraceKernel(
        name="nbody-cache",
        required=("n", "b"),
        capacity_params=("cache_blocks",),
        payload=nbody_trace_payload,
        build=lambda spec: nbody_trace(
            spec["n"], b=spec["b"],
            line_size=spec["line_size"]).finalize_trace(),
        capacity_words=_block_vector_capacity,
        # The N force words are the only obligatory writes.
        write_lb=lambda machine, params: (
            _as_int(params["n"], "n") // machine.line_size),
    ),
)}


def matmul_lines(machine: MachineSpec, params: Mapping[str, Any]
                 ) -> Tuple[Any, Any]:
    """Finalized ``(lines, writes)`` for a matmul-cache point, served from
    the active trace store when one is installed."""
    return TRACE_KERNELS["matmul-cache"].lines(machine, params)


def kernel_matmul_cache(machine: MachineSpec, params: Mapping[str, Any]) -> Dict[str, Any]:
    """One matmul instruction order through one simulated cache level.

    Required params: ``n`` (outer dims), ``middle``, ``scheme``; optional
    ``l`` (second outer dim, default ``n``), ``b3``, ``b2``, ``base``,
    ``c_touch_hint`` and ``cache_blocks`` (capacity in units of b3-blocks,
    as Section 6 counts it — overrides ``machine.cache_words``).
    """
    return TRACE_KERNELS["matmul-cache"].run(machine, params)


def kernel_trsm_cache(machine: MachineSpec, params: Mapping[str, Any]) -> Dict[str, Any]:
    """Two-level WA TRSM line trace (Algorithm 2) through one cache level.

    Required params: ``n`` (triangular dim), ``m`` (right-hand sides),
    ``b`` (block size); optional ``cache_blocks`` (capacity in b×b
    blocks plus a spare line — Proposition 6.2 needs five).
    """
    return TRACE_KERNELS["trsm-cache"].run(machine, params)


def kernel_cholesky_cache(machine: MachineSpec, params: Mapping[str, Any]) -> Dict[str, Any]:
    """Left-looking WA Cholesky line trace (Alg. 3) through one cache level.

    Required params: ``n``, ``b``; optional ``cache_blocks`` (capacity
    in b×b blocks plus a spare line — Proposition 6.2 needs five).
    """
    return TRACE_KERNELS["cholesky-cache"].run(machine, params)


def kernel_nbody_cache(machine: MachineSpec, params: Mapping[str, Any]) -> Dict[str, Any]:
    """Blocked direct (N,2)-body line trace (Alg. 4) through one cache level.

    Required params: ``n`` (particles), ``b`` (block size); optional
    ``cache_blocks`` (capacity in b-particle blocks plus a spare line —
    three suffice: P(i), F(i) and the streamed P(j)).
    """
    return TRACE_KERNELS["nbody-cache"].run(machine, params)


def run_capacity_batch(
    kernel: str,
    group: Sequence[Tuple[MachineSpec, Mapping[str, Any]]],
) -> List[Dict[str, Any]]:
    """All capacities (and batchable policies) of one trace-kernel sweep
    from a *single* replay.

    Every ``(machine, params)`` pair must share the trace identity
    (``TRACE_KERNELS[kernel].payload``) and describe a fully-associative
    LRU or Belady cache; they may differ only in capacity and in which of
    those two policies they use.  The trace is generated (or mapped from
    the trace store) once; when the kernel is tile-granular and its
    chunks symbolize, the stack passes run at super-symbol granularity
    (:func:`~repro.machine.fastsim.fold_lru_symbols`,
    :func:`~repro.machine.fastsim.fold_opt_symbols`), otherwise the
    event-granular sweeps (:func:`~repro.machine.fastsim
    .simulate_lru_sweep`, :func:`~repro.machine.fastsim
    .simulate_opt_sweep`) take over.  Either way each point gets exact
    per-capacity counters — the same record the per-point kernel would
    have computed, bit-identical, enforced by the equivalence tests.
    """
    from repro.machine.fastsim import (
        fold_lru_symbols,
        fold_opt_symbols,
        simulate_lru_sweep,
        simulate_opt_sweep,
        symbolize,
    )

    try:
        tk = TRACE_KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"kernel {kernel!r} is not a trace kernel; "
            f"available: {sorted(TRACE_KERNELS)}"
        ) from None
    machine0, params0 = group[0]
    _require_params(params0, tk.required, tk.name)
    spec0 = tk.payload(machine0, params0)
    caps_lines = []
    for machine, params in group:
        require(machine.policy in BATCHABLE_POLICIES
                and machine.levels is None
                and machine.associativity is None,
                "capacity batching needs fully-associative LRU or "
                "Belady points")
        require(tk.payload(machine, params) == spec0,
                "capacity batch mixes different trace configurations")
        cap_words = int(tk.capacity_words(machine, params))
        require(cap_words % machine.line_size == 0,
                f"capacity_words={cap_words} must be a multiple of "
                f"line_size={machine.line_size}")
        caps_lines.append(cap_words // machine.line_size)
    trace = tk.trace(machine0, params0)
    sym = None
    if tk.tiles and trace.chunk_lens is not None:
        sym = symbolize(trace.lines, trace.writes, trace.chunk_lens)
    tel = active_trace()
    if tel is not None:
        tel.counter("trace.events", trace.n_events, kernel=tk.name)
        if sym is not None:
            tel.counter("trace.symbols", sym.n_symbols, kernel=tk.name)
    folds = {
        "lru": (fold_lru_symbols, simulate_lru_sweep),
        "belady": (fold_opt_symbols, simulate_opt_sweep),
    }
    sweeps = {}
    for policy, (fold_fn, sweep_fn) in folds.items():
        caps = sorted({cap for (m, _), cap in zip(group, caps_lines)
                       if m.policy == policy})
        if caps:
            sweeps[policy] = (fold_fn(sym, caps) if sym is not None
                              else sweep_fn(trace.lines, trace.writes, caps))
    return [
        tk.record(machine, params,
                  sweeps[machine.policy].stats(cap, include_flush=True))
        for (machine, params), cap in zip(group, caps_lines)
    ]


def run_matmul_capacity_batch(
    group: Sequence[Tuple[MachineSpec, Mapping[str, Any]]],
) -> List[Dict[str, Any]]:
    """Back-compat alias: ``matmul-cache`` through
    :func:`run_capacity_batch`."""
    return run_capacity_batch("matmul-cache", group)


def kernel_matmul_hierarchy(machine: MachineSpec, params: Mapping[str, Any]) -> Dict[str, Any]:
    """One matmul order through a multi-level cache hierarchy.

    Reports per-boundary fills/write-backs and the backing-store traffic,
    costed with the machine's (possibly asymmetric) slow-side energies.
    """
    require(machine.levels is not None,
            "matmul-hierarchy needs a machine with `levels`")
    _require_params(params, ("n", "middle", "scheme"), "matmul-hierarchy")
    n = params["n"]
    l = params.get("l", n)
    # This kernel's blocking defaults differ from matmul-cache's, so pin
    # them before the shared trace helper applies its own.
    filled = dict(params)
    filled.setdefault("b3", 16)
    filled.setdefault("b2", 8)
    filled.setdefault("base", 4)
    lines, writes = matmul_lines(machine, filled)
    hier = machine.make()
    hier.run_lines(lines, writes)
    hier.flush()
    rec: Dict[str, Any] = {}
    for i in range(len(machine.levels)):
        st = hier.stats(i)
        rec[f"L{i + 1}_fills"] = st.fills
        rec[f"L{i + 1}_writebacks"] = st.writebacks
    rec["backing_reads"] = hier.backing_reads
    rec["backing_writes"] = hier.backing_writes
    rec["write_lb"] = n * l // machine.line_size
    rec["energy"] = machine.line_size * (
        hier.backing_reads * machine.read_slow
        + hier.backing_writes * machine.write_slow
    )
    return rec


def kernel_experiment(machine: MachineSpec, params: Mapping[str, Any]) -> Dict[str, Any]:
    """A whole legacy table/figure harness as a single scenario point."""
    name = params["name"]
    quick = bool(params.get("quick", False))
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return {"name": name, "quick": quick, "formatted": fn(quick)}


KERNELS: Dict[str, Callable[[MachineSpec, Mapping[str, Any]], Dict[str, Any]]] = {
    "matmul-cache": kernel_matmul_cache,
    "trsm-cache": kernel_trsm_cache,
    "cholesky-cache": kernel_cholesky_cache,
    "nbody-cache": kernel_nbody_cache,
    "matmul-hierarchy": kernel_matmul_hierarchy,
    "experiment": kernel_experiment,
}
# Point-level cost-model, distributed-execution and Krylov kernels
# (repro.lab.modelkernels) register alongside the trace kernels.
KERNELS.update(MODEL_KERNELS)


# --------------------------------------------------------------------- #
# machine relevance: which MachineSpec fields a kernel reads
# --------------------------------------------------------------------- #
#: every spec field a single-level trace kernel consumes: the simulated
#: geometry and policy plus the four boundary energies of its record
#: (``levels`` is read to *reject* hierarchies, so it stays relevant).
_TRACE_MACHINE_FIELDS: Tuple[str, ...] = (
    "associativity", "cache_words", "levels", "line_size", "policy",
    "read_fast", "read_slow", "seed", "write_fast", "write_slow",
)

#: Declared machine relevance per kernel: the ``MachineSpec`` fields the
#: kernel's record actually depends on.  The result cache keys each
#: point on the machine *projected* to these fields
#: (:func:`project_machine`), so same-params points under differently
#: named — or differing only in irrelevant fields — machines share one
#: cache entry, and scenario validation rejects grid axes over fields a
#: kernel never reads.  A kernel absent from this registry is keyed on
#: the full spec (the conservative legacy behaviour).
MACHINE_FIELDS: Dict[str, Tuple[str, ...]] = {
    "matmul-cache": _TRACE_MACHINE_FIELDS,
    "trsm-cache": _TRACE_MACHINE_FIELDS,
    "cholesky-cache": _TRACE_MACHINE_FIELDS,
    "nbody-cache": _TRACE_MACHINE_FIELDS,
    # `associativity` and `cache_words` are statically reachable through
    # MachineSpec.make's single-level branch (`levels` is required, so
    # that branch never runs for this kernel) — declared anyway: extra
    # projection fields only split cache entries, never serve stale ones.
    "matmul-hierarchy": ("associativity", "cache_words", "levels",
                         "line_size", "policy", "read_slow", "seed",
                         "write_slow"),
    # The legacy harness wrapper ignores its machine entirely.
    "experiment": (),
    # Analytic cost kernels read only the HwParams override set.
    **{name: ("hw",) for name in COST_KERNELS},
    # Executed distributed / krylov kernels simulate their own machine
    # (DistMachine / traffic counters) and read no spec field at all.
    **{name: () for name in DISTRIBUTED_KERNELS},
    **{name: () for name in KRYLOV_KERNELS},
}


def machine_fields(kernel: str) -> Optional[Tuple[str, ...]]:
    """The declared machine relevance of *kernel*.

    ``None`` means a *registered* kernel carries no declaration, so the
    full spec is assumed relevant.  A kernel known to neither
    :data:`KERNELS` nor :data:`MACHINE_FIELDS` raises ``KeyError``
    instead — a typo'd name must not silently key on the full spec.
    """
    try:
        return MACHINE_FIELDS[kernel]
    except KeyError:
        if kernel in KERNELS:
            return None
        raise KeyError(
            f"unknown kernel {kernel!r}; available: {sorted(KERNELS)}"
        ) from None


#: the headline counters of a single-level trace-kernel record.
_TRACE_METRIC_FIELDS: Tuple[str, ...] = ("misses", "writebacks", "fills",
                                         "energy")

#: Declared telemetry relevance per kernel: the *record* fields worth
#: folding into run-trace metrics (:meth:`repro.lab.telemetry.RunTrace
#: .metric`) when a sweep runs traced — the headline numbers a digest
#: or regression diff should histogram, as opposed to every column of
#: the record.  Kernels absent here simply contribute no metrics; the
#: executor skips fields a record happens not to carry (e.g. the
#: ``feasible: False`` cost records have no ``total_seconds``).
METRIC_FIELDS: Dict[str, Tuple[str, ...]] = {
    "matmul-cache": _TRACE_METRIC_FIELDS,
    "trsm-cache": _TRACE_METRIC_FIELDS,
    "cholesky-cache": _TRACE_METRIC_FIELDS,
    "nbody-cache": _TRACE_METRIC_FIELDS,
    "matmul-hierarchy": _TRACE_METRIC_FIELDS,
    # The legacy harness wrapper's record is one formatted string — no
    # metric-worthy numbers to fold.
    "experiment": (),
    # Analytic cost models: the modeled runtime.
    **{name: ("total_seconds",) for name in COST_KERNELS},
    # Executed distributed algorithms: the per-level traffic maxima.
    **{name: ("nw_recv_max", "l3_to_l2_max", "l2_to_l3_max")
       for name in DISTRIBUTED_KERNELS},
    # Krylov methods: the paper's read/write/flop accounting.
    **{name: ("reads", "writes", "flops") for name in KRYLOV_KERNELS},
}


def project_machine(spec: MachineSpec, kernel: str) -> Dict[str, Any]:
    """*spec* reduced to the fields *kernel* reads, as a JSON-able dict.

    This is the machine half of a point's cache identity: fields the
    kernel never reads (always including ``name``, for every declared
    kernel) drop out, and an ``hw`` of ``None`` canonicalizes to the
    empty override set — :meth:`MachineSpec.hw_params` treats the two
    identically, so they must key identically too.
    """
    d = spec.as_dict()
    fields = machine_fields(kernel)
    if fields is None:
        return d
    proj = {name: d[name] for name in sorted(fields)}
    if "hw" in proj and proj["hw"] is None:
        proj["hw"] = {}
    return proj


# --------------------------------------------------------------------- #
# batch-kernel protocol
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BatchKernel:
    """Declarative entry for executor-level point batching.

    A batch kernel tells the executor how to collapse many uncached
    points of one registry kernel into a single task: ``group_key``
    yields the JSON-able identity points must share to ride one
    evaluation, ``run`` evaluates a whole group and returns one record
    per point in group order — the executor then fans the records back
    out into per-point result-cache entries, so batching stays a pure
    execution strategy (records and cache contents are bit-identical to
    the per-point path).

    Two families register today: every trace kernel's capacity sweep
    (one fastsim replay per group, gated by the executor's
    ``multi_capacity`` flag) and every analytic ``cost-*`` family (one
    numpy-vectorized grid evaluation, gated by ``batch``).
    """

    name: str
    #: which executor flag gates this entry: ``"multi_capacity"`` for
    #: the trace-kernel capacity batches, ``"batch"`` for grid batches.
    toggle: str
    #: ``(machine, params) -> identity dict`` — ``None`` means the
    #: point cannot batch and must run on its own.
    group_key: Callable[[MachineSpec, Mapping[str, Any]],
                        Optional[Dict[str, Any]]]
    #: ``group -> [record, ...]`` in group order.
    run: Callable[[Sequence[Tuple[MachineSpec, Mapping[str, Any]]]],
                  List[Dict[str, Any]]]
    #: ``group_key`` ignores ``params`` entirely (true for the cost
    #: grids: any two same-machine points batch) — lets the planner
    #: memoize the serialized key per (kernel, machine) instead of
    #: recomputing it for every one of 10^4+ grid points.
    machine_only: bool = False


def capacity_group_payload(tk: TraceKernel, machine: MachineSpec,
                           params: Mapping[str, Any]
                           ) -> Optional[Dict[str, Any]]:
    """The identity shared by trace-kernel points that may ride one
    replay: the projected machine minus the capacity and policy axes,
    the non-capacity params, and the trace identity (``None`` marks a
    point the capacity batcher cannot take)."""
    if (machine.policy not in BATCHABLE_POLICIES
            or machine.levels is not None
            or machine.associativity is not None):
        return None
    if not all(name in params for name in tk.required):
        return None
    try:
        cap_words = tk.capacity_words(machine, params)
        trace_id = tk.payload(machine, params)
    except (KeyError, TypeError, ValueError):
        return None
    # numpy integer capacities (np.int64 grids) batch like python ints;
    # bools are excluded (True is Integral but never a capacity).
    if (not isinstance(cap_words, numbers.Integral)
            or isinstance(cap_words, bool) or cap_words <= 0
            or cap_words % machine.line_size != 0):
        return None
    # Identity = the projected machine minus the capacity and policy
    # axes (the group's free dimensions).
    machine_d = project_machine(machine, tk.name)
    machine_d.pop("cache_words")
    machine_d.pop("policy")
    params_d = {k: v for k, v in params.items()
                if k not in tk.capacity_params}
    return {"machine": machine_d, "params": params_d, "trace": trace_id}


def _trace_batch_entry(tk: TraceKernel) -> BatchKernel:
    return BatchKernel(
        name=tk.name,
        toggle="multi_capacity",
        group_key=lambda machine, params, _tk=tk: capacity_group_payload(
            _tk, machine, params),
        run=lambda group, _name=tk.name: run_capacity_batch(_name, group),
    )


def _cost_batch_entry(name: str) -> BatchKernel:
    # Any two points of one cost family batch as soon as their machines
    # project identically (same HwParams override set) — the grid
    # params are the batch's free dimensions.
    return BatchKernel(
        name=name,
        toggle="batch",
        group_key=lambda machine, params, _name=name: {
            "machine": project_machine(machine, _name)},
        run=lambda group, _name=name: run_cost_batch(_name, group),
        machine_only=True,
    )


#: Every kernel the executor can batch, by registry name.
BATCH_KERNELS: Dict[str, BatchKernel] = {
    **{name: _trace_batch_entry(tk) for name, tk in TRACE_KERNELS.items()},
    **{name: _cost_batch_entry(name) for name in COST_BATCH_EVALUATORS},
}


def run_batch(kernel: str,
              group: Sequence[Tuple[MachineSpec, Mapping[str, Any]]]
              ) -> List[Dict[str, Any]]:
    """Evaluate one planned batch through its registered protocol entry."""
    try:
        bk = BATCH_KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"kernel {kernel!r} has no batch evaluator; "
            f"available: {sorted(BATCH_KERNELS)}"
        ) from None
    return bk.run(group)


# --------------------------------------------------------------------- #
# legacy experiment harnesses (one formatted table/figure per key)
# --------------------------------------------------------------------- #
def fig2_config(quick: bool) -> Fig2Config:
    """The geometry ``python -m repro.experiments`` has always used."""
    if quick:
        return Fig2Config(n_outer=48, middles=(4, 16, 64), line_size=4,
                          b2=8, base=4)
    return Fig2Config(n_outer=96, middles=(8, 32, 128, 256), line_size=4,
                      b2=8, base=4)


EXPERIMENTS: Dict[str, Callable[[bool], str]] = {
    "fig2": lambda q: format_fig2(run_fig2(fig2_config(q))),
    "fig5": lambda q: format_fig5(run_fig5(fig2_config(q))),
    "table1": lambda q: format_table1(run_table1(quick=q)),
    "table2": lambda q: format_table2(run_table2(quick=q)),
    "sec3": lambda q: format_sec3(run_sec3()),
    "sec4": lambda q: format_sec4(run_sec4()),
    "sec5": lambda q: format_sec5(run_sec5()),
    "sec6": lambda q: format_sec6(
        run_sec6(n=32 if q else 64, middle=32 if q else 128)),
    "sec7": lambda q: format_sec7_model1(run_sec7_model1(quick=q)),
    "sec8": lambda q: format_sec8(
        run_sec8(mesh=128 if q else 256, block=32 if q else 64)),
    "lu": lambda q: format_lu(run_lu(quick=q)),
}
