"""Point-level kernels for the NVM cost-model, distributed and Krylov
subsystems.

Three families, all registered into :data:`repro.lab.registry.KERNELS`
(this module deliberately imports nothing from the registry, so the
registry can import it without a cycle):

* ``cost-*`` — Section 7's analytic communication cost models
  (:mod:`repro.distributed.costmodel`), one algorithm evaluation per
  point.  The :class:`~repro.distributed.costmodel.HwParams` machine
  description comes from the machine spec's ``hw`` overrides
  (``MachineSpec.hw_params()``): start from an ``hw-*`` machine preset
  and/or override individual rates with ``--hw KEY=VALUE`` (sweeping
  ``machine.hw`` as a grid axis is not supported).  Grid points outside
  an algorithm's feasible regime (e.g. ``c3 > P^(1/3)``) report
  ``feasible: False`` instead of failing the sweep — provisioning
  questions are exactly about walking past those edges.

* ``summa-2d`` / ``summa-l3-ool2`` / ``mm-25d`` / ``lu-ll-nonpivot`` /
  ``lu-rl-nonpivot`` — the *executed* distributed algorithms
  (:mod:`repro.distributed`) on the simulated Section-7 machine: inputs
  are generated from a seeded RNG, results are numerically verified, and
  the record carries per-rank max/total word **and message** counters
  for every channel the paper charges.

* ``krylov-*`` — the Section-8 Krylov methods (:mod:`repro.krylov`)
  with their slow-memory read/write/flop counters.

Every kernel is a deterministic pure function of ``(machine, params)``,
so points cache and fan out like any other registry kernel.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Mapping, Tuple

import numpy as np

from repro.distributed import (
    DistMachine,
    lu_ll_nonpivot,
    lu_rl_nonpivot,
    mm_25d,
    summa_2d,
    summa_l3_ool2,
)
from repro.distributed.costmodel import (
    HwParams,
    cost_25dmml2,
    cost_25dmml3,
    cost_25dmml3_ool2,
    cost_2dmml2,
    cost_summal3_ool2,
    dom_beta_cost_model21,
    dom_beta_cost_model22,
    hw_param_key,
    ll_lunp_beta_cost,
    replication_break_even,
    rl_lunp_beta_cost,
    table1_rows,
    table2_rows,
)
from repro.krylov import (
    ca_gmres,
    cacg,
    cg,
    gmres,
    matrix_powers,
    matrix_powers_blocked,
    matrix_powers_streaming,
    spd_stencil_system,
    streaming_basis_r,
    tsqr,
)
from repro.util import canonical_int, require

__all__ = ["MODEL_KERNELS", "COST_KERNELS", "DISTRIBUTED_KERNELS",
           "KRYLOV_KERNELS", "COST_BATCH_EVALUATORS", "run_cost_batch"]


# --------------------------------------------------------------------- #
# parameter plumbing
# --------------------------------------------------------------------- #
def _geti(params: Mapping, name: str, default: Any = None) -> int:
    """An integer parameter (numpy grid scalars canonicalized)."""
    value = params.get(name, default)
    if type(value) is int:  # the hot path of a 10^4-point grid
        return value
    require(value is not None,
            f"missing required parameter {name!r} "
            f"(pass it via --set or the scenario's fixed/grid)")
    return canonical_int(value, name)


def _getf(params: Mapping, name: str, default: Any = None) -> float:
    value = params.get(name, default)
    require(value is not None,
            f"missing required parameter {name!r} "
            f"(pass it via --set or the scenario's fixed/grid)")
    return float(value)


def _hw(machine: Any) -> HwParams:
    """The analytic machine of a cost point (validated up front so bad
    ``--hw`` overrides fail loudly, not as 'infeasible' rows)."""
    hw = machine.hw_params()
    hw.validate()
    return hw


# --------------------------------------------------------------------- #
# cost-model kernels
# --------------------------------------------------------------------- #
#: every HwParams rate a Term can reference, in table order.
_COST_COLUMNS = ("alpha_nw", "beta_nw", "alpha_23", "beta_23", "alpha_32",
                 "beta_32", "alpha_12", "beta_12", "alpha_21", "beta_21")


def _cost_record(cost: Dict) -> Dict:
    """Flatten a ``cost_*`` result: per-rate word/message counts + total.

    β columns count words, α columns count messages, summed over every
    term the formula charges to that rate.
    """
    rec: Dict[str, Any] = {"algorithm": cost["name"], "feasible": True}
    agg = {key: 0.0 for key in _COST_COLUMNS}
    for term in cost["terms"]:
        agg[hw_param_key(term.param)] += term.count
    rec.update(agg)
    rec["total_seconds"] = cost["total"]
    return rec


def _infeasible(name: str, exc: Exception) -> Dict:
    return {"algorithm": name, "feasible": False, "reason": str(exc),
            "total_seconds": None}


def kernel_cost_2d_mm(machine, params: Mapping) -> Dict:
    """Analytic cost of 2DMML2 (Table 1, c=1).  Params: n, P."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    try:
        return _cost_record(cost_2dmml2(n, P, hw))
    except ValueError as exc:
        return _infeasible("2DMML2", exc)


def kernel_cost_25d_mm_l2(machine, params: Mapping) -> Dict:
    """Analytic cost of 2.5DMML2 (Table 1).  Params: n, P, c2."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    c2 = _geti(params, "c2", 1)
    try:
        return _cost_record(cost_25dmml2(n, P, c2, hw))
    except ValueError as exc:
        return _infeasible("2.5DMML2", exc)


def kernel_cost_25d_mm_l3(machine, params: Mapping) -> Dict:
    """Analytic cost of 2.5DMML3 (Table 1, NVM-staged replicas).
    Params: n, P, c2, c3."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    c2, c3 = _geti(params, "c2", 1), _geti(params, "c3", 4)
    try:
        return _cost_record(cost_25dmml3(n, P, c2, c3, hw))
    except ValueError as exc:
        return _infeasible("2.5DMML3", exc)


def kernel_cost_25d_mm_l3_ool2(machine, params: Mapping) -> Dict:
    """Analytic cost of 2.5DMML3ooL2 (Table 2, Model 2.2).
    Params: n, P, c3."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    c3 = _geti(params, "c3", 4)
    try:
        return _cost_record(cost_25dmml3_ool2(n, P, c3, hw))
    except ValueError as exc:
        return _infeasible("2.5DMML3ooL2", exc)


def kernel_cost_summa_l3_ool2(machine, params: Mapping) -> Dict:
    """Analytic cost of SUMMAL3ooL2 (Table 2, attains the W1 write
    floor).  Params: n, P."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    try:
        return _cost_record(cost_summal3_ool2(n, P, hw))
    except ValueError as exc:
        return _infeasible("SUMMAL3ooL2", exc)


def kernel_cost_lu_ll(machine, params: Mapping) -> Dict:
    """LL-LUNP dominant β-costs (formulas (23)/(24)).  Params: n, P."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    cost = ll_lunp_beta_cost(n, P, hw)
    return {"algorithm": cost.pop("name"), "feasible": True, **cost}


def kernel_cost_lu_rl(machine, params: Mapping) -> Dict:
    """RL-LUNP dominant β-costs (formulas (25)/(26)).  Params: n, P."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    cost = rl_lunp_beta_cost(n, P, hw)
    return {"algorithm": cost.pop("name"), "feasible": True, **cost}


def kernel_cost_break_even(machine, params: Mapping) -> Dict:
    """Replication break-even: smallest c3/c2 ratio at which NVM-staged
    replication (2.5DMML3) beats 2.5DMML2.  No params — the ratio
    depends only on the machine's β rates (sweep those via --hw)."""
    hw = _hw(machine)
    return {
        "c3_over_c2": replication_break_even(hw, 1),
        "beta_nw": hw.beta_nw,
        "beta_23": hw.beta_23,
        "beta_32": hw.beta_32,
    }


def kernel_cost_dominance(machine, params: Mapping) -> Dict:
    """Dominant-β-cost comparison: which algorithm the paper predicts
    wins.  Params: model ("2.1" or "2.2"), n, P, c2 (2.1 only), c3."""
    hw = _hw(machine)
    model = str(params.get("model", "2.1"))
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    c3 = _geti(params, "c3", 4)
    if model == "2.1":
        c2 = _geti(params, "c2", 1)
        return {"model": model,
                **dom_beta_cost_model21(n, P, c2, c3, hw)}
    require(model == "2.2", f"model must be '2.1' or '2.2', got {model!r}")
    return {"model": model, **dom_beta_cost_model22(n, P, c3, hw)}


def _table_cell(params: Mapping, rows: list, table: str) -> Dict:
    """One (row, algorithm) cell of an evaluated table-row list."""
    row = _geti(params, "row")
    require(0 <= row < len(rows),
            f"row must be in 0..{len(rows) - 1}, got {row}")
    require("algorithm" in params,
            "missing required parameter 'algorithm' "
            "(pass it via --set or the scenario's fixed/grid)")
    algorithm = str(params["algorithm"])
    r = rows[row]
    require(algorithm in r and algorithm not in ("movement", "param",
                                                 "common"),
            f"unknown {table} algorithm {algorithm!r}")
    return {"movement": r["movement"], "param": r["param"],
            "common": r["common"], "algorithm": algorithm,
            "feasible": True, "words": r[algorithm]}


def kernel_cost_table1(machine, params: Mapping) -> Dict:
    """One (row, algorithm) cell of the paper's Table 1, numerically
    evaluated.  Params: n, P, c2, c3, row (0-based), algorithm."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 1 << 20)
    c2, c3 = _geti(params, "c2", 4), _geti(params, "c3", 16)
    try:
        rows = table1_rows(n, P, c2, c3, hw)
    except ValueError as exc:
        return _infeasible(str(params.get("algorithm", "Table-1")), exc)
    return _table_cell(params, rows, "Table-1")


def kernel_cost_table2(machine, params: Mapping) -> Dict:
    """One (row, algorithm) cell of the paper's Table 2, numerically
    evaluated.  Params: n, P, c3, row (0-based), algorithm."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 15), _geti(params, "P", 512)
    c3 = _geti(params, "c3", 4)
    try:
        rows = table2_rows(n, P, c3, hw)
    except ValueError as exc:
        return _infeasible(str(params.get("algorithm", "Table-2")), exc)
    return _table_cell(params, rows, "Table-2")


COST_KERNELS: Dict[str, Callable] = {
    "cost-2d-mm": kernel_cost_2d_mm,
    "cost-25d-mm-l2": kernel_cost_25d_mm_l2,
    "cost-25d-mm-l3": kernel_cost_25d_mm_l3,
    "cost-25d-mm-l3-ool2": kernel_cost_25d_mm_l3_ool2,
    "cost-summa-l3-ool2": kernel_cost_summa_l3_ool2,
    "cost-lu-ll": kernel_cost_lu_ll,
    "cost-lu-rl": kernel_cost_lu_rl,
    "cost-break-even": kernel_cost_break_even,
    "cost-dominance": kernel_cost_dominance,
    "cost-table1": kernel_cost_table1,
    "cost-table2": kernel_cost_table2,
}


# --------------------------------------------------------------------- #
# executed distributed algorithms
# --------------------------------------------------------------------- #
#: per-rank counters every execution record reports (max and total).
_RANK_CHANNELS = ("nw_sent", "nw_recv", "nw_msgs_sent", "nw_msgs_recv",
                  "l2_to_l3", "l3_to_l2", "l2_to_l3_msgs", "l3_to_l2_msgs",
                  "l2_to_l1", "l1_to_l2")


def _dist_record(m: DistMachine) -> Dict:
    rec: Dict[str, int] = {}
    for attr in _RANK_CHANNELS:
        rec[f"{attr}_max"] = m.max_over_ranks(attr)
        rec[f"{attr}_total"] = m.total_over_ranks(attr)
    return rec


def _random_matrices(n: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


def kernel_summa_2d(machine, params: Mapping) -> Dict:
    """Executed 2D SUMMA (Model 1) with per-rank traffic counters.
    Params: n, P; optional hoard (the √P-L2 variant), M1, seed."""
    n, P = _geti(params, "n", 32), _geti(params, "P", 16)
    hoard = bool(params.get("hoard", False))
    M1 = None if params.get("M1") is None else _getf(params, "M1")
    A, B = _random_matrices(n, _geti(params, "seed", 0))
    m = DistMachine(P)
    C = summa_2d(A, B, m, hoard=hoard, M1=M1)
    return {"correct": bool(np.allclose(C, A @ B)), "hoard": hoard,
            **_dist_record(m)}


def kernel_summa_l3_ool2(machine, params: Mapping) -> Dict:
    """Executed SUMMAL3ooL2 (Model 2.2): attains the NVM write floor
    W1 = n²/P.  Params: n, P, M2; optional seed."""
    n, P = _geti(params, "n", 32), _geti(params, "P", 16)
    M2 = _getf(params, "M2")
    A, B = _random_matrices(n, _geti(params, "seed", 0))
    m = DistMachine(P, M2=M2)
    C = summa_l3_ool2(A, B, m, M2=M2)
    return {"correct": bool(np.allclose(C, A @ B)),
            "w1_floor": n * n // P, **_dist_record(m)}


def kernel_mm_25d(machine, params: Mapping) -> Dict:
    """Executed 2.5D matmul (replication factor c, optional NVM
    staging).  Params: n, P, c; optional storage (L2|L3|L3-ooL2), M2,
    seed."""
    n, P = _geti(params, "n", 16), _geti(params, "P", 8)
    c = _geti(params, "c", 2)
    storage = str(params.get("storage", "L2"))
    M2 = None if params.get("M2") is None else _getf(params, "M2")
    A, B = _random_matrices(n, _geti(params, "seed", 0))
    m = DistMachine(P, M2=M2)
    C = mm_25d(A, B, m, c=c, storage=storage, M2=M2)
    return {"correct": bool(np.allclose(C, A @ B)), "c": c,
            "storage": storage, **_dist_record(m)}


def _lu_problem(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    A += np.diag(np.abs(A).sum(axis=1) + 1.0)
    return A


def kernel_lu_ll(machine, params: Mapping) -> Dict:
    """Executed left-looking LU without pivoting (LL-LUNP, Alg. 5):
    O(n²/P) NVM writes per rank.  Params: n, b, P; optional seed."""
    n, b = _geti(params, "n", 32), _geti(params, "b", 4)
    P = _geti(params, "P", 4)
    A = _lu_problem(n, _geti(params, "seed", 0))
    m = DistMachine(P)
    L, U = lu_ll_nonpivot(A, m, b=b)
    return {"correct": bool(np.allclose(L @ U, A, atol=1e-8)),
            **_dist_record(m)}


def kernel_lu_rl(machine, params: Mapping) -> Dict:
    """Executed right-looking LU without pivoting (RL-LUNP): fewer
    network words, more NVM writes.  Params: n, b, P; optional seed."""
    n, b = _geti(params, "n", 32), _geti(params, "b", 4)
    P = _geti(params, "P", 4)
    A = _lu_problem(n, _geti(params, "seed", 0))
    m = DistMachine(P)
    L, U = lu_rl_nonpivot(A, m, b=b)
    return {"correct": bool(np.allclose(L @ U, A, atol=1e-8)),
            **_dist_record(m)}


DISTRIBUTED_KERNELS: Dict[str, Callable] = {
    "summa-2d": kernel_summa_2d,
    "summa-l3-ool2": kernel_summa_l3_ool2,
    "mm-25d": kernel_mm_25d,
    "lu-ll-nonpivot": kernel_lu_ll,
    "lu-rl-nonpivot": kernel_lu_rl,
}


# --------------------------------------------------------------------- #
# Krylov kernels
# --------------------------------------------------------------------- #
def _stencil_system(params: Mapping):
    mesh = _geti(params, "mesh", 256)
    d = _geti(params, "d", 1)
    b = _geti(params, "b", 1)
    return spd_stencil_system(mesh, d=d, b=b)


def _traffic_record(traffic, steps: int) -> Dict:
    return {
        "reads": traffic.reads,
        "writes": traffic.writes,
        "flops": traffic.flops,
        "writes_per_step": traffic.writes / max(1, steps),
    }


def kernel_krylov_cg(machine, params: Mapping) -> Dict:
    """Conventional CG (Alg. 6): the Ω(N·n) write baseline.
    Params: mesh; optional d, b, tol."""
    A, rhs = _stencil_system(params)
    res = cg(A, rhs, tol=_getf(params, "tol", 1e-8))
    return {"method": "CG", "converged": res.converged,
            "steps": res.iterations,
            **_traffic_record(res.traffic, res.iterations)}


def kernel_krylov_cacg(machine, params: Mapping) -> Dict:
    """s-step CA-CG (Alg. 7); streaming=True is the WA variant that
    cuts writes by Θ(s).  Params: mesh, s; optional streaming, block,
    d, b, tol."""
    A, rhs = _stencil_system(params)
    s = _geti(params, "s")
    streaming = bool(params.get("streaming", False))
    block = params.get("block")
    res = cacg(A, rhs, s=s, tol=_getf(params, "tol", 1e-8),
               streaming=streaming,
               block=None if block is None else _geti(params, "block"))
    return {"method": "CA-CG" + (" streaming" if streaming else ""),
            "s": s, "converged": res.converged, "steps": res.inner_steps,
            "outer_iterations": res.outer_iterations,
            **_traffic_record(res.traffic, res.inner_steps)}


def kernel_krylov_gmres(machine, params: Mapping) -> Dict:
    """GMRES: variant='restarted' is GMRES(s); variant='ca' is s-step
    CA-GMRES (optionally streaming).  Params: mesh, s; optional
    variant, streaming, block, d, b, tol."""
    A, rhs = _stencil_system(params)
    s = _geti(params, "s")
    variant = str(params.get("variant", "restarted"))
    tol = _getf(params, "tol", 1e-8)
    if variant == "restarted":
        res = gmres(A, rhs, restart=s, tol=tol)
        method = "GMRES"
    else:
        require(variant == "ca",
                f"variant must be 'restarted' or 'ca', got {variant!r}")
        block = params.get("block")
        streaming = bool(params.get("streaming", False))
        res = ca_gmres(A, rhs, s=s, tol=tol, streaming=streaming,
                       block=None if block is None else _geti(params,
                                                              "block"))
        method = "CA-GMRES" + (" streaming" if streaming else "")
    return {"method": method, "s": s, "converged": res.converged,
            "steps": res.inner_steps, "cycles": res.cycles,
            **_traffic_record(res.traffic, res.inner_steps)}


def kernel_krylov_matrix_powers(machine, params: Mapping) -> Dict:
    """The matrix-powers kernel: variant in naive (s SpMVs), blocked
    (CA), streaming (WA — zero basis writes).  Params: mesh, s;
    optional variant, block, d, b."""
    A, rhs = _stencil_system(params)
    s = _geti(params, "s")
    variant = str(params.get("variant", "blocked"))
    block = _geti(params, "block", max(1, -(-A.shape[0] // 8)))
    if variant == "naive":
        _, t = matrix_powers(A, rhs, s)
    elif variant == "blocked":
        _, t = matrix_powers_blocked(A, rhs, s, block=block)
    else:
        require(variant == "streaming",
                "variant must be 'naive', 'blocked' or 'streaming', "
                f"got {variant!r}")
        t = matrix_powers_streaming(A, rhs, s, lambda r0, r1, K: 0,
                                    block=block)
    return {"method": f"matrix-powers {variant}", "s": s,
            **_traffic_record(t, s)}


def kernel_krylov_tsqr(machine, params: Mapping) -> Dict:
    """TSQR of the Krylov basis: variant='stored' builds the basis then
    factors it (Θ(s·n) writes); variant='streaming' interleaves TSQR
    with matrix powers (§8 — only R is written).  Params: mesh, s;
    optional variant, block, d, b."""
    A, rhs = _stencil_system(params)
    s = _geti(params, "s")
    variant = str(params.get("variant", "stored"))
    block = _geti(params, "block", max(s + 1, -(-A.shape[0] // 8)))
    require(block >= s + 1,
            f"block ({block}) must be >= s+1 ({s + 1}) for the QR tree")
    if variant == "stored":
        K, t = matrix_powers_blocked(A, rhs, s, block=block)
        _, R, t_qr = tsqr(K, block=block)
        t.add(t_qr)
    else:
        require(variant == "streaming",
                f"variant must be 'stored' or 'streaming', got {variant!r}")
        R, t = streaming_basis_r(A, rhs, s, block=block)
    return {"method": f"tsqr {variant}", "s": s,
            "r_norm": float(np.linalg.norm(R)),
            **_traffic_record(t, s)}


KRYLOV_KERNELS: Dict[str, Callable] = {
    "krylov-cg": kernel_krylov_cg,
    "krylov-cacg": kernel_krylov_cacg,
    "krylov-gmres": kernel_krylov_gmres,
    "krylov-matrix-powers": kernel_krylov_matrix_powers,
    "krylov-tsqr": kernel_krylov_tsqr,
}


# --------------------------------------------------------------------- #
# vectorized cost-grid evaluators
# --------------------------------------------------------------------- #
# One grid of cost points is pure closed-form arithmetic; evaluating it
# point by point pays mostly process fan-out and record plumbing.  Each
# family below evaluates a whole batch of (machine, params) points with
# numpy — **bit-identical** to the scalar kernels (enforced by the
# hypothesis parity suite in tests/test_properties.py):
#
# * every expression is transcribed token-for-token from the scalar
#   formula, with python ints replaced by float64 columns.  ``+ - * /``
#   and ``sqrt`` are correctly rounded in both worlds, so identical
#   operand sequences give identical doubles;
# * transcendentals that are *not* correctly rounded (``log2``,
#   fractional ``**``) are evaluated per *unique* axis value with the
#   exact scalar function (:func:`_per_unique`) — grid axes have few
#   distinct values, so this costs O(axis), not O(grid);
# * points outside a family's feasible/defined regime (the scalar
#   ``require`` conditions, re-stated verbatim per point) fall back to
#   the scalar kernel, so ``feasible: False`` records carry the same
#   ``reason`` strings and fatal errors stay fatal.
#
# Exactness domain: with |n|, c2, c3 <= 2**16 and P <= 2**32 every
# integer subexpression a formula builds (n**3, 4*n**2*c3, P*c2,
# c2**3, ...) stays exactly representable in float64, which is what
# makes the transcription argument airtight; the paper's grids
# (n <= 2**15, P <= 2**20 appearing only linearly) sit well inside it.
# Axes beyond the domain take the scalar fallback per point (enforced
# by :func:`_vec_domain` in every mask), so bit-identity holds
# *unconditionally*, just without the speedup for such points.  The
# table families reuse the scalar row evaluators memoized per unique
# (n, P, c...) tuple instead — their row/algorithm grid axes make
# uniques sparse, and reusing the scalar code *is* the parity proof.

def _per_unique(values: np.ndarray, fn: Callable[[float], float]
                ) -> np.ndarray:
    """Map an exact scalar function over an array by unique value —
    bit-identical to calling it per point, at per-axis cost."""
    vals, inv = np.unique(values, return_inverse=True)
    out = np.array([fn(v) for v in vals], dtype=np.float64)
    return out[inv]


def _float_cols(cols, idx, width: int):
    """The selected rows of per-point parameter tuples, as float64
    columns (int -> float conversion is exact below 2**53)."""
    sel = [cols[i] for i in idx]
    arrays = tuple(np.array(col, dtype=np.float64)
                   for col in zip(*sel))
    if not sel:
        arrays = tuple(np.empty(0) for _ in range(width))
    return arrays


def _grid_cols(cols):
    """Per-point parameter tuples as float64 column arrays (exact
    below 2**53), for vectorized mask + term evaluation."""
    return np.array(cols, dtype=np.float64).T


#: Largest axis magnitudes the vectorized paths accept (see the
#: exactness-domain note above); larger values fall back to the scalar
#: kernel per point.
_VEC_SIZE_BOUND = float(1 << 16)
_VEC_PROC_BOUND = float(1 << 32)


def _vec_domain(nf: np.ndarray, Pf: np.ndarray, *cs: np.ndarray
                ) -> np.ndarray:
    """Points whose axes sit inside the float64 exactness domain."""
    ok = (np.abs(nf) <= _VEC_SIZE_BOUND) & (Pf <= _VEC_PROC_BOUND)
    for c in cs:
        ok = ok & (np.abs(c) <= _VEC_SIZE_BOUND)
    return ok


def _cbrt_bound(values: np.ndarray) -> np.ndarray:
    """``P ** (1 / 3) + 1e-9`` per unique value with python's own pow,
    so the vectorized feasibility mask agrees with the scalar
    ``require`` even exactly on the boundary.  Non-positive values map
    to ``-inf`` (python pow would go complex): the mask's ``P > 0``
    conjunct already routes those points to the scalar fallback, the
    bound just must not blow up computing them."""
    return _per_unique(
        values,
        lambda v: float(v) ** (1 / 3) + 1e-9 if v > 0 else float("-inf"))


def _scalar_rest(kernel: Callable, group, ok) -> list:
    """Records for the non-vectorizable points via the scalar kernel
    (identical infeasible reasons and identical fatal errors); ``None``
    placeholders where the vectorized path will fill in."""
    return [None if good else kernel(machine, params)
            for (machine, params), good in zip(group, ok)]


def _fill_cost_records(name: str, terms, hw: HwParams, recs: list,
                       idx) -> None:
    """Assemble ``_cost_record``-shaped dicts from vectorized terms.

    *terms* is ``[(hw_attr, count_array), ...]`` in the scalar term
    order; per-rate aggregation and the running total accumulate in
    that order, mirroring ``_cost_record`` / ``_total`` add for add.
    """
    agg: Dict[str, Any] = {key: 0.0 for key in _COST_COLUMNS}
    total: Any = 0
    for param, count in terms:
        agg[param] = agg[param] + count
        total = total + count * getattr(hw, param)
    lists = {k: (v.tolist() if isinstance(v, np.ndarray)
                 else [v] * len(idx))
             for k, v in agg.items()}
    totals = np.asarray(total).tolist()
    rows = zip(*(lists[k] for k in _COST_COLUMNS))
    for i, row, tot in zip(idx, rows, totals):
        rec: Dict[str, Any] = {"algorithm": name, "feasible": True}
        rec.update(zip(_COST_COLUMNS, row))
        rec["total_seconds"] = tot
        recs[i] = rec


def _lg_or_zero(v: float) -> float:
    return math.log2(v) if v > 1 else 0.0


def _vec_cost_2d_mm(hw: HwParams, group) -> list:
    cols = [(_geti(p, "n", 1 << 14), _geti(p, "P", 256))
            for _, p in group]
    nf, Pf = _grid_cols(cols)
    ok = (Pf > 0) & _vec_domain(nf, Pf)
    recs = _scalar_rest(kernel_cost_2d_mm, group, ok.tolist())
    idx = np.flatnonzero(ok)
    if not idx.size:
        return recs
    nf, Pf = nf[idx], Pf[idx]
    s = np.sqrt(Pf)
    n2 = nf * nf
    n3P = n2 * nf / Pf
    terms = [
        ("alpha_21", n3P / hw.M1**1.5),
        ("beta_21", n3P / math.sqrt(hw.M1)),
        ("alpha_12", (n2 / s) / hw.M1),
        ("beta_12", n2 / s),
        ("alpha_nw", 2 * s),
        ("beta_nw", 2 * n2 / s),
    ]
    _fill_cost_records("2DMML2", terms, hw, recs, idx)
    return recs


def _vec_cost_25d_mm_l2(hw: HwParams, group) -> list:
    cols = [(_geti(p, "n", 1 << 14), _geti(p, "P", 256),
             _geti(p, "c2", 1)) for _, p in group]
    nf, Pf, c2f = _grid_cols(cols)
    ok = ((Pf > 0) & (1 <= c2f) & (c2f <= _cbrt_bound(Pf))
          & _vec_domain(nf, Pf, c2f))
    recs = _scalar_rest(kernel_cost_25d_mm_l2, group, ok.tolist())
    idx = np.flatnonzero(ok)
    if not idx.size:
        return recs
    nf, Pf, c2f = nf[idx], Pf[idx], c2f[idx]
    lg = _per_unique(c2f, _lg_or_zero)
    n2 = nf * nf
    n3P = n2 * nf / Pf
    sq_pc2 = np.sqrt(Pf * c2f)
    terms = [
        ("alpha_nw", 2 * c2f),
        ("beta_nw", 2 * 2 * n2 * c2f / Pf),
        ("alpha_nw", 2 * lg),
        ("beta_nw", 2 * lg * 2 * n2 * c2f / Pf),
        ("alpha_nw", 2 * np.sqrt(Pf / (c2f * c2f * c2f))),
        ("beta_nw", 2 * n2 / sq_pc2),
        ("alpha_21", n3P / hw.M1**1.5),
        ("beta_21", n3P / math.sqrt(hw.M1)),
        ("alpha_12", (n2 / sq_pc2) / hw.M1),
        ("beta_12", n2 / sq_pc2),
    ]
    _fill_cost_records("2.5DMML2", terms, hw, recs, idx)
    return recs


def _vec_cost_25d_mm_l3(hw: HwParams, group) -> list:
    cols = [(_geti(p, "n", 1 << 14), _geti(p, "P", 256),
             _geti(p, "c2", 1), _geti(p, "c3", 4)) for _, p in group]
    nf, Pf, c2f, c3f = _grid_cols(cols)
    ok = ((Pf > 0) & (c3f > c2f) & (c2f >= 1)
          & (c3f <= _cbrt_bound(Pf)) & _vec_domain(nf, Pf, c2f, c3f))
    recs = _scalar_rest(kernel_cost_25d_mm_l3, group, ok.tolist())
    idx = np.flatnonzero(ok)
    if not idx.size:
        return recs
    nf, Pf, c2f, c3f = nf[idx], Pf[idx], c2f[idx], c3f[idx]
    lg3 = _per_unique(c3f, _lg_or_zero)
    n2 = nf * nf
    n3P = n2 * nf / Pf
    sq_pc3 = np.sqrt(Pf * c3f)
    bcast_msgs = 2 * (c3f / c2f) * lg3
    bcast_words = 2 * lg3 * 2 * n2 * c3f / Pf
    cannon_msgs = 2 * np.sqrt(Pf / (c3f * c2f * c2f))
    cannon_words = 2 * n2 / sq_pc3
    terms = [
        ("alpha_nw", 2 * c3f),
        ("alpha_23", 2 * c3f),
        ("beta_nw", 2 * 2 * n2 * c3f / Pf),
        ("beta_23", 2 * 2 * n2 * c3f / Pf),
        ("alpha_32", bcast_msgs),
        ("alpha_nw", bcast_msgs),
        ("alpha_23", bcast_msgs),
        ("beta_32", bcast_words),
        ("beta_nw", bcast_words),
        ("beta_23", bcast_words),
        ("alpha_32", cannon_msgs),
        ("alpha_nw", cannon_msgs),
        ("alpha_23", cannon_msgs),
        ("beta_32", cannon_words),
        ("beta_nw", cannon_words),
        ("beta_23", cannon_words),
        ("alpha_21", n3P / hw.M1**1.5),
        ("beta_21", n3P / math.sqrt(hw.M1)),
        ("alpha_12", n3P / (math.sqrt(hw.M2) * hw.M1)),
        ("beta_12", n3P / math.sqrt(hw.M2)),
        ("alpha_32", n3P / hw.M2**1.5),
        ("beta_32", n3P / math.sqrt(hw.M2)),
        ("alpha_23", (n2 / sq_pc3) / hw.M2),
        ("beta_23", n2 / sq_pc3),
    ]
    _fill_cost_records("2.5DMML3", terms, hw, recs, idx)
    return recs


def _vec_cost_25d_mm_l3_ool2(hw: HwParams, group) -> list:
    cols = [(_geti(p, "n", 1 << 14), _geti(p, "P", 256),
             _geti(p, "c3", 4)) for _, p in group]
    nf, Pf, c3f = _grid_cols(cols)
    ok = ((Pf > 0) & (1 <= c3f) & (c3f <= _cbrt_bound(Pf))
          & _vec_domain(nf, Pf, c3f))
    recs = _scalar_rest(kernel_cost_25d_mm_l3_ool2, group, ok.tolist())
    idx = np.flatnonzero(ok)
    if not idx.size:
        return recs
    nf, Pf, c3f = nf[idx], Pf[idx], c3f[idx]
    lg3 = _per_unique(c3f, _lg_or_zero)
    M2 = hw.M2
    n2 = nf * nf
    n3P = n2 * nf / Pf
    sq_pc3 = np.sqrt(Pf * c3f)

    def staged(words):
        return [
            ("beta_32", words),
            ("beta_nw", words),
            ("beta_23", words),
            ("alpha_32", words / M2),
            ("alpha_nw", words / M2),
            ("alpha_23", words / M2),
        ]

    terms = []
    terms += staged(2 * n2 * c3f / Pf)
    terms += staged(2 * 2 * n2 * c3f * lg3 / Pf)
    terms += staged(2 * n2 / sq_pc3)
    terms += [
        ("alpha_21", n3P / hw.M1**1.5),
        ("beta_21", n3P / math.sqrt(hw.M1)),
        ("alpha_12", n3P / (math.sqrt(M2) * hw.M1)),
        ("beta_12", n3P / math.sqrt(M2)),
        ("alpha_32", n3P / M2**1.5),
        ("beta_32", n3P / math.sqrt(M2)),
        ("alpha_23", (n2 / sq_pc3) / M2),
        ("beta_23", n2 / sq_pc3),
    ]
    _fill_cost_records("2.5DMML3ooL2", terms, hw, recs, idx)
    return recs


def _vec_cost_summa_l3_ool2(hw: HwParams, group) -> list:
    cols = [(_geti(p, "n", 1 << 14), _geti(p, "P", 256))
            for _, p in group]
    nf, Pf = _grid_cols(cols)
    ok = (Pf > 0) & _vec_domain(nf, Pf)
    recs = _scalar_rest(kernel_cost_summa_l3_ool2, group, ok.tolist())
    idx = np.flatnonzero(ok)
    if not idx.size:
        return recs
    nf, Pf = nf[idx], Pf[idx]
    M2 = hw.M2
    n2 = nf * nf
    n3P = n2 * nf / Pf
    f = n3P * 3**1.5 / math.sqrt(M2)
    lgP = _per_unique(Pf, math.log2)
    terms = [
        ("beta_32", f),
        ("beta_nw", f),
        ("alpha_32", f / M2),
        ("alpha_nw", f * lgP / M2),
        ("beta_21", n3P / math.sqrt(hw.M1)),
        ("alpha_21", n3P / hw.M1**1.5),
        ("beta_12", n3P / math.sqrt(M2 / 3)),
        ("alpha_12", n3P / (math.sqrt(M2 / 3) * hw.M1)),
        ("beta_23", n2 / Pf),
        ("alpha_23", (n2 / Pf) / M2),
    ]
    _fill_cost_records("SUMMAL3ooL2", terms, hw, recs, idx)
    return recs


def _vec_cost_lu_ll(hw: HwParams, group) -> list:
    cols = [(_geti(p, "n", 1 << 14), _geti(p, "P", 256))
            for _, p in group]
    nf, Pf = _grid_cols(cols)
    ok = (Pf > 0) & _vec_domain(nf, Pf)
    recs = _scalar_rest(kernel_cost_lu_ll, group, ok.tolist())
    idx = np.flatnonzero(ok)
    if not idx.size:
        return recs
    nf, Pf = nf[idx], Pf[idx]
    n2 = nf * nf
    n3 = n2 * nf
    lg2 = _per_unique(
        Pf, lambda v: math.log2(v) ** 2 if v > 1 else 1.0)
    nw = n3 / (Pf * math.sqrt(hw.M2)) * lg2
    b23 = (2 * n2 / Pf).tolist()
    total = (hw.beta_nw * nw + hw.beta_23 * 2 * n2 / Pf
             + hw.beta_32 * nw).tolist()
    nw = nw.tolist()
    for j, i in enumerate(idx):
        recs[i] = {"algorithm": "LL-LUNP", "feasible": True,
                   "beta_nw_words": nw[j], "beta_23_words": b23[j],
                   "beta_32_words": nw[j], "total": total[j]}
    return recs


def _vec_cost_lu_rl(hw: HwParams, group) -> list:
    cols = [(_geti(p, "n", 1 << 14), _geti(p, "P", 256))
            for _, p in group]
    nf, Pf = _grid_cols(cols)
    ok = (Pf > 0) & _vec_domain(nf, Pf)
    recs = _scalar_rest(kernel_cost_lu_rl, group, ok.tolist())
    idx = np.flatnonzero(ok)
    if not idx.size:
        return recs
    nf, Pf = nf[idx], Pf[idx]
    n2 = nf * nf
    n3 = n2 * nf
    sqP = np.sqrt(Pf)
    lg = _per_unique(Pf, lambda v: math.log2(v) if v > 1 else 1.0)
    lgsq = _per_unique(
        Pf, lambda v: (math.log2(v) if v > 1 else 1.0) ** 2)
    nw = (n2 / sqP * lg).tolist()
    b23 = (n2 / sqP * lgsq).tolist()
    b32 = (n3 / (Pf * math.sqrt(hw.M2))).tolist()
    total = (hw.beta_nw * n2 / sqP * lg
             + hw.beta_23 * n2 / sqP * lgsq
             + hw.beta_32 * n3 / (Pf * math.sqrt(hw.M2))).tolist()
    for j, i in enumerate(idx):
        recs[i] = {"algorithm": "RL-LUNP", "feasible": True,
                   "beta_nw_words": nw[j], "beta_23_words": b23[j],
                   "beta_32_words": b32[j], "total": total[j]}
    return recs


def _vec_cost_break_even(hw: HwParams, group) -> list:
    machine0 = group[0][0]
    rec = kernel_cost_break_even(machine0, group[0][1])
    return [dict(rec) for _ in group]


def _vec_cost_dominance(hw: HwParams, group) -> list:
    info = []
    for _, p in group:
        model = str(p.get("model", "2.1"))
        n, P = _geti(p, "n", 1 << 14), _geti(p, "P", 256)
        c3 = _geti(p, "c3", 4)
        c2 = _geti(p, "c2", 1) if model == "2.1" else 1
        info.append((model, n, P, c2, c3))
    bound, pbound = int(_VEC_SIZE_BOUND), int(_VEC_PROC_BOUND)
    ok = [P > 0 and c2 > 0 and c3 > 0 and model in ("2.1", "2.2")
          and abs(n) <= bound and P <= pbound
          and c2 <= bound and c3 <= bound
          for model, n, P, c2, c3 in info]
    recs = _scalar_rest(kernel_cost_dominance, group, ok)
    for model in ("2.1", "2.2"):
        idx = [i for i, good in enumerate(ok)
               if good and info[i][0] == model]
        if not idx:
            continue
        nf, Pf, c2f, c3f = _float_cols(
            [row[1:] for row in info], idx, 4)
        n2 = nf * nf
        n3 = n2 * nf
        if model == "2.1":
            d2 = (2 * n2 / np.sqrt(Pf * c2f) * hw.beta_nw).tolist()
            d3 = (2 * n2 / np.sqrt(Pf * c3f)
                  * (hw.beta_nw + 1.5 * hw.beta_23
                     + hw.beta_32)).tolist()
            for j, i in enumerate(idx):
                ratio = d2[j] / d3[j]
                recs[i] = {
                    "model": model,
                    "dom_2.5DMML2": d2[j],
                    "dom_2.5DMML3": d3[j],
                    "ratio": ratio,
                    "winner": "2.5DMML3" if ratio > 1 else "2.5DMML2",
                }
        else:
            M2 = hw.M2
            d25 = (hw.beta_nw * n2 / np.sqrt(Pf * c3f)
                   + hw.beta_23 * n2 / np.sqrt(Pf * c3f)
                   + hw.beta_32 * n3 / (Pf * math.sqrt(M2))).tolist()
            dsu = (hw.beta_nw * n3 / (Pf * math.sqrt(M2))
                   + hw.beta_23 * n2 / Pf
                   + hw.beta_32 * n3 / (Pf * math.sqrt(M2))).tolist()
            for j, i in enumerate(idx):
                recs[i] = {
                    "model": model,
                    "dom_2.5DMML3ooL2": d25[j],
                    "dom_SUMMAL3ooL2": dsu[j],
                    "ratio": d25[j] / dsu[j],
                    "winner": ("SUMMAL3ooL2" if d25[j] > dsu[j]
                               else "2.5DMML3ooL2"),
                }
    return recs


def _vec_table_family(rows_fn: Callable, sizes: Tuple[str, ...],
                      defaults: Tuple[int, ...], table: str) -> Callable:
    """A table-cell evaluator memoizing the scalar row list per unique
    size tuple (row/algorithm axes make uniques sparse; reusing the
    scalar row code is the bit-identity argument for the tables)."""

    def evaluate(hw: HwParams, group) -> list:
        rows_cache: Dict[Tuple[int, ...], Any] = {}
        recs = []
        for _, params in group:
            key = tuple(_geti(params, name, default)
                        for name, default in zip(sizes, defaults))
            try:
                rows = rows_cache[key]
            except KeyError:
                try:
                    rows = rows_fn(*key, hw)
                except ValueError as exc:
                    rows = exc
                rows_cache[key] = rows
            if isinstance(rows, ValueError):
                recs.append(_infeasible(
                    str(params.get("algorithm", table)), rows))
            else:
                recs.append(_table_cell(params, rows, table))
        return recs

    return evaluate


#: kernel name -> ``(hw, group) -> records`` vectorized batch evaluator.
COST_BATCH_EVALUATORS: Dict[str, Callable] = {
    "cost-2d-mm": _vec_cost_2d_mm,
    "cost-25d-mm-l2": _vec_cost_25d_mm_l2,
    "cost-25d-mm-l3": _vec_cost_25d_mm_l3,
    "cost-25d-mm-l3-ool2": _vec_cost_25d_mm_l3_ool2,
    "cost-summa-l3-ool2": _vec_cost_summa_l3_ool2,
    "cost-lu-ll": _vec_cost_lu_ll,
    "cost-lu-rl": _vec_cost_lu_rl,
    "cost-break-even": _vec_cost_break_even,
    "cost-dominance": _vec_cost_dominance,
    "cost-table1": _vec_table_family(
        table1_rows, ("n", "P", "c2", "c3"),
        (1 << 14, 1 << 20, 4, 16), "Table-1"),
    "cost-table2": _vec_table_family(
        table2_rows, ("n", "P", "c3"),
        (1 << 15, 512, 4), "Table-2"),
}


def run_cost_batch(kernel: str, group) -> list:
    """A whole grid of one ``cost-*`` family in one vectorized pass.

    Every ``(machine, params)`` pair must resolve to the same
    :class:`HwParams` (the executor groups on the projected machine, so
    this holds by construction); records are bit-identical to running
    the scalar kernel per point, including the ``feasible: False``
    payloads of out-of-regime grid points.
    """
    try:
        evaluate = COST_BATCH_EVALUATORS[kernel]
    except KeyError:
        raise ValueError(
            f"kernel {kernel!r} is not a batched cost kernel; "
            f"available: {sorted(COST_BATCH_EVALUATORS)}"
        ) from None
    machine0 = group[0][0]
    hw = _hw(machine0)
    checked = {id(machine0)}
    for machine, _ in group:
        if id(machine) in checked:  # grids share one spec object
            continue
        require(machine.hw_params() == hw,
                "cost batch mixes different hw parameter sets")
        checked.add(id(machine))
    return evaluate(hw, group)


#: everything this module registers, by registry name.
MODEL_KERNELS: Dict[str, Callable] = {
    **COST_KERNELS,
    **DISTRIBUTED_KERNELS,
    **KRYLOV_KERNELS,
}
