"""Point-level kernels for the NVM cost-model, distributed and Krylov
subsystems.

Three families, all registered into :data:`repro.lab.registry.KERNELS`
(this module deliberately imports nothing from the registry, so the
registry can import it without a cycle):

* ``cost-*`` — Section 7's analytic communication cost models
  (:mod:`repro.distributed.costmodel`), one algorithm evaluation per
  point.  The :class:`~repro.distributed.costmodel.HwParams` machine
  description comes from the machine spec's ``hw`` overrides
  (``MachineSpec.hw_params()``): start from an ``hw-*`` machine preset
  and/or override individual rates with ``--hw KEY=VALUE`` (sweeping
  ``machine.hw`` as a grid axis is not supported).  Grid points outside
  an algorithm's feasible regime (e.g. ``c3 > P^(1/3)``) report
  ``feasible: False`` instead of failing the sweep — provisioning
  questions are exactly about walking past those edges.

* ``summa-2d`` / ``summa-l3-ool2`` / ``mm-25d`` / ``lu-ll-nonpivot`` /
  ``lu-rl-nonpivot`` — the *executed* distributed algorithms
  (:mod:`repro.distributed`) on the simulated Section-7 machine: inputs
  are generated from a seeded RNG, results are numerically verified, and
  the record carries per-rank max/total word **and message** counters
  for every channel the paper charges.

* ``krylov-*`` — the Section-8 Krylov methods (:mod:`repro.krylov`)
  with their slow-memory read/write/flop counters.

Every kernel is a deterministic pure function of ``(machine, params)``,
so points cache and fan out like any other registry kernel.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Mapping, Tuple

import numpy as np

from repro.distributed import (
    DistMachine,
    lu_ll_nonpivot,
    lu_rl_nonpivot,
    mm_25d,
    summa_2d,
    summa_l3_ool2,
)
from repro.distributed.costmodel import (
    HwParams,
    cost_25dmml2,
    cost_25dmml3,
    cost_25dmml3_ool2,
    cost_2dmml2,
    cost_summal3_ool2,
    dom_beta_cost_model21,
    dom_beta_cost_model22,
    hw_param_key,
    ll_lunp_beta_cost,
    replication_break_even,
    rl_lunp_beta_cost,
    table1_rows,
    table2_rows,
)
from repro.krylov import (
    ca_gmres,
    cacg,
    cg,
    gmres,
    matrix_powers,
    matrix_powers_blocked,
    matrix_powers_streaming,
    spd_stencil_system,
    streaming_basis_r,
    tsqr,
)
from repro.util import canonical_int, require

__all__ = ["MODEL_KERNELS", "COST_KERNELS", "DISTRIBUTED_KERNELS",
           "KRYLOV_KERNELS"]


# --------------------------------------------------------------------- #
# parameter plumbing
# --------------------------------------------------------------------- #
def _geti(params: Mapping, name: str, default: Any = None) -> int:
    """An integer parameter (numpy grid scalars canonicalized)."""
    value = params.get(name, default)
    require(value is not None,
            f"missing required parameter {name!r} "
            f"(pass it via --set or the scenario's fixed/grid)")
    return canonical_int(value, name)


def _getf(params: Mapping, name: str, default: Any = None) -> float:
    value = params.get(name, default)
    require(value is not None,
            f"missing required parameter {name!r} "
            f"(pass it via --set or the scenario's fixed/grid)")
    return float(value)


def _hw(machine: Any) -> HwParams:
    """The analytic machine of a cost point (validated up front so bad
    ``--hw`` overrides fail loudly, not as 'infeasible' rows)."""
    hw = machine.hw_params()
    hw.validate()
    return hw


# --------------------------------------------------------------------- #
# cost-model kernels
# --------------------------------------------------------------------- #
#: every HwParams rate a Term can reference, in table order.
_COST_COLUMNS = ("alpha_nw", "beta_nw", "alpha_23", "beta_23", "alpha_32",
                 "beta_32", "alpha_12", "beta_12", "alpha_21", "beta_21")


def _cost_record(cost: Dict) -> Dict:
    """Flatten a ``cost_*`` result: per-rate word/message counts + total.

    β columns count words, α columns count messages, summed over every
    term the formula charges to that rate.
    """
    rec: Dict[str, Any] = {"algorithm": cost["name"], "feasible": True}
    agg = {key: 0.0 for key in _COST_COLUMNS}
    for term in cost["terms"]:
        agg[hw_param_key(term.param)] += term.count
    rec.update(agg)
    rec["total_seconds"] = cost["total"]
    return rec


def _infeasible(name: str, exc: Exception) -> Dict:
    return {"algorithm": name, "feasible": False, "reason": str(exc),
            "total_seconds": None}


def kernel_cost_2d_mm(machine, params: Mapping) -> Dict:
    """Analytic cost of 2DMML2 (Table 1, c=1).  Params: n, P."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    try:
        return _cost_record(cost_2dmml2(n, P, hw))
    except ValueError as exc:
        return _infeasible("2DMML2", exc)


def kernel_cost_25d_mm_l2(machine, params: Mapping) -> Dict:
    """Analytic cost of 2.5DMML2 (Table 1).  Params: n, P, c2."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    c2 = _geti(params, "c2", 1)
    try:
        return _cost_record(cost_25dmml2(n, P, c2, hw))
    except ValueError as exc:
        return _infeasible("2.5DMML2", exc)


def kernel_cost_25d_mm_l3(machine, params: Mapping) -> Dict:
    """Analytic cost of 2.5DMML3 (Table 1, NVM-staged replicas).
    Params: n, P, c2, c3."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    c2, c3 = _geti(params, "c2", 1), _geti(params, "c3", 4)
    try:
        return _cost_record(cost_25dmml3(n, P, c2, c3, hw))
    except ValueError as exc:
        return _infeasible("2.5DMML3", exc)


def kernel_cost_25d_mm_l3_ool2(machine, params: Mapping) -> Dict:
    """Analytic cost of 2.5DMML3ooL2 (Table 2, Model 2.2).
    Params: n, P, c3."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    c3 = _geti(params, "c3", 4)
    try:
        return _cost_record(cost_25dmml3_ool2(n, P, c3, hw))
    except ValueError as exc:
        return _infeasible("2.5DMML3ooL2", exc)


def kernel_cost_summa_l3_ool2(machine, params: Mapping) -> Dict:
    """Analytic cost of SUMMAL3ooL2 (Table 2, attains the W1 write
    floor).  Params: n, P."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    try:
        return _cost_record(cost_summal3_ool2(n, P, hw))
    except ValueError as exc:
        return _infeasible("SUMMAL3ooL2", exc)


def kernel_cost_lu_ll(machine, params: Mapping) -> Dict:
    """LL-LUNP dominant β-costs (formulas (23)/(24)).  Params: n, P."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    cost = ll_lunp_beta_cost(n, P, hw)
    return {"algorithm": cost.pop("name"), "feasible": True, **cost}


def kernel_cost_lu_rl(machine, params: Mapping) -> Dict:
    """RL-LUNP dominant β-costs (formulas (25)/(26)).  Params: n, P."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    cost = rl_lunp_beta_cost(n, P, hw)
    return {"algorithm": cost.pop("name"), "feasible": True, **cost}


def kernel_cost_break_even(machine, params: Mapping) -> Dict:
    """Replication break-even: smallest c3/c2 ratio at which NVM-staged
    replication (2.5DMML3) beats 2.5DMML2.  No params — the ratio
    depends only on the machine's β rates (sweep those via --hw)."""
    hw = _hw(machine)
    return {
        "c3_over_c2": replication_break_even(hw, 1),
        "beta_nw": hw.beta_nw,
        "beta_23": hw.beta_23,
        "beta_32": hw.beta_32,
    }


def kernel_cost_dominance(machine, params: Mapping) -> Dict:
    """Dominant-β-cost comparison: which algorithm the paper predicts
    wins.  Params: model ("2.1" or "2.2"), n, P, c2 (2.1 only), c3."""
    hw = _hw(machine)
    model = str(params.get("model", "2.1"))
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 256)
    c3 = _geti(params, "c3", 4)
    if model == "2.1":
        c2 = _geti(params, "c2", 1)
        return {"model": model,
                **dom_beta_cost_model21(n, P, c2, c3, hw)}
    require(model == "2.2", f"model must be '2.1' or '2.2', got {model!r}")
    return {"model": model, **dom_beta_cost_model22(n, P, c3, hw)}


def _table_cell(params: Mapping, rows: list, table: str) -> Dict:
    """One (row, algorithm) cell of an evaluated table-row list."""
    row = _geti(params, "row")
    require(0 <= row < len(rows),
            f"row must be in 0..{len(rows) - 1}, got {row}")
    require("algorithm" in params,
            "missing required parameter 'algorithm' "
            "(pass it via --set or the scenario's fixed/grid)")
    algorithm = str(params["algorithm"])
    r = rows[row]
    require(algorithm in r and algorithm not in ("movement", "param",
                                                 "common"),
            f"unknown {table} algorithm {algorithm!r}")
    return {"movement": r["movement"], "param": r["param"],
            "common": r["common"], "algorithm": algorithm,
            "feasible": True, "words": r[algorithm]}


def kernel_cost_table1(machine, params: Mapping) -> Dict:
    """One (row, algorithm) cell of the paper's Table 1, numerically
    evaluated.  Params: n, P, c2, c3, row (0-based), algorithm."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 14), _geti(params, "P", 1 << 20)
    c2, c3 = _geti(params, "c2", 4), _geti(params, "c3", 16)
    try:
        rows = table1_rows(n, P, c2, c3, hw)
    except ValueError as exc:
        return _infeasible(str(params.get("algorithm", "Table-1")), exc)
    return _table_cell(params, rows, "Table-1")


def kernel_cost_table2(machine, params: Mapping) -> Dict:
    """One (row, algorithm) cell of the paper's Table 2, numerically
    evaluated.  Params: n, P, c3, row (0-based), algorithm."""
    hw = _hw(machine)
    n, P = _geti(params, "n", 1 << 15), _geti(params, "P", 512)
    c3 = _geti(params, "c3", 4)
    try:
        rows = table2_rows(n, P, c3, hw)
    except ValueError as exc:
        return _infeasible(str(params.get("algorithm", "Table-2")), exc)
    return _table_cell(params, rows, "Table-2")


COST_KERNELS: Dict[str, Callable] = {
    "cost-2d-mm": kernel_cost_2d_mm,
    "cost-25d-mm-l2": kernel_cost_25d_mm_l2,
    "cost-25d-mm-l3": kernel_cost_25d_mm_l3,
    "cost-25d-mm-l3-ool2": kernel_cost_25d_mm_l3_ool2,
    "cost-summa-l3-ool2": kernel_cost_summa_l3_ool2,
    "cost-lu-ll": kernel_cost_lu_ll,
    "cost-lu-rl": kernel_cost_lu_rl,
    "cost-break-even": kernel_cost_break_even,
    "cost-dominance": kernel_cost_dominance,
    "cost-table1": kernel_cost_table1,
    "cost-table2": kernel_cost_table2,
}


# --------------------------------------------------------------------- #
# executed distributed algorithms
# --------------------------------------------------------------------- #
#: per-rank counters every execution record reports (max and total).
_RANK_CHANNELS = ("nw_sent", "nw_recv", "nw_msgs_sent", "nw_msgs_recv",
                  "l2_to_l3", "l3_to_l2", "l2_to_l3_msgs", "l3_to_l2_msgs",
                  "l2_to_l1", "l1_to_l2")


def _dist_record(m: DistMachine) -> Dict:
    rec: Dict[str, int] = {}
    for attr in _RANK_CHANNELS:
        rec[f"{attr}_max"] = m.max_over_ranks(attr)
        rec[f"{attr}_total"] = m.total_over_ranks(attr)
    return rec


def _random_matrices(n: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


def kernel_summa_2d(machine, params: Mapping) -> Dict:
    """Executed 2D SUMMA (Model 1) with per-rank traffic counters.
    Params: n, P; optional hoard (the √P-L2 variant), M1, seed."""
    n, P = _geti(params, "n", 32), _geti(params, "P", 16)
    hoard = bool(params.get("hoard", False))
    M1 = None if params.get("M1") is None else _getf(params, "M1")
    A, B = _random_matrices(n, _geti(params, "seed", 0))
    m = DistMachine(P)
    C = summa_2d(A, B, m, hoard=hoard, M1=M1)
    return {"correct": bool(np.allclose(C, A @ B)), "hoard": hoard,
            **_dist_record(m)}


def kernel_summa_l3_ool2(machine, params: Mapping) -> Dict:
    """Executed SUMMAL3ooL2 (Model 2.2): attains the NVM write floor
    W1 = n²/P.  Params: n, P, M2; optional seed."""
    n, P = _geti(params, "n", 32), _geti(params, "P", 16)
    M2 = _getf(params, "M2")
    A, B = _random_matrices(n, _geti(params, "seed", 0))
    m = DistMachine(P, M2=M2)
    C = summa_l3_ool2(A, B, m, M2=M2)
    return {"correct": bool(np.allclose(C, A @ B)),
            "w1_floor": n * n // P, **_dist_record(m)}


def kernel_mm_25d(machine, params: Mapping) -> Dict:
    """Executed 2.5D matmul (replication factor c, optional NVM
    staging).  Params: n, P, c; optional storage (L2|L3|L3-ooL2), M2,
    seed."""
    n, P = _geti(params, "n", 16), _geti(params, "P", 8)
    c = _geti(params, "c", 2)
    storage = str(params.get("storage", "L2"))
    M2 = None if params.get("M2") is None else _getf(params, "M2")
    A, B = _random_matrices(n, _geti(params, "seed", 0))
    m = DistMachine(P, M2=M2)
    C = mm_25d(A, B, m, c=c, storage=storage, M2=M2)
    return {"correct": bool(np.allclose(C, A @ B)), "c": c,
            "storage": storage, **_dist_record(m)}


def _lu_problem(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((n, n))
    A += np.diag(np.abs(A).sum(axis=1) + 1.0)
    return A


def kernel_lu_ll(machine, params: Mapping) -> Dict:
    """Executed left-looking LU without pivoting (LL-LUNP, Alg. 5):
    O(n²/P) NVM writes per rank.  Params: n, b, P; optional seed."""
    n, b = _geti(params, "n", 32), _geti(params, "b", 4)
    P = _geti(params, "P", 4)
    A = _lu_problem(n, _geti(params, "seed", 0))
    m = DistMachine(P)
    L, U = lu_ll_nonpivot(A, m, b=b)
    return {"correct": bool(np.allclose(L @ U, A, atol=1e-8)),
            **_dist_record(m)}


def kernel_lu_rl(machine, params: Mapping) -> Dict:
    """Executed right-looking LU without pivoting (RL-LUNP): fewer
    network words, more NVM writes.  Params: n, b, P; optional seed."""
    n, b = _geti(params, "n", 32), _geti(params, "b", 4)
    P = _geti(params, "P", 4)
    A = _lu_problem(n, _geti(params, "seed", 0))
    m = DistMachine(P)
    L, U = lu_rl_nonpivot(A, m, b=b)
    return {"correct": bool(np.allclose(L @ U, A, atol=1e-8)),
            **_dist_record(m)}


DISTRIBUTED_KERNELS: Dict[str, Callable] = {
    "summa-2d": kernel_summa_2d,
    "summa-l3-ool2": kernel_summa_l3_ool2,
    "mm-25d": kernel_mm_25d,
    "lu-ll-nonpivot": kernel_lu_ll,
    "lu-rl-nonpivot": kernel_lu_rl,
}


# --------------------------------------------------------------------- #
# Krylov kernels
# --------------------------------------------------------------------- #
def _stencil_system(params: Mapping):
    mesh = _geti(params, "mesh", 256)
    d = _geti(params, "d", 1)
    b = _geti(params, "b", 1)
    return spd_stencil_system(mesh, d=d, b=b)


def _traffic_record(traffic, steps: int) -> Dict:
    return {
        "reads": traffic.reads,
        "writes": traffic.writes,
        "flops": traffic.flops,
        "writes_per_step": traffic.writes / max(1, steps),
    }


def kernel_krylov_cg(machine, params: Mapping) -> Dict:
    """Conventional CG (Alg. 6): the Ω(N·n) write baseline.
    Params: mesh; optional d, b, tol."""
    A, rhs = _stencil_system(params)
    res = cg(A, rhs, tol=_getf(params, "tol", 1e-8))
    return {"method": "CG", "converged": res.converged,
            "steps": res.iterations,
            **_traffic_record(res.traffic, res.iterations)}


def kernel_krylov_cacg(machine, params: Mapping) -> Dict:
    """s-step CA-CG (Alg. 7); streaming=True is the WA variant that
    cuts writes by Θ(s).  Params: mesh, s; optional streaming, block,
    d, b, tol."""
    A, rhs = _stencil_system(params)
    s = _geti(params, "s")
    streaming = bool(params.get("streaming", False))
    block = params.get("block")
    res = cacg(A, rhs, s=s, tol=_getf(params, "tol", 1e-8),
               streaming=streaming,
               block=None if block is None else _geti(params, "block"))
    return {"method": "CA-CG" + (" streaming" if streaming else ""),
            "s": s, "converged": res.converged, "steps": res.inner_steps,
            "outer_iterations": res.outer_iterations,
            **_traffic_record(res.traffic, res.inner_steps)}


def kernel_krylov_gmres(machine, params: Mapping) -> Dict:
    """GMRES: variant='restarted' is GMRES(s); variant='ca' is s-step
    CA-GMRES (optionally streaming).  Params: mesh, s; optional
    variant, streaming, block, d, b, tol."""
    A, rhs = _stencil_system(params)
    s = _geti(params, "s")
    variant = str(params.get("variant", "restarted"))
    tol = _getf(params, "tol", 1e-8)
    if variant == "restarted":
        res = gmres(A, rhs, restart=s, tol=tol)
        method = "GMRES"
    else:
        require(variant == "ca",
                f"variant must be 'restarted' or 'ca', got {variant!r}")
        block = params.get("block")
        streaming = bool(params.get("streaming", False))
        res = ca_gmres(A, rhs, s=s, tol=tol, streaming=streaming,
                       block=None if block is None else _geti(params,
                                                              "block"))
        method = "CA-GMRES" + (" streaming" if streaming else "")
    return {"method": method, "s": s, "converged": res.converged,
            "steps": res.inner_steps, "cycles": res.cycles,
            **_traffic_record(res.traffic, res.inner_steps)}


def kernel_krylov_matrix_powers(machine, params: Mapping) -> Dict:
    """The matrix-powers kernel: variant in naive (s SpMVs), blocked
    (CA), streaming (WA — zero basis writes).  Params: mesh, s;
    optional variant, block, d, b."""
    A, rhs = _stencil_system(params)
    s = _geti(params, "s")
    variant = str(params.get("variant", "blocked"))
    block = _geti(params, "block", max(1, -(-A.shape[0] // 8)))
    if variant == "naive":
        _, t = matrix_powers(A, rhs, s)
    elif variant == "blocked":
        _, t = matrix_powers_blocked(A, rhs, s, block=block)
    else:
        require(variant == "streaming",
                "variant must be 'naive', 'blocked' or 'streaming', "
                f"got {variant!r}")
        t = matrix_powers_streaming(A, rhs, s, lambda r0, r1, K: 0,
                                    block=block)
    return {"method": f"matrix-powers {variant}", "s": s,
            **_traffic_record(t, s)}


def kernel_krylov_tsqr(machine, params: Mapping) -> Dict:
    """TSQR of the Krylov basis: variant='stored' builds the basis then
    factors it (Θ(s·n) writes); variant='streaming' interleaves TSQR
    with matrix powers (§8 — only R is written).  Params: mesh, s;
    optional variant, block, d, b."""
    A, rhs = _stencil_system(params)
    s = _geti(params, "s")
    variant = str(params.get("variant", "stored"))
    block = _geti(params, "block", max(s + 1, -(-A.shape[0] // 8)))
    require(block >= s + 1,
            f"block ({block}) must be >= s+1 ({s + 1}) for the QR tree")
    if variant == "stored":
        K, t = matrix_powers_blocked(A, rhs, s, block=block)
        _, R, t_qr = tsqr(K, block=block)
        t.add(t_qr)
    else:
        require(variant == "streaming",
                f"variant must be 'stored' or 'streaming', got {variant!r}")
        R, t = streaming_basis_r(A, rhs, s, block=block)
    return {"method": f"tsqr {variant}", "s": s,
            "r_norm": float(np.linalg.norm(R)),
            **_traffic_record(t, s)}


KRYLOV_KERNELS: Dict[str, Callable] = {
    "krylov-cg": kernel_krylov_cg,
    "krylov-cacg": kernel_krylov_cacg,
    "krylov-gmres": kernel_krylov_gmres,
    "krylov-matrix-powers": kernel_krylov_matrix_powers,
    "krylov-tsqr": kernel_krylov_tsqr,
}


#: everything this module registers, by registry name.
MODEL_KERNELS: Dict[str, Callable] = {
    **COST_KERNELS,
    **DISTRIBUTED_KERNELS,
    **KRYLOV_KERNELS,
}
