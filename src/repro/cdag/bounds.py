"""Theorem 2 and its corollaries, as checkable functions."""

from __future__ import annotations

import math

from repro.util import ceil_div, check_positive_int, require

__all__ = [
    "theorem2_write_lower_bound",
    "theorem2_write_lower_bound_from_traffic",
    "corollary2_fft_traffic_lb",
    "corollary3_strassen_traffic_lb",
]


def theorem2_write_lower_bound(t_loads: int, n_input_loads: int, d: int) -> int:
    """Theorem 2(1): with out-degree ≤ d, an execution performing *t_loads*
    loads of which *n_input_loads* are loads of inputs must write at least
    ``ceil((t - N)/d)`` intermediate values to slow memory."""
    require(t_loads >= 0 and n_input_loads >= 0, "counts must be nonnegative")
    require(n_input_loads <= t_loads, "input loads cannot exceed loads")
    check_positive_int(d, "d")
    return ceil_div(t_loads - n_input_loads, d)


def theorem2_write_lower_bound_from_traffic(
    W_total: int, d: int, *, input_load_fraction: float = 0.5
) -> float:
    """Theorem 2(2): Ω(W/d) writes when at most half the traffic is input
    loads.  Follows the proof's constants: if writes < W/(10d), then loads
    ≥ (10d−1)/(10d)·W and writes ≥ ((10d−1)/(10d) − ½)·W/d."""
    require(0 <= input_load_fraction <= 0.5, "fraction must be in [0, 1/2]")
    check_positive_int(d, "d")
    require(W_total >= 0, "W_total must be nonnegative")
    frac = (10 * d - 1) / (10 * d) - input_load_fraction
    return min(W_total / (10 * d), frac * W_total / d)


def corollary2_fft_traffic_lb(n: int, M: int) -> float:
    """Hong–Kung Ω(n·log n / log M) traffic bound for Cooley–Tukey FFT.

    Returned without its constant: a growth-rate reference.
    """
    require(n >= 2 and M >= 2, "need n, M >= 2")
    return n * math.log2(n) / math.log2(M)


def corollary3_strassen_traffic_lb(n: int, M: int) -> float:
    """Ω(n^ω₀ / M^(ω₀/2−1)) traffic bound for Strassen [8] (constant-free)."""
    require(n >= 1 and M >= 1, "need n, M >= 1")
    w0 = math.log2(7.0)
    return n**w0 / M ** (w0 / 2 - 1)
