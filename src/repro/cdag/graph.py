"""CDAG representation (paper Section 3).

Vertices are hashable ids; each is an *input* (no in-edges) or a *computed*
value with explicit predecessor list.  Repeated updates to one program
variable become distinct vertices (the paper's ``x = y+z; x = x+w`` example
produces x1 and x2), so out-degree genuinely measures operand reuse.

Built on :mod:`networkx` for traversal/toposort; the class adds the
paper-specific bookkeeping (inputs, outputs, out-degree statistics over a
subgraph excluding inputs — the quantity Theorem 2 constrains).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import networkx as nx

from repro.util import require

__all__ = ["CDAG"]


class CDAG:
    """A computation DAG with input/output designation."""

    def __init__(self) -> None:
        self.g = nx.DiGraph()
        self.inputs: set = set()
        self.outputs: set = set()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_input(self, v: Hashable) -> Hashable:
        require(v not in self.g, f"vertex {v!r} already exists")
        self.g.add_node(v)
        self.inputs.add(v)
        return v

    def add_op(
        self, v: Hashable, preds: Sequence[Hashable], *, output: bool = False
    ) -> Hashable:
        """Add computed vertex *v* depending on *preds* (≥1 of them)."""
        require(v not in self.g, f"vertex {v!r} already exists")
        require(len(preds) >= 1, "computed vertex needs at least one input")
        for p in preds:
            require(p in self.g, f"unknown predecessor {p!r}")
        self.g.add_node(v)
        for p in preds:
            self.g.add_edge(p, v)
        if output:
            self.outputs.add(v)
        return v

    def mark_output(self, v: Hashable) -> None:
        require(v in self.g, f"unknown vertex {v!r}")
        self.outputs.add(v)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def n_vertices(self) -> int:
        return self.g.number_of_nodes()

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    @property
    def n_outputs(self) -> int:
        return len(self.outputs)

    def out_degree(self, v: Hashable) -> int:
        return self.g.out_degree(v)

    def max_out_degree(self, *, exclude_inputs: bool = True) -> int:
        """Maximum out-degree ``d`` — the reuse bound in Theorem 2.

        Theorem 2's hypothesis excludes input vertices; pass
        ``exclude_inputs=False`` to include them (Corollary 2's FFT bound
        holds even including inputs).
        """
        degrees = [
            self.g.out_degree(v)
            for v in self.g.nodes
            if not (exclude_inputs and v in self.inputs)
        ]
        return max(degrees) if degrees else 0

    def predecessors(self, v: Hashable) -> list:
        return list(self.g.predecessors(v))

    def successors(self, v: Hashable) -> list:
        return list(self.g.successors(v))

    def topological_order(self) -> list:
        return list(nx.topological_sort(self.g))

    def validate(self) -> None:
        """Structural sanity: acyclic; inputs have no in-edges; every
        non-input has at least one predecessor."""
        require(nx.is_directed_acyclic_graph(self.g), "CDAG has a cycle")
        for v in self.g.nodes:
            indeg = self.g.in_degree(v)
            if v in self.inputs:
                require(indeg == 0, f"input {v!r} has in-edges")
            else:
                require(indeg >= 1, f"non-input {v!r} has no predecessors")

    def induced_subgraph(self, vertices: Iterable[Hashable]) -> "CDAG":
        """The sub-CDAG on *vertices* (used for Corollary 3's DecC)."""
        vs = set(vertices)
        sub = CDAG()
        sub.g = self.g.subgraph(vs).copy()
        sub.inputs = {
            v for v in vs
            if v in self.inputs or sub.g.in_degree(v) == 0
        }
        sub.outputs = self.outputs & vs
        return sub

    def descendants_of(self, sources: Iterable[Hashable]) -> set:
        out: set = set()
        for s in sources:
            out.add(s)
            out |= nx.descendants(self.g, s)
        return out
