"""CDAG builders for the algorithms the paper analyzes.

Out-degree facts these constructions exhibit (and tests verify):

* Cooley–Tukey FFT: out-degree ≤ 2 everywhere (Corollary 2's d).
* Strassen: the scalar-multiplication descendants (``DecC``) have
  out-degree ≤ 4 and contain no inputs (Corollary 3's d and N=0).
* Classical matmul: the multiply vertices a(i,k)·b(k,j) have out-degree 1 —
  DecC is *disconnected* — which is exactly why Theorem 2 has no bite and a
  WA algorithm exists.
"""

from __future__ import annotations

from repro.cdag.graph import CDAG
from repro.util import check_positive_int, is_power_of_two, require

__all__ = [
    "fft_cdag",
    "matmul_cdag",
    "strassen_cdag",
    "reduction_tree_cdag",
    "linear_chain_cdag",
]


def fft_cdag(n: int) -> CDAG:
    """Radix-2 Cooley–Tukey butterfly network on *n* inputs.

    Vertices ``("x", stage, i)``; stage 0 = inputs, stage log2(n) = outputs.
    Every vertex feeds exactly the two butterflies that consume it:
    out-degree ≤ 2 including inputs.
    """
    check_positive_int(n, "n")
    require(is_power_of_two(n), f"n must be a power of two, got {n}")
    d = CDAG()
    for i in range(n):
        d.add_input(("x", 0, i))
    stages = n.bit_length() - 1
    for s in range(1, stages + 1):
        span = 1 << s
        half = span // 2
        for i in range(n):
            # Butterfly partner within the current span.
            partner = i ^ half
            d.add_op(
                ("x", s, i),
                [("x", s - 1, i), ("x", s - 1, partner)],
                output=(s == stages),
            )
    return d


def matmul_cdag(n: int) -> CDAG:
    """Classical n×n×n matmul: C(i,j) = Σ_k a(i,k)·b(k,j).

    Multiplication vertices ``("m", i, j, k)`` each feed one addition chain
    ``("c", i, j, k)``; the multiply vertices have out-degree exactly 1
    (disconnected DecC — no Theorem-2 obstruction), while the *inputs*
    a(i,k), b(k,j) are reused n times each.
    """
    check_positive_int(n, "n")
    d = CDAG()
    for i in range(n):
        for k in range(n):
            d.add_input(("a", i, k))
    for k in range(n):
        for j in range(n):
            d.add_input(("b", k, j))
    for i in range(n):
        for j in range(n):
            prev = None
            for k in range(n):
                m = d.add_op(("m", i, j, k), [("a", i, k), ("b", k, j)])
                if prev is None:
                    prev = m
                else:
                    prev = d.add_op(("c", i, j, k), [prev, m])
            d.mark_output(prev)
    return d


def strassen_cdag(n: int) -> CDAG:
    """Strassen's recursion down to 1×1 base case.

    Vertex naming uses the recursion path, so the graph is the exact
    dependency structure of the algorithm.  Addition vertices have
    out-degree 1 toward their consumer, product vertices feed up to 4
    output recombinations — matching Corollary 3's d = 4 for DecC.
    """
    check_positive_int(n, "n")
    require(is_power_of_two(n), f"n must be a power of two, got {n}")
    d = CDAG()
    for i in range(n):
        for j in range(n):
            d.add_input(("A", i, j))
            d.add_input(("B", i, j))

    counter = [0]

    def fresh(tag: str):
        counter[0] += 1
        return (tag, counter[0])

    def add(x, y, sign=1):
        """Element-wise combination node set for two same-shape operands."""
        out = [[fresh("s") for _ in row] for row in x]
        for r, row in enumerate(x):
            for c, xv in enumerate(row):
                d.add_op(out[r][c], [xv, y[r][c]])
        return out

    def rec(X, Y):
        """X, Y are 2-D lists of vertex ids; returns the product's ids."""
        k = len(X)
        if k == 1:
            p = fresh("p")
            d.add_op(p, [X[0][0], Y[0][0]])
            return [[p]]
        h = k // 2

        def q(Z, r, c):
            return [row[c * h : (c + 1) * h] for row in Z[r * h : (r + 1) * h]]

        X11, X12, X21, X22 = q(X, 0, 0), q(X, 0, 1), q(X, 1, 0), q(X, 1, 1)
        Y11, Y12, Y21, Y22 = q(Y, 0, 0), q(Y, 0, 1), q(Y, 1, 0), q(Y, 1, 1)
        M1 = rec(add(X11, X22), add(Y11, Y22))
        M2 = rec(add(X21, X22), Y11)
        M3 = rec(X11, add(Y12, Y22, -1))
        M4 = rec(X22, add(Y21, Y11, -1))
        M5 = rec(add(X11, X12), Y22)
        M6 = rec(add(X21, X11, -1), add(Y11, Y12))
        M7 = rec(add(X12, X22, -1), add(Y21, Y22))
        Z11 = add(add(M1, M4), add(M7, M5, -1))
        Z12 = add(M3, M5)
        Z21 = add(M2, M4)
        Z22 = add(add(M1, M2, -1), add(M3, M6))
        out = [[None] * k for _ in range(k)]
        for r in range(h):
            for c in range(h):
                out[r][c] = Z11[r][c]
                out[r][c + h] = Z12[r][c]
                out[r + h][c] = Z21[r][c]
                out[r + h][c + h] = Z22[r][c]
        return out

    A = [[("A", i, j) for j in range(n)] for i in range(n)]
    B = [[("B", i, j) for j in range(n)] for i in range(n)]
    Z = rec(A, B)
    for row in Z:
        for v in row:
            d.mark_output(v)
    return d


def reduction_tree_cdag(n: int) -> CDAG:
    """Binary-tree sum of n inputs (out-degree 1: maximal WA headroom)."""
    check_positive_int(n, "n")
    require(is_power_of_two(n), f"n must be a power of two, got {n}")
    d = CDAG()
    layer = [d.add_input(("x", i)) for i in range(n)]
    level = 0
    while len(layer) > 1:
        level += 1
        layer = [
            d.add_op(("s", level, i), [layer[2 * i], layer[2 * i + 1]])
            for i in range(len(layer) // 2)
        ]
    d.mark_output(layer[0])
    return d


def linear_chain_cdag(n: int) -> CDAG:
    """x₀ → x₁ → ... → xₙ (out-degree 1, trivially WA)."""
    check_positive_int(n, "n")
    d = CDAG()
    prev = d.add_input(("x", 0))
    for i in range(1, n + 1):
        prev = d.add_op(("x", i), [prev])
    d.mark_output(prev)
    return d
