"""Computation-DAG machinery for the Section-3 impossibility results.

A CDAG has a vertex per input or computed value and edges for direct
dependencies (paper Section 3).  Theorem 2 turns a *bounded out-degree* —
bounded reuse of every operand — into a write lower bound; the red-blue
pebbler in :mod:`repro.cdag.pebbler` executes a CDAG on a two-level memory
and measures actual loads/stores, letting us observe the bound empirically
for the FFT and Strassen and its *absence* for classical matmul.
"""

from repro.cdag.graph import CDAG
from repro.cdag.builders import (
    fft_cdag,
    linear_chain_cdag,
    matmul_cdag,
    reduction_tree_cdag,
    strassen_cdag,
)
from repro.cdag.pebbler import PebbleStats, depth_first_schedule, pebble
from repro.cdag.bounds import theorem2_write_lower_bound

__all__ = [
    "CDAG",
    "fft_cdag",
    "linear_chain_cdag",
    "matmul_cdag",
    "reduction_tree_cdag",
    "strassen_cdag",
    "PebbleStats",
    "depth_first_schedule",
    "pebble",
    "theorem2_write_lower_bound",
]
