"""Red-blue pebble execution of a CDAG on a two-level memory.

Executes the vertices of a CDAG in a given (or topological) schedule with a
fast memory of *M* values, with **no recomputation** (matching the paper's
footnote that none of its computations benefit from it):

* computing a vertex writes it to fast memory (1 word);
* operands must be resident: if evicted earlier they are re-loaded — and a
  computed value with remaining consumers is **stored to slow memory**
  before eviction (the writes Theorem 2 counts);
* values with no remaining uses are discarded free (D2 endings);
* outputs are stored exactly once (at last use or at the end).

Eviction picks the resident value with the farthest next use in the
schedule (Belady on the DAG), so the measured store count is a *lower
envelope* over replacement decisions for the given schedule — making the
"stores are unavoidable" conclusions robust: even an offline-optimal cache
cannot dodge them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

from repro.cdag.graph import CDAG
from repro.util import check_positive_int, require

__all__ = ["PebbleStats", "pebble", "depth_first_schedule"]


def depth_first_schedule(dag: CDAG) -> list:
    """Topological schedule via post-order DFS from the sinks.

    Depth-first evaluation keeps live intermediate sets small (O(depth) for
    trees), which is what lets write-avoidable CDAGs actually avoid writes
    under the pebbler; breadth-first toposorts store whole frontiers.
    """
    order: list = []
    seen: set = set()
    sinks = [v for v in dag.g.nodes if dag.g.out_degree(v) == 0]
    for root in sinks:
        stack = [(root, False)]
        while stack:
            v, expanded = stack.pop()
            if v in seen:
                continue
            if expanded:
                seen.add(v)
                order.append(v)
                continue
            stack.append((v, True))
            for p in dag.predecessors(v):
                if p not in seen:
                    stack.append((p, False))
    return order


@dataclass
class PebbleStats:
    """Traffic observed while pebbling (in words = values)."""

    loads: int = 0
    stores: int = 0
    writes_to_fast: int = 0
    discards: int = 0
    computed: int = 0

    @property
    def loads_plus_stores(self) -> int:
        return self.loads + self.stores

    @property
    def store_fraction(self) -> float:
        t = self.loads_plus_stores
        return self.stores / t if t else 0.0


def pebble(
    dag: CDAG,
    M: int,
    schedule: Optional[Sequence[Hashable]] = None,
) -> PebbleStats:
    """Execute *dag* with fast memory of *M* values; return traffic stats.

    *schedule* must be a topological order of the computed vertices (inputs
    excluded or included — they are skipped); defaults to a topological
    sort.  Raises if M < max in-degree + 1 (an op's operands and result
    must fit simultaneously).
    """
    check_positive_int(M, "M")
    if schedule is None:
        schedule = dag.topological_order()
    comp_schedule = [v for v in schedule if v not in dag.inputs]
    require(
        len(comp_schedule) == dag.n_vertices - dag.n_inputs,
        "schedule must contain every computed vertex exactly once",
    )

    INF = len(comp_schedule) + 1

    remaining = {v: dag.out_degree(v) for v in dag.g.nodes}

    # consumer positions per value, sorted ascending; pointer per value.
    uses: dict = {v: [] for v in dag.g.nodes}
    for i, v in enumerate(comp_schedule):
        for p in dag.predecessors(v):
            uses[p].append(i)
    for v in uses:
        uses[v].sort()

    def next_use_after(v: Hashable, t: int) -> int:
        lst = uses[v]
        # Binary search for first use > t.
        lo, hi = 0, len(lst)
        while lo < hi:
            mid = (lo + hi) // 2
            if lst[mid] <= t:
                lo = mid + 1
            else:
                hi = mid
        return lst[lo] if lo < len(lst) else INF

    stats = PebbleStats()
    in_fast: set = set()
    stored: set = set(dag.inputs)  # values with a valid slow-memory copy
    # Lazy max-heap of (-next_use, v) for eviction.
    heap: list = []
    cur_next: dict = {}

    def push(v: Hashable, t: int) -> None:
        nu = next_use_after(v, t)
        cur_next[v] = nu
        heapq.heappush(heap, (-nu, v))

    def evict_one(t: int, protect: set) -> None:
        # Pop until a valid, unprotected victim; protected valid entries
        # must be re-pushed or they would become unevictable later.
        stash = []
        while True:
            negnu, v = heapq.heappop(heap)
            if v in in_fast and cur_next.get(v) == -negnu:
                if v in protect:
                    stash.append((negnu, v))
                else:
                    break
        for e in stash:
            heapq.heappush(heap, e)
        in_fast.discard(v)
        needed_later = remaining[v] > 0 or (
            v in dag.outputs and v not in stored
        )
        if needed_later and v not in stored:
            stats.stores += 1
            stored.add(v)
        elif not needed_later:
            stats.discards += 1

    max_indeg = max(
        (dag.g.in_degree(v) for v in comp_schedule), default=0
    )
    require(
        M >= max_indeg + 1,
        f"fast memory M={M} cannot hold an op's {max_indeg} operands "
        f"plus its result",
    )

    for t, v in enumerate(comp_schedule):
        preds = dag.predecessors(v)
        # Bring operands in.
        for p in preds:
            if p not in in_fast:
                require(
                    p in stored,
                    f"operand {p!r} neither resident nor stored — "
                    f"schedule is not topological",
                )
                while len(in_fast) >= M:
                    evict_one(t, set(preds) | {v})
                in_fast.add(p)
                stats.loads += 1
                stats.writes_to_fast += 1
            push(p, t)
        # Compute v into fast memory.
        while len(in_fast) >= M:
            evict_one(t, set(preds) | {v})
        in_fast.add(v)
        stats.writes_to_fast += 1
        stats.computed += 1
        push(v, t)
        # Operand uses consumed.
        for p in preds:
            remaining[p] -= 1
            if remaining[p] == 0 and p in in_fast and p not in dag.outputs:
                # Dead value: free discard (D2).
                in_fast.discard(p)
                stats.discards += 1

    # Drain: outputs must reside in slow memory at the end (paper Sec. 2).
    for v in list(in_fast):
        if v in dag.outputs and v not in stored:
            stats.stores += 1
            stored.add(v)
    for v in dag.outputs:
        require(v in stored, f"output {v!r} was lost")  # invariant
    return stats
