"""Simulated distributed-memory machine and the paper's parallel algorithms.

The paper's Section 7 architecture (Figure 1): P homogeneous ranks, each
with a local hierarchy L1/L2/L3 (L3 = NVM), network attached to L2.  We
simulate it with real numpy blocks per rank and per-rank counters on every
channel (network, L2↔L3, L1↔L2), so algorithms are *executed* — results are
numerically checked — while their communication is *measured* and compared
against the analytic cost models of :mod:`repro.distributed.costmodel`.
"""

from repro.distributed.machine import DistMachine, RankCounters
from repro.distributed.summa import summa_2d, summa_l3_ool2
from repro.distributed.cannon import cannon_2d
from repro.distributed.mm25d import mm_25d
from repro.distributed.lu import lu_ll_nonpivot, lu_rl_nonpivot
from repro.distributed.costmodel import (
    HwParams,
    dom_beta_cost_model21,
    dom_beta_cost_model22,
    ll_lunp_beta_cost,
    rl_lunp_beta_cost,
    table1_rows,
    table2_rows,
)

__all__ = [
    "DistMachine",
    "RankCounters",
    "summa_2d",
    "summa_l3_ool2",
    "cannon_2d",
    "mm_25d",
    "lu_ll_nonpivot",
    "lu_rl_nonpivot",
    "HwParams",
    "dom_beta_cost_model21",
    "dom_beta_cost_model22",
    "ll_lunp_beta_cost",
    "rl_lunp_beta_cost",
    "table1_rows",
    "table2_rows",
]
