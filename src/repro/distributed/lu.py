"""Parallel LU factorization without pivoting (paper Section 7.2).

Two algorithms with opposite positions in the Theorem-4-style trade-off:

* :func:`lu_ll_nonpivot` — **LL-LUNP** (paper Algorithm 5): left-looking by
  block columns.  Each output block is written to NVM at most twice
  (O(n²/P) β23 per rank), but the left-of-panel updates re-read L and U
  blocks across the network on every block column:
  O(n³·log²P/(P·√M2)) βNW — minimizes NVM writes, not network traffic.

* :func:`lu_rl_nonpivot` — **RL-LUNP** (right-looking, CALU-style): panel
  factor + broadcast + trailing update.  Interprocessor words are the CA
  optimum O(n²·log P/√P), but every trailing block round-trips through NVM
  on every step: O(n²·log²P/√P) β23 — minimizes network, not NVM writes.

Data distribution: b×b blocks on a √P×√P grid, block-cyclic
(owner of block (I, J) = rank (I mod √P, J mod √P)), matching the paper.
Both are executed numerically (no pivoting ⇒ caller supplies a matrix with
nonsingular leading minors, e.g. diagonally dominant) and validated as
L·U ≈ A in tests.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.distributed.grid import square_grid_side
from repro.distributed.machine import DistMachine
from repro.util import check_multiple, check_positive_int, require

__all__ = ["lu_ll_nonpivot", "lu_rl_nonpivot"]


def _factor_diag(blk: np.ndarray) -> tuple:
    """Unpivoted LU of a diagonal block: returns (L, U)."""
    n = blk.shape[0]
    L = np.eye(n)
    U = blk.copy()
    for k in range(n):
        require(abs(U[k, k]) > 1e-300,
                "zero pivot: LU without pivoting needs nonsingular minors")
        L[k + 1:, k] = U[k + 1:, k] / U[k, k]
        U[k + 1:, k:] -= np.outer(L[k + 1:, k], U[k, k:])
        U[k + 1:, k] = 0.0
    return L, U


def _setup(A: np.ndarray, machine: DistMachine, b: int):
    A = np.asarray(A, dtype=float)
    n = A.shape[0]
    require(A.shape == (n, n), "A must be square")
    check_positive_int(b, "b")
    q = square_grid_side(machine.P)
    check_multiple(n, b, "n")
    nb = n // b
    require(nb >= 1, "need at least one block")

    def owner(I: int, J: int) -> int:
        return (I % q) * q + (J % q)

    # Initial layout: blocks in NVM (Model 2.2: data only fits in L3).
    for I in range(nb):
        for J in range(nb):
            machine.put(owner(I, J), ("A", I, J),
                        A[I * b:(I + 1) * b, J * b:(J + 1) * b].copy(),
                        level="L3")
    return A, n, q, nb, owner


def _collect(machine, nb, b, owner, key_l, key_u):
    n = nb * b
    L = np.zeros((n, n))
    U = np.zeros((n, n))
    for I in range(nb):
        for J in range(nb):
            if I >= J and machine.has(owner(I, J), (key_l, I, J), "L3"):
                L[I * b:(I + 1) * b, J * b:(J + 1) * b] = machine.get(
                    owner(I, J), (key_l, I, J), "L3")
            if I <= J and machine.has(owner(I, J), (key_u, I, J), "L3"):
                U[I * b:(I + 1) * b, J * b:(J + 1) * b] = machine.get(
                    owner(I, J), (key_u, I, J), "L3")
    return L, U


def lu_ll_nonpivot(
    A: np.ndarray, machine: DistMachine, *, b: int
) -> tuple:
    """Left-looking LU without pivoting (LL-LUNP, paper Algorithm 5).

    Returns (L, U) with unit-diagonal L.  NVM writes per rank stay
    O(n²/P): every finished L/U block is written once, plus one write of
    the updated block before panel factorization.
    """
    A, n, q, nb, owner = _setup(A, machine, b)

    for J in range(nb):
        Ud = None  # this column's diagonal U factor, set at I == J
        down = owner(J, J)
        # Process the column's blocks top to bottom, finalizing each row's
        # L/U block immediately (the paper's Algorithm 5 interleaving:
        # blocks above the diagonal become U(I,J) as soon as updated).
        for I in range(nb):
            own = owner(I, J)
            # ---- update with all finished contributions ----------------- #
            blk = machine.load_nvm(own, ("A", I, J)).copy()
            for K in range(min(I, J)):
                # L(I,K) travels along grid row I; U(K,J) along column J.
                lown = owner(I, K)
                lblk = machine.load_nvm(lown, ("L", I, K))
                if lown != own:
                    machine.send(lown, own, ("Lt", I, K), lblk)
                    lblk = machine.get(own, ("Lt", I, K))
                uown = owner(K, J)
                ublk = machine.load_nvm(uown, ("U", K, J))
                if uown != own:
                    machine.send(uown, own, ("Ut", K, J), ublk)
                    ublk = machine.get(own, ("Ut", K, J))
                blk -= lblk @ ublk

            # ---- finalize the block ------------------------------------- #
            if I < J:
                # Solve L(I,I) · U(I,J) = A(I,J).
                lown = owner(I, I)
                lblk = machine.load_nvm(lown, ("L", I, I))
                if lown != own:
                    machine.send(lown, own, ("Ldiag", I), lblk)
                    lblk = machine.get(own, ("Ldiag", I))
                ub = scipy.linalg.solve_triangular(
                    lblk, blk, lower=True, unit_diagonal=True)
                machine.put(own, ("U", I, J), ub, level="L2")
                machine.store_nvm(own, ("U", I, J))
            elif I == J:
                Ld, Ud = _factor_diag(blk)
                machine.put(down, ("L", J, J), Ld, level="L2")
                machine.put(down, ("U", J, J), Ud, level="L2")
                machine.store_nvm(down, ("L", J, J))
                machine.store_nvm(down, ("U", J, J))
            else:
                # L(I,J) = A(I,J) · U(J,J)^{-1}.
                if down != own:
                    machine.send(down, own, ("Udiag", J), Ud)
                    ud = machine.get(own, ("Udiag", J))
                else:
                    ud = Ud
                lb = scipy.linalg.solve_triangular(ud.T, blk.T,
                                                   lower=True).T
                machine.put(own, ("L", I, J), lb, level="L2")
                machine.store_nvm(own, ("L", I, J))

    return _collect(machine, nb, b, owner, "L", "U")


def lu_rl_nonpivot(
    A: np.ndarray, machine: DistMachine, *, b: int
) -> tuple:
    """Right-looking LU without pivoting (RL-LUNP).

    At each step K: factor the diagonal block, solve the panel row/column,
    broadcast them, and update every trailing block — each trailing block
    is read from NVM and written back (the Θ(n²·log²P/√P) β23 term).
    """
    A, n, q, nb, owner = _setup(A, machine, b)

    for K in range(nb):
        down = owner(K, K)
        blk = machine.load_nvm(down, ("A", K, K))
        Ld, Ud = _factor_diag(blk)
        machine.put(down, ("L", K, K), Ld, level="L2")
        machine.put(down, ("U", K, K), Ud, level="L2")
        machine.store_nvm(down, ("L", K, K))
        machine.store_nvm(down, ("U", K, K))
        # Broadcast the diagonal factors along row K and column K.
        row_ranks = sorted({owner(K, J) for J in range(K, nb)})
        col_ranks = sorted({owner(I, K) for I in range(K, nb)})
        if len(row_ranks) > 1:
            machine.bcast(down, row_ranks, ("L", K, K))
        if len(col_ranks) > 1:
            machine.bcast(down, col_ranks, ("U", K, K))

        # Panel: U(K, J) for J > K, L(I, K) for I > K.
        for J in range(K + 1, nb):
            own = owner(K, J)
            blk = machine.load_nvm(own, ("A", K, J))
            ub = scipy.linalg.solve_triangular(
                machine.get(own, ("L", K, K), "L2"), blk,
                lower=True, unit_diagonal=True)
            machine.put(own, ("U", K, J), ub, level="L2")
            machine.store_nvm(own, ("U", K, J))
        for I in range(K + 1, nb):
            own = owner(I, K)
            blk = machine.load_nvm(own, ("A", I, K))
            lb = scipy.linalg.solve_triangular(
                machine.get(own, ("U", K, K), "L2").T, blk.T, lower=True).T
            machine.put(own, ("L", I, K), lb, level="L2")
            machine.store_nvm(own, ("L", I, K))

        # Broadcast panel blocks along their rows/columns for the update.
        for I in range(K + 1, nb):
            grp = sorted({owner(I, J) for J in range(K + 1, nb)}
                         | {owner(I, K)})
            if len(grp) > 1:
                machine.bcast(owner(I, K), grp, ("L", I, K))
        for J in range(K + 1, nb):
            grp = sorted({owner(I, J) for I in range(K + 1, nb)}
                         | {owner(K, J)})
            if len(grp) > 1:
                machine.bcast(owner(K, J), grp, ("U", K, J))

        # Trailing update: every block round-trips through NVM.
        for I in range(K + 1, nb):
            for J in range(K + 1, nb):
                own = owner(I, J)
                blk = machine.load_nvm(own, ("A", I, J))
                blk = blk - (machine.get(own, ("L", I, K), "L2")
                             @ machine.get(own, ("U", K, J), "L2"))
                machine.put(own, ("A", I, J), blk, level="L2")
                machine.store_nvm(own, ("A", I, J))

    return _collect(machine, nb, b, owner, "L", "U")
