"""SUMMA-family parallel matrix multiplication.

* :func:`summa_2d` — classic 2D SUMMA (Model 1).  Demonstrates the paper's
  Model-1 observation: using the WA local multiply caps writes to L2 from L1
  at the network volume Θ(n²/√P) — not the lower bound n²/P, but never the
  dominant cost.  The ``hoard=True`` variant stores all incoming panels
  first (needs Θ(√P)-times more L2) and *does* attain n²/P local writes.

* :func:`summa_l3_ool2` — SUMMAL3ooL2 (Model 2.2): the matrices live in NVM
  (L3); each rank computes one √(M2/3)-sized C tile at a time entirely in
  L2 and writes it to NVM exactly once.  Attains the NVM-write lower bound
  W1 = n²/P at the price of Θ(n³/(P·√M2)) interprocessor words (Table 2's
  right column), illustrating one side of the Theorem-4 trade-off.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.matmul import matmul_expected_counts, wa_block_size
from repro.distributed.grid import Grid2D
from repro.distributed.machine import DistMachine
from repro.util import require

__all__ = ["summa_2d", "summa_l3_ool2"]


def _charge_local_wa_matmul(
    machine: DistMachine, rank: int, m: int, n: int, l: int, M1: float
) -> None:
    """Charge the L1↔L2 traffic of one local WA multiply (Algorithm 1).

    Uses the exact closed-form counts already validated against the
    instrumented kernel in :mod:`repro.core.matmul`.
    """
    b = wa_block_size(M1)
    while b > 1 and (m % b or n % b or l % b):
        b -= 1
    counts = matmul_expected_counts(m, n, l, b)
    machine.charge_local(rank, l2_to_l1=counts.loads, l1_to_l2=counts.stores)


def summa_2d(
    A: np.ndarray,
    B: np.ndarray,
    machine: DistMachine,
    *,
    hoard: bool = False,
    M1: Optional[float] = None,
) -> np.ndarray:
    """2D SUMMA on a √P×√P grid; returns the assembled C = A·B.

    ``hoard=True`` implements the Section-7 variant that stores all √P
    incoming panels in L2 before multiplying once — attaining the W1 =
    n²/P bound on writes to L2 from L1 at a Θ(√P) memory premium.
    *M1* enables local L1↔L2 traffic charging via the WA local multiply.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    require(A.shape == (n, n) and B.shape == (n, n),
            "summa_2d expects square matrices of equal size")
    g = Grid2D(machine.P)
    q = g.q
    require(n % q == 0, f"n={n} must be divisible by grid side {q}")
    nb = n // q

    # Initial layout: one copy, block-distributed (no traffic charged).
    for r in range(q):
        for c in range(q):
            rk = g.rank(r, c)
            machine.put(rk, ("A", r, c), g.block(A, r, c))
            machine.put(rk, ("B", r, c), g.block(B, r, c))
            machine.put(rk, ("C", r, c), np.zeros((nb, nb)))

    for t in range(q):
        # Owners broadcast panel t along rows (A) and columns (B).
        for r in range(q):
            src = g.rank(r, t)
            machine.put(src, ("Apanel", r, t), machine.get(src, ("A", r, t)))
            machine.bcast(src, g.row_ranks(r), ("Apanel", r, t))
        for c in range(q):
            src = g.rank(t, c)
            machine.put(src, ("Bpanel", t, c), machine.get(src, ("B", t, c)))
            machine.bcast(src, g.col_ranks(c), ("Bpanel", t, c))
        for r in range(q):
            for c in range(q):
                rk = g.rank(r, c)
                Ab = machine.get(rk, ("Apanel", r, t))
                Bb = machine.get(rk, ("Bpanel", t, c))
                if not hoard:
                    machine.get(rk, ("C", r, c))[...] += Ab @ Bb
                    if M1 is not None:
                        _charge_local_wa_matmul(machine, rk, nb, nb, nb, M1)
                else:
                    machine.put(rk, ("Ahoard", r, t), Ab)
                    machine.put(rk, ("Bhoard", t, c), Bb)

    if hoard:
        # One big local multiply per rank: C(r,c) = A(r,:) · B(:,c).
        for r in range(q):
            for c in range(q):
                rk = g.rank(r, c)
                Arow = np.hstack([machine.get(rk, ("Ahoard", r, t))
                                  for t in range(q)])
                Bcol = np.vstack([machine.get(rk, ("Bhoard", t, c))
                                  for t in range(q)])
                machine.get(rk, ("C", r, c))[...] += Arow @ Bcol
                if M1 is not None:
                    _charge_local_wa_matmul(machine, rk, nb, n, nb, M1)

    # Rename the staged panel keys so reruns don't collide.
    blocks = {(r, c): machine.get(g.rank(r, c), ("C", r, c))
              for r in range(q) for c in range(q)}
    return g.assemble(blocks, n)


def summa_l3_ool2(
    A: np.ndarray,
    B: np.ndarray,
    machine: DistMachine,
    *,
    M2: float,
) -> np.ndarray:
    """SUMMAL3ooL2 (Model 2.2): data in NVM, one C tile in L2 at a time.

    Each rank's C block is tiled into √(M2/3)-sized tiles; a tile is
    accumulated across all n/√(M2/3) SUMMA steps while resident in L2 and
    written to NVM exactly once — NVM writes per rank = n²/P, the W1 bound.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    require(A.shape == (n, n) and B.shape == (n, n),
            "expects square matrices of equal size")
    g = Grid2D(machine.P)
    q = g.q
    require(n % q == 0, f"n={n} must be divisible by grid side {q}")
    nb = n // q
    t2 = int(math.isqrt(int(M2 // 3)))  # tile edge sqrt(M2/3)
    while t2 > 1 and (nb % t2 or n % t2):
        t2 -= 1
    require(t2 >= 1, "M2 too small for a 1x1 tile")
    require(3 * t2 * t2 <= M2, "internal: tile sizing")

    # Initial layout: one copy, block-distributed, in NVM (L3).
    for r in range(q):
        for c in range(q):
            rk = g.rank(r, c)
            machine.put(rk, ("A", r, c), g.block(A, r, c), level="L3")
            machine.put(rk, ("B", r, c), g.block(B, r, c), level="L3")

    ntile = nb // t2          # C tiles per rank edge
    ksteps = n // t2          # global reduction steps per tile
    out_blocks = {}
    for r in range(q):
        for c in range(q):
            out_blocks[(r, c)] = np.zeros((nb, nb))

    for ti in range(ntile):
        for tj in range(ntile):
            # All ranks accumulate their tile (ti, tj) over global k.
            ctile = {
                (r, c): np.zeros((t2, t2)) for r in range(q) for c in range(q)
            }
            for ks in range(ksteps):
                kcol_owner = (ks * t2) // nb      # grid column owning A k-chunk
                koff = (ks * t2) % nb
                for r in range(q):
                    # Owner of A tile: rank (r, kcol_owner); read from NVM,
                    # broadcast along the row.
                    src = g.rank(r, kcol_owner)
                    Ablk = machine.get(src, ("A", r, kcol_owner), level="L3")
                    Atile = Ablk[ti * t2:(ti + 1) * t2, koff:koff + t2]
                    machine.charge_nvm_read(src, Atile.size)
                    machine.put(src, ("At", r), Atile)
                    machine.bcast(src, g.row_ranks(r), ("At", r))
                for c in range(q):
                    src = g.rank(kcol_owner, c)
                    Bblk = machine.get(src, ("B", kcol_owner, c), level="L3")
                    Btile = Bblk[koff:koff + t2, tj * t2:(tj + 1) * t2]
                    machine.charge_nvm_read(src, Btile.size)
                    machine.put(src, ("Bt", c), Btile)
                    machine.bcast(src, g.col_ranks(c), ("Bt", c))
                for r in range(q):
                    for c in range(q):
                        rk = g.rank(r, c)
                        ctile[(r, c)] += (
                            machine.get(rk, ("At", r))
                            @ machine.get(rk, ("Bt", c))
                        )
            # Tile finished: write to NVM exactly once.
            for r in range(q):
                for c in range(q):
                    rk = g.rank(r, c)
                    machine.put(rk, ("Ct", r, c, ti, tj), ctile[(r, c)])
                    machine.store_nvm(rk, ("Ct", r, c, ti, tj))
                    out_blocks[(r, c)][
                        ti * t2:(ti + 1) * t2, tj * t2:(tj + 1) * t2
                    ] = ctile[(r, c)]

    return g.assemble(out_blocks, n)
