"""Process-grid helpers shared by the parallel algorithms."""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.util import check_positive_int, require

__all__ = ["square_grid_side", "Grid2D"]


def square_grid_side(P: int) -> int:
    """√P for a square grid, validating P is a perfect square."""
    check_positive_int(P, "P")
    q = math.isqrt(P)
    require(q * q == P, f"P={P} must be a perfect square")
    return q


class Grid2D:
    """A q×q process grid with block-distributed square matrices.

    Rank ids are ``row * q + col``.  ``block(X, r, c)`` extracts the
    (n/q)×(n/q) block of a global matrix owned by grid position (r, c).
    """

    def __init__(self, P: int):
        self.q = square_grid_side(P)
        self.P = P

    def rank(self, r: int, c: int) -> int:
        return (r % self.q) * self.q + (c % self.q)

    def coords(self, rank: int) -> Tuple[int, int]:
        return divmod(rank, self.q)

    def row_ranks(self, r: int) -> List[int]:
        return [self.rank(r, c) for c in range(self.q)]

    def col_ranks(self, c: int) -> List[int]:
        return [self.rank(r, c) for r in range(self.q)]

    def block(self, X: np.ndarray, r: int, c: int) -> np.ndarray:
        n = X.shape[0]
        require(n % self.q == 0,
                f"matrix dimension {n} not divisible by grid side {self.q}")
        nb = n // self.q
        return X[r * nb : (r + 1) * nb, c * nb : (c + 1) * nb]

    def assemble(self, blocks: dict, n: int, dtype=float) -> np.ndarray:
        """Rebuild a global matrix from a {(r, c): block} dict."""
        nb = n // self.q
        out = np.zeros((n, n), dtype=dtype)
        for (r, c), blk in blocks.items():
            out[r * nb : (r + 1) * nb, c * nb : (c + 1) * nb] = blk
        return out
