"""Analytic communication cost models (paper Section 7, Tables 1 and 2).

Hardware is described by :class:`HwParams` — per-channel latency α and
reciprocal bandwidth β, matching the paper's vocabulary:

========  ======================================================
symbol    channel
========  ======================================================
``nw``    interprocessor network (attached to L2)
``23``    L2 → L3 (NVM **write** — the expensive direction)
``32``    L3 → L2 (NVM read)
``12``    L1 → L2 (store toward DRAM)
``21``    L2 → L1 (load toward cache)
========  ======================================================

Every entry of the paper's Table 1 and Table 2 is reproduced by
:func:`table1_rows` / :func:`table2_rows` — the same (data movement,
hardware parameter, common factor, per-algorithm cost) rows, numerically
evaluated — and per-algorithm totals are produced by the ``cost_*``
functions.  Dominant-β-cost comparators implement the paper's closed-form
ratio tests for choosing between algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.util import require

__all__ = [
    "HwParams",
    "Term",
    "TABLE1_ROW_COUNT",
    "TABLE2_ROW_COUNT",
    "hw_param_key",
    "cost_2dmml2",
    "cost_25dmml2",
    "cost_25dmml3",
    "cost_25dmml3_ool2",
    "cost_summal3_ool2",
    "dom_beta_cost_model21",
    "dom_beta_cost_model22",
    "ll_lunp_beta_cost",
    "rl_lunp_beta_cost",
    "table1_rows",
    "table2_rows",
    "replication_break_even",
]


@dataclass
class HwParams:
    """α/β per channel (seconds per message / per word) and level sizes.

    Defaults sketch a 2015-era node with slow NVM writes: network ≈ DRAM
    bandwidth, NVM reads ~4× slower, NVM writes ~20× slower than network.
    """

    beta_nw: float = 1.0
    alpha_nw: float = 1e3
    beta_23: float = 20.0     # NVM write: the expensive direction
    alpha_23: float = 1e3
    beta_32: float = 4.0      # NVM read
    alpha_32: float = 1e3
    beta_12: float = 0.1
    alpha_12: float = 10.0
    beta_21: float = 0.1
    alpha_21: float = 10.0
    M1: float = 2**15
    M2: float = 2**24
    M3: float = 2**30

    def validate(self) -> None:
        for name in ("beta_nw", "beta_23", "beta_32", "beta_12", "beta_21",
                     "alpha_nw", "alpha_23", "alpha_32", "alpha_12",
                     "alpha_21", "M1", "M2", "M3"):
            require(getattr(self, name) > 0, f"{name} must be positive")
        require(self.M1 < self.M2 < self.M3,
                "level sizes must satisfy M1 < M2 < M3")


@dataclass
class Term:
    """One cost term: words (or messages) times a hardware parameter."""

    channel: str      # e.g. "L2->L1", "Interprocessor", "L2->L3"
    param: str        # e.g. "beta_nw", "alpha_32"
    count: float      # number of words / messages

    def seconds(self, hw: HwParams) -> float:
        return self.count * getattr(hw, hw_param_key(self.param))


def hw_param_key(param: str) -> str:
    """Map table labels like 'βNW' or 'beta_nw' to HwParams attributes."""
    table = {
        "βNW": "beta_nw", "αNW": "alpha_nw",
        "β23": "beta_23", "α23": "alpha_23",
        "β32": "beta_32", "α32": "alpha_32",
        "β12": "beta_12", "α12": "alpha_12",
        "β21": "beta_21", "α21": "alpha_21",
    }
    return table.get(param, param)


def _total(terms: List[Term], hw: HwParams) -> float:
    return sum(t.seconds(hw) for t in terms)


# ===================================================================== #
# Model 2.1 (Table 1): data fits in L2
# ===================================================================== #
def cost_2dmml2(n: int, P: int, hw: HwParams) -> Dict:
    """2D matmul (c=1, L2 only): formulas (8) + (10) with c2 = 1."""
    hw.validate()
    s = math.sqrt(P)
    terms = [
        Term("L2->L1", "alpha_21", (n**3 / P) / hw.M1**1.5),
        Term("L2->L1", "beta_21", (n**3 / P) / math.sqrt(hw.M1)),
        Term("L1->L2", "alpha_12", (n**2 / s) / hw.M1),
        Term("L1->L2", "beta_12", n**2 / s),
        Term("Interprocessor", "alpha_nw", 2 * s),
        Term("Interprocessor", "beta_nw", 2 * n**2 / s),
    ]
    return {"name": "2DMML2", "terms": terms, "total": _total(terms, hw)}


def cost_25dmml2(n: int, P: int, c2: int, hw: HwParams) -> Dict:
    """2.5DMML2: formulas (4)·2 + (6) + (8) + (10)."""
    hw.validate()
    require(1 <= c2 <= P ** (1 / 3) + 1e-9, f"c2={c2} out of range")
    lg = math.log2(c2) if c2 > 1 else 0.0
    terms = [
        # (4) twice: gathers of A and B into the 2.5D layout.
        Term("Interprocessor", "alpha_nw", 2 * c2),
        Term("Interprocessor", "beta_nw", 2 * 2 * n**2 * c2 / P),
        # (6): replication broadcast.
        Term("Interprocessor", "alpha_nw", 2 * lg),
        Term("Interprocessor", "beta_nw", 2 * lg * 2 * n**2 * c2 / P),
        # (8): Cannon steps on each layer.
        Term("Interprocessor", "alpha_nw", 2 * math.sqrt(P / c2**3)),
        Term("Interprocessor", "beta_nw", 2 * n**2 / math.sqrt(P * c2)),
        # (10): local (vertical) traffic.
        Term("L2->L1", "alpha_21", (n**3 / P) / hw.M1**1.5),
        Term("L2->L1", "beta_21", (n**3 / P) / math.sqrt(hw.M1)),
        Term("L1->L2", "alpha_12", (n**2 / math.sqrt(P * c2)) / hw.M1),
        Term("L1->L2", "beta_12", n**2 / math.sqrt(P * c2)),
    ]
    return {"name": "2.5DMML2", "terms": terms, "total": _total(terms, hw)}


def cost_25dmml3(n: int, P: int, c2: int, c3: int, hw: HwParams) -> Dict:
    """2.5DMML3 (Model 2.1 with NVM): formulas (5)·2 + (7) + (9) + (11)."""
    hw.validate()
    require(c3 > c2 >= 1, f"need c3 > c2 >= 1, got c2={c2}, c3={c3}")
    require(c3 <= P ** (1 / 3) + 1e-9, f"c3={c3} exceeds P^(1/3)")
    lg3 = math.log2(c3) if c3 > 1 else 0.0
    terms = [
        # (5) twice: gathers, staged via NVM.
        Term("Interprocessor", "alpha_nw", 2 * c3),
        Term("L2->L3", "alpha_23", 2 * c3),
        Term("Interprocessor", "beta_nw", 2 * 2 * n**2 * c3 / P),
        Term("L2->L3", "beta_23", 2 * 2 * n**2 * c3 / P),
        # (7): replication broadcast in c3/c2 chunks.
        Term("L3->L2", "alpha_32", 2 * (c3 / c2) * lg3),
        Term("Interprocessor", "alpha_nw", 2 * (c3 / c2) * lg3),
        Term("L2->L3", "alpha_23", 2 * (c3 / c2) * lg3),
        Term("L3->L2", "beta_32", 2 * lg3 * 2 * n**2 * c3 / P),
        Term("Interprocessor", "beta_nw", 2 * lg3 * 2 * n**2 * c3 / P),
        Term("L2->L3", "beta_23", 2 * lg3 * 2 * n**2 * c3 / P),
        # (9): Cannon steps, NVM-staged.
        Term("L3->L2", "alpha_32", 2 * math.sqrt(P / (c3 * c2**2))),
        Term("Interprocessor", "alpha_nw", 2 * math.sqrt(P / (c3 * c2**2))),
        Term("L2->L3", "alpha_23", 2 * math.sqrt(P / (c3 * c2**2))),
        Term("L3->L2", "beta_32", 2 * n**2 / math.sqrt(P * c3)),
        Term("Interprocessor", "beta_nw", 2 * n**2 / math.sqrt(P * c3)),
        Term("L2->L3", "beta_23", 2 * n**2 / math.sqrt(P * c3)),
        # (11): local traffic including the L3 round trips.
        Term("L2->L1", "alpha_21", (n**3 / P) / hw.M1**1.5),
        Term("L2->L1", "beta_21", (n**3 / P) / math.sqrt(hw.M1)),
        Term("L1->L2", "alpha_12", (n**3 / P) / (math.sqrt(hw.M2) * hw.M1)),
        Term("L1->L2", "beta_12", (n**3 / P) / math.sqrt(hw.M2)),
        Term("L3->L2", "alpha_32", (n**3 / P) / hw.M2**1.5),
        Term("L3->L2", "beta_32", (n**3 / P) / math.sqrt(hw.M2)),
        Term("L2->L3", "alpha_23", (n**2 / math.sqrt(P * c3)) / hw.M2),
        Term("L2->L3", "beta_23", n**2 / math.sqrt(P * c3)),
    ]
    return {"name": "2.5DMML3", "terms": terms, "total": _total(terms, hw)}


def dom_beta_cost_model21(n: int, P: int, c2: int, c3: int,
                          hw: HwParams) -> Dict:
    """The paper's closed-form Model-2.1 comparison (Section 7 preamble):

    dom(2.5DMML2)  = 2n²/√(P·c2) · βNW
    dom(2.5DMML3)  = 2n²/√(P·c3) · (βNW + 1.5·β23 + β32)

    Returns both, their ratio, and which is predicted faster.
    """
    hw.validate()
    d2 = 2 * n**2 / math.sqrt(P * c2) * hw.beta_nw
    d3 = (2 * n**2 / math.sqrt(P * c3)
          * (hw.beta_nw + 1.5 * hw.beta_23 + hw.beta_32))
    ratio = d2 / d3
    return {
        "dom_2.5DMML2": d2,
        "dom_2.5DMML3": d3,
        "ratio": ratio,
        "winner": "2.5DMML3" if ratio > 1 else "2.5DMML2",
    }


def replication_break_even(hw: HwParams, c2: int) -> float:
    """Smallest c3/c2 for which 2.5DMML3 beats 2.5DMML2 (Model 2.1).

    From ratio = √(c3/c2)·βNW/(βNW + 1.5β23 + β32) > 1.
    """
    hw.validate()
    factor = (hw.beta_nw + 1.5 * hw.beta_23 + hw.beta_32) / hw.beta_nw
    return factor**2


# ===================================================================== #
# Model 2.2 (Table 2): data does not fit in L2
# ===================================================================== #
def cost_25dmml3_ool2(n: int, P: int, c3: int, hw: HwParams) -> Dict:
    """2.5DMML3ooL2: formulas (12) + (13)·2 + (14) + (15)."""
    hw.validate()
    require(1 <= c3 <= P ** (1 / 3) + 1e-9, f"c3={c3} out of range")
    lg3 = math.log2(c3) if c3 > 1 else 0.0
    M2 = hw.M2

    def staged(words: float) -> List[Term]:
        """words moved through L3→L2, network, L2→L3 in M2-chunks."""
        return [
            Term("L3->L2", "beta_32", words),
            Term("Interprocessor", "beta_nw", words),
            Term("L2->L3", "beta_23", words),
            Term("L3->L2", "alpha_32", words / M2),
            Term("Interprocessor", "alpha_nw", words / M2),
            Term("L2->L3", "alpha_23", words / M2),
        ]

    terms: List[Term] = []
    terms += staged(2 * n**2 * c3 / P)                      # (12) gather
    terms += staged(2 * 2 * n**2 * c3 * lg3 / P)            # (13) x2 bcast+reduce
    terms += staged(2 * n**2 / math.sqrt(P * c3))           # (14) horizontal
    terms += [                                              # (15) vertical
        Term("L2->L1", "alpha_21", (n**3 / P) / hw.M1**1.5),
        Term("L2->L1", "beta_21", (n**3 / P) / math.sqrt(hw.M1)),
        Term("L1->L2", "alpha_12", (n**3 / P) / (math.sqrt(M2) * hw.M1)),
        Term("L1->L2", "beta_12", (n**3 / P) / math.sqrt(M2)),
        Term("L3->L2", "alpha_32", (n**3 / P) / M2**1.5),
        Term("L3->L2", "beta_32", (n**3 / P) / math.sqrt(M2)),
        Term("L2->L3", "alpha_23", (n**2 / math.sqrt(P * c3)) / M2),
        Term("L2->L3", "beta_23", n**2 / math.sqrt(P * c3)),
    ]
    return {"name": "2.5DMML3ooL2", "terms": terms,
            "total": _total(terms, hw)}


def cost_summal3_ool2(n: int, P: int, hw: HwParams) -> Dict:
    """SUMMAL3ooL2: formula (17)."""
    hw.validate()
    M2 = hw.M2
    f = n**3 / P * 3**1.5 / math.sqrt(M2)
    terms = [
        Term("L3->L2", "beta_32", f),
        Term("Interprocessor", "beta_nw", f),
        Term("L3->L2", "alpha_32", f / M2),
        Term("Interprocessor", "alpha_nw", f * math.log2(P) / M2),
        Term("L2->L1", "beta_21", (n**3 / P) / math.sqrt(hw.M1)),
        Term("L2->L1", "alpha_21", (n**3 / P) / hw.M1**1.5),
        Term("L1->L2", "beta_12", (n**3 / P) / math.sqrt(M2 / 3)),
        Term("L1->L2", "alpha_12", (n**3 / P) / (math.sqrt(M2 / 3) * hw.M1)),
        Term("L2->L3", "beta_23", n**2 / P),
        Term("L2->L3", "alpha_23", (n**2 / P) / M2),
    ]
    return {"name": "SUMMAL3ooL2", "terms": terms, "total": _total(terms, hw)}


def dom_beta_cost_model22(n: int, P: int, c3: int, hw: HwParams) -> Dict:
    """The paper's equations (2) and (3): dominant β-costs in Model 2.2."""
    hw.validate()
    M2 = hw.M2
    d25 = (hw.beta_nw * n**2 / math.sqrt(P * c3)
           + hw.beta_23 * n**2 / math.sqrt(P * c3)
           + hw.beta_32 * n**3 / (P * math.sqrt(M2)))
    dsu = (hw.beta_nw * n**3 / (P * math.sqrt(M2))
           + hw.beta_23 * n**2 / P
           + hw.beta_32 * n**3 / (P * math.sqrt(M2)))
    return {
        "dom_2.5DMML3ooL2": d25,
        "dom_SUMMAL3ooL2": dsu,
        "ratio": d25 / dsu,
        "winner": "SUMMAL3ooL2" if d25 > dsu else "2.5DMML3ooL2",
    }


# ===================================================================== #
# LU (Section 7.2)
# ===================================================================== #
def ll_lunp_beta_cost(n: int, P: int, hw: HwParams) -> Dict:
    """LL-LUNP dominant β-costs (paper's domβcost formula, from (23)/(24))."""
    hw.validate()
    lg2 = math.log2(P) ** 2 if P > 1 else 1.0
    nw = n**3 / (P * math.sqrt(hw.M2)) * lg2
    return {
        "name": "LL-LUNP",
        "beta_nw_words": nw,
        "beta_23_words": 2 * n**2 / P,
        "beta_32_words": nw,
        "total": (hw.beta_nw * nw + hw.beta_23 * 2 * n**2 / P
                  + hw.beta_32 * nw),
    }


def rl_lunp_beta_cost(n: int, P: int, hw: HwParams) -> Dict:
    """RL-LUNP dominant β-costs (from (25)/(26))."""
    hw.validate()
    lg = math.log2(P) if P > 1 else 1.0
    return {
        "name": "RL-LUNP",
        "beta_nw_words": n**2 / math.sqrt(P) * lg,
        "beta_23_words": n**2 / math.sqrt(P) * lg**2,
        "beta_32_words": n**3 / (P * math.sqrt(hw.M2)),
        "total": (hw.beta_nw * n**2 / math.sqrt(P) * lg
                  + hw.beta_23 * n**2 / math.sqrt(P) * lg**2
                  + hw.beta_32 * n**3 / (P * math.sqrt(hw.M2))),
    }


# ===================================================================== #
# Tables 1 and 2, row for row
# ===================================================================== #
#: The tables' row counts are structural (fixed literal row lists below,
#: independent of n/P/c/hw) — consumers sizing a per-cell grid can use
#: these instead of evaluating a whole table to measure it.
TABLE1_ROW_COUNT = 15
TABLE2_ROW_COUNT = 10



def table1_rows(n: int, P: int, c2: int, c3: int, hw: HwParams) -> List[Dict]:
    """Numerically evaluated rows of the paper's Table 1.

    Each row: data movement, hardware parameter, common factor, and the
    per-algorithm *cost coefficients* (multiplied out to word/message
    counts) for 2DMML2, 2.5DMML2 and 2.5DMML3 — ``None`` where the paper
    prints "NA".
    """
    hw.validate()
    require(c3 > c2 >= 1, "need c3 > c2 >= 1")
    sp = math.sqrt(P)
    lgc2 = math.log2(c2) if c2 > 1 else 0.0
    lgc3 = math.log2(c3) if c3 > 1 else 0.0

    def row(move, param, common, a, b, c):
        return {
            "movement": move, "param": param, "common": common,
            "2DMML2": None if a is None else a * common,
            "2.5DMML2": None if b is None else b * common,
            "2.5DMML3": None if c is None else c * common,
        }

    n3P = n**3 / P
    n2sp = n**2 / sp
    rows = [
        row("L2->L1", "α21/M1^(3/2)", n3P / hw.M1**1.5, 1, 1, 1),
        row("L2->L1", "β21/M1^(1/2)", n3P / math.sqrt(hw.M1), 1, 1, 1),
        row("L1->L2", "α12/M1", n2sp / hw.M1,
            1, 1 / math.sqrt(c2), None),
        row("L1->L2", "β12", n2sp, 1, 1 / math.sqrt(c2), None),
        row("L1->L2", "α12/(M2^(1/2)·M1)", n3P / (math.sqrt(hw.M2) * hw.M1),
            None, None, 1),
        row("L1->L2", "β12/M2^(1/2)", n3P / math.sqrt(hw.M2), None, None, 1),
        row("Interprocessor", "αNW", 2 * sp,
            1,
            1 / c2**1.5 + (c2 + lgc2) / sp,
            1 / (math.sqrt(c3) * c2) + c3 * (1 + lgc3 / c2) / sp),
        row("Interprocessor", "βNW", 2 * n**2 / sp,
            1,
            1 / math.sqrt(c2) + 2 * c2 * (1 + lgc2) / sp,
            1 / math.sqrt(c3) + 2 * c3 * (1 + lgc3) / sp),
        row("L3->L2", "α32", 2 * sp,
            None, None,
            1 / (math.sqrt(c3) * c2) + c3 * (1 + lgc3 / c2) / sp - c3 / sp),
        row("L3->L2", "β32", 2 * n**2 / sp,
            None, None,
            1 / math.sqrt(c3) + 2 * c3 * (1 + lgc3) / sp - 2 * c3 / sp),
        row("L3->L2", "α32/M2^(3/2)", n3P / hw.M2**1.5, None, None, 1),
        row("L3->L2", "β32/M2^(1/2)", n3P / math.sqrt(hw.M2), None, None, 1),
        row("L2->L3", "α23", 2 * sp,
            None, None,
            1 / (math.sqrt(c3) * c2) + c3 * (1 + lgc3 / c2) / sp),
        row("L2->L3", "β23", 2 * n**2 / sp,
            None, None,
            1 / math.sqrt(c3) + 2 * c3 * (1 + lgc3) / sp + 0.5 / math.sqrt(c3)),
        row("L2->L3", "α23/M2", n**2 / sp / hw.M2,
            None, None, 1 / math.sqrt(c3)),
    ]
    return rows


def table2_rows(n: int, P: int, c3: int, hw: HwParams) -> List[Dict]:
    """Numerically evaluated rows of the paper's Table 2."""
    hw.validate()
    sp = math.sqrt(P)
    lgc3 = math.log2(c3) if c3 > 1 else 0.0
    n3P = n**3 / P
    n2sp = n**2 / sp

    def row(move, param, common, a, b):
        return {
            "movement": move, "param": param, "common": common,
            "2.5DMML3ooL2": None if a is None else a * common,
            "SUMMAL3ooL2": None if b is None else b * common,
        }

    horiz25 = 1 / math.sqrt(c3) + c3 * (1 + lgc3) / sp
    horiz_summa = n / math.sqrt(P * hw.M2)
    rows = [
        row("L2->L1", "α21/M1^(3/2)", n3P / hw.M1**1.5, 1, 1),
        row("L2->L1", "β21/M1^(1/2)", n3P / math.sqrt(hw.M1), 1, 1),
        row("L1->L2", "α12/(M2^(1/2)·M1)",
            n3P / (math.sqrt(hw.M2) * hw.M1), 1, 1),
        row("L1->L2", "β12/M2^(1/2)", n3P / math.sqrt(hw.M2), 1, 1),
        row("Interprocessor", "αNW/M2", n2sp / hw.M2,
            horiz25, horiz_summa * math.log2(P)),
        row("Interprocessor", "βNW", n2sp, horiz25, horiz_summa),
        row("L3->L2", "α32/M2", n2sp / hw.M2,
            horiz_summa + horiz25, horiz_summa),
        row("L3->L2", "β32", n2sp, horiz_summa + horiz25, horiz_summa),
        row("L2->L3", "α23/M2", n**2 / P / hw.M2,
            math.sqrt(P / c3) + c3 * (1 + lgc3), 1),
        row("L2->L3", "β23", n**2 / P,
            math.sqrt(P / c3) + c3 * (1 + lgc3), 1),
    ]
    return rows
