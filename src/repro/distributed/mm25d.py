"""2.5D matrix multiplication with optional NVM staging (Models 2.1/2.2).

One implementation covers the paper's three 2.5D variants through the
*storage* parameter:

* ``storage="L2"``  — **2.5DMML2**: the c-fold replicas live in DRAM;
  requires c·2n²/P ≤ M2 per rank.
* ``storage="L3"``  — **2.5DMML3** (Model 2.1): replicas are written to NVM
  on receipt (β23) and read back per use (β32), in messages of at most M2
  words; allows c up to the NVM capacity.
* ``storage="L3-ooL2"`` — **2.5DMML3ooL2** (Model 2.2): inputs *start* in
  NVM and everything is staged through M2-sized chunks; local multiplies
  charge the WA-matmul NVM read volume Θ((n/q)³/√M2) per step.  Attains the
  interprocessor bound W2 = n²/√(Pc) but writes Θ(n²/√(Pc)) ≫ n²/P words to
  NVM — the other side of the Theorem-4 trade-off.

The executed schedule: c layers of a q×q grid (q = √(P/c)); the top layer
holds the canonical input blocks; step 2 broadcasts them down the fibers;
step 3 runs 1/c of the SUMMA steps per layer; step 4 sum-reduces C to the
top layer.  (The paper's step-1 layout transformation from a √P×√P grid is
charged in the analytic cost model; the simulation starts in the 2.5D
layout, which changes only a lower-order gather term.)
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

from repro.distributed.machine import DistMachine
from repro.util import ceil_div, require

__all__ = ["mm_25d"]

STORAGE_MODES = ("L2", "L3", "L3-ooL2")


def mm_25d(
    A: np.ndarray,
    B: np.ndarray,
    machine: DistMachine,
    *,
    c: int,
    storage: str = "L2",
    M2: float | None = None,
) -> np.ndarray:
    """2.5D matmul with replication factor *c* on P = c·q² ranks."""
    require(storage in STORAGE_MODES,
            f"storage must be one of {STORAGE_MODES}")
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    require(A.shape == (n, n) and B.shape == (n, n),
            "mm_25d expects square matrices of equal size")
    require(c >= 1, f"replication factor must be >= 1, got {c}")
    require(machine.P % c == 0, f"P={machine.P} not divisible by c={c}")
    q2 = machine.P // c
    q = math.isqrt(q2)
    require(q * q == q2, f"P/c = {q2} must be a perfect square")
    require(c <= q, f"c={c} must be <= q={q} (c <= P^(1/3) regime)")
    require(q % c == 0 or c == 1,
            f"layer step-count q/c must be integral: q={q}, c={c}")
    require(n % q == 0, f"n={n} must be divisible by grid side {q}")
    if storage != "L2":
        require(M2 is not None and M2 > 0,
                "NVM-staged variants need M2 (DRAM size in words)")
    nb = n // q
    chunk = int(M2) if M2 is not None else nb * nb

    def rank(layer: int, r: int, col: int) -> int:
        return layer * q2 + (r % q) * q + (col % q)

    def nvm_msgs(words: int) -> int:
        return ceil_div(words, chunk)

    staged = storage in ("L3", "L3-ooL2")

    # ---------------- initial data placement (no traffic) --------------- #
    init_level = "L3" if storage == "L3-ooL2" else "L2"
    for r in range(q):
        for col in range(q):
            rk = rank(0, r, col)
            machine.put(rk, ("A", r, col),
                        A[r * nb:(r + 1) * nb, col * nb:(col + 1) * nb],
                        level=init_level)
            machine.put(rk, ("B", r, col),
                        B[r * nb:(r + 1) * nb, col * nb:(col + 1) * nb],
                        level=init_level)

    # ---------------- step 2: replicate down the fibers ----------------- #
    for r in range(q):
        for col in range(q):
            top = rank(0, r, col)
            if storage == "L3-ooL2":
                # Inputs live in NVM: read them up before sending (β32).
                for key in (("A", r, col), ("B", r, col)):
                    machine.load_nvm(top, key)
            fiber = [rank(t, r, col) for t in range(c)]
            if c > 1:
                machine.bcast(top, fiber, ("A", r, col))
                machine.bcast(top, fiber, ("B", r, col))
            if staged:
                # Replicas are parked in NVM on every layer (β23), in
                # chunks of at most M2 words.
                for t in range(c):
                    rk = rank(t, r, col)
                    if storage == "L3-ooL2" and t == 0:
                        continue  # already resident in L3 on the top layer
                    for key in (("A", r, col), ("B", r, col)):
                        arr = machine.get(rk, key, "L2")
                        machine.put(rk, key, arr, level="L3")
                        machine.charge_nvm_write(
                            rk, arr.size, msgs=nvm_msgs(arr.size))

    # ---------------- step 3: 1/c of SUMMA per layer -------------------- #
    steps_per_layer = q // c if c > 1 else q
    partials: Dict[Tuple[int, int, int], np.ndarray] = {}
    for t in range(c):
        for r in range(q):
            for col in range(q):
                partials[(t, r, col)] = np.zeros((nb, nb))
    for t in range(c):
        for s in range(steps_per_layer):
            k = t * steps_per_layer + s
            # A(r, k) broadcast along rows; B(k, col) along columns of
            # layer t.  Owner is the layer's replica of the block.
            for r in range(q):
                src = rank(t, r, k)
                if staged:
                    arr = machine.get(src, ("A", r, k), "L3")
                    machine.charge_nvm_read(src, arr.size,
                                            msgs=nvm_msgs(arr.size))
                    machine.put(src, ("A", r, k), arr, level="L2")
                machine.put(src, ("Ap", t, r),
                            machine.get(src, ("A", r, k), "L2"))
                machine.bcast(src, [rank(t, r, cc) for cc in range(q)],
                              ("Ap", t, r))
                if staged:
                    # Receivers park the panel in NVM (the β23 term of the
                    # paper's eq. (9)/(14) horizontal-communication cost).
                    for cc in range(q):
                        rkv = rank(t, r, cc)
                        if rkv != src:
                            w = machine.get(rkv, ("Ap", t, r)).size
                            machine.charge_nvm_write(rkv, w,
                                                     msgs=nvm_msgs(w))
            for col in range(q):
                src = rank(t, k, col)
                if staged:
                    arr = machine.get(src, ("B", k, col), "L3")
                    machine.charge_nvm_read(src, arr.size,
                                            msgs=nvm_msgs(arr.size))
                    machine.put(src, ("B", k, col), arr, level="L2")
                machine.put(src, ("Bp", t, col),
                            machine.get(src, ("B", k, col), "L2"))
                machine.bcast(src, [rank(t, rr, col) for rr in range(q)],
                              ("Bp", t, col))
                if staged:
                    for rr in range(q):
                        rkv = rank(t, rr, col)
                        if rkv != src:
                            w = machine.get(rkv, ("Bp", t, col)).size
                            machine.charge_nvm_write(rkv, w,
                                                     msgs=nvm_msgs(w))
            for r in range(q):
                for col in range(q):
                    rk = rank(t, r, col)
                    partials[(t, r, col)] += (
                        machine.get(rk, ("Ap", t, r))
                        @ machine.get(rk, ("Bp", t, col))
                    )
                    if storage == "L3-ooL2":
                        # Local multiply with operands in NVM: the WA local
                        # matmul reads Θ(2·nb³/√(M2/3)) words from NVM and
                        # re-writes the C tile once per step.
                        b2 = max(1, int(math.isqrt(int(M2 // 3))))
                        machine.charge_nvm_read(
                            rk, 2 * nb * nb * ceil_div(nb, b2),
                            msgs=max(1, 2 * ceil_div(nb, b2)))

    # ---------------- step 4: reduce partial C down the fibers ---------- #
    out = np.zeros((n, n))
    for r in range(q):
        for col in range(q):
            fiber = [rank(t, r, col) for t in range(c)]
            for t in range(c):
                machine.put(rank(t, r, col), ("Cp", r, col),
                            partials[(t, r, col)])
            if c > 1:
                total = machine.reduce(rank(0, r, col), fiber, ("Cp", r, col))
            else:
                total = partials[(0, r, col)]
            if storage == "L3-ooL2":
                # The output must land in NVM (it does not fit in DRAM).
                top = rank(0, r, col)
                machine.put(top, ("C", r, col), total, level="L3")
                machine.charge_nvm_write(top, total.size,
                                         msgs=nvm_msgs(total.size))
            out[r * nb:(r + 1) * nb, col * nb:(col + 1) * nb] = total
    return out
