"""The simulated distributed machine (paper Section 7, Figure 1).

Every rank has word counters for the channels the paper's cost model
charges:

* ``nw_sent`` / ``nw_recv``   — interprocessor words (network attaches to L2);
* ``l2_to_l3`` / ``l3_to_l2`` — NVM writes / reads (β23 / β32);
* ``l2_to_l1`` / ``l1_to_l2`` — local cache traffic (β21 / β12), charged by
  local kernels via :meth:`DistMachine.charge_local`.

Data lives in per-rank keyed stores, one per level (``"L2"``, ``"L3"``).
:meth:`send` moves an array between ranks (counting both ends);
:meth:`bcast` implements a binomial-tree broadcast so message/word counts
reflect a real collective (the analytic model's ``2·log₂(g)`` factors).

This is a *single-process simulation*: ranks execute in a deterministic
interleaving, which is sufficient because every algorithm here is BSP-style
(steps separated by communication) and we only measure traffic volumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np

from repro.util import check_positive_int, require

__all__ = ["RankCounters", "DistMachine"]


@dataclass
class RankCounters:
    """Per-rank traffic, in words (and messages for latency terms)."""

    nw_sent: int = 0
    nw_recv: int = 0
    nw_msgs_sent: int = 0
    nw_msgs_recv: int = 0
    l2_to_l3: int = 0       # NVM writes
    l3_to_l2: int = 0       # NVM reads
    l2_to_l3_msgs: int = 0
    l3_to_l2_msgs: int = 0
    l2_to_l1: int = 0
    l1_to_l2: int = 0

    @property
    def nw_words(self) -> int:
        return self.nw_sent + self.nw_recv

    @property
    def nvm_writes(self) -> int:
        return self.l2_to_l3

    @property
    def nvm_reads(self) -> int:
        return self.l3_to_l2


class DistMachine:
    """P simulated ranks with L2 (DRAM) and optional L3 (NVM) stores."""

    def __init__(
        self,
        P: int,
        *,
        M1: Optional[float] = None,
        M2: Optional[float] = None,
        M3: Optional[float] = None,
    ):
        check_positive_int(P, "P")
        self.P = P
        self.M1, self.M2, self.M3 = M1, M2, M3
        self.counters: List[RankCounters] = [RankCounters() for _ in range(P)]
        self._store: List[Dict[str, Dict[Hashable, np.ndarray]]] = [
            {"L2": {}, "L3": {}} for _ in range(P)
        ]

    # ------------------------------------------------------------------ #
    # stores
    # ------------------------------------------------------------------ #
    def _check_rank(self, r: int) -> None:
        require(0 <= r < self.P, f"rank {r} out of range 0..{self.P - 1}")

    def put(self, rank: int, key: Hashable, arr: np.ndarray,
            level: str = "L2") -> None:
        """Place initial data on a rank without charging traffic (the
        paper's 'initially one copy stored in a balanced way')."""
        self._check_rank(rank)
        require(level in ("L2", "L3"), f"bad level {level!r}")
        self._store[rank][level][key] = np.asarray(arr)

    def get(self, rank: int, key: Hashable, level: str = "L2") -> np.ndarray:
        self._check_rank(rank)
        try:
            return self._store[rank][level][key]
        except KeyError:
            raise KeyError(f"rank {rank} has no {key!r} in {level}") from None

    def has(self, rank: int, key: Hashable, level: str = "L2") -> bool:
        self._check_rank(rank)
        return key in self._store[rank][level]

    def delete(self, rank: int, key: Hashable, level: str = "L2") -> None:
        self._check_rank(rank)
        self._store[rank][level].pop(key, None)

    # ------------------------------------------------------------------ #
    # NVM traffic (L2 <-> L3)
    # ------------------------------------------------------------------ #
    def store_nvm(self, rank: int, key: Hashable,
                  arr: Optional[np.ndarray] = None) -> None:
        """Write *key* (or the given array) from L2 to L3: β23 traffic."""
        self._check_rank(rank)
        if arr is None:
            arr = self.get(rank, key, "L2")
        arr = np.asarray(arr)
        self._store[rank]["L3"][key] = arr
        c = self.counters[rank]
        c.l2_to_l3 += arr.size
        c.l2_to_l3_msgs += 1

    def load_nvm(self, rank: int, key: Hashable) -> np.ndarray:
        """Read *key* from L3 into L2: β32 traffic."""
        self._check_rank(rank)
        arr = self.get(rank, key, "L3")
        self._store[rank]["L2"][key] = arr
        c = self.counters[rank]
        c.l3_to_l2 += arr.size
        c.l3_to_l2_msgs += 1
        return arr

    def charge_nvm_write(self, rank: int, words: int, msgs: int = 1) -> None:
        """Charge β23 traffic without data movement (local-kernel detail)."""
        self._check_rank(rank)
        self.counters[rank].l2_to_l3 += words
        self.counters[rank].l2_to_l3_msgs += msgs

    def charge_nvm_read(self, rank: int, words: int, msgs: int = 1) -> None:
        self._check_rank(rank)
        self.counters[rank].l3_to_l2 += words
        self.counters[rank].l3_to_l2_msgs += msgs

    def charge_local(self, rank: int, *, l2_to_l1: int = 0,
                     l1_to_l2: int = 0) -> None:
        """Charge L1↔L2 traffic reported by a local (sequential) kernel."""
        self._check_rank(rank)
        self.counters[rank].l2_to_l1 += l2_to_l1
        self.counters[rank].l1_to_l2 += l1_to_l2

    # ------------------------------------------------------------------ #
    # network
    # ------------------------------------------------------------------ #
    def send(self, src: int, dst: int, key: Hashable,
             arr: Optional[np.ndarray] = None) -> None:
        """Point-to-point: a read on *src*, a write into *dst*'s L2."""
        self._check_rank(src)
        self._check_rank(dst)
        require(src != dst, "send to self is a no-op; don't charge it")
        if arr is None:
            arr = self.get(src, key, "L2")
        arr = np.asarray(arr)
        self._store[dst]["L2"][key] = arr
        cs, cd = self.counters[src], self.counters[dst]
        cs.nw_sent += arr.size
        cs.nw_msgs_sent += 1
        cd.nw_recv += arr.size
        cd.nw_msgs_recv += 1

    def bcast(self, root: int, ranks: Sequence[int], key: Hashable,
              arr: Optional[np.ndarray] = None) -> None:
        """Binomial-tree broadcast of *key* from *root* to *ranks*.

        Matches the simple algorithm the paper models: along the critical
        path a broadcast to g ranks costs Θ(log₂ g) messages of the full
        word count (no pipelining or scatter-allgather refinements).
        """
        ranks = list(ranks)
        require(root in ranks, "root must be a member of the group")
        if arr is None:
            arr = self.get(root, key, "L2")
        have = [root]
        rest = [r for r in ranks if r != root]
        while rest:
            senders = list(have)
            for s in senders:
                if not rest:
                    break
                d = rest.pop(0)
                self.send(s, d, key, arr)
                have.append(d)

    def reduce(self, root: int, ranks: Sequence[int], key: Hashable) -> np.ndarray:
        """Binomial-tree sum-reduction of per-rank arrays stored at *key*.

        Every rank must hold *key* in L2; the reduced array lands on
        *root* (under the same key).
        """
        ranks = list(ranks)
        require(root in ranks, "root must be a member of the group")
        parts = {r: self.get(r, key, "L2") for r in ranks}
        live = [r for r in ranks]
        # Pairwise tree: in each round, the second half sends to the first.
        while len(live) > 1:
            half = (len(live) + 1) // 2
            for i in range(half, len(live)):
                src, dst = live[i], live[i - half]
                self.send(src, dst, ("_red", key, src), parts[src])
                parts[dst] = parts[dst] + parts[src]
                self.delete(dst, ("_red", key, src))
            live = live[:half]
        # Move the result to root if the tree finished elsewhere.
        if live[0] != root:
            self.send(live[0], root, key, parts[live[0]])
        self._store[root]["L2"][key] = parts[live[0]]
        return parts[live[0]]

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def max_over_ranks(self, attr: str) -> int:
        return max(getattr(c, attr) for c in self.counters)

    def total_over_ranks(self, attr: str) -> int:
        return sum(getattr(c, attr) for c in self.counters)

    def summary(self) -> dict:
        keys = ["nw_sent", "nw_recv", "l2_to_l3", "l3_to_l2",
                "l2_to_l1", "l1_to_l2"]
        return {
            k: {"max": self.max_over_ranks(k), "total": self.total_over_ranks(k)}
            for k in keys
        }
