"""Cannon's algorithm on a 2D torus (the paper's step-3 building block)."""

from __future__ import annotations

import numpy as np

from repro.distributed.grid import Grid2D
from repro.distributed.machine import DistMachine
from repro.util import require

__all__ = ["cannon_2d"]


def cannon_2d(
    A: np.ndarray,
    B: np.ndarray,
    machine: DistMachine,
) -> np.ndarray:
    """Cannon's algorithm: skewed initial alignment, q shift-multiply steps.

    Per-rank traffic is 2·q·(n/q)² ≈ 2n²/√P words, all in neighbour
    messages (q messages of (n/q)² words per operand) — the same volume as
    SUMMA with √P-fold fewer, larger messages.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    require(A.shape == (n, n) and B.shape == (n, n),
            "cannon_2d expects square matrices of equal size")
    g = Grid2D(machine.P)
    q = g.q
    require(n % q == 0, f"n={n} must be divisible by grid side {q}")
    nb = n // q

    # Initial skew: rank (r, c) holds A(r, c+r) and B(r+c, c).
    a_cur = {}
    b_cur = {}
    for r in range(q):
        for c in range(q):
            a_cur[(r, c)] = g.block(A, r, (c + r) % q).copy()
            b_cur[(r, c)] = g.block(B, (r + c) % q, c).copy()
    # The skew itself is one neighbour exchange per operand (charged).
    for r in range(q):
        for c in range(q):
            rk = g.rank(r, c)
            if r != 0:  # A shifted left by r: model as one message
                machine.send(g.rank(r, (c + r) % q), rk, ("Askew", r, c),
                             a_cur[(r, c)])
            if c != 0:
                machine.send(g.rank((r + c) % q, c), rk, ("Bskew", r, c),
                             b_cur[(r, c)])

    c_out = {(r, c): np.zeros((nb, nb)) for r in range(q) for c in range(q)}
    for step in range(q):
        for r in range(q):
            for c in range(q):
                c_out[(r, c)] += a_cur[(r, c)] @ b_cur[(r, c)]
        if step == q - 1:
            break
        # Shift A left, B up (neighbour sends).
        a_next = {}
        b_next = {}
        for r in range(q):
            for c in range(q):
                rk = g.rank(r, c)
                src_a = g.rank(r, (c + 1) % q)
                src_b = g.rank((r + 1) % q, c)
                if q > 1:
                    machine.send(src_a, rk, ("Ashift", step, r, c),
                                 a_cur[(r, (c + 1) % q)])
                    machine.send(src_b, rk, ("Bshift", step, r, c),
                                 b_cur[((r + 1) % q, c)])
                a_next[(r, c)] = a_cur[(r, (c + 1) % q)]
                b_next[(r, c)] = b_cur[((r + 1) % q, c)]
        a_cur, b_cur = a_next, b_next

    return g.assemble(c_out, n)
