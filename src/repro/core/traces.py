"""Address-trace generators for the Section 6 cache experiments.

These produce the line-level traces that stand in for the paper's hardware
runs: each matmul *instruction order* (cache-oblivious, MKL-like, two-level
WA, multi-level WA, slab/AB) is lowered to a sequence of base-tile tasks,
and every task touches the lines of its A and B tiles (reads) and its C
tile (writes).  Intra-tile reuse happens below the simulated cache level
and cannot change its replacement state, so one touch per tile visit is the
faithful granularity (see DESIGN.md "Modelling conventions").

The task orders are driven by a small hierarchical scheduler spec so all
variants share one code path:

``spec = [("blocked", b, "ijk"), ("co", base)]`` means: block the problem
into b×b×b bricks visited in loop order i→j→k (k innermost), and execute
each brick cache-obliviously down to *base*-sized tiles.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple, Union

from repro.machine.arrays import matrix_trio
from repro.machine.trace import TraceBuffer
from repro.util import check_multiple, require

__all__ = [
    "hierarchical_task_order",
    "matmul_trace",
    "trsm_trace",
    "cholesky_trace",
    "nbody_trace",
    "MATMUL_SCHEMES",
]

Task = Tuple[int, int, int, int, int, int]
LevelSpec = Union[Tuple[str, int, str], Tuple[str, int]]


def _co_tasks(i0, i1, j0, j1, k0, k1, base) -> Iterator[Task]:
    mi, li, ni = i1 - i0, j1 - j0, k1 - k0
    if mi <= base and li <= base and ni <= base:
        yield (i0, i1, j0, j1, k0, k1)
        return
    big = max(mi, ni, li)
    if big == mi:
        h = mi // 2
        yield from _co_tasks(i0, i0 + h, j0, j1, k0, k1, base)
        yield from _co_tasks(i0 + h, i1, j0, j1, k0, k1, base)
    elif big == ni:
        h = ni // 2
        yield from _co_tasks(i0, i1, j0, j1, k0, k0 + h, base)
        yield from _co_tasks(i0, i1, j0, j1, k0 + h, k1, base)
    else:
        h = li // 2
        yield from _co_tasks(i0, i1, j0, j0 + h, k0, k1, base)
        yield from _co_tasks(i0, i1, j0 + h, j1, k0, k1, base)


def _blocked_tasks(
    i0, i1, j0, j1, k0, k1, b: int, order: str, rest: Sequence[LevelSpec]
) -> Iterator[Task]:
    require(set(order) == {"i", "j", "k"}, f"bad loop order {order!r}")
    ris = range(i0, i1, b)
    rjs = range(j0, j1, b)
    rks = range(k0, k1, b)
    axes = {"i": ris, "j": rjs, "k": rks}
    lo, mid, hi = order
    for x in axes[lo]:
        for y in axes[mid]:
            for z in axes[hi]:
                v = {lo: x, mid: y, hi: z}
                i, j, k = v["i"], v["j"], v["k"]
                yield from _dispatch(
                    i, min(i + b, i1), j, min(j + b, j1),
                    k, min(k + b, k1), rest,
                )


def _dispatch(
    i0, i1, j0, j1, k0, k1, spec: Sequence[LevelSpec]
) -> Iterator[Task]:
    if not spec:
        yield (i0, i1, j0, j1, k0, k1)
        return
    head, rest = spec[0], spec[1:]
    kind = head[0]
    if kind == "co":
        require(not rest, "'co' must be the last level of a spec")
        yield from _co_tasks(i0, i1, j0, j1, k0, k1, head[1])
    elif kind == "blocked":
        _, b, order = head  # type: ignore[misc]
        yield from _blocked_tasks(i0, i1, j0, j1, k0, k1, b, order, rest)
    else:
        raise ValueError(f"unknown level kind {kind!r}")


def hierarchical_task_order(
    m: int, n: int, l: int, spec: Sequence[LevelSpec]
) -> Iterator[Task]:
    """Yield base tasks of C(m×l) += A(m×n)·B(n×l) under *spec*."""
    require(m > 0 and n > 0 and l > 0, "dimensions must be positive")
    yield from _dispatch(0, m, 0, l, 0, n, spec)


#: Named instruction orders of Figures 2 and 5.  Each maps experiment knobs
#: (L3/L2 blocking sizes, base tile) to a scheduler spec.
MATMUL_SCHEMES = ("co", "mkl-like", "wa2", "wa-multilevel", "ab-multilevel")


def _scheme_spec(
    scheme: str, b3: int, b2: int, base: int
) -> List[LevelSpec]:
    if scheme == "co":
        # Figure 2a: pure cache-oblivious order, no level-aware blocking.
        return [("co", base)]
    if scheme == "mkl-like":
        # Figure 2b stand-in: an L2-blocked, speed-tuned order that ignores
        # L3-level write locality: rank-k panels (reduction outermost).
        return [("blocked", b2, "kij"), ("co", base)]
    if scheme == "wa2":
        # Figures 2c–f: block for L3 with the reduction innermost; inside
        # the block, the paper calls MKL dgemm, whose panel order re-touches
        # C tiles at close intervals — modelled as the same rank-k panel
        # order as "mkl-like" (this is what keeps the C block at high LRU
        # priority even when only ~3 blocks fit; cf. Fig. 5 right column).
        return [("blocked", b3, "ijk"), ("blocked", b2, "kij"), ("co", base)]
    if scheme == "wa-multilevel":
        # Figure 5 left column / Fig. 4a: reduction innermost at every level.
        return [
            ("blocked", b3, "ijk"),
            ("blocked", b2, "ijk"),
            ("co", base),
        ]
    if scheme == "ab-multilevel":
        # Figure 5 right column / Fig. 4b: WA order only at the top; slabs
        # (reduction outermost) below.
        return [
            ("blocked", b3, "ijk"),
            ("blocked", b2, "kij"),
            ("co", base),
        ]
    raise ValueError(f"unknown scheme {scheme!r}; one of {MATMUL_SCHEMES}")


def matmul_trace(
    m: int,
    n: int,
    l: int,
    *,
    scheme: str,
    b3: int = 64,
    b2: int = 16,
    base: int = 8,
    line_size: int = 8,
    c_touch_hint: bool = False,
) -> TraceBuffer:
    """Build the line-level trace of one matmul instruction order.

    Layout: C, A, B allocated contiguously in one address space (C first).
    Every base task touches A-tile lines and B-tile lines as reads and
    C-tile lines as writes, in that order.

    ``c_touch_hint`` implements the paper's Section-6.2 closing
    suggestion: between successive b2-level block multiplications, re-touch
    the *whole* resident b3-level C block to bump its LRU priority —
    rescuing the multi-level WA order when fewer than five blocks fit.

    Returns a :class:`~repro.machine.trace.TraceBuffer`; feed it to
    :class:`~repro.machine.cache.CacheSim` via ``finalize()``.
    """
    C, A, B, _space = matrix_trio(None, m, n, l, line_size)
    buf = TraceBuffer(line_size)
    spec = _scheme_spec(scheme, b3, b2, base)
    last_b2 = None
    for (i0, i1, j0, j1, k0, k1) in hierarchical_task_order(m, n, l, spec):
        if c_touch_hint:
            cur_b2 = (i0 // b2, j0 // b2, k0 // b2)
            if cur_b2 != last_b2 and last_b2 is not None:
                ci, cj = (i0 // b3) * b3, (j0 // b3) * b3
                buf.touch_lines(
                    C.tile_lines(ci, min(ci + b3, m), cj, min(cj + b3, l)),
                    write=False,
                )
            last_b2 = cur_b2
        buf.touch_lines(A.tile_lines(i0, i1, k0, k1), write=False)
        buf.touch_lines(B.tile_lines(k0, k1, j0, j1), write=False)
        buf.touch_lines(C.tile_lines(i0, i1, j0, j1), write=True)
    return buf


# --------------------------------------------------------------------- #
# Proposition 6.2 traces: TRSM, Cholesky, N-body under hardware caching
# --------------------------------------------------------------------- #
def trsm_trace(
    n: int, m: int, *, b: int, line_size: int = 8
) -> TraceBuffer:
    """Line trace of the two-level WA TRSM (Algorithm 2, k innermost).

    Each inner iteration reads the T(i,k) and X(k,j) tiles and writes the
    B(i,j) tile being accumulated; the diagonal solve reads T(i,i) and
    writes B(i,j) once more.  Proposition 6.2: under LRU with five b×b
    blocks resident, write-backs = n·m (output) lines.
    """
    check_multiple(n, b, "n")
    check_multiple(m, b, "m")
    from repro.machine.arrays import AddressSpace, TracedMatrix

    space = AddressSpace(line_size)
    B = TracedMatrix(space, "B", n, m)
    T = TracedMatrix(space, "T", n, n)
    buf = TraceBuffer(line_size)
    nb, mb = n // b, m // b

    def tile(M_, i, j):
        return M_.tile_lines(i * b, (i + 1) * b, j * b, (j + 1) * b)

    for j in range(mb):
        for i in range(nb - 1, -1, -1):
            for k in range(i + 1, nb):
                buf.touch_lines(tile(T, i, k), write=False)
                buf.touch_lines(tile(B, k, j), write=False)
                buf.touch_lines(tile(B, i, j), write=True)
            buf.touch_lines(tile(T, i, i), write=False)
            buf.touch_lines(tile(B, i, j), write=True)
    return buf


def cholesky_trace(n: int, *, b: int, line_size: int = 8) -> TraceBuffer:
    """Line trace of the left-looking WA Cholesky (Algorithm 3).

    Proposition 6.2: LRU write-backs = the lower-triangle output
    (≈ n²/2 words) when five blocks fit.
    """
    check_multiple(n, b, "n")
    from repro.machine.arrays import AddressSpace, TracedMatrix

    space = AddressSpace(line_size)
    A = TracedMatrix(space, "A", n, n)
    buf = TraceBuffer(line_size)
    nb = n // b

    def tile(i, j):
        return A.tile_lines(i * b, (i + 1) * b, j * b, (j + 1) * b)

    for i in range(nb):
        for k in range(i):
            buf.touch_lines(tile(i, k), write=False)
            buf.touch_lines(tile(i, i), write=True)
        buf.touch_lines(tile(i, i), write=True)  # in-place factorization
        for j in range(i + 1, nb):
            for k in range(i):
                buf.touch_lines(tile(i, k), write=False)
                buf.touch_lines(tile(j, k), write=False)
                buf.touch_lines(tile(j, i), write=True)
            buf.touch_lines(tile(i, i), write=False)
            buf.touch_lines(tile(j, i), write=True)  # TRSM result
    return buf


def nbody_trace(N: int, *, b: int, line_size: int = 8) -> TraceBuffer:
    """Line trace of the blocked (N,2)-body (Algorithm 4).

    Particle and force arrays are one "word" per particle here; the
    write floor is the N force words.
    """
    check_multiple(N, b, "N")
    from repro.machine.arrays import AddressSpace, TracedVector

    space = AddressSpace(line_size)
    P = TracedVector(space, "P", N)
    F = TracedVector(space, "F", N)
    buf = TraceBuffer(line_size)
    for i in range(0, N, b):
        buf.touch_lines(P.segment_lines(i, i + b), write=False)
        buf.touch_lines(F.segment_lines(i, i + b), write=True)
        for j in range(0, N, b):
            buf.touch_lines(P.segment_lines(j, j + b), write=False)
            buf.touch_lines(F.segment_lines(i, i + b), write=True)
    return buf
