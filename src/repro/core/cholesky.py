"""Blocked Cholesky factorization (paper Algorithm 3).

Factors a symmetric positive-definite A = L·Lᵀ in b×b blocks, L overwriting
the lower triangle of A.  The **left-looking** order (paper Algorithm 3) is
write-avoiding: block column i of L is fully computed by reading already-
finished columns to its left, and each output block is stored exactly once —
writes to slow memory ≈ n²/2, the output size.

The **right-looking** order uses each finished block column to immediately
update the whole trailing Schur complement, evicting a dirty block per
update: Θ(n³/b) writes to slow memory — CA but not WA.  This is the
asymmetry the paper conjectures extends to LU, QR and other one-sided
factorizations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg

from repro.core.blockio import BlockSlot
from repro.machine.hierarchy import MemoryHierarchy
from repro.util import check_multiple, check_positive_int, require

__all__ = ["blocked_cholesky", "cholesky_expected_counts"]


def cholesky_expected_counts(n: int, b: int) -> dict:
    """Predicted traffic of WA (left-looking) blocked Cholesky.

    From Algorithm 3's annotations: writes to slow ≈ n²/2 + nb/2 (the lower
    triangle, diagonal blocks counted half), writes to fast ≈ n³/(3b).
    """
    check_multiple(n, b, "n")
    nb = n // b
    diag_words = nb * (b * b)  # we move full diagonal blocks (see below)
    offdiag_words = (nb * (nb - 1) // 2) * b * b
    return {
        "writes_to_slow": diag_words + offdiag_words,
        "output_words": diag_words + offdiag_words,
    }


def blocked_cholesky(
    A: np.ndarray,
    *,
    b: int,
    hier: Optional[MemoryHierarchy] = None,
    variant: str = "left-looking",
    level: int = 1,
) -> np.ndarray:
    """Blocked Cholesky, in place on the lower triangle of A.

    Parameters
    ----------
    A:
        (n, n) symmetric positive definite; only the lower triangle is read,
        and L overwrites it (the strict upper triangle is left untouched).
    variant:
        ``"left-looking"`` (paper Algorithm 3, WA) or ``"right-looking"``
        (immediate Schur-complement updates, not WA).

    Notes
    -----
    Unlike the paper's half-block accounting for diagonal blocks we move
    full b×b diagonal blocks (simpler addressing); this changes counts only
    by the lower-order term n·b/2.
    """
    require(variant in ("left-looking", "right-looking"),
            f"unknown variant {variant!r}")
    A = np.asarray(A)
    require(A.ndim == 2 and A.shape[0] == A.shape[1],
            f"A must be square, got {A.shape}")
    n = A.shape[0]
    check_positive_int(b, "b")
    check_multiple(n, b, "n")
    nb = n // b
    bbw = b * b
    if hier is not None:
        require(3 * bbw <= hier.sizes[level - 1],
                f"three {b}x{b} blocks exceed fast memory")
        hier.alloc(level, 3 * bbw)

    slot_l = BlockSlot(hier, level)   # read-only left blocks
    slot_r = BlockSlot(hier, level)   # second read-only operand
    slot_o = BlockSlot(hier, level, dirty_on_load=True)  # block being built

    def blk(i, k):
        return A[i * b : (i + 1) * b, k * b : (k + 1) * b]

    try:
        if variant == "left-looking":
            for i in range(nb):
                # -- diagonal block: A(i,i) -= sum_k A(i,k) A(i,k)^T
                slot_o.ensure(("A", i, i), bbw)
                for k in range(i):
                    slot_l.ensure(("A", i, k), bbw)
                    blk(i, i)[...] -= blk(i, k) @ blk(i, k).T
                blk(i, i)[...] = np.linalg.cholesky(
                    np.tril(blk(i, i)) + np.tril(blk(i, i), -1).T
                )
                slot_o.flush()  # store finished L(i,i)
                # -- off-diagonal blocks of column i
                for j in range(i + 1, nb):
                    slot_o.ensure(("A", j, i), bbw)
                    for k in range(i):
                        slot_l.ensure(("A", i, k), bbw)
                        slot_r.ensure(("A", j, k), bbw)
                        blk(j, i)[...] -= blk(j, k) @ blk(i, k).T
                    slot_l.ensure(("A", i, i), bbw)
                    # Solve Tmp * L(i,i)^T = A(j,i)  =>  L(j,i)
                    blk(j, i)[...] = scipy.linalg.solve_triangular(
                        blk(i, i), blk(j, i).T, lower=True
                    ).T
                    slot_o.flush()  # store finished L(j,i)
        else:
            # Right-looking: factor panel i, then update the whole trailing
            # Schur complement with it, dirtying every trailing block.
            for i in range(nb):
                slot_o.ensure(("A", i, i), bbw)
                blk(i, i)[...] = np.linalg.cholesky(
                    np.tril(blk(i, i)) + np.tril(blk(i, i), -1).T
                )
                slot_o.writeback()  # L(i,i) final
                for j in range(i + 1, nb):
                    slot_r.ensure(("A", j, i), bbw)
                    # slot_o still holds L(i,i)
                    blk(j, i)[...] = scipy.linalg.solve_triangular(
                        blk(i, i), blk(j, i).T, lower=True
                    ).T
                    # L(j,i) final: store via a dirty eviction of slot_r on
                    # its next ensure; force the store now for clarity.
                    slot_r.mark_dirty()
                    slot_r.writeback()
                # Trailing update: A(j,k) -= L(j,i) L(k,i)^T, j >= k > i.
                for k in range(i + 1, nb):
                    slot_l.ensure(("A", k, i), bbw)
                    for j in range(k, nb):
                        slot_r.ensure(("A", j, i), bbw)
                        slot_o.ensure(("A", j, k), bbw)
                        blk(j, k)[...] -= blk(j, i) @ blk(k, i).T
            slot_o.flush()
    finally:
        if hier is not None:
            hier.free(level, 3 * bbw)
    # Zero nothing: strict upper triangle intentionally left as-is.
    return A
