"""Sorting under asymmetric read/write costs (paper Section 9 conjecture).

The paper conjectures that no sorting algorithm can simultaneously perform
``o(n·log_M n)`` writes *and* ``O(n·log_M n)`` reads to slow memory — fewer
writes must cost asymptotically more reads.  This module implements both
endpoints of that conjectured frontier, with exact two-level traffic
counting, so the trade-off is observable:

* :func:`external_merge_sort` — the classical CA algorithm: M-word runs,
  (M/block)-way merges; reads ≈ writes ≈ n·⌈log_{M/b} (n/M)⌉ + n.  Write
  traffic is Θ(total traffic): *not* write-avoiding.
* :func:`selection_sort_wa` — a write-avoiding strategy: repeatedly scan
  the unsorted input and emit the next M-word chunk of the sorted output
  (selection by range).  Writes = n exactly (each output word once, plus
  nothing else), but reads = Θ(n²/M): write-minimal and read-profligate.

Both are real sorts (validated against ``numpy.sort``); the counters are
mechanical counts of the block schedules.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.machine.hierarchy import TwoLevel
from repro.util import check_positive_int, require

__all__ = ["external_merge_sort", "selection_sort_wa", "sorting_traffic_lb"]


def sorting_traffic_lb(n: int, M: float) -> float:
    """Aggarwal–Vitter Ω(n·log_M n) bound on reads+writes [3] (log base M,
    constant-free)."""
    require(n >= 2 and M >= 2, "need n, M >= 2")
    return n * math.log(n) / math.log(M)


def external_merge_sort(
    x: np.ndarray,
    *,
    M: int,
    hier: Optional[TwoLevel] = None,
) -> np.ndarray:
    """Classical external merge sort with fast memory of *M* words.

    Phase 1 sorts ⌈n/M⌉ runs of M words (read n, write n); each merge pass
    k-way-merges runs with k = max(2, M//2) (read n, write n per pass).
    Total traffic Θ(n·log_{M}(n/M) + n) with reads ≈ writes — the
    communication-optimal but write-heavy endpoint.
    """
    check_positive_int(M, "M")
    require(M >= 4, f"fast memory must hold at least 4 words, got {M}")
    x = np.asarray(x).ravel()
    n = len(x)
    if n == 0:
        return x.copy()

    runs = []
    for lo in range(0, n, M):
        chunk = np.sort(x[lo : lo + M])
        if hier is not None:
            hier.load_fast(len(chunk), msgs=1)
            hier.store_slow(len(chunk), msgs=1)
        runs.append(chunk)

    k = max(2, M // 2)  # merge arity: one block per run + output block
    while len(runs) > 1:
        next_runs = []
        for i in range(0, len(runs), k):
            group = runs[i : i + k]
            if len(group) == 1:
                next_runs.append(group[0])
                continue
            merged = np.sort(np.concatenate(group))  # stand-in k-way merge
            if hier is not None:
                w = len(merged)
                hier.load_fast(w, msgs=max(1, w // max(1, M // k)))
                hier.store_slow(w, msgs=max(1, w // max(1, M // k)))
            next_runs.append(merged)
        runs = next_runs
    return runs[0]


def selection_sort_wa(
    x: np.ndarray,
    *,
    M: int,
    hier: Optional[TwoLevel] = None,
) -> np.ndarray:
    """Write-avoiding sort: writes = n, reads = Θ(n²/M).

    Repeatedly stream the whole input through fast memory keeping only the
    next M/2 smallest not-yet-output values (a bounded selection buffer),
    then write that chunk of the output once.  The input is never
    rewritten; each output word is written exactly once — at the price of
    ⌈2n/M⌉ full input scans.

    This is the read-heavy endpoint of the Section-9 conjecture's frontier.
    """
    check_positive_int(M, "M")
    require(M >= 4, f"fast memory must hold at least 4 words, got {M}")
    x = np.asarray(x).ravel()
    n = len(x)
    out = np.empty_like(x)
    chunk = max(1, M // 2)
    emitted = 0
    # Stable total order via (value, original index) to handle duplicates.
    idx = np.arange(n)
    while emitted < n:
        # One full scan of the input (n reads), keeping the chunk smallest
        # keys strictly greater than the last emitted key.
        if hier is not None:
            hier.load_fast(n, msgs=max(1, n // chunk))
        keys = np.lexsort((idx, x))  # conceptual; selection by order stat
        take = keys[emitted : emitted + chunk]
        vals = np.sort(x[take])
        out[emitted : emitted + len(take)] = vals
        if hier is not None:
            hier.store_slow(len(take), msgs=1)
        emitted += len(take)
    return out
