"""Sequential blocked LU without pivoting — the paper's conjecture, tested.

Section 4.3 conjectures that "similar conclusions hold for LU, QR, and
related factorizations" based on the left-/right-looking asymmetry of
Cholesky.  This module implements both orders for unpivoted LU so the
conjecture is checkable:

* **left-looking** — each block column is fully updated by reading the
  finished factors to its left, then factored; every output block is
  stored exactly once: writes to slow memory = n² (the packed L\\U
  output).  Write-avoiding.
* **right-looking** — each panel immediately updates the whole trailing
  submatrix, evicting a dirty block per update: Θ(n³/b) writes.  CA only.

L and U are packed in place (unit diagonal of L implicit), as LAPACK does.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.linalg

from repro.core.blockio import BlockSlot
from repro.machine.hierarchy import MemoryHierarchy
from repro.util import check_multiple, check_positive_int, require

__all__ = ["blocked_lu", "unpack_lu", "lu_expected_counts"]


def lu_expected_counts(n: int, b: int) -> dict:
    """Predicted writes to slow memory of the WA (left-looking) LU: one
    store per output block = n² words."""
    check_multiple(n, b, "n")
    return {"writes_to_slow": n * n, "output_words": n * n}


def _factor_inplace(blk: np.ndarray) -> None:
    """Unpivoted LU of a block, packed (unit-L below, U on/above diag)."""
    k = blk.shape[0]
    for i in range(k):
        require(abs(blk[i, i]) > 1e-300,
                "zero pivot: unpivoted LU needs nonsingular leading minors")
        blk[i + 1:, i] /= blk[i, i]
        blk[i + 1:, i + 1:] -= np.outer(blk[i + 1:, i], blk[i, i + 1:])


def unpack_lu(A: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split a packed L\\U matrix into (L, U), L with unit diagonal."""
    L = np.tril(A, -1) + np.eye(A.shape[0])
    U = np.triu(A)
    return L, U


def blocked_lu(
    A: np.ndarray,
    *,
    b: int,
    hier: Optional[MemoryHierarchy] = None,
    variant: str = "left-looking",
    level: int = 1,
) -> np.ndarray:
    """Blocked unpivoted LU, in place (packed L\\U).

    The caller must supply a matrix with nonsingular leading principal
    minors (e.g. diagonally dominant).
    """
    require(variant in ("left-looking", "right-looking"),
            f"unknown variant {variant!r}")
    A = np.asarray(A)
    require(A.ndim == 2 and A.shape[0] == A.shape[1],
            f"A must be square, got {A.shape}")
    n = A.shape[0]
    check_positive_int(b, "b")
    check_multiple(n, b, "n")
    nb = n // b
    bbw = b * b
    if hier is not None:
        require(3 * bbw <= hier.sizes[level - 1],
                f"three {b}x{b} blocks exceed fast memory")
        hier.alloc(level, 3 * bbw)

    slot_l = BlockSlot(hier, level)
    slot_r = BlockSlot(hier, level)
    slot_o = BlockSlot(hier, level, dirty_on_load=True)

    def blk(i, k):
        return A[i * b : (i + 1) * b, k * b : (k + 1) * b]

    def lpart(i):
        """Unit-lower factor of a packed diagonal block."""
        return np.tril(blk(i, i), -1) + np.eye(b)

    try:
        if variant == "left-looking":
            for J in range(nb):
                for I in range(nb):
                    slot_o.ensure(("A", I, J), bbw)
                    for K in range(min(I, J)):
                        # K < I and K < J: blk(I,K) is pure L and
                        # blk(K,J) is pure U (packing only mixes factors
                        # on diagonal blocks).
                        slot_l.ensure(("A", I, K), bbw)
                        slot_r.ensure(("A", K, J), bbw)
                        blk(I, J)[...] -= blk(I, K) @ blk(K, J)
                    if I < J:
                        # U(I,J) = L(I,I)^{-1} · A(I,J)
                        slot_l.ensure(("A", I, I), bbw)
                        blk(I, J)[...] = scipy.linalg.solve_triangular(
                            lpart(I), blk(I, J), lower=True,
                            unit_diagonal=True)
                    elif I == J:
                        _factor_inplace(blk(I, J))
                    else:
                        # L(I,J) = A(I,J) · U(J,J)^{-1}
                        slot_l.ensure(("A", J, J), bbw)
                        blk(I, J)[...] = scipy.linalg.solve_triangular(
                            np.triu(blk(J, J)).T, blk(I, J).T,
                            lower=True).T
                    slot_o.flush()  # every output block stored once
        else:
            for K in range(nb):
                slot_o.ensure(("A", K, K), bbw)
                _factor_inplace(blk(K, K))
                slot_o.writeback()
                # Panel solves; each result stored once.
                for J in range(K + 1, nb):
                    slot_r.ensure(("A", K, J), bbw)
                    slot_r.mark_dirty()
                    blk(K, J)[...] = scipy.linalg.solve_triangular(
                        lpart(K), blk(K, J), lower=True, unit_diagonal=True)
                    slot_r.writeback()
                for I in range(K + 1, nb):
                    slot_r.ensure(("A", I, K), bbw)
                    slot_r.mark_dirty()
                    blk(I, K)[...] = scipy.linalg.solve_triangular(
                        np.triu(blk(K, K)).T, blk(I, K).T, lower=True).T
                    slot_r.writeback()
                slot_o.discard()
                # Trailing update: every block round-trips.
                for I in range(K + 1, nb):
                    slot_l.ensure(("A", I, K), bbw)
                    for J in range(K + 1, nb):
                        slot_r.ensure(("A", K, J), bbw)
                        slot_o.ensure(("A", I, J), bbw)
                        blk(I, J)[...] -= blk(I, K) @ blk(K, J)
                slot_o.flush()
    finally:
        if hier is not None:
            hier.free(level, 3 * bbw)
    return A
