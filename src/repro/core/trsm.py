"""Blocked triangular solve (paper Algorithm 2).

Solves ``T X = B`` for X where T is n×n upper triangular and B is n×m, by
successive substitution on b×b blocks; X overwrites B.  As with matmul, the
blocked algorithm is CA for any loop nesting but **write-avoiding only when
the update (reduction) loop k is innermost**: then each B(i,j) block is
loaded once, updated in fast memory by all T(i,k)·X(k,j) products, solved,
and stored once — writes to slow memory = n·m, the output size.

The right-looking variant (:func:`blocked_trsm` with
``variant="right-looking"``) instead scatters each freshly computed X(i,j)
into all blocks above it immediately, evicting a dirty block per update:
Θ(n²m/b) writes — CA but not WA.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg

from repro.core.blockio import BlockSlot
from repro.machine.hierarchy import MemoryHierarchy
from repro.util import check_multiple, check_positive_int, require

__all__ = ["blocked_trsm", "trsm_expected_counts"]


def trsm_expected_counts(n: int, m: int, b: int) -> dict:
    """Predicted traffic of the WA (left-looking) blocked TRSM.

    From Algorithm 2's annotations (generalized to n×m right-hand sides):

    * writes to fast ≈ n²m/b (T and X streams) + 1.5·n·m (B loads + diag)
    * writes to slow = n·m (each X block stored once)
    """
    check_multiple(n, b, "n")
    check_multiple(m, b, "m")
    nb = n // b
    # Off-diagonal T(i,k) and X(k,j) loads: for each j, sum_i (nb-i) pairs.
    pairs = nb * (nb - 1) // 2
    loads = (
        n * m  # B(i,j) blocks
        + 2 * pairs * (m // b) * b * b  # T(i,k) + X(k,j)
        + nb * (m // b) * b * b  # diagonal T(i,i) per (i,j)
    )
    return {"loads": loads, "stores": n * m, "writes_to_slow": n * m}


def blocked_trsm(
    T: np.ndarray,
    B: np.ndarray,
    *,
    b: int,
    hier: Optional[MemoryHierarchy] = None,
    variant: str = "left-looking",
    level: int = 1,
) -> np.ndarray:
    """Solve ``T X = B`` (T upper triangular) in b×b blocks, in place.

    Parameters
    ----------
    T:
        (n, n) upper triangular (lower part ignored).
    B:
        (n, m) right-hand sides; overwritten with X.
    variant:
        ``"left-looking"`` (paper Algorithm 2; WA, k innermost) or
        ``"right-looking"`` (immediate trailing updates; CA but not WA).

    Returns B (= X).
    """
    require(variant in ("left-looking", "right-looking"),
            f"unknown variant {variant!r}")
    T = np.asarray(T)
    B = np.asarray(B)
    require(T.ndim == 2 and T.shape[0] == T.shape[1],
            f"T must be square, got {T.shape}")
    n = T.shape[0]
    require(B.ndim == 2 and B.shape[0] == n,
            f"B must be ({n}, m), got {B.shape}")
    m = B.shape[1]
    check_positive_int(b, "b")
    check_multiple(n, b, "n")
    check_multiple(m, b, "m")
    nb, mb = n // b, m // b
    bb = b * b
    if hier is not None:
        require(3 * bb <= hier.sizes[level - 1],
                f"three {b}x{b} blocks exceed fast memory")
        hier.alloc(level, 3 * bb)

    slot_t = BlockSlot(hier, level)
    slot_x = BlockSlot(hier, level)
    slot_b = BlockSlot(hier, level, dirty_on_load=True)

    def tb(i, k):
        return T[i * b : (i + 1) * b, k * b : (k + 1) * b]

    def bb_(i, j):
        return B[i * b : (i + 1) * b, j * b : (j + 1) * b]

    try:
        if variant == "left-looking":
            for j in range(mb):
                for i in range(nb - 1, -1, -1):
                    slot_b.ensure(("B", i, j), bb)
                    for k in range(i + 1, nb):
                        slot_t.ensure(("T", i, k), bb)
                        slot_x.ensure(("B", k, j), bb)
                        bb_(i, j)[...] -= tb(i, k) @ bb_(k, j)
                    slot_t.ensure(("T", i, i), bb)
                    bb_(i, j)[...] = scipy.linalg.solve_triangular(
                        tb(i, i), bb_(i, j), lower=False
                    )
            slot_b.flush()
        else:
            # Right-looking: solve X(i,j), write it out, then immediately
            # update every B(i',j) above it.  Each partially-updated block
            # is evicted dirty — Θ(n²m/b) writes to slow memory.
            for j in range(mb):
                for i in range(nb - 1, -1, -1):
                    slot_b.ensure(("B", i, j), bb)
                    slot_t.ensure(("T", i, i), bb)
                    bb_(i, j)[...] = scipy.linalg.solve_triangular(
                        tb(i, i), bb_(i, j), lower=False
                    )
                    # X(i,j) is final: store it, keep it resident as the
                    # read-only source for the scatter below.
                    slot_b.writeback()
                    for ip in range(i - 1, -1, -1):
                        slot_t.ensure(("T", ip, i), bb)
                        slot_x.ensure(("B", ip, j), bb)
                        slot_x.mark_dirty()
                        bb_(ip, j)[...] -= tb(ip, i) @ bb_(i, j)
                    # Evict the last partially-updated block so the next
                    # solve loads a coherent copy from slow memory.
                    slot_x.flush()
            slot_b.discard()
    finally:
        if hier is not None:
            hier.free(level, 3 * bb)
    return B
