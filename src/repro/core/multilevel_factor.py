"""Multi-level WA TRSM and Cholesky (paper Sections 4.2–4.3 inductions).

The paper extends Algorithms 2 and 3 to r memory levels by replacing the
inner block operations with recursive calls: TRSM calls multi-level matmul
and itself; Cholesky calls multi-level matmul (plain and transposed), a
right-sided triangular solve, and itself.  The induction shows writes to
each level stay Θ(#flops/√M_level) with only the output reaching the
slowest level.

This module implements that construction with one engine holding a block
slot triple per level (the same residency model as
:mod:`repro.core.multilevel`); the numeric leaves are numpy/scipy calls on
the innermost tiles, and tests verify both the factorizations and the
per-level write counts.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
import scipy.linalg

from repro.core.blockio import BlockSlot
from repro.machine.hierarchy import MemoryHierarchy
from repro.util import check_multiple, check_positive_int, require

__all__ = ["trsm_multilevel", "cholesky_multilevel"]


class _Engine:
    """Per-level slot state plus the recursive building blocks.

    All operands are regions of global matrices addressed by absolute
    offsets, so slot keys — ``(matrix name, abs row tile, abs col tile)``
    — are globally unique and reuse detection works across the whole
    factorization, not just one sub-call.
    """

    def __init__(self, hier: Optional[MemoryHierarchy],
                 block_sizes: Sequence[int]):
        require(len(block_sizes) >= 1, "need at least one blocking size")
        prev = None
        for b in block_sizes:
            check_positive_int(b, "block size")
            if prev is not None:
                check_multiple(prev, b, "parent block size")
            prev = b
        self.bs = list(block_sizes)
        self.nlev = len(block_sizes)
        self.hier = hier
        if hier is not None:
            require(hier.r == self.nlev,
                    f"hierarchy has {hier.r} levels, "
                    f"{self.nlev} blocking sizes given")
            for d, b in enumerate(block_sizes):
                level = self.nlev - d
                require(3 * b * b <= hier.sizes[level - 1],
                        f"three {b}x{b} blocks exceed L{level}")
                hier.alloc(level, 3 * b * b)
        self.slots = []
        for d in range(self.nlev):
            level = self.nlev - d
            self.slots.append((
                BlockSlot(hier, level),
                BlockSlot(hier, level),
                BlockSlot(hier, level, dirty_on_load=True),
            ))

    def release(self) -> None:
        for d in range(self.nlev - 1, -1, -1):
            self.slots[d][2].flush()
        if self.hier is not None:
            for d, b in enumerate(self.bs):
                self.hier.free(self.nlev - d, 3 * b * b)

    # -------------------------------------------------------------- #
    # building blocks; every method operates on one span² region at
    # recursion depth d (span == bs[d-1], or the whole problem at d=0)
    # -------------------------------------------------------------- #
    def matmul(self, d, X, Y, Z, xn, yn, zn, xi, xk, yk, yj, zi, zj,
               span_i, span_j, span_k, *, transY=False, sign=-1.0):
        """Z[zi:,zj:] += sign · X[xi:,xk:] @ op(Y) over the given spans.

        ``transY`` reads Y tiles as Yᵀ (the SYRK-style updates of
        Cholesky: op(Y)[k, j] = Y[yk + j, yj + k] region transposed).
        """
        b = self.bs[d]
        sx, sy, sz = self.slots[d]
        bb = b * b
        last = d == self.nlev - 1
        for i in range(0, span_i, b):
            for j in range(0, span_j, b):
                sz.ensure((zn, zi + i, zj + j), bb)
                for k in range(0, span_k, b):
                    sx.ensure((xn, xi + i, xk + k), bb)
                    if not transY:
                        sy.ensure((yn, yk + k, yj + j), bb)
                    else:
                        sy.ensure((yn, yj + j, yk + k), bb)
                    if last:
                        Xt = X[xi + i:xi + i + b, xk + k:xk + k + b]
                        if not transY:
                            Yt = Y[yk + k:yk + k + b, yj + j:yj + j + b]
                        else:
                            Yt = Y[yj + j:yj + j + b,
                                   yk + k:yk + k + b].T
                        Z[zi + i:zi + i + b, zj + j:zj + j + b] += (
                            sign * (Xt @ Yt))
                    else:
                        self.matmul(d + 1, X, Y, Z, xn, yn, zn,
                                    xi + i, xk + k, yk + k, yj + j,
                                    zi + i, zj + j, b, b, b,
                                    transY=transY, sign=sign)

    def trsm_left_upper(self, d, T, B, tn, bn, t0, bi, bj, span_n, span_m):
        """Solve T[t0:,t0:]·X = B[bi:,bj:] in place (T upper triangular)."""
        b = self.bs[d]
        st, sx, sb = self.slots[d]
        bb = b * b
        last = d == self.nlev - 1
        for j in range(0, span_m, b):
            for i in range(span_n - b, -1, -b):
                sb.ensure((bn, bi + i, bj + j), bb)
                for k in range(i + b, span_n, b):
                    st.ensure((tn, t0 + i, t0 + k), bb)
                    sx.ensure((bn, bi + k, bj + j), bb)
                    if last:
                        B[bi + i:bi + i + b, bj + j:bj + j + b] -= (
                            T[t0 + i:t0 + i + b, t0 + k:t0 + k + b]
                            @ B[bi + k:bi + k + b, bj + j:bj + j + b])
                    else:
                        self.matmul(d + 1, T, B, B, tn, bn, bn,
                                    t0 + i, t0 + k, bi + k, bj + j,
                                    bi + i, bj + j, b, b, b)
                st.ensure((tn, t0 + i, t0 + i), bb)
                if last:
                    B[bi + i:bi + i + b, bj + j:bj + j + b] = (
                        scipy.linalg.solve_triangular(
                            T[t0 + i:t0 + i + b, t0 + i:t0 + i + b],
                            B[bi + i:bi + i + b, bj + j:bj + j + b],
                            lower=False))
                else:
                    self.trsm_left_upper(d + 1, T, B, tn, bn,
                                         t0 + i, bi + i, bj + j, b, b)

    def trsm_right_lowerT(self, d, L, B, ln, bn, l0, bi, bj, span_m,
                          span_n):
        """Solve X·L[l0:,l0:]ᵀ = B[bi:,bj:] in place (L lower triangular).

        Column blocks of X depend left-to-right; the update for column k
        uses already-solved columns j < k: X(:,k) -= X(:,j)·L(k,j)ᵀ.
        """
        b = self.bs[d]
        sl, sx, sb = self.slots[d]
        bb = b * b
        last = d == self.nlev - 1
        for i in range(0, span_m, b):
            for k in range(0, span_n, b):
                sb.ensure((bn, bi + i, bj + k), bb)
                for j in range(0, k, b):
                    sx.ensure((bn, bi + i, bj + j), bb)
                    sl.ensure((ln, l0 + k, l0 + j), bb)
                    if last:
                        B[bi + i:bi + i + b, bj + k:bj + k + b] -= (
                            B[bi + i:bi + i + b, bj + j:bj + j + b]
                            @ L[l0 + k:l0 + k + b, l0 + j:l0 + j + b].T)
                    else:
                        self.matmul(d + 1, B, L, B, bn, ln, bn,
                                    bi + i, bj + j, l0 + j, l0 + k,
                                    bi + i, bj + k, b, b, b, transY=True)
                sl.ensure((ln, l0 + k, l0 + k), bb)
                if last:
                    B[bi + i:bi + i + b, bj + k:bj + k + b] = (
                        scipy.linalg.solve_triangular(
                            L[l0 + k:l0 + k + b, l0 + k:l0 + k + b],
                            B[bi + i:bi + i + b, bj + k:bj + k + b].T,
                            lower=True).T)
                else:
                    self.trsm_right_lowerT(d + 1, L, B, ln, bn,
                                           l0 + k, bi + i, bj + k, b, b)

    def cholesky(self, d, A, an, a0, span):
        """Factor A[a0:a0+span, a0:a0+span] = L·Lᵀ in place (lower)."""
        b = self.bs[d]
        sl, sr, so = self.slots[d]
        bb = b * b
        last = d == self.nlev - 1
        for i in range(0, span, b):
            # Diagonal block: A(i,i) -= sum_k A(i,k)·A(i,k)ᵀ, then factor.
            so.ensure((an, a0 + i, a0 + i), bb)
            for k in range(0, i, b):
                sl.ensure((an, a0 + i, a0 + k), bb)
                if last:
                    Aik = A[a0 + i:a0 + i + b, a0 + k:a0 + k + b]
                    A[a0 + i:a0 + i + b, a0 + i:a0 + i + b] -= Aik @ Aik.T
                else:
                    self.matmul(d + 1, A, A, A, an, an, an,
                                a0 + i, a0 + k, a0 + k, a0 + i,
                                a0 + i, a0 + i, b, b, b, transY=True)
            if last:
                diag = A[a0 + i:a0 + i + b, a0 + i:a0 + i + b]
                diag[...] = np.linalg.cholesky(
                    np.tril(diag) + np.tril(diag, -1).T)
            else:
                self.cholesky(d + 1, A, an, a0 + i, b)
            so.flush()
            # Off-diagonal panel.
            for j in range(i + b, span, b):
                so.ensure((an, a0 + j, a0 + i), bb)
                for k in range(0, i, b):
                    sl.ensure((an, a0 + i, a0 + k), bb)
                    sr.ensure((an, a0 + j, a0 + k), bb)
                    if last:
                        A[a0 + j:a0 + j + b, a0 + i:a0 + i + b] -= (
                            A[a0 + j:a0 + j + b, a0 + k:a0 + k + b]
                            @ A[a0 + i:a0 + i + b, a0 + k:a0 + k + b].T)
                    else:
                        self.matmul(d + 1, A, A, A, an, an, an,
                                    a0 + j, a0 + k, a0 + k, a0 + i,
                                    a0 + j, a0 + i, b, b, b, transY=True)
                sl.ensure((an, a0 + i, a0 + i), bb)
                if last:
                    A[a0 + j:a0 + j + b, a0 + i:a0 + i + b] = (
                        scipy.linalg.solve_triangular(
                            A[a0 + i:a0 + i + b, a0 + i:a0 + i + b],
                            A[a0 + j:a0 + j + b, a0 + i:a0 + i + b].T,
                            lower=True).T)
                else:
                    self.trsm_right_lowerT(d + 1, A, A, an, an,
                                           a0 + i, a0 + j, a0 + i, b, b)
                so.flush()


def trsm_multilevel(
    T: np.ndarray,
    B: np.ndarray,
    *,
    block_sizes: Sequence[int],
    hier: Optional[MemoryHierarchy] = None,
) -> np.ndarray:
    """Multi-level WA triangular solve ``T X = B`` (T upper), in place."""
    T = np.asarray(T)
    B = np.asarray(B)
    require(T.ndim == 2 and T.shape[0] == T.shape[1],
            f"T must be square, got {T.shape}")
    n = T.shape[0]
    require(B.ndim == 2 and B.shape[0] == n,
            f"B must be ({n}, m), got {B.shape}")
    b_top = block_sizes[0]
    check_multiple(n, b_top, "n")
    check_multiple(B.shape[1], b_top, "m")
    eng = _Engine(hier, block_sizes)
    try:
        eng.trsm_left_upper(0, T, B, "T", "B", 0, 0, 0, n, B.shape[1])
    finally:
        eng.release()
    return B


def cholesky_multilevel(
    A: np.ndarray,
    *,
    block_sizes: Sequence[int],
    hier: Optional[MemoryHierarchy] = None,
) -> np.ndarray:
    """Multi-level WA Cholesky, L overwriting the lower triangle of A."""
    A = np.asarray(A)
    require(A.ndim == 2 and A.shape[0] == A.shape[1],
            f"A must be square, got {A.shape}")
    check_multiple(A.shape[0], block_sizes[0], "n")
    eng = _Engine(hier, block_sizes)
    try:
        eng.cholesky(0, A, "A", 0, A.shape[0])
    finally:
        eng.release()
    return A
