"""Classical matrix multiplication: blocked (Algorithm 1), all loop orders,
and the naive unblocked comparator.

The headline fact from Section 4.1: the explicitly blocked classical matmul
is communication-avoiding for *every* permutation of the block loops
``(i, j, k)``, but it is **write-avoiding only when the reduction loop k is
innermost** — then each C block is loaded once, updated ``n/b`` times in
fast memory, and stored once, so writes to slow memory equal the output size
``m·l``.  Any other order evicts a dirty C block every inner iteration,
inflating slow-memory writes to ``Θ(mnl/b)``.

All kernels compute real results with numpy block operations and charge
traffic to an optional :class:`~repro.machine.hierarchy.MemoryHierarchy`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.blockio import BlockSlot
from repro.machine.hierarchy import MemoryHierarchy, TwoLevel
from repro.util import check_multiple, check_positive_int, require

__all__ = [
    "LOOP_ORDERS",
    "blocked_matmul",
    "naive_matmul",
    "wa_block_size",
    "matmul_expected_counts",
    "MatmulCounts",
]

#: The six permutations of the block loops.  The string is outer→inner.
LOOP_ORDERS = ("ijk", "jik", "ikj", "kij", "jki", "kji")


def wa_block_size(M: float) -> int:
    """The paper's block size ``b = sqrt(M/3)`` (three b×b blocks fit)."""
    require(M >= 3, f"fast memory must hold at least 3 words, got {M}")
    return int(math.isqrt(int(M // 3)))


@dataclass
class MatmulCounts:
    """Closed-form traffic predictions for Algorithm 1 (k innermost)."""

    loads: int
    stores: int
    writes_to_fast: int
    writes_to_slow: int

    @property
    def total(self) -> int:
        return self.loads + self.stores


def matmul_expected_counts(m: int, n: int, l: int, b: int) -> MatmulCounts:
    """Predicted traffic of Algorithm 1 on C(m×l) += A(m×n)·B(n×l).

    From the in-line annotations of Algorithm 1:

    * loads  = ml (C blocks) + 2·mnl/b (A and B blocks)
    * stores = ml (each C block stored once)
    * writes to fast = loads; writes to slow = stores.
    """
    check_multiple(m, b, "m")
    check_multiple(n, b, "n")
    check_multiple(l, b, "l")
    loads = m * l + 2 * m * n * l // b
    stores = m * l
    return MatmulCounts(
        loads=loads,
        stores=stores,
        writes_to_fast=loads,
        writes_to_slow=stores,
    )


def blocked_matmul(
    A: np.ndarray,
    B: np.ndarray,
    C: Optional[np.ndarray] = None,
    *,
    b: Optional[int] = None,
    hier: Optional[MemoryHierarchy] = None,
    loop_order: str = "ijk",
    level: int = 1,
) -> np.ndarray:
    """Two-level explicitly blocked classical matmul (paper Algorithm 1).

    Computes ``C += A @ B`` with b×b blocks.  Traffic between fast and slow
    memory is charged to *hier* (if given) using the one-slot-per-operand
    residency model; capacity for three blocks is reserved while running.

    Parameters
    ----------
    A, B:
        Input matrices, shapes (m, n) and (n, l), dimensions multiples of b.
    C:
        Output, shape (m, l); allocated (zeros) if omitted.
    b:
        Block size; defaults to ``wa_block_size(hier.sizes[level-1])`` when
        *hier* is given (and is then validated to fit), else required.
    loop_order:
        Permutation of "ijk", outer loop first.  ``k`` innermost ⇒ WA.
    level:
        Which hierarchy level acts as fast memory (1 = L1).

    Returns
    -------
    C, with the product accumulated.
    """
    require(loop_order in LOOP_ORDERS, f"loop_order must be one of {LOOP_ORDERS}")
    A = np.asarray(A)
    B = np.asarray(B)
    m, n = A.shape
    n2, l = B.shape
    require(n == n2, f"inner dimensions disagree: A is {A.shape}, B is {B.shape}")
    if C is None:
        C = np.zeros((m, l), dtype=np.result_type(A, B))
    else:
        require(C.shape == (m, l), f"C has shape {C.shape}, expected {(m, l)}")
    if b is None:
        require(hier is not None, "either b or hier must be provided")
        b = wa_block_size(hier.sizes[level - 1])
        # Shrink to a divisor-friendly size if needed.
        while b > 1 and (m % b or n % b or l % b):
            b -= 1
    check_positive_int(b, "b")
    check_multiple(m, b, "m")
    check_multiple(n, b, "n")
    check_multiple(l, b, "l")
    if hier is not None:
        require(
            3 * b * b <= hier.sizes[level - 1],
            f"three {b}x{b} blocks ({3 * b * b} words) exceed fast memory "
            f"L{level} ({hier.sizes[level - 1]} words)",
        )
        hier.alloc(level, 3 * b * b)

    slot_a = BlockSlot(hier, level)
    slot_b = BlockSlot(hier, level)
    slot_c = BlockSlot(hier, level, dirty_on_load=True)
    bb = b * b

    ranges = {"i": range(m // b), "j": range(l // b), "k": range(n // b)}
    lo, mid, hi = loop_order  # outer, middle, inner loop variables

    try:
        for x in ranges[lo]:
            for y in ranges[mid]:
                for z in ranges[hi]:
                    idx = {lo: x, mid: y, hi: z}
                    i, j, k = idx["i"], idx["j"], idx["k"]
                    slot_c.ensure(("C", i, j), bb)
                    slot_a.ensure(("A", i, k), bb)
                    slot_b.ensure(("B", k, j), bb)
                    C[i * b : (i + 1) * b, j * b : (j + 1) * b] += (
                        A[i * b : (i + 1) * b, k * b : (k + 1) * b]
                        @ B[k * b : (k + 1) * b, j * b : (j + 1) * b]
                    )
        slot_c.flush()
    finally:
        if hier is not None:
            hier.free(level, 3 * bb)
    return C


def naive_matmul(
    A: np.ndarray,
    B: np.ndarray,
    C: Optional[np.ndarray] = None,
    *,
    hier: Optional[TwoLevel] = None,
) -> np.ndarray:
    """Unblocked three-nested-loop matmul (dot-product innermost).

    The paper notes (Section 1) this ordering also minimizes writes to slow
    memory (each C entry is written once) but **maximizes reads** — it is
    write-minimal without being communication-avoiding, so it is not WA.
    Traffic model: each inner product streams a row of A and a column of B
    through fast memory (no blocking ⇒ no reuse across iterations when
    n ≫ M), and each C element is created in fast memory and stored once.
    """
    A = np.asarray(A)
    B = np.asarray(B)
    m, n = A.shape
    n2, l = B.shape
    require(n == n2, f"inner dimensions disagree: A is {A.shape}, B is {B.shape}")
    if C is None:
        C = np.zeros((m, l), dtype=np.result_type(A, B))
    else:
        require(C.shape == (m, l), f"C has shape {C.shape}, expected {(m, l)}")
    # Numerics: one shot (row-by-row loop would be identical arithmetic).
    C += A @ B
    if hier is not None:
        # m*l inner products, each loading a length-n row and column.
        hier.load_fast(2 * n * m * l, msgs=2 * m * l)
        hier.create_fast(m * l)
        hier.store_slow(m * l, msgs=m * l)
    return C
