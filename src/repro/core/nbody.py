"""Direct N-body force computation (paper Algorithm 4 and its (N,k) form).

The blocked direct (N,2)-body algorithm streams blocks of the "source"
particle array through fast memory while one block of output forces stays
resident: writes to slow memory = N (the output), attaining the write lower
bound, while reads are Θ(N²/b).

Also provided:

* :func:`nbody_k` — the (N,k)-body generalization with k nested block
  loops; writes to slow stay N, reads Θ(N^k/b^{k-1}), at a k! arithmetic
  penalty for ignoring symmetry (Section 4.4).
* ``use_symmetry=True`` — the classic Newton's-third-law optimization that
  halves arithmetic but updates forces on *both* blocks of every pair, so
  every pass dirties O(N) words: Θ(N²/b) writes — provably not WA (the
  paper's counterexample).

Force laws are pluggable; the default is softened inverse-square gravity
with unit masses, vectorized over block pairs.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.blockio import BlockSlot
from repro.machine.hierarchy import MemoryHierarchy
from repro.util import check_multiple, check_positive_int, require

__all__ = [
    "gravity_phi2",
    "triple_phi3",
    "nbody2",
    "nbody_k",
    "nbody_expected_counts",
]


def gravity_phi2(
    P1: np.ndarray, P2: np.ndarray, eps: float = 1e-3
) -> np.ndarray:
    """Softened inverse-square pairwise forces of block P2 on block P1.

    Shapes: P1 (b1, d), P2 (b2, d) → forces (b1, d).  Self-interactions
    (identical coordinates) contribute zero, implementing the paper's
    convention that Φ₂(x, x) = 0.
    """
    diff = P2[None, :, :] - P1[:, None, :]  # (b1, b2, d)
    r2 = np.einsum("ijk,ijk->ij", diff, diff)
    # Zero out exact coincidences (self pairs when P1 and P2 overlap).
    mask = r2 > 0
    inv = np.zeros_like(r2)
    np.divide(1.0, (r2 + eps) ** 1.5, out=inv, where=mask)
    return np.einsum("ijk,ij->ik", diff, inv)


def triple_phi3(
    P1: np.ndarray, P2: np.ndarray, P3: np.ndarray, eps: float = 1e-3
) -> np.ndarray:
    """A simple 3-body force kernel (per-triple, zero on repeated bodies).

    For each (i, j, m): contribution to body i is
    ``(Pj + Pm - 2 Pi) / (|Pj-Pi|² + |Pm-Pi|² + eps)^{3/2}``, zeroed when
    any two participants coincide — a stand-in exercising the same data
    movement as any genuine 3-body potential (e.g. Axilrod–Teller).
    """
    d1 = P2[None, :, None, :] - P1[:, None, None, :]   # (b1,b2,1,d)
    d2 = P3[None, None, :, :] - P1[:, None, None, :]   # (b1,1,b3,d)
    r2 = (
        np.einsum("ijkl,ijkl->ijk", d1, d1)
        + np.einsum("ijkl,ijkl->ijk", d2, d2)
    )
    num = d1 + d2  # broadcast to (b1,b2,b3,d)
    # Zero when i==j, i==m (captured by zero distances) or j==m.
    jm = np.einsum(
        "jkl,jkl->jk",
        P3[None, :, :] - P2[:, None, :],
        P3[None, :, :] - P2[:, None, :],
    )
    valid = (
        (np.einsum("ijkl,ijkl->ijk", d1, d1) > 0)
        & (np.einsum("ijkl,ijkl->ijk", d2, d2) > 0)
        & (jm[None, :, :] > 0)
    )
    w = np.zeros_like(r2)
    np.divide(1.0, (r2 + eps) ** 1.5, out=w, where=valid)
    return np.einsum("ijkl,ijk->il", num, w)


def nbody_expected_counts(N: int, b: int, k: int = 2) -> dict:
    """Predicted traffic of the blocked (N,k)-body algorithm.

    Writes to slow = N; writes to fast = 2N + N²/b + ... + N^k/b^{k-1}
    (Section 4.4).
    """
    check_multiple(N, b, "N")
    wf = 2 * N
    term = N
    for _ in range(k - 1):
        term = term * N // b
        wf += term
    return {"writes_to_slow": N, "writes_to_fast": wf}


def nbody2(
    P1: np.ndarray,
    P2: Optional[np.ndarray] = None,
    *,
    b: int,
    hier: Optional[MemoryHierarchy] = None,
    phi2: Callable[[np.ndarray, np.ndarray], np.ndarray] = gravity_phi2,
    use_symmetry: bool = False,
    level: int = 1,
) -> np.ndarray:
    """Blocked direct (N,2)-body (paper Algorithm 4).

    Computes ``F[i] = sum_j phi2(P1[i], P2[j])``.  If *P2* is omitted the
    interaction is within P1 (the usual self-gravitating case).

    With ``use_symmetry=True`` (only valid for P2 is P1 and an antisymmetric
    force law) each block pair is visited once and both blocks' forces are
    updated — half the arithmetic, but Θ(N²/b) writes to slow memory.

    Memory units follow the paper: capacities count *particles* (a particle
    and a force are each one unit).
    """
    P1 = np.asarray(P1)
    require(P1.ndim == 2, f"P1 must be (N, d), got {P1.shape}")
    self_interaction = P2 is None
    P2arr = P1 if self_interaction else np.asarray(P2)
    require(P2arr.shape[1] == P1.shape[1], "P1/P2 dimensionality mismatch")
    require(not use_symmetry or self_interaction,
            "use_symmetry requires a self-interaction (P2 omitted)")
    N = P1.shape[0]
    N2 = P2arr.shape[0]
    check_positive_int(b, "b")
    check_multiple(N, b, "N")
    check_multiple(N2, b, "N2")
    F = np.zeros_like(P1, dtype=float)
    nslots = 3 if not use_symmetry else 4
    if hier is not None:
        require(nslots * b <= hier.sizes[level - 1],
                f"{nslots} {b}-particle blocks exceed fast memory")
        hier.alloc(level, nslots * b)

    slot_p1 = BlockSlot(hier, level)
    slot_p2 = BlockSlot(hier, level)
    slot_f = BlockSlot(hier, level)   # output block F(i)
    slot_fj = BlockSlot(hier, level)  # partner block F(j) (symmetric mode)

    def pb(P, i):
        return P[i * b : (i + 1) * b]

    try:
        if not use_symmetry:
            for i in range(N // b):
                slot_p1.ensure(("P1", i), b)
                slot_f.ensure(("F", i), b, create=True)
                for j in range(N2 // b):
                    slot_p2.ensure(("P2", j), b)
                    F[i * b : (i + 1) * b] += phi2(pb(P1, i), pb(P2arr, j))
                slot_f.flush()
        else:
            # Newton's-third-law schedule: visit unordered block pairs once
            # and update forces on *both* blocks.  Every inner iteration
            # dirties a partner block F(j) which must round-trip through
            # slow memory — Θ(N²/b) writes, the paper's counterexample.
            for i in range(N // b):
                slot_p1.ensure(("P1", i), b)
                # F(i) holds partial sums from earlier passes (i > 0).
                slot_f.ensure(("F", i), b, create=(i == 0))
                slot_f.mark_dirty()
                F[i * b : (i + 1) * b] += phi2(pb(P1, i), pb(P1, i))
                for j in range(i + 1, N // b):
                    slot_p2.ensure(("P1", j), b)
                    slot_fj.ensure(("F", j), b, create=(i == 0))
                    slot_fj.mark_dirty()
                    F[i * b : (i + 1) * b] += phi2(pb(P1, i), pb(P1, j))
                    F[j * b : (j + 1) * b] += phi2(pb(P1, j), pb(P1, i))
                slot_fj.flush()
                slot_f.flush()
    finally:
        if hier is not None:
            hier.free(level, nslots * b)
    return F


def nbody_k(
    P: np.ndarray,
    *,
    b: int,
    k: int = 3,
    hier: Optional[MemoryHierarchy] = None,
    phik: Optional[Callable[..., np.ndarray]] = None,
    level: int = 1,
) -> np.ndarray:
    """Blocked direct (N,k)-body: k nested block loops (Section 4.4).

    ``F[i1] = sum over (i2..ik) of phik(P[i1], ..., P[ik])`` with the output
    block resident across all inner loops.  Writes to slow memory = N.
    Fast memory must hold k+1 blocks (k particle blocks + 1 force block).
    """
    P = np.asarray(P)
    require(P.ndim == 2, f"P must be (N, d), got {P.shape}")
    require(k >= 2, f"k must be >= 2, got {k}")
    if phik is None:
        if k == 2:
            phik = gravity_phi2
        elif k == 3:
            phik = triple_phi3
        else:
            raise ValueError(f"no default force law for k={k}; pass phik")
    N = P.shape[0]
    check_positive_int(b, "b")
    check_multiple(N, b, "N")
    nb = N // b
    F = np.zeros_like(P, dtype=float)
    if hier is not None:
        require((k + 1) * b <= hier.sizes[level - 1],
                f"{k + 1} blocks of {b} particles exceed fast memory")
        hier.alloc(level, (k + 1) * b)

    slots = [BlockSlot(hier, level) for _ in range(k)]
    slot_f = BlockSlot(hier, level)

    def pb(i):
        return P[i * b : (i + 1) * b]

    def rec(depth: int, idx: list) -> None:
        if depth == k:
            blocks = [pb(i) for i in idx]
            F[idx[0] * b : (idx[0] + 1) * b] += phik(*blocks)
            return
        for j in range(nb):
            slots[depth].ensure(("P", depth, j), b)
            idx.append(j)
            if depth == 0:
                slot_f.ensure(("F", j), b, create=True)
            rec(depth + 1, idx)
            if depth == 0:
                slot_f.flush()
            idx.pop()

    try:
        rec(0, [])
    finally:
        if hier is not None:
            hier.free(level, (k + 1) * b)
    return F
