"""Cache-oblivious recursive matmul (Frigo–Leiserson–Prokop–Ramachandran).

The CO algorithm splits the largest of the three dimensions in half and
recurses; it is CA for every cache level simultaneously *without knowing M*
— and, by the paper's Theorem 3 / Corollary 4, therefore **cannot** be
write-avoiding: it performs Ω(|S|/√M) = Ω(mnl/√M) writes to slow memory.

Provided here:

* :func:`co_matmul` — numeric recursive CO matmul (base case ``base``),
  optionally charging traffic to a two-level hierarchy with the standard
  CO accounting (a subproblem that fits in fast memory is loaded once,
  computed, and its C output stored once — the ideal-cache execution).
* :func:`co_task_order` — the sequence of base-case block tasks the
  recursion generates (used by the trace generators for Figure 2a).
* :func:`ideal_cache_misses` — the closed-form ideal-cache miss count from
  Figure 2a's caption (the black "Misses on Ideal Cache" line).
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.machine.hierarchy import TwoLevel
from repro.util import ceil_div, require

__all__ = ["co_matmul", "co_task_order", "ideal_cache_misses"]


def co_matmul(
    A: np.ndarray,
    B: np.ndarray,
    C: Optional[np.ndarray] = None,
    *,
    base: int = 16,
    hier: Optional[TwoLevel] = None,
) -> np.ndarray:
    """Recursive cache-oblivious ``C += A @ B``.

    Splits the largest dimension in half until all dimensions are ≤ *base*,
    then multiplies with numpy.  If *hier* is given, traffic is charged with
    ideal two-level accounting: the recursion level at which a subproblem
    first fits in fast memory loads its inputs and stores its C block.

    Note the non-WA behaviour this implies: a C block is stored once per
    *fitting subproblem*, and the same C block belongs to ``n/n_fit`` of
    them along the reduction dimension — Θ(mnl/√M) stores in total.
    """
    A = np.asarray(A)
    B = np.asarray(B)
    m, n = A.shape
    n2, l = B.shape
    require(n == n2, f"inner dimensions disagree: A {A.shape}, B {B.shape}")
    require(base >= 1, f"base must be >= 1, got {base}")
    if C is None:
        C = np.zeros((m, l), dtype=np.result_type(A, B))
    else:
        require(C.shape == (m, l), f"C has shape {C.shape}, expected {(m, l)}")

    M = hier.M if hier is not None else None

    def fits(mi: int, ni: int, li: int) -> bool:
        return M is not None and (mi * ni + ni * li + mi * li) <= M

    def rec(i0, i1, j0, j1, k0, k1, counted: bool) -> None:
        mi, li, ni = i1 - i0, j1 - j0, k1 - k0
        if hier is not None and not counted and fits(mi, ni, li):
            # First level at which the whole subproblem fits: one load of
            # the operands, one store of the C block (ideal execution).
            hier.load_fast(mi * ni + ni * li + mi * li, msgs=3)
            hier.store_slow(mi * li, msgs=1)
            counted = True
        if mi <= base and li <= base and ni <= base:
            C[i0:i1, j0:j1] += A[i0:i1, k0:k1] @ B[k0:k1, j0:j1]
            return
        big = max(mi, ni, li)
        if big == mi:
            h = mi // 2
            rec(i0, i0 + h, j0, j1, k0, k1, counted)
            rec(i0 + h, i1, j0, j1, k0, k1, counted)
        elif big == ni:
            h = ni // 2
            rec(i0, i1, j0, j1, k0, k0 + h, counted)
            rec(i0, i1, j0, j1, k0 + h, k1, counted)
        else:
            h = li // 2
            rec(i0, i1, j0, j0 + h, k0, k1, counted)
            rec(i0, i1, j0 + h, j1, k0, k1, counted)

    rec(0, m, 0, l, 0, n, False)
    return C


def co_task_order(
    m: int, n: int, l: int, base: int
) -> Iterator[Tuple[int, int, int, int, int, int]]:
    """Yield the base-case tasks ``(i0, i1, j0, j1, k0, k1)`` of the CO
    recursion, in execution order (the Z-order-like curve of Figure 2a)."""
    require(base >= 1, f"base must be >= 1, got {base}")

    def rec(i0, i1, j0, j1, k0, k1):
        mi, li, ni = i1 - i0, j1 - j0, k1 - k0
        if mi <= base and li <= base and ni <= base:
            yield (i0, i1, j0, j1, k0, k1)
            return
        big = max(mi, ni, li)
        if big == mi:
            h = mi // 2
            yield from rec(i0, i0 + h, j0, j1, k0, k1)
            yield from rec(i0 + h, i1, j0, j1, k0, k1)
        elif big == ni:
            h = ni // 2
            yield from rec(i0, i1, j0, j1, k0, k0 + h)
            yield from rec(i0, i1, j0, j1, k0 + h, k1)
        else:
            h = li // 2
            yield from rec(i0, i1, j0, j0 + h, k0, k1)
            yield from rec(i0, i1, j0 + h, j1, k0, k1)

    yield from rec(0, m, 0, l, 0, n)


def ideal_cache_misses(
    m: int, n: int, l: int, M: int, L: int, *, word_bytes: int = 8
) -> float:
    """Ideal-cache miss count for CO matmul, from Figure 2a's caption.

    ``(mn·ceil(l/s) + ln·ceil(m/s) + lm·ceil(n/s)) · word_bytes / line``,
    with ``s = sqrt(M/(3·word_bytes))`` the square-subproblem edge that
    fits in a cache of *M* bytes, and *L* the line size in bytes.

    All of m, n, l are in elements; M and L in **bytes**, matching the
    paper's expression (which carries sz(double) factors).
    """
    require(M > 0 and L > 0, "M and L must be positive")
    s = math.sqrt(M / (3 * word_bytes))
    require(s >= 1, f"cache too small: M={M} bytes")
    return (
        (m * n * ceil_div(l, int(s)) + l * n * ceil_div(m, int(s))
         + l * m * ceil_div(n, int(s)))
        * word_bytes
        / L
    )
