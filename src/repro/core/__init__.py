"""Sequential kernels: the paper's WA algorithms and their comparators."""

from repro.core.matmul import (
    LOOP_ORDERS,
    MatmulCounts,
    blocked_matmul,
    matmul_expected_counts,
    naive_matmul,
    wa_block_size,
)
from repro.core.multilevel import (
    ab_matmul_multilevel,
    multilevel_expected_writes,
    wa_matmul_multilevel,
)
from repro.core.trsm import blocked_trsm, trsm_expected_counts
from repro.core.cholesky import blocked_cholesky, cholesky_expected_counts
from repro.core.nbody import (
    gravity_phi2,
    nbody2,
    nbody_expected_counts,
    nbody_k,
    triple_phi3,
)
from repro.core.cache_oblivious import (
    co_matmul,
    co_task_order,
    ideal_cache_misses,
)
from repro.core.strassen import (
    OMEGA0,
    strassen_lower_bound,
    strassen_matmul,
    strassen_traffic,
)
from repro.core.fft import dft_direct, fft, fft_traffic, four_step_fft
from repro.core.traces import (
    MATMUL_SCHEMES,
    cholesky_trace,
    hierarchical_task_order,
    matmul_trace,
    nbody_trace,
    trsm_trace,
)
from repro.core.lu import blocked_lu, lu_expected_counts, unpack_lu
from repro.core.multilevel_factor import cholesky_multilevel, trsm_multilevel
from repro.core.apsp import apsp_expected_writes, floyd_warshall_blocked
from repro.core.qr import apply_q, blocked_qr, qr_expected_counts
from repro.core.sorting import (
    external_merge_sort,
    selection_sort_wa,
    sorting_traffic_lb,
)

__all__ = [
    "LOOP_ORDERS",
    "MatmulCounts",
    "blocked_matmul",
    "matmul_expected_counts",
    "naive_matmul",
    "wa_block_size",
    "ab_matmul_multilevel",
    "multilevel_expected_writes",
    "wa_matmul_multilevel",
    "blocked_trsm",
    "trsm_expected_counts",
    "blocked_cholesky",
    "cholesky_expected_counts",
    "gravity_phi2",
    "nbody2",
    "nbody_expected_counts",
    "nbody_k",
    "triple_phi3",
    "co_matmul",
    "co_task_order",
    "ideal_cache_misses",
    "OMEGA0",
    "strassen_lower_bound",
    "strassen_matmul",
    "strassen_traffic",
    "dft_direct",
    "fft",
    "fft_traffic",
    "four_step_fft",
    "MATMUL_SCHEMES",
    "cholesky_trace",
    "hierarchical_task_order",
    "matmul_trace",
    "nbody_trace",
    "trsm_trace",
    "blocked_lu",
    "lu_expected_counts",
    "unpack_lu",
    "cholesky_multilevel",
    "trsm_multilevel",
    "external_merge_sort",
    "selection_sort_wa",
    "sorting_traffic_lb",
    "apsp_expected_writes",
    "floyd_warshall_blocked",
    "apply_q",
    "blocked_qr",
    "qr_expected_counts",
]
