"""Strassen's matrix multiplication, with two-level traffic accounting.

Strassen is the paper's second impossibility example (Corollary 3): its
CDAG restricted to the scalar multiplications and their descendants has
out-degree ≤ 4 and no input vertices, so by Theorem 2 the number of writes
to slow memory is Ω(n^ω₀ / M^(ω₀/2−1)) with ω₀ = log₂7 — the same order as
the total traffic.  No reordering can make Strassen write-avoiding.

Provided:

* :func:`strassen_matmul` — numeric Strassen (power-of-two sizes, classical
  cutoff), validated against numpy.
* :func:`strassen_traffic` — the recursion's explicit two-level traffic
  accounting: a subproblem fitting in fast memory is loaded/stored once;
  above that, every temporary (the 10 input sums and the quadrant
  recombinations) must round-trip through slow memory.
* :func:`strassen_lower_bound` — the Ω(n^ω₀/M^(ω₀/2−1)) bound from [8].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util import is_power_of_two, require

__all__ = [
    "OMEGA0",
    "strassen_matmul",
    "strassen_traffic",
    "strassen_lower_bound",
    "StrassenTraffic",
]

OMEGA0 = math.log2(7.0)


def strassen_matmul(
    A: np.ndarray, B: np.ndarray, *, cutoff: int = 32
) -> np.ndarray:
    """Strassen's algorithm for square power-of-two matrices.

    Falls back to numpy ``@`` for subproblems of size ≤ *cutoff* (Strassen's
    recursion is exact in exact arithmetic; the cutoff only limits floating
    point error growth and Python overhead).
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    require(A.ndim == 2 and A.shape[0] == A.shape[1], "A must be square")
    require(B.shape == A.shape, "A and B must have identical shapes")
    n = A.shape[0]
    require(is_power_of_two(n), f"n must be a power of two, got {n}")
    require(cutoff >= 1, "cutoff must be >= 1")

    def rec(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        k = X.shape[0]
        if k <= cutoff:
            return X @ Y
        h = k // 2
        X11, X12, X21, X22 = X[:h, :h], X[:h, h:], X[h:, :h], X[h:, h:]
        Y11, Y12, Y21, Y22 = Y[:h, :h], Y[:h, h:], Y[h:, :h], Y[h:, h:]
        M1 = rec(X11 + X22, Y11 + Y22)
        M2 = rec(X21 + X22, Y11)
        M3 = rec(X11, Y12 - Y22)
        M4 = rec(X22, Y21 - Y11)
        M5 = rec(X11 + X12, Y22)
        M6 = rec(X21 - X11, Y11 + Y12)
        M7 = rec(X12 - X22, Y21 + Y22)
        Z = np.empty_like(X)
        Z[:h, :h] = M1 + M4 - M5 + M7
        Z[:h, h:] = M3 + M5
        Z[h:, :h] = M2 + M4
        Z[h:, h:] = M1 - M2 + M3 + M6
        return Z

    return rec(A, B)


@dataclass
class StrassenTraffic:
    """Two-level traffic of the Strassen recursion."""

    loads: int
    stores: int

    @property
    def total(self) -> int:
        return self.loads + self.stores

    @property
    def store_fraction(self) -> float:
        """Stores as a fraction of total traffic — Θ(1), never o(1)."""
        return self.stores / self.total if self.total else 0.0


def strassen_traffic(n: int, M: int) -> StrassenTraffic:
    """Explicit two-level traffic of Strassen on n×n with fast memory M.

    Accounting (standard, see [8]): if the subproblem fits
    (``3k² ≤ M``) it loads its operands (2k²) and stores its output (k²)
    once.  Otherwise the 10 input sums (S-matrices, 10·(k/2)² words) are
    formed by streaming operands through fast memory and **written to slow
    memory**, the 7 products recurse, and the 4 output quadrants are
    recombined with 8 additions whose results are written to slow memory
    (4·(k/2)² output words, with operands re-read).

    The resulting store count is Θ(n^ω₀/M^(ω₀/2−1)) — within a constant
    factor of total traffic, matching Corollary 3.
    """
    require(is_power_of_two(n), f"n must be a power of two, got {n}")
    require(M >= 3, f"fast memory too small: {M}")

    def rec(k: int) -> StrassenTraffic:
        if 3 * k * k <= M:
            return StrassenTraffic(loads=2 * k * k, stores=k * k)
        h = k // 2
        hh = h * h
        sub = rec(h)
        # Input sums: read 2 operand quadrants, write 1 temp, ×10.
        sum_loads, sum_stores = 10 * 2 * hh, 10 * hh
        # Output recombination: each quadrant reads its M-terms and writes
        # the quadrant; 12 quadrant-sized reads, 4 quadrant-sized writes.
        out_loads, out_stores = 12 * hh, 4 * hh
        return StrassenTraffic(
            loads=7 * sub.loads + sum_loads + out_loads,
            stores=7 * sub.stores + sum_stores + out_stores,
        )

    return rec(n)


def strassen_lower_bound(n: int, M: int) -> float:
    """Ω(n^ω₀ / M^(ω₀/2−1)) traffic lower bound for Strassen [8].

    Returned without its (unpublished) constant: use for growth-rate
    comparisons, not absolute counts.
    """
    require(n >= 1 and M >= 1, "n and M must be positive")
    return n**OMEGA0 / M ** (OMEGA0 / 2 - 1)
