"""Multi-level write-avoiding matmul (paper Section 4.1 and Figure 4).

Two instruction orders from Figure 4, identical arithmetic, very different
interaction with caches:

* :func:`wa_matmul_multilevel` — ``WAMatMul`` (Fig. 4a): at **every** level
  of the recursion the loop over the dimension perpendicular to C (the
  reduction) is innermost.  This attains the write lower bound at every
  level under explicit control, but under LRU needs *five* blocks to fit
  per level (Proposition 6.1).

* :func:`ab_matmul_multilevel` — ``ABMatMul`` (Fig. 4b): the reduction loop
  is innermost only at the *top* level; below it, block multiplications are
  executed in slabs parallel to the C block (reduction loop outermost).
  Under LRU this keeps the C block at high priority, so just under *three*
  blocks per level suffice — the trade-off Section 6.2 studies.

Both charge traffic to a :class:`~repro.machine.hierarchy.MemoryHierarchy`
with one level per blocking size, using per-level
:class:`~repro.core.blockio.BlockSlot` residency (one A, B, C block slot per
level, exactly the paper's explicit-movement schedule).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.blockio import BlockSlot
from repro.machine.hierarchy import MemoryHierarchy
from repro.util import check_multiple, check_positive_int, require

__all__ = [
    "wa_matmul_multilevel",
    "ab_matmul_multilevel",
    "multilevel_expected_writes",
]


def _validate(A, B, C, block_sizes):
    A = np.asarray(A)
    B = np.asarray(B)
    m, n = A.shape
    n2, l = B.shape
    require(n == n2, f"inner dimensions disagree: A {A.shape}, B {B.shape}")
    if C is None:
        C = np.zeros((m, l), dtype=np.result_type(A, B))
    else:
        require(C.shape == (m, l), f"C has shape {C.shape}, expected {(m, l)}")
    require(len(block_sizes) >= 1, "need at least one blocking size")
    prev = None
    for b in block_sizes:
        check_positive_int(b, "block size")
        if prev is not None:
            check_multiple(prev, b, "parent block size")
        prev = b
    b_top = block_sizes[0]
    check_multiple(m, b_top, "m")
    check_multiple(n, b_top, "n")
    check_multiple(l, b_top, "l")
    return A, B, C, m, n, l


def _make_slots(hier: Optional[MemoryHierarchy], nlevels: int):
    """slots[d] = (A, B, C) block slots for recursion depth d.

    Depth d uses hierarchy level ``nlevels - d`` (depth 0 = slowest level).
    """
    slots = []
    for d in range(nlevels):
        level = nlevels - d
        slots.append(
            (
                BlockSlot(hier, level),
                BlockSlot(hier, level),
                BlockSlot(hier, level, dirty_on_load=True),
            )
        )
    return slots


def _run_multilevel(
    A: np.ndarray,
    B: np.ndarray,
    C: np.ndarray,
    block_sizes: Sequence[int],
    hier: Optional[MemoryHierarchy],
    reduction_innermost_below: bool,
) -> np.ndarray:
    """Shared recursion for the two Figure-4 orders.

    ``reduction_innermost_below`` selects WAMatMul (True) vs ABMatMul
    (False, slab order below the top level).
    """
    nlev = len(block_sizes)
    if hier is not None:
        require(
            hier.r == nlev,
            f"hierarchy has {hier.r} levels but {nlev} blocking sizes given",
        )
        for d, b in enumerate(block_sizes):
            level = nlev - d
            require(
                3 * b * b <= hier.sizes[level - 1],
                f"three {b}x{b} blocks exceed L{level} "
                f"({hier.sizes[level - 1]} words)",
            )
            hier.alloc(level, 3 * b * b)
    slots = _make_slots(hier, nlev)

    def rec(depth: int, i0: int, j0: int, k0: int, span: int) -> None:
        b = block_sizes[depth]
        nb = span // b
        sa, sb, sc = slots[depth]
        bb = b * b
        top_or_wa = depth == 0 or reduction_innermost_below

        def visit(ib: int, jb: int, kb: int) -> None:
            i = i0 + ib * b
            j = j0 + jb * b
            k = k0 + kb * b
            sc.ensure(("C", i, j), bb)
            sa.ensure(("A", i, k), bb)
            sb.ensure(("B", k, j), bb)
            if depth == nlev - 1:
                C[i : i + b, j : j + b] += (
                    A[i : i + b, k : k + b] @ B[k : k + b, j : j + b]
                )
            else:
                rec(depth + 1, i, j, k, b)

        if top_or_wa:
            # i, j, k with the reduction (k) innermost — WA order.
            for ib in range(nb):
                for jb in range(nb):
                    for kb in range(nb):
                        visit(ib, jb, kb)
        else:
            # Slab order: reduction outermost (Fig. 4b's j, i, k loops).
            for kb in range(nb):
                for ib in range(nb):
                    for jb in range(nb):
                        visit(ib, jb, kb)

    m, _ = A.shape
    _, l = B.shape
    n = A.shape[1]
    b_top = block_sizes[0]
    try:
        # Top level always runs the WA order over b_top-sized blocks.
        for ib in range(m // b_top):
            for jb in range(l // b_top):
                for kb in range(n // b_top):
                    i, j, k = ib * b_top, jb * b_top, kb * b_top
                    sa, sb, sc = slots[0]
                    bb = b_top * b_top
                    sc.ensure(("C", i, j), bb)
                    sa.ensure(("A", i, k), bb)
                    sb.ensure(("B", k, j), bb)
                    if nlev == 1:
                        C[i : i + b_top, j : j + b_top] += (
                            A[i : i + b_top, k : k + b_top]
                            @ B[k : k + b_top, j : j + b_top]
                        )
                    else:
                        rec(1, i, j, k, b_top)
        # Flush dirty C blocks at every level, innermost first so stores
        # propagate outward level by level.
        for d in range(nlev - 1, -1, -1):
            slots[d][2].flush()
    finally:
        if hier is not None:
            for d, b in enumerate(block_sizes):
                hier.free(nlev - d, 3 * b * b)
    return C


def wa_matmul_multilevel(
    A: np.ndarray,
    B: np.ndarray,
    C: Optional[np.ndarray] = None,
    *,
    block_sizes: Sequence[int],
    hier: Optional[MemoryHierarchy] = None,
) -> np.ndarray:
    """Figure 4a ``WAMatMul``: reduction innermost at every level.

    ``block_sizes`` is ordered slowest level first (e.g. ``[64, 16, 8]`` for
    L3, L2, L1); each must divide its parent and the top size must divide
    all three matrix dimensions.  If *hier* is given it must have
    ``len(block_sizes)`` levels, each holding three blocks of its size.
    """
    A, B, C, m, n, l = _validate(A, B, C, block_sizes)
    return _run_multilevel(A, B, C, block_sizes, hier, True)


def ab_matmul_multilevel(
    A: np.ndarray,
    B: np.ndarray,
    C: Optional[np.ndarray] = None,
    *,
    block_sizes: Sequence[int],
    hier: Optional[MemoryHierarchy] = None,
) -> np.ndarray:
    """Figure 4b ``ABMatMul``: WA order at the top level, slabs below."""
    A, B, C, m, n, l = _validate(A, B, C, block_sizes)
    return _run_multilevel(A, B, C, block_sizes, hier, False)


def multilevel_expected_writes(
    m: int, n: int, l: int, block_sizes: Sequence[int]
) -> list:
    """Exact per-level write predictions for WAMatMul (Fig. 4a).

    Returns ``[writes_into_level_for_b, ...]`` aligned with *block_sizes*
    (slowest first), plus — via the induction of Section 4.1 — the writes
    to the backing store are always ``m·l`` (checked separately).

    Writes **into** the level with block size ``b`` (parent block ``bp``):

    * A and B tile fills from above: ``2·m·n·l / b``
    * C tile fills from above: once per parent task per C sub-tile,
      ``m·n·l / bp`` (at the top level each C block is filled once: ``m·l``)
    * C tile stores arriving from the level below: one per child C tile per
      own task, ``m·n·l / b`` (absent at the innermost level)

    All are Θ(m·n·l/√M_level) except the output-sized terms — the WA
    property at every level.
    """
    out = []
    nlev = len(block_sizes)
    for d, b in enumerate(block_sizes):
        ab_fills = 2 * m * n * l // b
        if d == 0:
            c_fills = m * l
        else:
            c_fills = m * n * l // block_sizes[d - 1]
        c_stores_from_below = 0 if d == nlev - 1 else m * n * l // b
        out.append(ab_fills + c_fills + c_stores_from_below)
    return out
