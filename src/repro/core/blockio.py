"""Block-slot residency model shared by the explicitly blocked kernels.

The paper's Algorithms 1–4 hold a small, fixed number of blocks in fast
memory (e.g. one block each of A, B and C) and move whole blocks between
levels.  :class:`BlockSlot` models one such resident block: ``ensure``
detects whether the requested block is already resident (no traffic) or must
be fetched — first storing the previous occupant if it is dirty.  This
single mechanism makes *every* loop order's traffic fall out naturally:
with the reduction loop innermost the C slot's occupant never changes inside
the inner loop (write-avoiding); with the reduction loop outer it is evicted
dirty every iteration (not write-avoiding).
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.machine.hierarchy import MemoryHierarchy

__all__ = ["BlockSlot"]


class BlockSlot:
    """One fast-memory block slot above channel *level* of *hier*.

    Parameters
    ----------
    hier:
        Hierarchy to charge traffic to (may be ``None`` for pure-numeric
        runs; then all methods are no-ops).
    level:
        The fast level this slot lives in; loads come from ``level+1``.
    dirty_on_load:
        If True the occupant is assumed modified while resident (a C/output
        block): it is stored back on eviction.  If False it is read-only
        (A/B input blocks) and eviction is silent (a D2 discard).
    """

    def __init__(
        self,
        hier: Optional[MemoryHierarchy],
        level: int = 1,
        *,
        dirty_on_load: bool = False,
    ):
        self.hier = hier
        self.level = level
        self.dirty_on_load = dirty_on_load
        self.key: Optional[Hashable] = None
        self.words: int = 0
        self.dirty: bool = False

    def ensure(
        self,
        key: Hashable,
        words: int,
        *,
        create: bool = False,
    ) -> bool:
        """Make block *key* (of *words* words) resident; return True on reuse.

        ``create=True`` begins an R2 residency (e.g. zero-initializing an
        output accumulator): the block is written in fast memory without a
        load from the slower level.
        """
        if key == self.key:
            return True
        if self.hier is not None:
            self._evict()
            if create:
                self.hier.create(self.level, words)
            else:
                self.hier.load(self.level, words)
        self.key = key
        self.words = words
        self.dirty = self.dirty_on_load or create
        return False

    def mark_dirty(self) -> None:
        self.dirty = True

    def _evict(self) -> None:
        if self.key is not None and self.dirty and self.hier is not None:
            self.hier.store(self.level, self.words)
        self.key = None
        self.dirty = False

    def writeback(self) -> None:
        """Store the occupant if dirty but keep it resident (now clean).

        Models writing a finished output block to slow memory while
        continuing to read it from fast memory (right-looking schedules).
        """
        if self.key is not None and self.dirty:
            if self.hier is not None:
                self.hier.store(self.level, self.words)
            self.dirty = False

    def flush(self) -> None:
        """Store the occupant if dirty and empty the slot (end of kernel)."""
        if self.hier is not None:
            self._evict()
        else:
            self.key = None
            self.dirty = False

    def discard(self) -> None:
        """Drop the occupant without a store (a D2 ending)."""
        self.key = None
        self.dirty = False
