"""Blocked Floyd–Warshall all-pairs shortest paths.

Section 5 lists "Floyd–Warshall all-pairs shortest-paths" among the
algorithms its lower-bound analysis covers (three nested loops over a set
S of (i,j,k) triples, C(i,j) updated from A(i,k), B(k,j) — here all three
arrays are the same distance matrix).  FW makes an instructive contrast
with matmul:

* the blocked FW is communication-avoiding — Θ(n³/(b·√M)) … with b=√(M/3),
  Θ(n³/√M) total traffic, like matmul;
* but the k-loop carries a *dependency* (paths through vertex k must be
  final before k+1 is processed), so the matmul trick of making the
  reduction loop innermost per output block is unavailable: every block is
  rewritten once per k-block — Θ(n³/b) writes to slow memory.

No write-avoiding FW is known; this module makes the obstruction
measurable.  Correctness is validated against networkx.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.blockio import BlockSlot
from repro.machine.hierarchy import MemoryHierarchy
from repro.util import check_multiple, check_positive_int, require

__all__ = ["floyd_warshall_blocked", "apsp_expected_writes"]


def apsp_expected_writes(n: int, b: int) -> dict:
    """Every block is rewritten once per k-block: (n/b)·n² words."""
    check_multiple(n, b, "n")
    return {"writes_to_slow": (n // b) * n * n, "output_words": n * n}


def _minplus(C: np.ndarray, A: np.ndarray, B: np.ndarray) -> None:
    """C = min(C, A ⊗ B) in the (min, +) semiring, vectorized."""
    # (b, b, b): A[i, k] + B[k, j]; min over k.
    np.minimum(C, (A[:, :, None] + B[None, :, :]).min(axis=1), out=C)


def floyd_warshall_blocked(
    D: np.ndarray,
    *,
    b: int,
    hier: Optional[MemoryHierarchy] = None,
    level: int = 1,
) -> np.ndarray:
    """Blocked Floyd–Warshall, in place on the distance matrix D.

    ``D[i, j]`` is the direct edge weight (``inf`` for no edge, 0 on the
    diagonal); on return it holds all-pairs shortest path lengths.

    The three classic phases per k-block: factor the diagonal block, fix
    up its row and column, then update every remaining block — each phase
    charges the block-slot traffic it actually performs.
    """
    D = np.asarray(D, dtype=float)
    require(D.ndim == 2 and D.shape[0] == D.shape[1],
            f"D must be square, got {D.shape}")
    n = D.shape[0]
    check_positive_int(b, "b")
    check_multiple(n, b, "n")
    nb = n // b
    bbw = b * b
    if hier is not None:
        require(3 * bbw <= hier.sizes[level - 1],
                f"three {b}x{b} blocks exceed fast memory")
        hier.alloc(level, 3 * bbw)

    slot_a = BlockSlot(hier, level)
    slot_b = BlockSlot(hier, level)
    slot_c = BlockSlot(hier, level, dirty_on_load=True)

    def blk(i, j):
        return D[i * b : (i + 1) * b, j * b : (j + 1) * b]

    def fw_in_block(X: np.ndarray) -> None:
        for k in range(X.shape[0]):
            np.minimum(X, X[:, k : k + 1] + X[k : k + 1, :], out=X)

    try:
        for K in range(nb):
            # Phase 1: diagonal block, fully resolved in fast memory.
            slot_c.ensure(("D", K, K), bbw)
            fw_in_block(blk(K, K))
            slot_c.flush()
            # Phase 2: row K and column K, each using the diagonal block.
            # The diagonal block is already transitively closed, so one
            # min-plus against it resolves all pivot-set paths.
            for J in range(nb):
                if J == K:
                    continue
                slot_a.ensure(("D", K, K), bbw)
                slot_c.ensure(("D", K, J), bbw)
                _minplus(blk(K, J), blk(K, K), blk(K, J))
                slot_c.flush()
            for I in range(nb):
                if I == K:
                    continue
                slot_a.ensure(("D", K, K), bbw)
                slot_c.ensure(("D", I, K), bbw)
                _minplus(blk(I, K), blk(I, K), blk(K, K))
                slot_c.flush()
            # Phase 3: trailing update; every block rewritten.
            for I in range(nb):
                if I == K:
                    continue
                for J in range(nb):
                    if J == K:
                        continue
                    slot_a.ensure(("D", I, K), bbw)
                    slot_b.ensure(("D", K, J), bbw)
                    slot_c.ensure(("D", I, J), bbw)
                    _minplus(blk(I, J), blk(I, K), blk(K, J))
            slot_c.flush()
    finally:
        if hier is not None:
            hier.free(level, 3 * bbw)
    return D
