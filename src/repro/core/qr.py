"""Blocked Householder QR — the paper's other conjectured factorization.

Section 4.3 conjectures the left-/right-looking WA asymmetry "holds for
LU, QR, and related factorizations".  We implement both orders of blocked
Householder QR with the compact WY representation so the conjecture is
checkable for QR too:

* **left-looking**: block column j is updated by applying all previously
  computed block reflectors (read-only), then factored; each output block
  (V and R packed in place) is stored once — writes to slow ≈ n·m, the
  output size.
* **right-looking**: each freshly factored panel immediately updates the
  whole trailing matrix, evicting a dirty block per update — Θ(n·m²/b)
  writes.

The panel factorization and the block reflector ``I − V·T·Vᵀ`` are built
from scratch (no LAPACK ``geqrt``); numerics are validated against
``numpy.linalg.qr`` reconstruction in tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.blockio import BlockSlot
from repro.machine.hierarchy import MemoryHierarchy
from repro.util import check_multiple, check_positive_int, require

__all__ = ["blocked_qr", "apply_q", "qr_expected_counts"]


def qr_expected_counts(m: int, n: int, b: int) -> dict:
    """Writes to slow memory of the WA (left-looking) blocked QR: the
    packed V\\R output, stored once = m·n words."""
    check_multiple(m, b, "m")
    check_multiple(n, b, "n")
    return {"writes_to_slow": m * n, "output_words": m * n}


def _householder_panel(panel: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """In-place Householder QR of a tall panel (m ≥ b columns).

    The panel is overwritten with R in its upper triangle and the
    reflector vectors below the diagonal (unit leading entries implicit);
    returns the b×b upper-triangular T of the compact WY representation
    ``Q = H₀·H₁·…·H_{b−1} = I − V·T·Vᵀ``.
    """
    m, b = panel.shape
    require(m >= b, f"panel must be tall, got {panel.shape}")
    T = np.zeros((b, b))
    for k in range(b):
        x = panel[k:, k]
        x0 = x[0]
        sigma = float(x[1:] @ x[1:])
        if sigma == 0.0:
            # Already upper triangular in this column: H_k = I.
            T[k, k] = 0.0
            continue
        normx = np.sqrt(x0 * x0 + sigma)
        beta = -np.sign(x0) * normx if x0 != 0 else -normx
        tau = (beta - x0) / beta
        vtail = x[1:] / (x0 - beta)
        # Apply H_k = I − tau·v·vᵀ (v = [1; vtail]) to trailing columns.
        trail = panel[k:, k + 1:]
        if trail.shape[1]:
            w = tau * (trail[0, :] + vtail @ trail[1:, :])
            trail[0, :] -= w
            trail[1:, :] -= np.outer(vtail, w)
        panel[k, k] = beta
        panel[k + 1:, k] = vtail
        # Compact-WY: T[:k, k] = −tau · T[:k,:k] · (V[:,:k]ᵀ v_k).
        T[k, k] = tau
        if k > 0:
            Vprev = np.zeros((m, k))
            for j in range(k):
                Vprev[j, j] = 1.0
                Vprev[j + 1:, j] = panel[j + 1:, j]
            vk = np.zeros(m)
            vk[k] = 1.0
            vk[k + 1:] = vtail
            T[:k, k] = -tau * (T[:k, :k] @ (Vprev.T @ vk))
    return T, panel


def _apply_block_reflector(
    V_panel: np.ndarray, T: np.ndarray, C: np.ndarray
) -> None:
    """C ← Qᵀ·C = (I − V·Tᵀ·Vᵀ)·C, V packed below V_panel's diagonal."""
    m, b = V_panel.shape
    V = np.zeros((m, b))
    for j in range(b):
        V[j, j] = 1.0
        V[j + 1:, j] = V_panel[j + 1:, j]
    C -= V @ (T.T @ (V.T @ C))


def apply_q(packed: np.ndarray, Ts: list, X: np.ndarray) -> np.ndarray:
    """Compute Q·X from the packed factorization (for reconstruction)."""
    m = packed.shape[0]
    Y = X.copy()
    # Q = H_0 H_1 ... ; Q X applies reflectors in reverse.
    for col0, T in reversed(Ts):
        bw = T.shape[0]
        V = np.zeros((m - col0, bw))
        for j in range(bw):
            V[j, j] = 1.0
            V[j + 1:, j] = packed[col0 + j + 1:, col0 + j]
        Y[col0:] -= V @ (T @ (V.T @ Y[col0:]))
    return Y


def blocked_qr(
    A: np.ndarray,
    *,
    b: int,
    hier: Optional[MemoryHierarchy] = None,
    variant: str = "left-looking",
    level: int = 1,
) -> Tuple[np.ndarray, list]:
    """Blocked Householder QR, packed in place.

    Returns ``(packed, Ts)``: R in the upper triangle, reflector vectors
    below the diagonal, and the list of per-panel ``(col0, T)`` WY factors
    (the T factors are O(b²) each and modelled as living with the panel).

    Traffic is charged per b-column panel block of rows — the natural
    blocking for tall panels: a "block" here is a b×b tile, consistent
    with the other kernels.
    """
    require(variant in ("left-looking", "right-looking"),
            f"unknown variant {variant!r}")
    A = np.asarray(A, dtype=float)
    require(A.ndim == 2, f"A must be 2-D, got {A.shape}")
    m, n = A.shape
    require(m >= n, f"A must be tall or square, got {A.shape}")
    check_positive_int(b, "b")
    check_multiple(m, b, "m")
    check_multiple(n, b, "n")
    nb = n // b
    bbw = b * b
    panel_words = m * b
    if hier is not None:
        # The active panel stays resident while processed (the natural
        # one-sided-factorization working set), plus one streamed V tile
        # and one T tile.
        require(panel_words + 2 * bbw <= hier.sizes[level - 1],
                f"an m×b panel plus two {b}x{b} tiles "
                f"({panel_words + 2 * bbw} words) exceed fast memory "
                f"L{level} ({hier.sizes[level - 1]} words)")
        hier.alloc(level, panel_words + 2 * bbw)

    slot_v = BlockSlot(hier, level)
    slot_t = BlockSlot(hier, level)
    Ts: list = []

    def stream_v_panel(k: int) -> None:
        """Read V panel k (rows k·b..m) tile by tile, plus its T factor."""
        if hier is None:
            return
        for i in range(k, m // b):
            slot_v.ensure(("V", i, k), bbw)
        slot_t.ensure(("T", k), bbw)

    try:
        if variant == "left-looking":
            for j in range(nb):
                if hier is not None:
                    hier.load(level, panel_words, msgs=m // b)
                for k in range(j):
                    stream_v_panel(k)
                    col0, T = Ts[k]
                    Vp = A[col0:, col0:col0 + b]
                    _apply_block_reflector(Vp, T,
                                           A[col0:, j * b:(j + 1) * b])
                T, _ = _householder_panel(A[j * b:, j * b:(j + 1) * b])
                Ts.append((j * b, T))
                # Store the finished panel (V + R) exactly once.
                if hier is not None:
                    hier.store(level, panel_words, msgs=m // b)
        else:
            for j in range(nb):
                rows = m - j * b
                if hier is not None:
                    hier.load(level, rows * b, msgs=rows // b)
                T, _ = _householder_panel(A[j * b:, j * b:(j + 1) * b])
                Ts.append((j * b, T))
                if hier is not None:
                    hier.store(level, rows * b, msgs=rows // b)
                # Immediately update every trailing panel: each one
                # round-trips through slow memory — the non-WA signature.
                for jj in range(j + 1, nb):
                    stream_v_panel(j)
                    Vp = A[j * b:, j * b:(j + 1) * b]
                    _apply_block_reflector(
                        Vp, Ts[j][1], A[j * b:, jj * b:(jj + 1) * b])
                    if hier is not None:
                        hier.load(level, rows * b, msgs=rows // b)
                        hier.store(level, rows * b, msgs=rows // b)
    finally:
        if hier is not None:
            hier.free(level, panel_words + 2 * bbw)
    return A, Ts
