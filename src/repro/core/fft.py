"""Cooley–Tukey FFT, built from scratch, with two-level traffic accounting.

The FFT is the paper's first impossibility example (Corollary 2): the
Cooley–Tukey CDAG has out-degree ≤ 2, so by Theorem 2 the number of writes
to slow memory is Ω(n·log n / log M) — the same order as all traffic.

Provided:

* :func:`fft` — an iterative radix-2 decimation-in-time FFT (no numpy.fft),
  validated against the direct DFT and numpy in tests.
* :func:`four_step_fft` — the blocked ("four-step") factorization
  n = n₁·n₂ that makes the FFT communication-*avoiding* for a fast memory
  of size M: column FFTs, twiddle scaling, row FFTs.  With an
  instrumented hierarchy it shows the CA-optimal traffic
  Θ(n·log n/log M) — and that **stores remain a constant fraction of it**,
  the impossibility in action.
* :func:`fft_traffic` — closed-form recursive accounting of the four-step
  execution's loads and stores.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.machine.hierarchy import TwoLevel
from repro.util import is_power_of_two, require

__all__ = ["fft", "four_step_fft", "fft_traffic", "FFTTraffic", "dft_direct"]


def _bit_reverse_permutation(n: int) -> np.ndarray:
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for b in range(bits):
        rev |= ((idx >> b) & 1) << (bits - 1 - b)
    return rev


def fft(x: np.ndarray) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT (power-of-two length).

    Matches the DFT convention ``X[k] = sum_j x[j]·exp(-2πi jk/n)``.
    """
    x = np.asarray(x, dtype=complex)
    require(x.ndim == 1, f"x must be 1-D, got shape {x.shape}")
    n = len(x)
    require(is_power_of_two(n), f"length must be a power of two, got {n}")
    X = x[_bit_reverse_permutation(n)].copy()
    span = 1
    while span < n:
        w = np.exp(-1j * math.pi * np.arange(span) / span)
        X2 = X.reshape(-1, 2 * span)
        lo = X2[:, :span]
        hi = X2[:, span:] * w
        X2[:, :span], X2[:, span:] = lo + hi, lo - hi
        span *= 2
    return X


def dft_direct(x: np.ndarray) -> np.ndarray:
    """O(n²) direct DFT (oracle for tests)."""
    x = np.asarray(x, dtype=complex)
    n = len(x)
    j = np.arange(n)
    W = np.exp(-2j * math.pi * np.outer(j, j) / n)
    return W @ x


def four_step_fft(
    x: np.ndarray,
    *,
    n1: Optional[int] = None,
    hier: Optional[TwoLevel] = None,
) -> np.ndarray:
    """Blocked "four-step" FFT: n = n₁·n₂ (both powers of two).

    1. view x as an n₁×n₂ matrix (row-major); FFT each **column** (length n₁);
    2. scale by twiddles ``exp(-2πi·j·k/n)``;
    3. FFT each **row** (length n₂);
    4. read out transposed.

    With *hier* given, each column/row FFT is charged a load and a store of
    its vector at the level where it fits (recursively re-blocking when a
    row/column still exceeds fast memory).  Every pass writes all n words to
    slow memory — stores ≈ reads/2 at every recursion level, demonstrating
    Corollary 2's conclusion empirically.
    """
    x = np.asarray(x, dtype=complex)
    n = len(x)
    require(is_power_of_two(n), f"length must be a power of two, got {n}")
    if n1 is None:
        n1 = 1 << (n.bit_length() // 2)
    require(is_power_of_two(n1) and 1 < n1 < n,
            f"n1 must be a power of two in (1, n), got {n1}")
    n2 = n // n1

    def transform(v: np.ndarray) -> np.ndarray:
        """FFT of one vector, re-blocking if it exceeds fast memory."""
        if hier is not None and 2 * len(v) > hier.M and len(v) > 2:
            m1 = 1 << (len(v).bit_length() // 2)
            return four_step_fft(v, n1=m1, hier=hier)
        if hier is not None:
            hier.load_fast(len(v), msgs=1)
            hier.store_slow(len(v), msgs=1)
        return fft(v)

    Xm = x.reshape(n1, n2).astype(complex)
    # Step 1: column FFTs (length n1).
    for c in range(n2):
        Xm[:, c] = transform(Xm[:, c].copy())
    # Step 2: twiddle factors  W^(j*k), j row index (output of col FFT),
    # k column index.  Streaming multiply: n loads + n stores.
    tw = np.exp(
        -2j * math.pi
        * np.outer(np.arange(n1), np.arange(n2))
        / n
    )
    if hier is not None:
        hier.load_fast(n, msgs=n2)
        hier.store_slow(n, msgs=n2)
    Xm *= tw
    # Step 3: row FFTs (length n2).
    for r in range(n1):
        Xm[r, :] = transform(Xm[r, :].copy())
    # Step 4: transpose read-out: X[k] laid out as column-major of Xm.
    return Xm.T.reshape(n)


@dataclass
class FFTTraffic:
    loads: int
    stores: int

    @property
    def total(self) -> int:
        return self.loads + self.stores

    @property
    def store_fraction(self) -> float:
        return self.stores / self.total if self.total else 0.0


def fft_traffic(n: int, M: int) -> FFTTraffic:
    """Closed-form traffic of the four-step execution with fast memory M.

    ``W(n) = n₁·W(n₂) + n₂·W(n₁) + 2n`` with base ``W(k) = 2k`` when
    ``2k ≤ M`` — total Θ(n·log n / log M), half of it stores.
    """
    require(is_power_of_two(n), f"n must be a power of two, got {n}")
    require(M >= 4, f"fast memory too small: {M}")

    def rec(k: int) -> FFTTraffic:
        if 2 * k <= M or k <= 2:
            return FFTTraffic(loads=k, stores=k)
        k1 = 1 << (k.bit_length() // 2)
        k2 = k // k1
        sub1 = rec(k1)
        sub2 = rec(k2)
        return FFTTraffic(
            loads=k1 * sub2.loads + k2 * sub1.loads + k,
            stores=k1 * sub2.stores + k2 * sub1.stores + k,
        )

    return rec(n)
