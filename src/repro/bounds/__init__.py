"""Lower-bound catalogue (paper Sections 2, 5, 7)."""

from repro.bounds.lower_bounds import (
    F_CATALOGUE,
    co_write_lower_bound,
    corollary1_write_lb,
    matmul_traffic_lb,
    nbody_traffic_lb,
    parallel_mm_bounds,
    theorem1_holds,
    theorem1_write_to_fast_lb,
    theorem3_write_lb,
    theorem4_l3_write_lb,
    wa_write_targets,
)

__all__ = [
    "F_CATALOGUE",
    "co_write_lower_bound",
    "corollary1_write_lb",
    "matmul_traffic_lb",
    "nbody_traffic_lb",
    "parallel_mm_bounds",
    "theorem1_holds",
    "theorem1_write_to_fast_lb",
    "theorem3_write_lb",
    "theorem4_l3_write_lb",
    "wa_write_targets",
]
