"""Communication and write lower bounds from the paper.

Organized as the paper presents them:

* Section 2: Theorem 1 (writes-to-fast ≥ half of all traffic), the
  f(M) catalogue ``W = Ω(#flops / f(M))``, Corollary 1 (multi-level), and
  the WA targets (what a WA algorithm must achieve per level).
* Section 5: Theorem 3 / Corollary 4 (cache-oblivious ⇒ not WA).
* Section 7: the three parallel bounds W1, W2, W3 and Theorem 4's
  Ω(n²/P^{2/3}) NVM-write bound when interprocessor communication is
  optimal.

All "Ω" returns are constant-free reference quantities for growth-rate and
dominance comparisons; exact floors (like output size) are exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from repro.machine.hierarchy import TwoLevel
from repro.util import require

__all__ = [
    "F_CATALOGUE",
    "theorem1_write_to_fast_lb",
    "theorem1_holds",
    "matmul_traffic_lb",
    "nbody_traffic_lb",
    "corollary1_write_lb",
    "wa_write_targets",
    "theorem3_write_lb",
    "co_write_lower_bound",
    "parallel_mm_bounds",
    "theorem4_l3_write_lb",
]

#: The f(M) catalogue of Section 2.1: W = Ω(#flops / f(M)).
F_CATALOGUE: Dict[str, Callable[[float], float]] = {
    "classical-linalg": lambda M: math.sqrt(M),
    "strassen": lambda M: M ** (math.log2(7.0) / 2 - 1),
    "nbody-2": lambda M: M,
    "fft": lambda M: math.log2(M) if M > 1 else 1.0,
}


def nbody_k_f(k: int) -> Callable[[float], float]:
    """f(M) = M^{k-1} for the (N,k)-body problem [38, 15]."""
    require(k >= 2, f"k must be >= 2, got {k}")
    return lambda M: M ** (k - 1)


# --------------------------------------------------------------------- #
# Section 2
# --------------------------------------------------------------------- #
def theorem1_write_to_fast_lb(loads_plus_stores: int) -> float:
    """Theorem 1: writes to fast memory ≥ (loads + stores) / 2."""
    require(loads_plus_stores >= 0, "traffic must be nonnegative")
    return loads_plus_stores / 2


def theorem1_holds(hier: TwoLevel) -> bool:
    """Check Theorem 1 on a measured two-level execution."""
    return hier.writes_to_fast >= theorem1_write_to_fast_lb(
        hier.loads_plus_stores
    )


def matmul_traffic_lb(m: int, n: int, l: int, M: float) -> float:
    """Ω(mnl/√M) loads+stores for classical matmul [28, 36, 7], with the
    explicit Section-5 constant: W ≥ |S|/(8√M) − M."""
    require(M > 0, "M must be positive")
    return max(0.0, m * n * l / (8 * math.sqrt(M)) - M)


def nbody_traffic_lb(N: int, k: int, M: float) -> float:
    """Ω(N^k / M^{k-1}) traffic for the (N,k)-body problem (constant-free)."""
    require(M > 0, "M must be positive")
    require(k >= 2, f"k must be >= 2, got {k}")
    return N**k / M ** (k - 1)


def corollary1_write_lb(flops: float, f: Callable[[float], float],
                        M_level: float) -> float:
    """Corollary 1: writes to an intermediate level Ls are at least
    W(s,s+1)/2 = Ω(#flops / f(Ms)) / 2 (constant-free reference)."""
    require(M_level > 0, "level size must be positive")
    return flops / f(M_level) / 2


def wa_write_targets(
    flops: float,
    f: Callable[[float], float],
    sizes: list,
    output_size: int,
) -> dict:
    """What a WA algorithm must achieve (Section 2.1).

    ``sizes = [M1, ..., Mr]`` (fastest first).  Returns per-level write
    targets: Θ(#flops/f(Ms)) for s < r and Θ(output) for the last level.
    """
    require(len(sizes) >= 1, "need at least one level")
    out = {}
    for s, M in enumerate(sizes, start=1):
        if s < len(sizes):
            out[f"L{s}"] = flops / f(M)
        else:
            out[f"L{s}"] = float(output_size)
    return out


# --------------------------------------------------------------------- #
# Section 5 (Theorem 3 / Corollary 4)
# --------------------------------------------------------------------- #
def theorem3_write_lb(S: int, M: float, c: float, M_prime: float) -> float:
    """Equation (1): writes to slow memory of a CO algorithm run with a
    smaller fast memory M' < M/(64c²):

    ``Ws ≥ floor(|S|/(8 M^{3/2})) / (16c − 1) · (M/(64c²) − M')``.
    """
    require(c >= 1 / 8, f"c must be >= 1/8, got {c}")
    require(M > 0 and M_prime > 0, "memory sizes must be positive")
    require(M_prime < M / (64 * c * c),
            f"Theorem 3 requires M' < M/(64c²) = {M / (64 * c * c)}")
    segs = math.floor(S / (8 * M**1.5))
    return segs / (16 * c - 1) * (M / (64 * c * c) - M_prime)


def co_write_lower_bound(S: int, M_hat: float, c: float) -> float:
    """Corollary 4: for *every* fast memory size M̂, a CO+CA algorithm
    performs ``Ws ≥ floor(|S|/(8(128c²M̂)^{3/2}))/(16c−1) · M̂`` writes —
    i.e. Ω(|S|/√M̂)."""
    require(c >= 1 / 8, f"c must be >= 1/8, got {c}")
    require(M_hat > 0, "M̂ must be positive")
    segs = math.floor(S / (8 * (128 * c * c * M_hat) ** 1.5))
    return segs / (16 * c - 1) * M_hat


# --------------------------------------------------------------------- #
# Section 7 (parallel)
# --------------------------------------------------------------------- #
@dataclass
class ParallelMMBounds:
    """The three per-processor lower bounds of Section 7 for n×n matmul."""

    W1: float  # writes to the lowest local level: output size n²/P
    W2: float  # interprocessor words: n²/sqrt(P·c)
    W3: float  # reads from L2 / writes to L1: (n³/P)/sqrt(M1)

    def ordered(self) -> bool:
        """W1 ≤ W2 ≤ W3 (with gaps when n ≫ √P ≫ 1)."""
        return self.W1 <= self.W2 <= self.W3


def parallel_mm_bounds(n: int, P: int, c: float, M1: float) -> ParallelMMBounds:
    """W1, W2, W3 for n×n matmul on P processors with replication c."""
    require(P >= 1 and n >= 1, "n and P must be positive")
    require(1 <= c <= P ** (1 / 3) + 1e-9,
            f"replication c must be in [1, P^(1/3)], got {c}")
    require(M1 > 0, "M1 must be positive")
    return ParallelMMBounds(
        W1=n * n / P,
        W2=n * n / math.sqrt(P * c),
        W3=(n**3 / P) / math.sqrt(M1),
    )


def theorem4_l3_write_lb(n: int, P: int) -> float:
    """Theorem 4: if interprocessor communication attains its lower bound,
    Ω(n²/P^{2/3}) words must be written to L3 (NVM) — asymptotically above
    the output floor n²/P.  Constant-free."""
    require(n >= 1 and P >= 1, "n and P must be positive")
    return n * n / P ** (2 / 3)
